"""IDCT benchmark: 2-D 8x8 inverse DCT engine (MPEG4 decoder sub-block)."""

from __future__ import annotations

from repro.designs import stimuli, transform
from repro.netlist.module import Module


def build() -> Module:
    """Inverse-DCT instance of the shared transform engine."""
    module = transform.build_transform("IDCT", forward=False)
    return module


def testbench(n_blocks: int = 1, seed: int = 4) -> transform.TransformTestbench:
    """Standard stimulus: sparse DCT-domain coefficient blocks."""
    blocks = [
        stimuli.random_coefficient_block(seed=seed + i)
        for i in range(n_blocks)
    ]
    return transform.TransformTestbench(blocks, forward=False, name="idct_tb")
