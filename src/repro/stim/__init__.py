"""repro.stim — declarative stimulus & scenario subsystem.

The paper's power-emulation flow is only as good as the workloads driven
through the instrumented design.  This package opens the scenario space —
Monte-Carlo random, duty-cycled bursts, Markov-correlated toggle streams,
weighted mixtures, recorded-trace replay — as small, frozen, JSON-round-
trippable descriptions instead of hand-written testbench classes:

* :mod:`repro.stim.spec` — :class:`StimulusSpec` and the port-stream kinds
  (:class:`UniformSpec`, :class:`ConstantSpec`, :class:`BurstSpec`,
  :class:`MarkovSpec`, :class:`MixtureSpec`, :class:`ReplaySpec`), CLI
  shorthand parsing (:func:`parse_stimulus`) and VCD replay
  (:func:`replay_from_vcd`),
* :mod:`repro.stim.compile` — lowering into chunked
  ``(n_cycles, n_ports, n_lanes)`` NumPy stimulus tensors
  (:func:`compile_stimulus` / :class:`CompiledStimulus`), chunk-invariant
  and independent per (seed, port),
* :mod:`repro.stim.driver` — :class:`BatchStimulusDriver`, feeding those
  tensors straight into :class:`~repro.sim.batch.BatchSimulator`'s lane
  store (no per-lane Python drive loop),
* :mod:`repro.stim.testbench` — :class:`SpecTestbench`, the scalar adapter
  producing bit-identical streams for :class:`~repro.sim.engine.Simulator`,
  the estimators and characterization runs.

Quickstart::

    from repro.stim import BurstSpec, StimulusSpec, SpecTestbench

    spec = StimulusSpec(n_cycles=256, ports={"valid": BurstSpec(active=4, idle=12)})
    result = estimate(RunSpec(design="HVPeakF", engine="rtl", stimulus=spec))
"""

from repro.stim.spec import (
    BurstSpec,
    ConstantSpec,
    MarkovSpec,
    MixtureSpec,
    PortSpec,
    ReplaySpec,
    StimulusSpec,
    UniformSpec,
    parse_stimulus,
    port_spec_from_dict,
    replay_from_vcd,
)
from repro.stim.compile import CHUNK_CYCLES, CompiledStimulus, compile_stimulus
from repro.stim.driver import BatchStimulusDriver
from repro.stim.testbench import SpecTestbench

__all__ = [
    "PortSpec",
    "UniformSpec",
    "ConstantSpec",
    "BurstSpec",
    "MarkovSpec",
    "MixtureSpec",
    "ReplaySpec",
    "StimulusSpec",
    "parse_stimulus",
    "port_spec_from_dict",
    "replay_from_vcd",
    "CHUNK_CYCLES",
    "CompiledStimulus",
    "compile_stimulus",
    "BatchStimulusDriver",
    "SpecTestbench",
]
