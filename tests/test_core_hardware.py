"""Tests for fixed-point quantization and the power-estimation hardware blocks."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.aggregator import PowerAggregator
from repro.core.fixedpoint import FixedPointFormat, quantize_coefficients
from repro.core.power_model_hw import MONITOR_PREFIX, HardwarePowerModel
from repro.core.strobe import PowerStrobeGenerator
from repro.power.macromodel import LinearTransitionModel


def clock(component, inputs):
    component.capture(inputs)
    component.commit()


# ---------------------------------------------------------------- fixed point
def test_fixed_point_round_trip_and_saturation():
    fmt = FixedPointFormat(bits=8, lsb_fj=0.5)
    assert fmt.max_code == 255
    assert fmt.quantize(10.0) == 20
    assert fmt.dequantize(20) == pytest.approx(10.0)
    assert fmt.quantize(1e9) == 255        # saturates
    assert fmt.quantize(-3.0) == 0         # negative clamps to zero
    assert fmt.quantization_error_fj(10.1) <= 0.25 + 1e-12


def test_fixed_point_for_coefficients():
    fmt = FixedPointFormat.for_coefficients([0.5, 2.0, 8.0], bits=10)
    assert fmt.quantize(8.0) == fmt.max_code
    assert fmt.max_value_fj == pytest.approx(8.0)
    codes = quantize_coefficients([0.5, 2.0, 8.0], fmt)
    assert codes[2] == fmt.max_code
    assert codes[0] < codes[1] < codes[2]


def test_fixed_point_validation():
    with pytest.raises(ValueError):
        FixedPointFormat(bits=0, lsb_fj=1.0)
    with pytest.raises(ValueError):
        FixedPointFormat(bits=8, lsb_fj=0.0)


@given(st.floats(min_value=0.0, max_value=100.0), st.integers(min_value=4, max_value=16))
def test_fixed_point_error_bounded_by_half_lsb(value, bits):
    fmt = FixedPointFormat.for_coefficients([100.0], bits=bits)
    assert fmt.quantization_error_fj(value) <= fmt.lsb_fj / 2 + 1e-9


# ---------------------------------------------------------------- strobe
def test_strobe_period_one_always_fires():
    strobe = PowerStrobeGenerator("s", period=1)
    assert strobe.evaluate({})["strobe"] == 1
    for _ in range(5):
        clock(strobe, {"enable": 1})
        assert strobe.evaluate({})["strobe"] == 1


def test_strobe_period_n_duty_cycle():
    period = 4
    strobe = PowerStrobeGenerator("s", period=period)
    fires = 0
    for _ in range(4 * period):
        clock(strobe, {"enable": 1})
        fires += strobe.evaluate({})["strobe"]
    assert fires == 4


def test_strobe_disable_freezes():
    strobe = PowerStrobeGenerator("s", period=2)
    clock(strobe, {"enable": 0})
    assert strobe.evaluate({})["strobe"] == 0
    with pytest.raises(ValueError):
        PowerStrobeGenerator("bad", period=0)


# ---------------------------------------------------------------- aggregator
def test_aggregator_accumulates_and_clears():
    agg = PowerAggregator("a", n_inputs=3, input_width=16, total_width=32)
    clock(agg, {"e0": 5, "e1": 7, "e2": 1, "clear": 0})
    clock(agg, {"e0": 2, "e1": 0, "e2": 0, "clear": 0})
    assert agg.value == 15
    assert agg.evaluate({})["total"] == 15
    clock(agg, {"e0": 9, "e1": 9, "e2": 9, "clear": 1})
    assert agg.value == 0
    with pytest.raises(ValueError):
        PowerAggregator("bad", n_inputs=0)


def test_aggregator_is_not_self_monitored():
    agg = PowerAggregator("a", n_inputs=2)
    assert agg.monitored_ports() == []


# ------------------------------------------------------- hardware power model
def make_model(width=4, coeff=2.0, base=1.0):
    widths = {"a": width, "y": width}
    coeffs = {"a": [coeff] * width, "y": [coeff] * width}
    return LinearTransitionModel("thing", widths, coeffs, base_energy_fj=base)


def test_hardware_model_matches_software_model_every_cycle():
    model = make_model()
    fmt = FixedPointFormat.for_coefficients([2.0, 1.0], bits=12)
    hw = HardwarePowerModel("hw", model, fmt, energy_width=24)
    prev = {"a": 0, "y": 0}
    total_hw = 0.0
    total_sw = 0.0
    for current in [{"a": 0xF, "y": 0x3}, {"a": 0xF, "y": 0x3}, {"a": 0x0, "y": 0xC}]:
        clock(hw, {MONITOR_PREFIX + "a": current["a"], MONITOR_PREFIX + "y": current["y"],
                   "strobe": 1})
        total_hw += hw.energy_fj_from_code(hw.evaluate({})["energy"])
        total_sw += model.evaluate(prev, current)
        prev = current
    assert total_hw == pytest.approx(total_sw, rel=1e-3)


def test_hardware_model_strobe_accumulation():
    """With a strobe every 2 cycles the flushed energy covers both cycles."""
    model = make_model()
    fmt = FixedPointFormat.for_coefficients([2.0], bits=12)
    hw = HardwarePowerModel("hw", model, fmt, energy_width=24)
    # cycle 1: toggle all of a (no strobe)
    clock(hw, {MONITOR_PREFIX + "a": 0xF, MONITOR_PREFIX + "y": 0, "strobe": 0})
    assert hw.evaluate({})["energy"] == 0
    # cycle 2: toggle y, strobe fires -> output covers both cycles
    clock(hw, {MONITOR_PREFIX + "a": 0xF, MONITOR_PREFIX + "y": 0xF, "strobe": 1})
    flushed = hw.energy_fj_from_code(hw.evaluate({})["energy"])
    expected = model.evaluate({"a": 0, "y": 0}, {"a": 0xF, "y": 0}) + model.evaluate(
        {"a": 0xF, "y": 0}, {"a": 0xF, "y": 0xF}
    )
    assert flushed == pytest.approx(expected, rel=1e-3)


def test_hardware_model_sample_on_strobe_only_undersamples():
    model = make_model(base=0.0)
    fmt = FixedPointFormat.for_coefficients([2.0], bits=12)
    exact = HardwarePowerModel("e", model, fmt)
    literal = HardwarePowerModel("l", model, fmt, sample_on_strobe_only=True)
    sequence = [
        ({"a": 0xF, "y": 0xF}, 0),
        ({"a": 0x0, "y": 0x0}, 1),
        ({"a": 0xF, "y": 0xF}, 0),
        ({"a": 0x0, "y": 0x0}, 1),
    ]
    energy_exact = 0.0
    energy_literal = 0.0
    for values, strobe in sequence:
        inputs = {MONITOR_PREFIX + "a": values["a"], MONITOR_PREFIX + "y": values["y"],
                  "strobe": strobe}
        clock(exact, inputs)
        clock(literal, inputs)
        energy_exact += exact.energy_fj_from_code(exact.evaluate({})["energy"])
        energy_literal += literal.energy_fj_from_code(literal.evaluate({})["energy"])
    assert energy_literal < energy_exact


def test_hardware_model_reset_and_introspection():
    model = make_model()
    fmt = FixedPointFormat.for_coefficients([2.0], bits=8)
    hw = HardwarePowerModel("hw", model, fmt, monitored_component="the_adder")
    assert hw.monitored_component == "the_adder"
    assert hw.monitored_ports() == []
    assert hw.max_cycle_energy_code() == hw.base_code + sum(hw.coefficient_codes)
    clock(hw, {MONITOR_PREFIX + "a": 0xF, MONITOR_PREFIX + "y": 0xF, "strobe": 1})
    assert hw.evaluate({})["energy"] > 0
    hw.reset()
    assert hw.evaluate({})["energy"] == 0


def test_hardware_model_quantization_error_bounded():
    """Emulated energy differs from the float model by at most n_bits/2 LSBs per cycle."""
    model = make_model(width=8, coeff=1.37, base=0.61)
    fmt = FixedPointFormat.for_coefficients(
        [c for _, _, c in model.flat_coefficients()] + [model.base_energy_fj], bits=10
    )
    hw = HardwarePowerModel("hw", model, fmt)
    prev = {"a": 0, "y": 0}
    current = {"a": 0xA5, "y": 0x5A}
    clock(hw, {MONITOR_PREFIX + "a": current["a"], MONITOR_PREFIX + "y": current["y"],
               "strobe": 1})
    hw_energy = hw.energy_fj_from_code(hw.evaluate({})["energy"])
    sw_energy = model.evaluate(prev, current)
    bound = (model.total_bits + 1) * fmt.lsb_fj / 2
    assert abs(hw_energy - sw_energy) <= bound
