"""Lane-vectorized batch simulation: N independent stimuli per pass.

The paper's characterization library and Monte-Carlo style sweeps run the
*same* netlist over many independent stimulus vectors.  PR 1's slot-indexed
compiled programs are shape-stable — every cycle executes the same
straight-line slot reads/writes — so this module lowers the same levelized
schedule a second time into *lane* form: the value store becomes one
``(n_slots, n_lanes)`` int64 NumPy array whose row ``i`` holds net ``i``'s
value in every lane, and every fused component becomes one masked elementwise
array expression.  One ``settle``/``clock_edge`` pass then advances all
``n_lanes`` independent simulations at once.

Sequential state is also lane-vectorized: registers, counters, accumulators
and the power-estimation components keep ``(n_lanes,)`` state arrays in small
holder objects bound into the generated code; memories and register files
keep ``(depth, n_lanes)`` storage with fancy-indexed reads and masked-scatter
writes, and FSM controllers keep per-lane state-index arrays with their
transition table unrolled into priority-ordered masked selects.  Components
that cannot be expressed as elementwise array code — subclassed or
user-defined types, and the ``sample_on_strobe_only`` power model — fall
back to a *lane-aware scalar* path: the component's own scalar
``evaluate``/``capture``/``commit`` runs once per lane with its private
per-lane state snapshot swapped in, so exotic components stay exactly as
correct as on the scalar backends, just without the speedup.

Nets wider than :data:`MAX_LANE_WIDTH` bits (one int64 lane with carry
headroom) but no wider than :data:`MAX_LIMB_WIDTH` use a *limb-array* store:
the net occupies ``ceil(width / LIMB_BITS)`` consecutive slots holding
little-endian 60-bit limbs, and the common wide operators (logic, mux,
concat/slice/extend, add/sub with limb carry/borrow chains, unsigned
compares, reductions, registers, constants) are emitted limb-wise — so wide
datapaths run on the vectorized batch path and lower into the fused
native/NumPy kernels like narrow ones.  Wide components outside that set
take the lane-scalar path with limb-assembled port values.  Only modules
with nets wider than :data:`MAX_LIMB_WIDTH` still drop every component onto
the lane-scalar path over an object-dtype store; in every mode batch
execution never changes results — only speed.

On top of the per-op NumPy execution here, :mod:`repro.sim.kernels` fuses a
module's whole settle/clock-edge into single kernels (C via cffi, or one
exec-compiled NumPy pass) — ``BatchSimulator(kernel_backend=...)`` selects
them, with automatic per-module fallback to this path.
"""

from __future__ import annotations

import copy
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.netlist.module import Module
from repro.netlist.nets import Net
from repro.sim.codegen import SourceEmitter, _mask, _signed
from repro.sim.scheduler import Schedule, module_mutation_key, schedule_for

#: widest net (in bits) representable in an int64 lane with headroom for the
#: +1-bit carry of fused adders; wider nets are split into 60-bit limbs
MAX_LANE_WIDTH = 60

#: bits per limb of the wide-net limb-array store (= MAX_LANE_WIDTH, so every
#: limb keeps the same carry headroom narrow lanes have)
LIMB_BITS = 60

#: all-ones mask of one full limb
_LIMB_MASK = (1 << LIMB_BITS) - 1

#: widest net (in bits) representable as int64 limbs (4x); modules with wider
#: nets use the object-dtype lane store with every component lane-scalar
MAX_LIMB_WIDTH = 240


def _limb_count(width: int) -> int:
    """Number of 60-bit limbs a ``width``-bit net occupies (1 when narrow)."""
    return 1 if width <= MAX_LANE_WIDTH else -(-width // LIMB_BITS)


def _limb_masks(width: int) -> List[int]:
    """Per-limb masks, little-endian; the top limb mask covers the tail bits."""
    n = _limb_count(width)
    return [_LIMB_MASK] * (n - 1) + [_mask(width - LIMB_BITS * (n - 1))]


class BatchCompilationError(Exception):
    """Raised when a module cannot be lowered to lane-vectorized code."""


def _popcount_u64(values: np.ndarray) -> np.ndarray:
    """Vectorized population count (used by parity-reduce)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(values.astype(np.uint64)).astype(np.int64)
    x = values.astype(np.uint64)
    x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
    x = (x & np.uint64(0x3333333333333333)) + ((x >> np.uint64(2)) & np.uint64(0x3333333333333333))
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((x * np.uint64(0x0101010101010101)) >> np.uint64(56)).astype(np.int64)


# ---------------------------------------------------------------------------
# Per-lane state holders for fused sequential components.
# ---------------------------------------------------------------------------


class LaneState:
    """(n_lanes,) state/pending arrays for a register-like component.

    ``reset`` refills the arrays *in place* (here and in every holder below):
    native kernels capture stable pointers to these arrays at bind time, so a
    reset must never re-allocate them.
    """

    __slots__ = ("state", "pending", "_n", "_reset_value")

    def __init__(self, n_lanes: int, reset_value: int = 0) -> None:
        self._n = n_lanes
        self._reset_value = reset_value
        self.state = np.full(n_lanes, reset_value, dtype=np.int64)
        self.pending = self.state.copy()

    def reset(self) -> None:
        self.state[...] = self._reset_value
        self.pending[...] = self._reset_value

    def unalias(self) -> None:
        """Split state/pending arrays re-aliased by the batch commit swap.

        The generated batch commit (``s.state = s.pending``) rebinds rather
        than copies, so after a plain-path run both names can refer to one
        array.  Kernels bind rows to fixed addresses, so they re-split the
        pairs before binding (values are preserved).
        """
        if self.pending is self.state:
            self.pending = self.state.copy()


class LanePairState:
    """Two named (n_lanes,) state/pending array pairs (strobe, aggregator)."""

    __slots__ = ("a", "b", "pending_a", "pending_b", "_n", "_reset_a", "_reset_b")

    def __init__(self, n_lanes: int, reset_a: int = 0, reset_b: int = 0) -> None:
        self._n = n_lanes
        self._reset_a = reset_a
        self._reset_b = reset_b
        self.a = np.full(n_lanes, reset_a, dtype=np.int64)
        self.b = np.full(n_lanes, reset_b, dtype=np.int64)
        self.pending_a = self.a.copy()
        self.pending_b = self.b.copy()

    def reset(self) -> None:
        self.a[...] = self._reset_a
        self.b[...] = self._reset_b
        self.pending_a[...] = self._reset_a
        self.pending_b[...] = self._reset_b

    def unalias(self) -> None:
        if self.pending_a is self.a:
            self.pending_a = self.a.copy()
        if self.pending_b is self.b:
            self.pending_b = self.b.copy()


class LanePowerState:
    """Per-lane state of a fused :class:`HardwarePowerModel`."""

    __slots__ = ("prev", "pending_prev", "accumulated", "output",
                 "pending_accumulated", "pending_output", "_n", "_n_ports")

    def __init__(self, n_lanes: int, n_ports: int) -> None:
        self._n = n_lanes
        self._n_ports = n_ports
        zeros = lambda: np.zeros(n_lanes, dtype=np.int64)  # noqa: E731
        self.prev = [zeros() for _ in range(n_ports)]
        self.pending_prev = [zeros() for _ in range(n_ports)]
        self.accumulated = zeros()
        self.output = zeros()
        self.pending_accumulated = zeros()
        self.pending_output = zeros()

    def reset(self) -> None:
        for array in (*self.prev, *self.pending_prev, self.accumulated,
                      self.output, self.pending_accumulated, self.pending_output):
            array[...] = 0

    def unalias(self) -> None:
        for index, (prev, pending) in enumerate(zip(self.prev, self.pending_prev)):
            if pending is prev:
                self.pending_prev[index] = prev.copy()
        if self.pending_accumulated is self.accumulated:
            self.pending_accumulated = self.accumulated.copy()
        if self.pending_output is self.output:
            self.pending_output = self.output.copy()


class LaneMemoryState:
    """Per-lane storage array of a fused memory / register file.

    ``mem`` is ``(depth, n_lanes)``: column ``i`` is lane ``i``'s private copy
    of the storage contents; committed writes are a boolean-masked scatter
    (one write per lane at most, and lanes are distinct columns, so scattered
    writes can never collide).
    """

    __slots__ = ("mem", "read_reg", "pending_read", "w_en", "w_addr", "w_data",
                 "_n", "_initial")

    def __init__(self, n_lanes: int, initial) -> None:
        self._n = n_lanes
        self._initial = np.asarray(initial, dtype=np.int64)
        self.mem = np.tile(self._initial[:, None], (1, n_lanes))
        self.read_reg = np.zeros(n_lanes, dtype=np.int64)
        self.pending_read = np.zeros(n_lanes, dtype=np.int64)
        self.w_en = np.zeros(n_lanes, dtype=np.int64)
        self.w_addr = np.zeros(n_lanes, dtype=np.int64)
        self.w_data = np.zeros(n_lanes, dtype=np.int64)

    def reset(self) -> None:
        self.mem[...] = self._initial[:, None]
        for array in (self.read_reg, self.pending_read, self.w_en,
                      self.w_addr, self.w_data):
            array[...] = 0

    def unalias(self) -> None:
        if self.pending_read is self.read_reg:
            self.pending_read = self.read_reg.copy()


class LaneFSMState:
    """Per-lane state-index array of a fused :class:`FSMController`."""

    __slots__ = ("state", "pending", "_n", "_reset_index")

    def __init__(self, n_lanes: int, reset_index: int) -> None:
        self._n = n_lanes
        self._reset_index = reset_index
        self.state = np.full(n_lanes, reset_index, dtype=np.int64)
        self.pending = self.state.copy()

    def reset(self) -> None:
        self.state[...] = self._reset_index
        self.pending[...] = self._reset_index

    def unalias(self) -> None:
        if self.pending is self.state:
            self.pending = self.state.copy()


class LaneLimbState:
    """Per-lane limb arrays (little-endian 60-bit limbs) of a wide register.

    ``state``/``pending`` are *lists* of ``(n_lanes,)`` int64 arrays — one per
    limb — following the :class:`LanePowerState` list-field idiom: captures
    rebind whole limb entries (always to fresh arrays), and the commit swaps
    the lists (``state = pending`` then ``pending = list(state)``), which the
    kernel IR extractor lowers to per-row copies.
    """

    __slots__ = ("state", "pending", "_n", "_reset_limbs")

    def __init__(self, n_lanes: int, reset_value: int, n_limbs: int) -> None:
        self._n = n_lanes
        self._reset_limbs = [
            (int(reset_value) >> (LIMB_BITS * k)) & _LIMB_MASK
            for k in range(n_limbs)
        ]
        self.state = [
            np.full(n_lanes, limb, dtype=np.int64) for limb in self._reset_limbs
        ]
        self.pending = [array.copy() for array in self.state]

    def reset(self) -> None:
        for k, limb in enumerate(self._reset_limbs):
            self.state[k][...] = limb
            self.pending[k][...] = limb

    def unalias(self) -> None:
        for k, (state, pending) in enumerate(zip(self.state, self.pending)):
            if pending is state:
                self.pending[k] = state.copy()


class LaneComponent:
    """Lane-aware scalar fallback: per-lane evaluate/capture with private state.

    The component's own scalar methods execute once per lane; for sequential
    components each lane owns a snapshot of the component's underscore state
    attributes (the repo-wide idiom: mutable simulation state lives in
    ``_``-prefixed attributes), swapped in before and re-captured after every
    lane, so N lanes behave exactly like N independent scalar simulations.
    """

    def __init__(self, component, n_lanes: int) -> None:
        self.component = component
        self.n_lanes = n_lanes
        self.in_pairs: List[Tuple[str, int]] = []
        self.out_pairs: List[Tuple[str, int]] = []
        #: limb-store ports: (name, first slot, n_limbs) with n_limbs > 1
        self.in_wide: List[Tuple[str, int, int]] = []
        self.out_wide: List[Tuple[str, int, int]] = []
        self.sequential = bool(component.is_sequential)
        self.lane_states: Optional[List[Dict[str, object]]] = None

    def bind(self, slot_of: Dict[Net, int], limbs_of: Optional[Dict[Net, int]] = None) -> None:
        component = self.component
        limbs_of = limbs_of or {}
        self.in_pairs, self.in_wide = [], []
        self.out_pairs, self.out_wide = [], []
        for ports, pairs, wide in (
            (component.input_ports, self.in_pairs, self.in_wide),
            (component.output_ports, self.out_pairs, self.out_wide),
        ):
            for p in ports:
                if p.net is None:
                    continue
                n_limbs = limbs_of.get(p.net, 1)
                if n_limbs == 1:
                    pairs.append((p.name, slot_of[p.net]))
                else:
                    wide.append((p.name, slot_of[p.net], n_limbs))

    def _gather_wide(self, v: np.ndarray, lane: int, inputs: Dict[str, int]) -> None:
        for name, slot, n_limbs in self.in_wide:
            inputs[name] = sum(
                int(v[slot + k, lane]) << (LIMB_BITS * k) for k in range(n_limbs)
            )

    def _scatter_wide(self, v: np.ndarray, lane: int, outputs) -> None:
        for name, slot, n_limbs in self.out_wide:
            value = int(outputs[name])
            for k in range(n_limbs):
                v[slot + k, lane] = (value >> (LIMB_BITS * k)) & _LIMB_MASK

    # ----------------------------------------------------------- lane state
    def _snapshot_isolated(self) -> Dict[str, object]:
        """Initial per-lane state: deep-copied so lanes share no mutable
        containers, however deeply nested a user component's state is."""
        return {
            key: copy.deepcopy(value)
            for key, value in self.component.__dict__.items()
            if key.startswith("_")
        }

    def reset(self) -> None:
        if self.sequential:
            self.component.reset()
            self.lane_states = [self._snapshot_isolated() for _ in range(self.n_lanes)]

    # ------------------------------------------------------------ execution
    def evaluate(self, v: np.ndarray) -> None:
        """Combinational settle contribution, lane by lane."""
        component = self.component
        attrs = component.__dict__
        states = self.lane_states
        evaluate = component.evaluate
        for lane in range(self.n_lanes):
            if states is not None:
                attrs.update(states[lane])
            inputs = {name: int(v[slot, lane]) for name, slot in self.in_pairs}
            if self.in_wide:
                self._gather_wide(v, lane, inputs)
            outputs = evaluate(inputs)
            for name, slot in self.out_pairs:
                v[slot, lane] = outputs[name]
            if self.out_wide:
                self._scatter_wide(v, lane, outputs)

    def state_outputs(self, v: np.ndarray) -> None:
        """State-source outputs (evaluate with empty inputs), lane by lane."""
        component = self.component
        attrs = component.__dict__
        states = self.lane_states
        evaluate = component.evaluate
        for lane in range(self.n_lanes):
            if states is not None:
                attrs.update(states[lane])
            outputs = evaluate({})
            for name, slot in self.out_pairs:
                v[slot, lane] = outputs[name]
            if self.out_wide:
                self._scatter_wide(v, lane, outputs)

    def clock_edge(self, v: np.ndarray) -> None:
        """Per-lane capture + commit (nets are not touched, so interleaving
        capture/commit per lane is equivalent to the two-phase scalar order).

        The post-edge re-snapshot shares container refs with the component:
        in-place container mutations (e.g. a memory write) already happened on
        this lane's own containers, and containers *replaced* during
        capture/commit are freshly created — so lanes stay disjoint without
        per-edge container copies.
        """
        component = self.component
        attrs = component.__dict__
        states = self.lane_states
        in_pairs = self.in_pairs
        capture = component.capture
        commit = component.commit
        for lane in range(self.n_lanes):
            attrs.update(states[lane])
            inputs = {name: int(v[slot, lane]) for name, slot in in_pairs}
            if self.in_wide:
                self._gather_wide(v, lane, inputs)
            capture(inputs)
            commit()
            states[lane] = {k: val for k, val in attrs.items() if k[0] == "_"}


# ---------------------------------------------------------------------------
# Batch emitters.  Expressions operate on v rows ((n_lanes,) views); writing
# through ``v[slot] = ...`` copies into the row, so row targets never alias.
# Holder-attribute targets rebind references instead — any RHS that could be
# a bare row view gets ``+ 0`` appended to force a fresh array.
# ---------------------------------------------------------------------------


def _b_adder(em: SourceEmitter, c, holders=None) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    terms = f"{a} + {b}"
    if c.with_carry_in:
        cin = em.opt(c, "cin", 0)
        if cin != "0":
            terms += f" + {cin}"
    y = em.out(c, "y")
    cout = em.out(c, "cout") if c.with_carry_out else None
    mask = _mask(c.width)
    if cout is not None:
        em.emit(f"_t = {terms}")
        if y is not None:
            em.emit(f"v[{y}] = _t & {mask}")
        em.emit(f"v[{cout}] = (_t >> {c.width}) & 1")
    elif y is not None:
        em.emit(f"v[{y}] = ({terms}) & {mask}")
    return True


def _b_subtractor(em: SourceEmitter, c, holders=None) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    y = em.out(c, "y")
    borrow = em.out(c, "borrow") if c.with_borrow_out else None
    mask = _mask(c.width)
    if borrow is not None:
        em.emit(f"_t = {a} - {b}")
        if y is not None:
            em.emit(f"v[{y}] = _t & {mask}")
        em.emit(f"v[{borrow}] = _t < 0")
    elif y is not None:
        em.emit(f"v[{y}] = ({a} - {b}) & {mask}")
    return True


def _b_addsub(em: SourceEmitter, c, holders=None) -> bool:
    a, b, sub = em.req(c, "a"), em.req(c, "b"), em.req(c, "sub")
    if a is None or b is None or sub is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        mask = _mask(c.width)
        em.emit(f"v[{y}] = _where({sub} & 1, {a} - {b}, {a} + {b}) & {mask}")
    return True


def _b_multiplier(em: SourceEmitter, c, holders=None) -> bool:
    if c.width_a + c.width_b > MAX_LANE_WIDTH + 2:
        return False  # product could overflow an int64 lane
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    mask = _mask(c.width_y)
    if c.signed:
        a = _signed(a, c.width_a)
        b = _signed(b, c.width_b)
    em.emit(f"v[{y}] = ({a} * {b}) & {mask}")
    return True


def _b_comparator(em: SourceEmitter, c, holders=None) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    if c.signed:
        a = _signed(a, c.width)
        b = _signed(b, c.width)
    em.emit(f"_a = {a}")
    em.emit(f"_b = {b}")
    for port, op in (("lt", "<"), ("eq", "=="), ("gt", ">")):
        slot = em.out(c, port)
        if slot is not None:
            em.emit(f"v[{slot}] = _a {op} _b")
    return True


def _b_absval(em: SourceEmitter, c, holders=None) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        em.emit(f"v[{y}] = _abs({_signed(a, c.width)})")
    return True


def _b_saturator(em: SourceEmitter, c, holders=None) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    if c.signed:
        lo = -(1 << (c.width_out - 1))
        hi = (1 << (c.width_out - 1)) - 1
        mask = _mask(c.width_out)
        lo_enc = lo & mask
        em.emit(f"_t = {_signed(a, c.width_in)}")
        em.emit(f"v[{y}] = _where(_t < {lo}, {lo_enc}, _where(_t > {hi}, {hi}, _t & {mask}))")
    else:
        hi = _mask(c.width_out)
        em.emit(f"v[{y}] = _minimum({a}, {hi})")
    return True


def _b_shifter_const(em: SourceEmitter, c, holders=None) -> bool:
    if c.direction == "left" and c.width + c.amount > MAX_LANE_WIDTH + 2:
        return False
    if c.direction != "left" and c.amount > 62:
        return False
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    mask = _mask(c.width)
    if c.direction == "left":
        em.emit(f"v[{y}] = ({a} << {c.amount}) & {mask}")
    elif c.arithmetic:
        em.emit(f"v[{y}] = ({_signed(a, c.width)} >> {c.amount}) & {mask}")
    else:
        em.emit(f"v[{y}] = {a} >> {c.amount}")
    return True


def _b_shifter_var(em: SourceEmitter, c, holders=None) -> bool:
    amount_port = c.ports.get("amount")
    if amount_port is None:
        return False
    max_amount = (1 << amount_port.width) - 1
    if c.direction == "left" and c.width + max_amount > MAX_LANE_WIDTH + 2:
        return False
    if max_amount > 62:
        return False  # numpy shifts past the word size are undefined
    a, amount = em.req(c, "a"), em.req(c, "amount")
    if a is None or amount is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    mask = _mask(c.width)
    if c.direction == "left":
        em.emit(f"v[{y}] = ({a} << {amount}) & {mask}")
    elif c.arithmetic:
        em.emit(f"v[{y}] = ({_signed(a, c.width)} >> {amount}) & {mask}")
    else:
        em.emit(f"v[{y}] = {a} >> {amount}")
    return True


def _b_mux(em: SourceEmitter, c, holders=None) -> bool:
    sel = em.req(c, "sel")
    if sel is None:
        return False
    rows = []
    for i in range(c.n_inputs):
        expr = em.req(c, f"d{i}")
        if expr is None:
            return False
        rows.append(expr)
    y = em.out(c, "y")
    if y is None:
        return True
    if c.n_inputs == 2:
        em.emit(f"v[{y}] = _where({sel} & 1, {rows[1]}, {rows[0]})")
    else:
        em.emit(f"_s = _minimum({sel}, {c.n_inputs - 1})")
        em.emit(f"v[{y}] = _stack(({', '.join(rows)}))[_s, _lidx]")
    return True


_B_LOGIC_EXPRS = {
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "nand": "({a} & {b}) ^ {m}",
    "nor": "({a} | {b}) ^ {m}",
    "xnor": "({a} ^ {b}) ^ {m}",
}


def _b_logic(em: SourceEmitter, c, holders=None) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        em.emit(f"v[{y}] = {_B_LOGIC_EXPRS[c.op].format(a=a, b=b, m=_mask(c.width))}")
    return True


def _b_not(em: SourceEmitter, c, holders=None) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        em.emit(f"v[{y}] = {a} ^ {_mask(c.width)}")
    return True


def _b_reduce(em: SourceEmitter, c, holders=None) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    if c.op == "and":
        em.emit(f"v[{y}] = {a} == {_mask(c.width)}")
    elif c.op == "or":
        em.emit(f"v[{y}] = {a} != 0")
    else:
        em.emit(f"v[{y}] = _popcount({a}) & 1")
    return True


def _b_concat(em: SourceEmitter, c, holders=None) -> bool:
    parts = []
    shift = 0
    for i, width in enumerate(c.widths):
        expr = em.req(c, f"i{i}")
        if expr is None:
            return False
        parts.append(expr if shift == 0 else f"({expr} << {shift})")
        shift += width
    y = em.out(c, "y")
    if y is not None:
        em.emit(f"v[{y}] = " + " | ".join(parts))
    return True


def _b_slice(em: SourceEmitter, c, holders=None) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        shifted = a if c.low == 0 else f"({a} >> {c.low})"
        em.emit(f"v[{y}] = {shifted} & {_mask(c.width_out)}")
    return True


def _b_extend(em: SourceEmitter, c, holders=None) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        if c.signed:
            em.emit(f"v[{y}] = {_signed(a, c.width_in)} & {_mask(c.width_out)}")
        else:
            em.emit(f"v[{y}] = {a}")
    return True


def _b_decoder(em: SourceEmitter, c, holders=None) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        em.emit(f"v[{y}] = _one << {a}")
    return True


def _b_rom(em: SourceEmitter, c, holders=None) -> bool:
    y = em.out(c, "rdata")
    if y is not None:
        uid = em.uid()
        contents = em.bind(f"_rom{uid}", np.asarray(c.contents, dtype=np.int64))
        addr = em.opt(c, "addr", 0)
        em.emit(f"v[{y}] = {contents}[{addr} % {c.depth}]")
    return True


def _lane_addr(expr: str, depth: int) -> str:
    """Per-lane address expression, coerced to an array even when constant."""
    return f"(_lidx * 0 + ({expr}) % {depth})"


def _b_regfile_read(em: SourceEmitter, c, holders) -> bool:
    name = em.bind(f"_s{em.uid()}", holders[c])
    for i in range(c.n_read_ports):
        slot = em.out(c, f"rdata{i}")
        if slot is not None:
            addr = em.opt(c, f"raddr{i}", 0)
            em.emit(f"v[{slot}] = {name}.mem[{_lane_addr(addr, c.depth)}, _lidx]")
    return True


def _b_memory_async_read(em: SourceEmitter, c, holders) -> bool:
    if c.sync_read:
        return False
    slot = em.out(c, "rdata")
    if slot is not None:
        name = em.bind(f"_s{em.uid()}", holders[c])
        addr = em.opt(c, "addr", 0)
        em.emit(f"v[{slot}] = {name}.mem[{_lane_addr(addr, c.depth)}, _lidx]")
    return True


# --------------------------------------------------------- state sources


def _b_state_register_like(em: SourceEmitter, c, holders) -> bool:
    slot = em.out(c, "q")
    if slot is not None:
        name = em.bind(f"_s{em.uid()}", holders[c])
        em.emit(f"v[{slot}] = {name}.state")
    return True


def _b_state_constant(em: SourceEmitter, c, holders) -> bool:
    slot = em.out(c, "y")
    if slot is not None:
        em.emit(f"v[{slot}] = {c.value}")
    return True


def _b_state_memory(em: SourceEmitter, c, holders) -> bool:
    if not c.sync_read:
        return False
    slot = em.out(c, "rdata")
    if slot is not None:
        name = em.bind(f"_s{em.uid()}", holders[c])
        em.emit(f"v[{slot}] = {name}.read_reg")
    return True


def _b_state_fsm(em: SourceEmitter, c, holders) -> bool:
    from repro.netlist.signals import mask_value

    outs = em.connected_outputs(c)
    if not outs:
        return True
    name = em.bind(f"_s{em.uid()}", holders[c])
    for port, slot in outs:
        table = [
            mask_value(c.moore_outputs.get(state, {}).get(port, 0), c.output_widths[port])
            for state in c.states
        ]
        tname = em.bind(f"_ft{em.uid()}", np.asarray(table, dtype=np.int64))
        em.emit(f"v[{slot}] = {tname}[{name}.state]")
    return True


def _b_state_power_model(em: SourceEmitter, c, holders) -> bool:
    slot = em.out(c, "energy")
    if slot is not None:
        name = em.bind(f"_s{em.uid()}", holders[c])
        em.emit(f"v[{slot}] = {name}.output")
    return True


def _b_state_aggregator(em: SourceEmitter, c, holders) -> bool:
    slot = em.out(c, "total")
    if slot is not None:
        name = em.bind(f"_s{em.uid()}", holders[c])
        em.emit(f"v[{slot}] = {name}.a")
    return True


def _b_state_strobe(em: SourceEmitter, c, holders) -> bool:
    slot = em.out(c, "strobe")
    if slot is not None:
        name = em.bind(f"_s{em.uid()}", holders[c])
        em.emit(f"v[{slot}] = {name}.b")
    return True


# --------------------------------------------------------------- captures


def _b_capture_register(em: SourceEmitter, c, holders) -> bool:
    d = em.req(c, "d")
    if d is None:
        return False
    s = em.bind(f"_s{em.uid()}", holders[c])
    clr = em.req(c, "clear") if c.has_clear else None
    en = em.req(c, "en") if c.has_enable else None
    if clr is not None and en is not None:
        em.emit(
            f"{s}.pending = _where({clr} & 1, {c.reset_value}, "
            f"_where({en} & 1, {d}, {s}.state))"
        )
    elif clr is not None:
        em.emit(f"{s}.pending = _where({clr} & 1, {c.reset_value}, {d})")
    elif en is not None:
        em.emit(f"{s}.pending = _where({en} & 1, {d}, {s}.state)")
    else:
        em.emit(f"{s}.pending = {d} + 0")
    return True


def _b_capture_counter(em: SourceEmitter, c, holders) -> bool:
    load = em.req(c, "load") if c.has_load else None
    d = em.req(c, "d") if c.has_load else None
    if load is not None and d is None:
        return False
    en = em.req(c, "en")
    s = em.bind(f"_s{em.uid()}", holders[c])
    if en is None and load is None:
        # en unconnected (reads as 0) and no load: the counter never moves
        em.emit(f"{s}.pending = {s}.state + 0")
        return True
    em.emit(f"_t = {s}.state + 1")
    if c.wrap_at is not None:
        em.emit(f"_t = _where(_t >= {c.wrap_at}, 0, _t)")
    em.emit(f"_t = _t & {_mask(c.width)}")
    counted = f"_where({en} & 1, _t, {s}.state)" if en is not None else f"{s}.state + 0"
    if load is not None:
        em.emit(f"{s}.pending = _where({load} & 1, {d} & {_mask(c.width)}, {counted})")
    else:
        em.emit(f"{s}.pending = {counted}")
    return True


def _b_capture_accumulator(em: SourceEmitter, c, holders) -> bool:
    d = em.req(c, "d")
    en = em.req(c, "en")
    if en is not None and d is None:
        return False
    s = em.bind(f"_s{em.uid()}", holders[c])
    clr = em.req(c, "clear")
    add = f"({s}.state + {d}) & {_mask(c.width)}"
    if clr is not None and en is not None:
        em.emit(f"{s}.pending = _where({clr} & 1, 0, _where({en} & 1, {add}, {s}.state))")
    elif clr is not None:
        em.emit(f"{s}.pending = _where({clr} & 1, 0, {s}.state)")
    elif en is not None:
        em.emit(f"{s}.pending = _where({en} & 1, {add}, {s}.state)")
    else:
        em.emit(f"{s}.pending = {s}.state + 0")
    return True


def _b_capture_aggregator(em: SourceEmitter, c, holders) -> bool:
    s = em.bind(f"_s{em.uid()}", holders[c])
    terms = [em.req(c, f"e{i}") for i in range(c.n_inputs)]
    total = " + ".join(t for t in terms if t is not None) or "0"
    clr = em.req(c, "clear")
    add = f"({s}.a + {total}) & {_mask(c.total_width)}"
    if clr is not None:
        em.emit(f"{s}.pending_a = _where({clr} & 1, 0, {add})")
    else:
        em.emit(f"{s}.pending_a = {add}")
    return True


def _b_capture_fsm(em: SourceEmitter, c, holders) -> bool:
    s = em.bind(f"_s{em.uid()}", holders[c])
    em.emit(f"_st = {s}.state")
    em.emit("_pend = _st + 0")
    em.emit("_open = _st >= 0")  # all-True: no transition matched yet
    for transition in c.transitions:
        src = c.state_index[transition.source]
        tgt = c.state_index[transition.target]
        conds = [f"(_st == {src})", "_open"]
        for guard in transition.guards:
            expr = em.req(c, guard.signal)
            if expr is None:
                expr = "0"  # unconnected status input reads as 0
            if guard.signed:
                expr = _signed(expr, c.input_widths[guard.signal])
            conds.append(f"(({expr}) {guard.op} {guard.value})")
        em.emit(f"_c = {' & '.join(conds)}")
        em.emit(f"_pend = _where(_c, {tgt}, _pend)")
        em.emit("_open = _open & ~_c")
    em.emit(f"{s}.pending = _pend")
    return True


def _b_capture_memory(em: SourceEmitter, c, holders) -> bool:
    s = em.bind(f"_s{em.uid()}", holders[c])
    addr = em.opt(c, "addr", 0)
    we = em.req(c, "we")
    wdata = em.opt(c, "wdata", 0)
    em.emit(f"_ad = {_lane_addr(addr, c.depth)}")
    em.emit(f"{s}.w_addr = _ad")
    em.emit(f"{s}.w_en = {we} & 1" if we is not None else f"{s}.w_en = _ad * 0")
    em.emit(f"{s}.w_data = _ad * 0 + ({wdata})")
    # read-before-write semantics for the registered read port
    em.emit(f"{s}.pending_read = {s}.mem[_ad, _lidx]")
    return True


def _b_capture_regfile(em: SourceEmitter, c, holders) -> bool:
    s = em.bind(f"_s{em.uid()}", holders[c])
    we = em.req(c, "we")
    waddr = em.opt(c, "waddr", 0)
    wdata = em.opt(c, "wdata", 0)
    em.emit(f"_ad = {_lane_addr(waddr, c.depth)}")
    em.emit(f"{s}.w_addr = _ad")
    em.emit(f"{s}.w_en = {we} & 1" if we is not None else f"{s}.w_en = _ad * 0")
    em.emit(f"{s}.w_data = _ad * 0 + ({wdata})")
    return True


def _b_capture_power_model(em: SourceEmitter, c, holders) -> bool:
    if c.sample_on_strobe_only:
        return False  # paper-literal sampling stays on the lane-scalar path
    uid = em.uid()
    s = em.bind(f"_s{uid}", holders[c])
    strobe = em.opt(c, "strobe", 0)
    em.emit(f"_e = {c.base_code}")
    for index, (port_name, in_name, _, tables) in enumerate(c._chunked):
        cur = em.opt(c, in_name, 0)
        em.emit(f"_t = {s}.prev[{index}] ^ {cur}")
        em.emit(f"{s}.pending_prev[{index}] = {cur} + 0")
        for chunk, table in enumerate(tables):
            tname = em.bind(f"_tb{uid}_{em.uid()}", np.asarray(table, dtype=np.int64))
            if chunk == 0:
                index_expr = "_t" if len(tables) == 1 else "_t & 255"
            else:
                index_expr = f"(_t >> {8 * chunk}) & 255"
            # table[0] is always 0, so charging untoggled lanes adds nothing —
            # the vectorized form of the scalar emitter's `if _t:` guard
            em.emit(f"_e = _e + {tname}[{index_expr}]")
    em.emit(f"_a = {s}.accumulated + _e")
    em.emit(f"_sb = {strobe} & 1")
    em.emit(f"{s}.pending_output = _where(_sb, _a & {_mask(c.energy_width)}, 0)")
    em.emit(f"{s}.pending_accumulated = _where(_sb, 0, _a)")
    return True


def _b_capture_strobe(em: SourceEmitter, c, holders) -> bool:
    s = em.bind(f"_s{em.uid()}", holders[c])
    en = em.req(c, "enable")
    if c.period == 1:
        count, strobe = "0", "1"
    else:
        em.emit(f"_t = {s}.a + 1")
        em.emit(f"_t = _where(_t >= {c.period}, 0, _t)")
        count, strobe = "_t", f"(_t == {c.period - 1}) * 1"
    if en is not None:
        em.emit(f"_en = {en} & 1")
        em.emit(f"{s}.pending_a = _where(_en, {count}, {s}.a)")
        em.emit(f"{s}.pending_b = _where(_en, {strobe}, 0)")
    else:
        # an unconnected enable defaults to 1 in PowerStrobeGenerator.capture
        em.emit(f"{s}.pending_a = {count} + {s}.a * 0")
        em.emit(f"{s}.pending_b = {strobe} + {s}.b * 0")
    return True


# ---------------------------------------------------------------- commits


def _b_commit_state(em: SourceEmitter, c, holders) -> None:
    s = em.bind(f"_s{em.uid()}", holders[c])
    em.emit(f"{s}.state = {s}.pending")


def _b_commit_aggregator(em: SourceEmitter, c, holders) -> None:
    s = em.bind(f"_s{em.uid()}", holders[c])
    em.emit(f"{s}.a = {s}.pending_a")


def _b_commit_strobe(em: SourceEmitter, c, holders) -> None:
    s = em.bind(f"_s{em.uid()}", holders[c])
    em.emit(f"{s}.a = {s}.pending_a")
    em.emit(f"{s}.b = {s}.pending_b")


def _b_commit_memory(em: SourceEmitter, c, holders) -> None:
    s = em.bind(f"_s{em.uid()}", holders[c])
    if c.sync_read:
        em.emit(f"{s}.read_reg = {s}.pending_read")
    if c.ports["we"].net is not None:
        em.emit(f"_msk = {s}.w_en != 0")
        em.emit(f"{s}.mem[{s}.w_addr[_msk], _lidx[_msk]] = {s}.w_data[_msk]")


def _b_commit_regfile(em: SourceEmitter, c, holders) -> None:
    s = em.bind(f"_s{em.uid()}", holders[c])
    if c.ports["we"].net is not None:
        em.emit(f"_msk = {s}.w_en != 0")
        em.emit(f"{s}.mem[{s}.w_addr[_msk], _lidx[_msk]] = {s}.w_data[_msk]")


def _b_commit_power_model(em: SourceEmitter, c, holders) -> None:
    s = em.bind(f"_s{em.uid()}", holders[c])
    em.emit(f"{s}.prev = {s}.pending_prev")
    em.emit(f"{s}.pending_prev = list({s}.prev)")
    em.emit(f"{s}.accumulated = {s}.pending_accumulated")
    em.emit(f"{s}.output = {s}.pending_output")


# ---------------------------------------------------------------------------
# Limb-store emitters (components touching nets wider than MAX_LANE_WIDTH).
# A wide net occupies consecutive slots of little-endian 60-bit limbs; every
# emitted limb expression is masked *before* any left shift, so intermediate
# values never exceed 62 bits and the generated code stays exact on the int64
# batch path and in both fused kernels.
# ---------------------------------------------------------------------------


def _l_in(em: SourceEmitter, c, port_name: str) -> Optional[Tuple[List[str], int]]:
    """Per-limb slot expressions plus net width of an input; None if unbound."""
    port = c.ports.get(port_name)
    if port is None or port.net is None:
        return None
    slot = em.slot_of[port.net]
    n_limbs = em.limbs_of.get(port.net, 1)
    return [f"v[{slot + k}]" for k in range(n_limbs)], port.net.width


def _l_out(em: SourceEmitter, c, port_name: str) -> Optional[Tuple[List[int], int]]:
    """Per-limb slots plus net width of an output; None when unconnected."""
    port = c.ports.get(port_name)
    if port is None or port.net is None:
        return None
    slot = em.slot_of[port.net]
    n_limbs = em.limbs_of.get(port.net, 1)
    return [slot + k for k in range(n_limbs)], port.net.width


def _l_gather(
    em: SourceEmitter,
    items: List[Tuple[str, int, int]],
    out_slots: List[int],
    out_width: int,
) -> None:
    """Assemble output limbs from bit-range contributions.

    ``items`` are ``(limb expression, bit offset in the output, bit width)``
    triples; offsets may be negative (slicing discards low bits).  Shift
    amounts stay under :data:`LIMB_BITS` and every left-shift operand is
    pre-masked, so nothing can overflow an int64.
    """
    for j, slot in enumerate(out_slots):
        lo = LIMB_BITS * j
        hi = min(out_width, lo + LIMB_BITS)
        parts = []
        for expr, offset, width in items:
            start, end = max(offset, lo), min(offset + width, hi)
            if start >= end:
                continue
            if offset >= lo:
                kept = f"({expr} & {_mask(end - offset)})" if end - offset < width else expr
                part = f"({kept} << {offset - lo})" if offset > lo else kept
            else:
                part = f"(({expr} >> {lo - offset}) & {_mask(end - start)})"
            parts.append(part)
        em.emit(f"v[{slot}] = " + (" | ".join(parts) if parts else "0"))


def _bl_logic(em: SourceEmitter, c, holders=None) -> bool:
    a, b = _l_in(em, c, "a"), _l_in(em, c, "b")
    if a is None or b is None or len(a[0]) != len(b[0]):
        return False
    y = _l_out(em, c, "y")
    if y is None:
        return True
    masks = _limb_masks(c.width)
    for k, slot in enumerate(y[0]):
        expr = _B_LOGIC_EXPRS[c.op].format(a=a[0][k], b=b[0][k], m=masks[k])
        em.emit(f"v[{slot}] = {expr}")
    return True


def _bl_not(em: SourceEmitter, c, holders=None) -> bool:
    a = _l_in(em, c, "a")
    if a is None:
        return False
    y = _l_out(em, c, "y")
    if y is None:
        return True
    masks = _limb_masks(c.width)
    for k, slot in enumerate(y[0]):
        em.emit(f"v[{slot}] = {a[0][k]} ^ {masks[k]}")
    return True


def _bl_adder(em: SourceEmitter, c, holders=None) -> bool:
    a, b = _l_in(em, c, "a"), _l_in(em, c, "b")
    if a is None or b is None or len(a[0]) != len(b[0]):
        return False
    y = _l_out(em, c, "y")
    cout = em.out(c, "cout") if c.with_carry_out else None
    n_limbs = _limb_count(c.width)
    masks = _limb_masks(c.width)
    top_bits = c.width - LIMB_BITS * (n_limbs - 1)
    carry = None
    if c.with_carry_in:
        cin = em.opt(c, "cin", 0)
        if cin != "0":
            carry = f"({cin} & 1)"
    for k in range(n_limbs):
        terms = f"{a[0][k]} + {b[0][k]}"
        if carry is not None:
            terms += f" + {carry}"
        last = k == n_limbs - 1
        if last and cout is None:
            if y is not None:
                em.emit(f"v[{y[0][k]}] = ({terms}) & {masks[k]}")
            break
        em.emit(f"_t = {terms}")
        if y is not None:
            em.emit(f"v[{y[0][k]}] = _t & {masks[k]}")
        if last:
            em.emit(f"v[{cout}] = (_t >> {top_bits}) & 1")
        else:
            em.emit(f"_cy = _t >> {LIMB_BITS}")
            carry = "_cy"
    return True


def _bl_subtractor(em: SourceEmitter, c, holders=None) -> bool:
    a, b = _l_in(em, c, "a"), _l_in(em, c, "b")
    if a is None or b is None or len(a[0]) != len(b[0]):
        return False
    y = _l_out(em, c, "y")
    borrow_out = em.out(c, "borrow") if c.with_borrow_out else None
    n_limbs = _limb_count(c.width)
    masks = _limb_masks(c.width)
    borrow = None
    for k in range(n_limbs):
        terms = f"{a[0][k]} - {b[0][k]}"
        if borrow is not None:
            terms += f" - {borrow}"
        last = k == n_limbs - 1
        if last and y is None and borrow_out is None:
            break
        em.emit(f"_t = {terms}")
        if y is not None:
            # a negative difference wraps exactly under the limb mask
            em.emit(f"v[{y[0][k]}] = _t & {masks[k]}")
        if last:
            if borrow_out is not None:
                em.emit(f"v[{borrow_out}] = _t < 0")
        else:
            em.emit("_bw = (_t < 0) * 1")
            borrow = "_bw"
    return True


def _bl_comparator(em: SourceEmitter, c, holders=None) -> bool:
    if c.signed:
        return False  # signed wide compares stay on the lane-scalar path
    a, b = _l_in(em, c, "a"), _l_in(em, c, "b")
    if a is None or b is None or len(a[0]) != len(b[0]):
        return False
    outs = [(port, em.out(c, port)) for port in ("lt", "eq", "gt")]
    if all(slot is None for _, slot in outs):
        return True
    n_limbs = len(a[0])
    top = n_limbs - 1
    # unsigned lexicographic compare, most-significant limb first
    em.emit(f"_lt = ({a[0][top]} < {b[0][top]}) * 1")
    em.emit(f"_gt = ({a[0][top]} > {b[0][top]}) * 1")
    em.emit(f"_e = ({a[0][top]} == {b[0][top]}) * 1")
    for k in range(top - 1, -1, -1):
        em.emit(f"_lt = _lt | (_e & ({a[0][k]} < {b[0][k]}))")
        em.emit(f"_gt = _gt | (_e & ({a[0][k]} > {b[0][k]}))")
        em.emit(f"_e = _e & ({a[0][k]} == {b[0][k]})")
    for port, var in (("lt", "_lt"), ("eq", "_e"), ("gt", "_gt")):
        slot = em.out(c, port)
        if slot is not None:
            em.emit(f"v[{slot}] = {var}")
    return True


def _bl_mux(em: SourceEmitter, c, holders=None) -> bool:
    sel = em.req(c, "sel")
    if sel is None:
        return False
    rows = []
    for i in range(c.n_inputs):
        r = _l_in(em, c, f"d{i}")
        if r is None:
            return False
        rows.append(r[0])
    y = _l_out(em, c, "y")
    if y is None:
        return True
    n_limbs = len(y[0])
    if any(len(row) != n_limbs for row in rows):
        return False
    if c.n_inputs == 2:
        for k, slot in enumerate(y[0]):
            em.emit(f"v[{slot}] = _where({sel} & 1, {rows[1][k]}, {rows[0][k]})")
    else:
        em.emit(f"_s = _minimum({sel}, {c.n_inputs - 1})")
        for k, slot in enumerate(y[0]):
            limb_rows = ", ".join(row[k] for row in rows)
            em.emit(f"v[{slot}] = _stack(({limb_rows}))[_s, _lidx]")
    return True


def _bl_reduce(em: SourceEmitter, c, holders=None) -> bool:
    a = _l_in(em, c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    masks = _limb_masks(c.width)
    if c.op == "and":
        terms = " & ".join(
            f"({expr} == {masks[k]})" for k, expr in enumerate(a[0])
        )
        em.emit(f"v[{y}] = {terms}")
    elif c.op == "or":
        em.emit(f"v[{y}] = ({' | '.join(a[0])}) != 0")
    else:
        terms = " + ".join(f"_popcount({expr})" for expr in a[0])
        em.emit(f"v[{y}] = ({terms}) & 1")
    return True


def _bl_concat(em: SourceEmitter, c, holders=None) -> bool:
    items: List[Tuple[str, int, int]] = []
    shift = 0
    for i, width in enumerate(c.widths):
        r = _l_in(em, c, f"i{i}")
        if r is None:
            return False
        for k, expr in enumerate(r[0]):
            items.append((expr, shift + LIMB_BITS * k, min(LIMB_BITS, width - LIMB_BITS * k)))
        shift += width
    y = _l_out(em, c, "y")
    if y is not None:
        _l_gather(em, items, y[0], y[1])
    return True


def _bl_slice(em: SourceEmitter, c, holders=None) -> bool:
    a = _l_in(em, c, "a")
    if a is None:
        return False
    y = _l_out(em, c, "y")
    if y is None:
        return True
    items = [
        (expr, LIMB_BITS * k - c.low, min(LIMB_BITS, a[1] - LIMB_BITS * k))
        for k, expr in enumerate(a[0])
    ]
    _l_gather(em, items, y[0], y[1])
    return True


def _bl_extend(em: SourceEmitter, c, holders=None) -> bool:
    if c.signed:
        return False  # wide sign-extension stays on the lane-scalar path
    a = _l_in(em, c, "a")
    if a is None:
        return False
    y = _l_out(em, c, "y")
    if y is None:
        return True
    items = [
        (expr, LIMB_BITS * k, min(LIMB_BITS, a[1] - LIMB_BITS * k))
        for k, expr in enumerate(a[0])
    ]
    _l_gather(em, items, y[0], y[1])
    return True


def _bl_state_constant(em: SourceEmitter, c, holders) -> bool:
    y = _l_out(em, c, "y")
    if y is not None:
        for k, slot in enumerate(y[0]):
            em.emit(f"v[{slot}] = {(c.value >> (LIMB_BITS * k)) & _LIMB_MASK}")
    return True


def _bl_state_register(em: SourceEmitter, c, holders) -> bool:
    y = _l_out(em, c, "q")
    if y is not None:
        s = em.bind(f"_s{em.uid()}", holders[c])
        for k, slot in enumerate(y[0]):
            em.emit(f"v[{slot}] = {s}.state[{k}]")
    return True


def _bl_capture_register(em: SourceEmitter, c, holders) -> bool:
    d = _l_in(em, c, "d")
    if d is None or len(d[0]) != _limb_count(c.width):
        return False
    s = em.bind(f"_s{em.uid()}", holders[c])
    clr = em.req(c, "clear") if c.has_clear else None
    en = em.req(c, "en") if c.has_enable else None
    for k, d_expr in enumerate(d[0]):
        reset_limb = (c.reset_value >> (LIMB_BITS * k)) & _LIMB_MASK
        if clr is not None and en is not None:
            em.emit(
                f"{s}.pending[{k}] = _where({clr} & 1, {reset_limb}, "
                f"_where({en} & 1, {d_expr}, {s}.state[{k}]))"
            )
        elif clr is not None:
            em.emit(f"{s}.pending[{k}] = _where({clr} & 1, {reset_limb}, {d_expr})")
        elif en is not None:
            em.emit(f"{s}.pending[{k}] = _where({en} & 1, {d_expr}, {s}.state[{k}])")
        else:
            em.emit(f"{s}.pending[{k}] = {d_expr} + 0")
    return True


def _bl_commit_register(em: SourceEmitter, c, holders) -> None:
    s = em.bind(f"_s{em.uid()}", holders[c])
    em.emit(f"{s}.state = {s}.pending")
    em.emit(f"{s}.pending = list({s}.state)")


_BATCH_TABLES: Optional[tuple] = None


def _batch_tables() -> tuple:
    """Lazily resolved class-keyed dispatch tables (avoids import cycles)."""
    global _BATCH_TABLES
    if _BATCH_TABLES is not None:
        return _BATCH_TABLES

    from repro.core.aggregator import PowerAggregator
    from repro.core.power_model_hw import HardwarePowerModel
    from repro.core.strobe import PowerStrobeGenerator
    from repro.netlist import components as comps
    from repro.netlist import sequential as seq
    from repro.netlist.fsm import FSMController

    comb = {
        comps.Adder: _b_adder,
        comps.Subtractor: _b_subtractor,
        comps.AddSub: _b_addsub,
        comps.Multiplier: _b_multiplier,
        comps.Comparator: _b_comparator,
        comps.AbsoluteValue: _b_absval,
        comps.Saturator: _b_saturator,
        comps.ShifterConst: _b_shifter_const,
        comps.ShifterVar: _b_shifter_var,
        comps.Mux: _b_mux,
        comps.LogicOp: _b_logic,
        comps.NotOp: _b_not,
        comps.ReduceOp: _b_reduce,
        comps.Concat: _b_concat,
        comps.Slice: _b_slice,
        comps.Extend: _b_extend,
        comps.Decoder: _b_decoder,
        seq.ROM: _b_rom,
        seq.RegisterFile: _b_regfile_read,
        seq.Memory: _b_memory_async_read,
    }
    state = {
        seq.Register: _b_state_register_like,
        seq.Counter: _b_state_register_like,
        seq.Accumulator: _b_state_register_like,
        seq.Memory: _b_state_memory,
        comps.Constant: _b_state_constant,
        FSMController: _b_state_fsm,
        HardwarePowerModel: _b_state_power_model,
        PowerAggregator: _b_state_aggregator,
        PowerStrobeGenerator: _b_state_strobe,
    }
    capture = {
        seq.Register: _b_capture_register,
        seq.Counter: _b_capture_counter,
        seq.Accumulator: _b_capture_accumulator,
        seq.Memory: _b_capture_memory,
        seq.RegisterFile: _b_capture_regfile,
        FSMController: _b_capture_fsm,
        HardwarePowerModel: _b_capture_power_model,
        PowerAggregator: _b_capture_aggregator,
        PowerStrobeGenerator: _b_capture_strobe,
    }
    commit = {
        seq.Register: _b_commit_state,
        seq.Counter: _b_commit_state,
        seq.Accumulator: _b_commit_state,
        seq.Memory: _b_commit_memory,
        seq.RegisterFile: _b_commit_regfile,
        FSMController: _b_commit_state,
        HardwarePowerModel: _b_commit_power_model,
        PowerAggregator: _b_commit_aggregator,
        PowerStrobeGenerator: _b_commit_strobe,
    }

    def make_holder(component):
        if isinstance(component, seq.Register):
            return lambda n: LaneState(n, component.reset_value)
        if isinstance(component, (seq.Counter, seq.Accumulator)):
            return lambda n: LaneState(n, 0)
        if isinstance(component, (seq.Memory, seq.RegisterFile)):
            return lambda n: LaneMemoryState(n, component._initial)
        if isinstance(component, FSMController):
            reset_index = component.state_index[component.reset_state]
            return lambda n: LaneFSMState(n, reset_index)
        if isinstance(component, PowerAggregator):
            return lambda n: LanePairState(n, 0, 0)
        if isinstance(component, PowerStrobeGenerator):
            strobe0 = 1 if component.period == 1 else 0
            return lambda n: LanePairState(n, 0, strobe0)
        if isinstance(component, HardwarePowerModel):
            return lambda n: LanePowerState(n, len(component._chunked))
        return None

    # limb-wise emitters for components touching a wide (multi-limb) net;
    # anything missing here takes the lane-scalar path with limb-assembled
    # port values, so wide modules stay exactly as correct either way
    limb_comb = {
        comps.Adder: _bl_adder,
        comps.Subtractor: _bl_subtractor,
        comps.Comparator: _bl_comparator,
        comps.Mux: _bl_mux,
        comps.LogicOp: _bl_logic,
        comps.NotOp: _bl_not,
        comps.ReduceOp: _bl_reduce,
        comps.Concat: _bl_concat,
        comps.Slice: _bl_slice,
        comps.Extend: _bl_extend,
    }
    limb_state = {
        seq.Register: _bl_state_register,
        comps.Constant: _bl_state_constant,
    }
    limb_capture = {seq.Register: _bl_capture_register}
    limb_commit = {seq.Register: _bl_commit_register}

    def make_limb_holder(component):
        if isinstance(component, seq.Register):
            n_limbs = _limb_count(component.width)
            return lambda n: LaneLimbState(n, component.reset_value, n_limbs)
        return None

    _BATCH_TABLES = (
        comb, state, capture, commit, make_holder,
        limb_comb, limb_state, limb_capture, limb_commit, make_limb_holder,
    )
    return _BATCH_TABLES


# ---------------------------------------------------------------------------
# Program compilation.
# ---------------------------------------------------------------------------


@dataclass
class BatchProgram:
    """The lane-vectorized executable form of one module's schedule."""

    n_slots: int
    n_lanes: int
    slot_of: Dict[Net, int]
    dtype: object
    settle: Callable[[np.ndarray], None]
    clock_edge: Callable[[np.ndarray], None]
    source: str
    n_fused: int
    n_fallback: int
    #: wide net -> limb count (first limb at slot_of[net]); empty when every
    #: net fits one lane or the module is on the object-dtype store
    limbs_of: Dict[Net, int] = None  # type: ignore[assignment]
    #: per-lane state holders for fused sequential components
    holders: Dict[object, object] = None  # type: ignore[assignment]
    #: lane-scalar fallback wrappers (state reset goes through these)
    lane_components: List[LaneComponent] = None  # type: ignore[assignment]
    #: exec environment of the generated source (tables, holders, fallbacks);
    #: the kernel IR extractor resolves names through it
    env: Dict[str, object] = None  # type: ignore[assignment]
    #: cached kernel IR / unsupported-reason (see :meth:`kernel_ir`)
    _kernel_ir: object = None
    _kernel_unsupported: Optional[str] = None
    #: requested backend -> compiled kernel; shared by simulators over this
    #: program (safe: kernels rebind stale state pointers at every reset)
    _kernel_cache: Optional[Dict[str, object]] = None
    #: cached (backend, reason) resolution of kernel_backend="auto" on a
    #: toolchain-less host (see BatchSimulator._resolve_auto_backend)
    _auto_decision: Optional[Tuple[str, str]] = None

    def reset_state(self) -> None:
        """Return every lane of every sequential component to its reset state."""
        for holder in self.holders.values():
            holder.reset()
        for lane_component in self.lane_components:
            lane_component.reset()

    def kernel_ir(self):
        """The typed kernel IR of this program (extracted once, cached).

        Raises :class:`~repro.sim.kernels.ir.KernelUnsupportedError` when the
        module cannot lower to a fused kernel (lane-scalar fallback
        components, object-dtype stores); the reason is cached so repeated
        attach attempts stay cheap.
        """
        from repro.sim.kernels.ir import KernelUnsupportedError, extract_ir

        if self._kernel_ir is not None:
            return self._kernel_ir
        if self._kernel_unsupported is not None:
            raise KernelUnsupportedError(self._kernel_unsupported)
        try:
            if self.dtype is object:
                raise KernelUnsupportedError(
                    "lane program not kernelizable: object-dtype store "
                    "(module has nets wider than MAX_LIMB_WIDTH)"
                )
            self._kernel_ir = extract_ir(self.source, self.env, self.n_slots)
        except KernelUnsupportedError as error:
            self._kernel_unsupported = str(error)
            raise
        return self._kernel_ir


def _generate_batch_source(
    module: Module,
    schedule: Schedule,
    slot_of: Dict[Net, int],
    limbs_of: Dict[Net, int],
    n_lanes: int,
    force_fallback: bool,
) -> Tuple[str, Dict[str, object], int, int, Dict[object, object], List[LaneComponent]]:
    (comb_table, state_table, capture_table, commit_table, make_holder,
     limb_comb, limb_state, limb_capture, limb_commit, make_limb_holder) = _batch_tables()
    if force_fallback:
        comb_table = state_table = capture_table = {}
        commit_table = {}
        limb_comb = limb_state = limb_capture = limb_commit = {}
    em = SourceEmitter(slot_of)
    em.limbs_of = limbs_of

    # components touching any multi-limb net dispatch to the limb emitters
    wide_components = set()
    if limbs_of:
        for component in module.components.values():
            if any(
                p.net is not None and p.net in limbs_of
                for p in component.ports.values()
            ):
                wide_components.add(component)

    def comb_for(component):
        table = limb_comb if component in wide_components else comb_table
        return table.get(type(component))

    def state_for(component):
        table = limb_state if component in wide_components else state_table
        return table.get(type(component))

    def capture_for(component):
        table = limb_capture if component in wide_components else capture_table
        return table.get(type(component))

    def commit_for(component):
        table = limb_commit if component in wide_components else commit_table
        return table.get(type(component), _b_commit_state)

    holders: Dict[object, object] = {}
    lane_components: Dict[object, LaneComponent] = {}

    def holder_for(component):
        if component not in holders:
            if force_fallback:
                factory = None
            elif component in wide_components:
                factory = make_limb_holder(component)
            else:
                factory = make_holder(component)
            if factory is None:
                return None
            holders[component] = factory(n_lanes)
        return holders[component]

    def lane_component_for(component) -> LaneComponent:
        if component not in lane_components:
            wrapper = LaneComponent(component, n_lanes)
            wrapper.bind(slot_of, limbs_of)
            lane_components[component] = wrapper
        return lane_components[component]

    class _Holders:
        def __getitem__(self, component):
            holder = holder_for(component)
            if holder is None:
                raise KeyError(component)
            return holder

    holder_map = _Holders()

    def emit_fallback(component, method: str) -> None:
        wrapper = lane_component_for(component)
        name = em.bind(f"_lc{em.uid()}", wrapper)
        em.emit(f"{name}.{method}(v)")
        em.n_fallback += 1

    # Decide each sequential component's mode up front with a capture dry run:
    # a component whose capture cannot fuse must also keep its state outputs
    # (and any combinational path) on the lane-scalar path, so per-lane holder
    # state and the component's own scalar state never mix.
    fallback_sequential = set()
    scratch = SourceEmitter(slot_of)
    scratch.limbs_of = limbs_of
    for component in schedule.sequential:
        emitter = capture_for(component)
        fused = False
        if emitter is not None:
            scratch.lines = []
            try:
                fused = emitter(scratch, component, holder_map)
            except KeyError:
                fused = False
        if not fused:
            fallback_sequential.add(component)

    lines: List[str] = ["def _settle(v):"]
    em.lines = body = []
    for component in schedule.state_sources:
        emitter = state_for(component)
        done = False
        if component not in fallback_sequential and emitter is not None:
            try:
                done = emitter(em, component, holder_map)
            except KeyError:
                done = False
        if done:
            em.n_fused += 1
        else:
            emit_fallback(component, "state_outputs")
    for component in schedule.ordered:
        emitter = comb_for(component)
        if (
            component not in fallback_sequential
            and emitter is not None
            and emitter(em, component, holder_map)
        ):
            em.n_fused += 1
        else:
            emit_fallback(component, "evaluate")
    if not body:
        body.append("pass")
    lines.extend("    " + line for line in body)

    lines.append("")
    lines.append("def _clock_edge(v):")
    em.lines = body = []
    fused_sequential = []
    for component in schedule.sequential:
        if component in fallback_sequential:
            # per-lane capture+commit in one pass; nets are never written by
            # commits, so this is equivalent to the two-phase scalar order
            emit_fallback(component, "clock_edge")
            continue
        done = capture_for(component)(em, component, holder_map)
        assert done, f"capture dry run and emission disagree for {component!r}"
        em.n_fused += 1
        fused_sequential.append(component)
    for component in fused_sequential:
        commit_for(component)(em, component, holder_map)
    if not body:
        body.append("pass")
    lines.extend("    " + line for line in body)

    source = "\n".join(lines) + "\n"
    return source, em.env, em.n_fused, em.n_fallback, holders, list(lane_components.values())


#: module -> (mutation_key, n_lanes, schedule, program)
_BATCH_CACHE: "weakref.WeakKeyDictionary[Module, tuple]" = weakref.WeakKeyDictionary()

#: process-lifetime count of lane-program compilations (i.e. cache misses in
#: :func:`compile_module_batch`); the :mod:`repro.serve` coalescer reads this
#: to prove that N merged jobs shared one build.  Lives in the
#: :mod:`repro.obs` registry; ``PROGRAM_BUILD_COUNT`` stays readable as a
#: module attribute via :func:`__getattr__` below.
_PROGRAM_BUILDS = obs.counter(
    "repro_program_builds_total",
    "Lane-program compilations (compile_module_batch cache misses)",
    essential=True,
)


def __getattr__(name: str) -> int:
    if name == "PROGRAM_BUILD_COUNT":
        return int(_PROGRAM_BUILDS.total())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def compile_module_batch(
    module: Module, n_lanes: int, schedule: Optional[Schedule] = None
) -> BatchProgram:
    """Compile ``module`` into a lane-vectorized :class:`BatchProgram` (cached).

    The program owns per-lane sequential state, so — like the scalar
    ``Simulator`` over a shared module — only one :class:`BatchSimulator`
    should actively drive a given module at a time.
    """
    if n_lanes < 1:
        raise ValueError(f"batch compilation needs n_lanes >= 1, got {n_lanes}")
    if schedule is None:
        schedule = schedule_for(module)
    key = module_mutation_key(module)
    cached = _BATCH_CACHE.get(module)
    if cached is not None and cached[0] == key and cached[1] == n_lanes and cached[2] is schedule:
        return cached[3]
    _PROGRAM_BUILDS.inc()
    build_span = obs.span("program.build", module=module.name, n_lanes=n_lanes)

    max_width = max((net.width for net in module.nets.values()), default=0)
    force_fallback = max_width > MAX_LIMB_WIDTH
    dtype = object if force_fallback else np.int64

    # wide nets (61..240 bits) take ceil(width / 60) consecutive limb slots
    slot_of: Dict[Net, int] = {}
    limbs_of: Dict[Net, int] = {}
    n_slots = 0
    for net in module.nets.values():
        slot_of[net] = n_slots
        n_limbs = 1 if force_fallback else _limb_count(net.width)
        if n_limbs > 1:
            limbs_of[net] = n_limbs
        n_slots += n_limbs
    try:
        source, env, n_fused, n_fallback, holders, lane_comps = _generate_batch_source(
            module, schedule, slot_of, limbs_of, n_lanes, force_fallback
        )
        code = compile(source, f"<batch:{module.name}>", "exec")
        namespace = dict(env)
        namespace.update(
            _where=np.where,
            _minimum=np.minimum,
            _abs=np.abs,
            _stack=np.stack,
            _popcount=_popcount_u64,
            _one=np.int64(1),
            _lidx=np.arange(n_lanes),
        )
        namespace["__builtins__"] = {"list": list}
        exec(code, namespace)
    except Exception as error:
        build_span.set(error=type(error).__name__)
        build_span.end()
        raise BatchCompilationError(
            f"failed to batch-compile module {module.name!r}: {error}"
        ) from error

    program = BatchProgram(
        n_slots=n_slots,
        n_lanes=n_lanes,
        slot_of=slot_of,
        limbs_of=limbs_of,
        dtype=dtype,
        settle=namespace["_settle"],
        clock_edge=namespace["_clock_edge"],
        source=source,
        n_fused=n_fused,
        n_fallback=n_fallback,
        holders=holders,
        lane_components=lane_comps,
        env=env,
    )
    try:
        _BATCH_CACHE[module] = (key, n_lanes, schedule, program)
    except TypeError:  # pragma: no cover - unweakrefable module subclass
        pass
    build_span.set(n_fused=n_fused, n_fallback=n_fallback)
    build_span.end()
    return program


# ---------------------------------------------------------------------------
# The batch simulator.
# ---------------------------------------------------------------------------

ArrayLike = Union[int, Sequence[int], np.ndarray]


class BatchSimulator:
    """Cycle-accurate simulation of ``n_lanes`` independent stimulus lanes.

    The API mirrors :class:`~repro.sim.engine.Simulator` but every value is an
    ``(n_lanes,)`` array: ``set_input`` accepts a scalar (broadcast to all
    lanes) or a per-lane array, ``get_output``/``get_net`` return per-lane
    arrays.  Lane ``i`` behaves exactly like a scalar simulation driven with
    lane ``i``'s inputs — components the batch code generator cannot fuse run
    their scalar ``evaluate``/``capture`` per lane with private per-lane
    state (see :class:`LaneComponent`), so results never depend on lane count.
    """

    def __init__(
        self,
        module: Module,
        n_lanes: int,
        schedule: Optional[Schedule] = None,
        kernel_backend: Optional[str] = None,
        kernel_threads: Optional[Union[int, str]] = None,
    ) -> None:
        if n_lanes < 1:
            raise ValueError(f"BatchSimulator needs n_lanes >= 1, got {n_lanes}")
        from repro.sim import kernels

        requested = kernels.resolve_kernel_backend(kernel_backend)
        self.module = module
        self.n_lanes = n_lanes
        self.schedule = schedule if schedule is not None else schedule_for(module)
        self.program = compile_module_batch(module, n_lanes, self.schedule)
        #: the fused kernel executing settle/clock_edge, or None (plain batch)
        self.kernel: Optional["kernels.LaneKernel"] = None
        #: resolved kernel backend actually in effect ("native"/"numpy"/"off")
        self.kernel_backend = "off"
        #: why a requested kernel fell back to the plain batch path, if it did
        self.kernel_fallback: Optional[str] = None
        #: how the backend was chosen (notably what "auto" resolved to and why)
        self.kernel_decision = f"{requested} (requested)"
        #: worker count the native/numpy kernel runs with (1 for off)
        self.kernel_threads = 1
        if requested != "off":
            try:
                ir = self.program.kernel_ir()
            except kernels.KernelUnsupportedError as error:
                self.kernel_fallback = str(error)
            else:
                for holder in self.program.holders.values():
                    holder.unalias()
                if self.program._kernel_cache is None:
                    self.program._kernel_cache = {}
                backend = requested
                if requested == "auto":
                    backend, why = self._resolve_auto_backend(ir, kernels)
                    self.kernel_decision = f"auto -> {backend} ({why})"
                if backend != "off":
                    self.kernel = self.program._kernel_cache.get(backend)
                    if self.kernel is None:
                        self.kernel = kernels.compile_kernel(ir, n_lanes, backend)
                        self.program._kernel_cache[backend] = self.kernel
                    self.kernel_backend = self.kernel.backend
        if self.kernel is not None and self.kernel_backend in ("native", "numpy"):
            # both kernel backends fan lane blocks over a worker pool (OpenMP/
            # pthreads for the C kernel, a ThreadPoolExecutor over sliced
            # NumPy passes otherwise); any count is bit-identical
            self.kernel_threads = kernels.resolve_kernel_threads(
                kernel_threads, n_lanes
            )
            self.kernel.set_threads(self.kernel_threads)
            self.kernel_threads = self.kernel.n_threads
        self.cycle = 0
        self._v = np.zeros((self.program.n_slots, n_lanes), dtype=self.program.dtype)
        slot_of = self.program.slot_of
        limbs_of = self.program.limbs_of
        self._input_keys = {
            name: (slot_of[port.net], port.net.width)
            for name, port in module.ports.items()
            if port.is_input
        }
        self._output_keys = {
            name: slot_of[port.net] for name, port in module.ports.items() if port.is_output
        }
        #: port name -> limb count (1 for every narrow port)
        self._port_limbs = {
            name: limbs_of.get(port.net, 1) for name, port in module.ports.items()
        }
        self.reset()

    def _resolve_auto_backend(self, ir, kernels) -> Tuple[str, str]:
        """What ``kernel_backend="auto"`` should actually run, and why.

        With a C toolchain, the native kernel wins essentially always — use
        it.  Without one the fused NumPy kernel is a wash (or a mild loss) on
        some designs, so time one fused settle against one per-op settle on a
        scratch store and keep the kernel only when it is measurably ahead;
        otherwise stay on the plain batch path.  The decision is cached on
        the shared program so sibling simulators do not re-calibrate.
        """
        if kernels.find_compiler() is not None:
            return "native", "C toolchain found"
        cached = self.program._auto_decision
        if cached is not None:
            return cached
        import time

        kernel = self.program._kernel_cache.get("numpy")
        if kernel is None:
            kernel = kernels.compile_kernel(ir, self.n_lanes, "numpy")
            self.program._kernel_cache["numpy"] = kernel
        # settle only writes the value store (state commits live in the clock
        # edge), so timing both paths on a scratch store perturbs nothing
        scratch = np.zeros((self.program.n_slots, self.n_lanes),
                           dtype=self.program.dtype)

        def best_of(fn, reps: int = 3) -> float:
            fn(scratch)  # warm: exec/alloc costs are not steady-state costs
            best = float("inf")
            for _ in range(reps):
                start = time.perf_counter()
                fn(scratch)
                best = min(best, time.perf_counter() - start)
            return best

        fused = best_of(kernel.settle)
        per_op = best_of(self.program.settle)
        ratio = per_op / fused if fused > 0 else float("inf")
        if ratio >= 1.1:  # keep the kernel only on a clear, repeatable win
            decision = ("numpy", f"no toolchain; fused NumPy {ratio:.2f}x per-op")
        else:
            decision = ("off", f"no toolchain; fused NumPy a wash ({ratio:.2f}x)")
        self.program._auto_decision = decision
        return decision

    # -------------------------------------------------------------- control
    def reset(self) -> None:
        """Reset all per-lane sequential state, zero all nets, then settle."""
        self.program.reset_state()
        if self.kernel is not None:
            # a sibling simulator running the plain batch path on this shared
            # program commits by *rebinding* holder arrays; re-split any
            # aliased pairs and point the kernel back at the live state
            for holder in self.program.holders.values():
                holder.unalias()
            self.kernel.rebind()
        self._v[:] = 0
        self.cycle = 0
        self.settle()

    # ------------------------------------------------------------------ I/O
    def _coerce(self, value: ArrayLike, width: int) -> ArrayLike:
        mask = (1 << width) - 1
        if isinstance(value, (int, np.integer)):
            return int(value) & mask
        array = np.asarray(value)
        if array.shape != (self.n_lanes,):
            raise ValueError(
                f"per-lane input must have shape ({self.n_lanes},), got {array.shape}"
            )
        if self.program.dtype is object:
            return np.array([int(x) & mask for x in array], dtype=object)
        return array.astype(np.int64) & mask

    def _write_limbs(self, slot: int, n_limbs: int, width: int, value: ArrayLike) -> None:
        """Split a wide value (scalar or per-lane) across its limb rows."""
        mask = (1 << width) - 1
        if isinstance(value, (int, np.integer)):
            masked = int(value) & mask
            for k in range(n_limbs):
                self._v[slot + k] = (masked >> (LIMB_BITS * k)) & _LIMB_MASK
            return
        array = np.asarray(value)
        if array.shape != (self.n_lanes,):
            raise ValueError(
                f"per-lane input must have shape ({self.n_lanes},), got {array.shape}"
            )
        values = [int(x) & mask for x in array]
        for k in range(n_limbs):
            shift = LIMB_BITS * k
            self._v[slot + k] = np.fromiter(
                ((x >> shift) & _LIMB_MASK for x in values),
                dtype=np.int64,
                count=self.n_lanes,
            )

    def _read_limbs(self, slot: int, n_limbs: int) -> np.ndarray:
        """Assemble a wide row as an object array of Python ints."""
        value = self._v[slot].astype(object)
        for k in range(1, n_limbs):
            value = value | (self._v[slot + k].astype(object) << (LIMB_BITS * k))
        return value

    def set_input(self, name: str, value: ArrayLike) -> None:
        """Drive a module input: one scalar for all lanes, or a per-lane array."""
        try:
            slot, width = self._input_keys[name]
        except KeyError:
            valid = ", ".join(sorted(self._input_keys)) or "<none>"
            raise KeyError(
                f"module {self.module.name!r} has no input port {name!r}; "
                f"valid input ports: {valid}"
            ) from None
        n_limbs = self._port_limbs[name]
        if n_limbs > 1:
            self._write_limbs(slot, n_limbs, width, value)
        else:
            self._v[slot] = self._coerce(value, width)

    def set_inputs(self, inputs: Mapping[str, ArrayLike]) -> None:
        for name, value in inputs.items():
            self.set_input(name, value)

    def get_output(self, name: str) -> np.ndarray:
        """Per-lane values of a module output port (as of the last settle)."""
        try:
            slot = self._output_keys[name]
        except KeyError:
            valid = ", ".join(sorted(self._output_keys)) or "<none>"
            raise KeyError(
                f"module {self.module.name!r} has no output port {name!r}; "
                f"valid output ports: {valid}"
            ) from None
        n_limbs = self._port_limbs[name]
        if n_limbs > 1:
            return self._read_limbs(slot, n_limbs)
        return self._v[slot].copy()

    def get_outputs(self) -> Dict[str, np.ndarray]:
        return {name: self.get_output(name) for name in self._output_keys}

    def get_net(self, net: Union[Net, str]) -> np.ndarray:
        """Per-lane values of any net, by object or name."""
        if isinstance(net, str):
            net = self.module.nets[net]
        slot = self.program.slot_of[net]
        n_limbs = self.program.limbs_of.get(net, 1)
        if n_limbs > 1:
            return self._read_limbs(slot, n_limbs)
        return self._v[slot].copy()

    # ------------------------------------------------------------ execution
    def settle(self) -> None:
        """Propagate combinational logic in every lane."""
        if self.kernel is not None:
            self.kernel.settle(self._v)
        else:
            self.program.settle(self._v)

    def clock_edge(self) -> None:
        """Capture and commit the next sequential state in every lane."""
        if self.kernel is not None:
            self.kernel.clock_edge(self._v)
        else:
            self.program.clock_edge(self._v)

    def step(self, inputs: Optional[Mapping[str, ArrayLike]] = None, cycles: int = 1) -> None:
        """Advance all lanes by ``cycles`` clock cycles."""
        kernel = self.kernel
        for _ in range(cycles):
            if inputs:
                self.set_inputs(inputs)
            if kernel is not None:
                # one fused settle+edge call per cycle (lanes are independent)
                kernel.cycle(self._v)
            else:
                self.settle()
                self.clock_edge()
            self.cycle += 1

    def lane_view(self, lane: int) -> "LaneView":
        """A scalar, single-lane façade over this simulator (see :class:`LaneView`)."""
        return LaneView(self, lane)


# ---------------------------------------------------------------------------
# Per-lane scalar views: drive one lane with an ordinary interactive testbench.
# ---------------------------------------------------------------------------


class LaneStateError(RuntimeError):
    """Raised when a per-lane view cannot express an operation safely."""


class _LaneSequentialProxy:
    """Per-lane stand-in for one sequential component of a batched module.

    Interactive testbenches reach into ``simulator.module.components`` to
    backdoor-load memories and read results (``load``/``read_word``/
    ``write_word``).  In a :class:`BatchSimulator` that state lives in per-lane
    holders (or per-lane snapshot dicts for fallback components), not on the
    component object, so this proxy reroutes those accessors to one lane's
    private state.  Plain data attributes (``type_name``, ``width``, ``depth``,
    ...) pass through; any other method would silently touch the *scalar*
    state shared by all lanes, so it raises :class:`LaneStateError` instead.
    """

    #: stateless component methods that are safe to pass through
    _SAFE_METHODS = frozenset({"monitored_ports"})

    def __init__(self, component, lane: int, holder=None, lane_component=None) -> None:
        object.__setattr__(self, "_component", component)
        object.__setattr__(self, "_lane", lane)
        object.__setattr__(self, "_holder", holder)
        object.__setattr__(self, "_lane_component", lane_component)

    # ------------------------------------------------- backdoor state access
    def read_word(self, addr: int) -> int:
        holder = self._holder
        if isinstance(holder, LaneMemoryState):
            return int(holder.mem[addr, self._lane])
        return self._call_with_lane_state("read_word", addr)

    def write_word(self, addr: int, value: int) -> None:
        holder = self._holder
        if isinstance(holder, LaneMemoryState):
            holder.mem[addr, self._lane] = _mask_int(value, self._component.width)
            return None
        return self._call_with_lane_state("write_word", addr, value)

    def load(self, contents, offset: int = 0) -> None:
        holder = self._holder
        if isinstance(holder, LaneMemoryState):
            width = self._component.width
            for i, value in enumerate(contents):
                holder.mem[offset + i, self._lane] = _mask_int(value, width)
            return None
        return self._call_with_lane_state("load", contents, offset)

    def _call_with_lane_state(self, method: str, *args):
        """Run a scalar component method against this lane's snapshot state."""
        wrapper = self._lane_component
        if wrapper is None or wrapper.lane_states is None:
            raise LaneStateError(
                f"component {self._component.name!r} keeps no per-lane scalar "
                f"state; {method}() is not available through a lane view"
            )
        component = self._component
        attrs = component.__dict__
        states = wrapper.lane_states
        lane = self._lane
        attrs.update(states[lane])
        result = getattr(component, method)(*args)
        states[lane] = {
            key: value for key, value in attrs.items() if key.startswith("_")
        }
        return result

    # ------------------------------------------------------ attribute access
    def __getattr__(self, name: str):
        if name.startswith("__"):
            # keep protocol probes (copy/pickle/inspect) on the standard path
            raise AttributeError(name)
        if name.startswith("_"):
            raise LaneStateError(
                f"per-lane access to private attribute {name!r} of component "
                f"{self._component.name!r} is not supported; lane state lives "
                f"in the batch program, not on the component"
            )
        value = getattr(self._component, name)
        if callable(value) and name not in self._SAFE_METHODS:
            raise LaneStateError(
                f"method {name}() of component {self._component.name!r} is not "
                f"lane-safe; only load/read_word/write_word are supported "
                f"through a BatchSimulator lane view"
            )
        return value

    def __setattr__(self, name: str, value) -> None:
        raise LaneStateError(
            f"cannot set attribute {name!r} on a per-lane component view"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<lane {self._lane} view of {self._component!r}>"


def _mask_int(value: int, width: int) -> int:
    return int(value) & ((1 << width) - 1)


class _LaneModuleView:
    """Module façade whose sequential components are per-lane proxies."""

    def __init__(self, simulator: "BatchSimulator", lane: int) -> None:
        module = simulator.module
        self.name = module.name
        self.ports = module.ports
        self.nets = module.nets
        self.attributes = module.attributes
        program = simulator.program
        wrappers = {lc.component: lc for lc in program.lane_components}
        self.components: Dict[str, object] = {}
        for comp_name, component in module.components.items():
            if component.is_sequential:
                self.components[comp_name] = _LaneSequentialProxy(
                    component,
                    lane,
                    holder=program.holders.get(component),
                    lane_component=wrappers.get(component),
                )
            else:
                self.components[comp_name] = component


class LaneView:
    """Scalar view of one :class:`BatchSimulator` lane.

    Presents the read-side of the scalar :class:`~repro.sim.engine.Simulator`
    API (``get_output``/``get_outputs``/``get_net``/``cycle``/``module``) for
    a single lane, so interactive testbenches — including ones that backdoor
    load and verify memories — can drive per-lane stimulus in a multi-seed
    batch run.  Writes still go through the owning simulator (per-lane input
    assembly is the sweep driver's job); the view itself is read-only plus the
    memory backdoors exposed by :class:`_LaneSequentialProxy`.
    """

    def __init__(self, simulator: "BatchSimulator", lane: int) -> None:
        if not 0 <= lane < simulator.n_lanes:
            raise ValueError(
                f"lane {lane} out of range for {simulator.n_lanes}-lane simulator"
            )
        self.simulator = simulator
        self.lane = lane
        self.module = _LaneModuleView(simulator, lane)

    @property
    def cycle(self) -> int:
        return self.simulator.cycle

    def _read_lane(self, slot: int, n_limbs: int) -> int:
        v, lane = self.simulator._v, self.lane
        if n_limbs == 1:
            return int(v[slot, lane])
        return sum(
            int(v[slot + k, lane]) << (LIMB_BITS * k) for k in range(n_limbs)
        )

    def get_output(self, name: str) -> int:
        try:
            slot = self.simulator._output_keys[name]
        except KeyError:
            valid = ", ".join(sorted(self.simulator._output_keys)) or "<none>"
            raise KeyError(
                f"module {self.module.name!r} has no output port {name!r}; "
                f"valid output ports: {valid}"
            ) from None
        return self._read_lane(slot, self.simulator._port_limbs[name])

    def get_outputs(self) -> Dict[str, int]:
        port_limbs = self.simulator._port_limbs
        return {
            name: self._read_lane(slot, port_limbs[name])
            for name, slot in self.simulator._output_keys.items()
        }

    def get_net(self, net: Union[Net, str]) -> int:
        if isinstance(net, str):
            net = self.simulator.module.nets[net]
        program = self.simulator.program
        return self._read_lane(program.slot_of[net], program.limbs_of.get(net, 1))
