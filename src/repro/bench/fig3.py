"""The per-design Figure 3 study (library form).

Reproduces the paper's Figure 3 study design by design: run the software RTL
power estimator and the full power-emulation flow on the scaled workload,
evaluate the calibrated commercial-tool runtime models and the
emulation-platform time model at the *nominal* (paper-scale) workload, and
derive the execution-time and speedup series.

This used to live inside ``benchmarks/conftest.py``; it is a library module
so that process-pool shard workers (:mod:`repro.bench.shard`), the benchmark
harnesses, examples and the CLI below can all share one implementation:

    python -m repro.bench.fig3 --workers 4

Each design is independent, so the study shards across a process pool, and
completed rows are cached on disk keyed by ``(design, library, config, code
fingerprint)`` — a repeat run of unchanged code costs ~nothing.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.cache import ResultCache

#: paper-reported MPEG4 data point used to anchor the commercial-tool models
PAPER_MPEG4_POWERTHEATER_S = 43 * 60.0
PAPER_MPEG4_NEC_S = 55 * 60.0


@dataclass(frozen=True)
class StudyConfig:
    """Knobs of one Figure 3 study run (part of the result-cache key)."""

    #: fixed-point coefficient width of the instrumentation hardware
    coefficient_bits: int = 12
    #: host-link stimulus streaming rate modelled for the emulation platform
    stimulus_cycles_per_s: float = 5e6
    #: power-model library identity (build_seed_library is deterministic)
    library: str = "seed"

    def as_key(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass
class Fig3Row:
    """One design's worth of Figure 3 data."""

    design: str
    monitored_bits: int
    nominal_cycles: int
    executed_cycles: int
    #: modeled software-tool runtimes at the nominal workload (seconds)
    time_nec_s: float
    time_powertheater_s: float
    #: modeled power-emulation runtime at the nominal workload (seconds)
    time_emulation_s: float
    #: measured wall-clock of our own software RTL estimator on the scaled workload
    measured_software_s: float
    #: measured wall-clock of the emulated (host) functional simulation
    measured_emulation_host_s: float
    average_power_mw: float
    emulated_power_mw: float
    accuracy_error: float
    device: str
    emulation_clock_mhz: float
    lut_overhead: float
    ff_overhead: float

    @property
    def speedup_nec(self) -> float:
        return self.time_nec_s / self.time_emulation_s

    @property
    def speedup_powertheater(self) -> float:
        return self.time_powertheater_s / self.time_emulation_s

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Fig3Row":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


class Fig3Study:
    """Computes and caches the per-design Figure 3 data.

    ``cache`` (optional) persists completed rows on disk; ``n_workers > 1``
    shards :meth:`ensure_all` over a process pool, one design per worker.
    """

    def __init__(
        self,
        config: StudyConfig = StudyConfig(),
        cache: Optional[ResultCache] = None,
        n_workers: int = 0,
    ) -> None:
        self.config = config
        self.cache = cache
        self.n_workers = n_workers
        self.rows: Dict[str, Fig3Row] = {}
        #: design -> True when the row was served from the on-disk cache
        self.cache_hits: Dict[str, bool] = {}
        self._flow = None
        self._library = None
        self._tools = None

    # ----------------------------------------------------------- lazy setup
    def _setup(self):
        if self._flow is None:
            from repro.core import InstrumentationConfig, PowerEmulationFlow
            from repro.core.emulator import EmulationPlatform, HostInterface
            from repro.power import build_seed_library

            self._library = build_seed_library()
            # The paper measured testbench simulation + FPGA execution; we
            # model the testbench as streamed from the host at a realistic
            # link rate.
            platform = EmulationPlatform(
                host=HostInterface(stimulus_cycles_per_s=self.config.stimulus_cycles_per_s)
            )
            self._flow = PowerEmulationFlow(
                library=self._library,
                config=InstrumentationConfig(coefficient_bits=self.config.coefficient_bits),
                platform=platform,
            )
        return self._flow, self._library

    def calibrated_tools(self):
        """NEC-RTpower / PowerTheater anchored to the paper's MPEG4 data point."""
        if self._tools is None:
            from repro.designs.registry import get_design
            from repro.netlist import module_stats
            from repro.power import NEC_RTPOWER, POWERTHEATER, calibrate_tool

            mpeg4 = get_design("MPEG4")
            bits = module_stats(mpeg4.build()).monitored_bits
            self._tools = (
                calibrate_tool(NEC_RTPOWER, mpeg4.nominal_cycles, bits, PAPER_MPEG4_NEC_S),
                calibrate_tool(POWERTHEATER, mpeg4.nominal_cycles, bits,
                               PAPER_MPEG4_POWERTHEATER_S),
            )
        return self._tools

    # -------------------------------------------------------------- caching
    def _cache_key(self, design_name: str) -> Optional[str]:
        if self.cache is None:
            return None
        return self.cache.key(design=design_name, config=self.config.as_key())

    def _cache_lookup(self, design_name: str) -> Optional[Fig3Row]:
        key = self._cache_key(design_name)
        if key is None:
            return None
        payload = self.cache.get(key)
        if payload is None:
            return None
        return Fig3Row.from_dict(payload)

    def _cache_store(self, row: Fig3Row) -> None:
        key = self._cache_key(row.design)
        if key is not None:
            self.cache.put(key, row.to_dict())

    # ----------------------------------------------------------------- compute
    def compute(self, design_name: str) -> Fig3Row:
        """Run the study for one design (memoized + disk-cached)."""
        if design_name in self.rows:
            return self.rows[design_name]
        cached = self._cache_lookup(design_name)
        if cached is not None:
            self.rows[design_name] = cached
            self.cache_hits[design_name] = True
            return cached
        row = self._compute_uncached(design_name)
        self.rows[design_name] = row
        self.cache_hits[design_name] = False
        self._cache_store(row)
        return row

    def _compute_uncached(self, design_name: str) -> Fig3Row:
        from repro.core import compare_reports
        from repro.designs.registry import get_design
        from repro.netlist import flatten
        from repro.power import RTLPowerEstimator

        flow, library = self._setup()
        design = get_design(design_name)
        module = design.build()
        nec, powertheater = self.calibrated_tools()

        reference = RTLPowerEstimator(flatten(module), library=library).estimate(
            design.testbench()
        )
        report = flow.run(
            module,
            design.testbench(),
            workload_cycles=design.nominal_cycles,
            testbench_on_fpga=False,
        )
        accuracy = compare_reports(report.power_report, reference)
        bits = report.instrumented.monitored_bits
        return Fig3Row(
            design=design_name,
            monitored_bits=bits,
            nominal_cycles=design.nominal_cycles,
            executed_cycles=report.emulation.executed_cycles,
            time_nec_s=nec.estimate_runtime_s(design.nominal_cycles, bits),
            time_powertheater_s=powertheater.estimate_runtime_s(design.nominal_cycles, bits),
            time_emulation_s=report.emulation_time_s,
            measured_software_s=reference.estimation_time_s,
            measured_emulation_host_s=report.emulation.host_simulation_s,
            average_power_mw=reference.average_power_mw,
            emulated_power_mw=report.power_report.average_power_mw,
            accuracy_error=accuracy.relative_error,
            device=report.emulation.device.name,
            emulation_clock_mhz=report.emulation.emulation_clock_mhz,
            lut_overhead=report.instrumentation_overhead["luts"],
            ff_overhead=report.instrumentation_overhead["ffs"],
        )

    def ensure(self, design_names: List[str]) -> List[Fig3Row]:
        """Rows for the named designs, sharded over a pool when configured."""
        missing = [
            name for name in design_names
            if name not in self.rows and self._cache_lookup(name) is None
        ]
        if self.n_workers > 1 and len(missing) > 1:
            from repro.bench.shard import run_sharded

            outcome = run_sharded(
                missing, n_workers=self.n_workers, config=self.config, cache=self.cache
            )
            for name, row in outcome.rows.items():
                self.rows[name] = row
                self.cache_hits[name] = False
        return [self.compute(name) for name in design_names]

    def ensure_all(self) -> List[Fig3Row]:
        """All Figure 3 rows, sharded over a process pool when configured."""
        from repro.designs.registry import FIGURE3_ORDER

        return self.ensure(list(FIGURE3_ORDER))

    @property
    def complete(self) -> bool:
        from repro.designs.registry import FIGURE3_ORDER

        return all(name in self.rows for name in FIGURE3_ORDER)


def format_study(rows: List[Fig3Row]) -> str:
    """Human-readable execution-time/speedup table (CLI + examples)."""
    lines = [
        f"{'design':12s} {'bits':>6s} {'NEC-RTpower (s)':>16s} "
        f"{'PowerTheater (s)':>17s} {'Emulation (s)':>14s} {'speedup NEC':>12s}",
    ]
    for row in rows:
        lines.append(
            f"{row.design:12s} {row.monitored_bits:6d} {row.time_nec_s:16.1f} "
            f"{row.time_powertheater_s:17.1f} {row.time_emulation_s:14.2f} "
            f"{row.speedup_nec:12.1f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: sharded, cached Figure 3 study."""
    import argparse

    from repro.designs.registry import FIGURE3_ORDER

    parser = argparse.ArgumentParser(description="Run the Figure 3 study.")
    parser.add_argument("--workers", type=int, default=max(1, (os.cpu_count() or 2) - 1),
                        help="process-pool shard workers (1 = serial)")
    parser.add_argument("--cache-dir", default=os.path.join(".", "benchmarks", "results", ".cache"),
                        help="on-disk result cache directory ('' disables caching)")
    parser.add_argument("--designs", nargs="*", default=list(FIGURE3_ORDER),
                        help="subset of designs to compute")
    parser.add_argument("--clear-cache", action="store_true",
                        help="drop cached rows before running")
    args = parser.parse_args(argv)
    unknown = sorted(set(args.designs) - set(FIGURE3_ORDER))
    if unknown:
        parser.error(
            f"unknown design(s) {', '.join(unknown)}; choose from {', '.join(FIGURE3_ORDER)}"
        )

    cache = ResultCache(args.cache_dir, namespace="fig3") if args.cache_dir else None
    if cache is not None and args.clear_cache:
        print(f"cleared {cache.clear()} cached entries")
    study = Fig3Study(cache=cache, n_workers=args.workers)

    start = time.perf_counter()
    rows = study.ensure([name for name in FIGURE3_ORDER if name in set(args.designs)])
    elapsed = time.perf_counter() - start
    hits = sum(1 for name, hit in study.cache_hits.items() if hit)
    print(format_study(rows))
    print()
    print(f"{len(rows)} designs in {elapsed:.2f}s "
          f"({args.workers} workers, {hits} cache hits)")
    return 0


if __name__ == "__main__":
    import sys as _sys

    # thin shim: the canonical entry is the unified CLI's fig3 subcommand
    print(
        "note: `python -m repro.bench.fig3` is deprecated; "
        "use `python -m repro fig3`",
        file=_sys.stderr,
    )
    raise SystemExit(main())
