"""The (design × engine × stimulus-seed) sweep runner.

``sweep(SweepSpec(...))`` expands the sweep into :class:`RunSpec` tasks and
executes them with every scaling lever the repository has grown:

* **Batch lanes** — all seeds of one (design, ``rtl``) group run as
  :class:`~repro.sim.batch.BatchSimulator` lanes: the module settles once per
  cycle for every seed and each component's macromodel is evaluated with one
  vectorized pass over the lane arrays (the ROADMAP's named multi-seed RTL
  power sweep workload).
* **Shard pool** — independent groups/tasks fan out over the PR-2
  process-pool runner (:func:`repro.bench.shard.run_payload_tasks`).
* **Disk cache** — every completed :class:`EstimateResult` persists in the
  code-fingerprinted :class:`~repro.bench.cache.ResultCache`, so repeat
  sweeps of unchanged code are served from disk.

The result is a JSON-round-trippable :class:`SweepResult` carrying one
uniform result per task plus per-(design, engine) power distributions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.estimators import RTLEstimatorAdapter, estimate
from repro.api.spec import EstimateResult, RunSpec, SweepSpec
from repro.bench.cache import ResultCache

#: cache namespace for unified-API estimation results
CACHE_NAMESPACE = "estimate"


def _sweep_worker(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Shard-pool entry point: one task group's results as plain dicts."""
    if payload["kind"] == "rtl-batch":
        specs = [RunSpec.from_dict(d) for d in payload["specs"]]
        adapter = RTLEstimatorAdapter()
        return [result.to_dict() for result in adapter.estimate_many(specs)]
    spec = RunSpec.from_dict(payload["spec"])
    return [estimate(spec).to_dict()]


@dataclass
class SweepResult:
    """Results plus scheduling metadata from one sweep."""

    spec: SweepSpec
    #: one result per task, in ``spec.run_specs()`` order
    results: List[EstimateResult]
    wall_time_s: float
    n_workers: int
    #: tasks served from the on-disk result cache
    cache_hits: int = 0

    # ---------------------------------------------------------------- views
    def for_task(self, design: str, engine: str) -> List[EstimateResult]:
        return [
            r for r in self.results
            if r.spec.design == design and r.spec.engine == engine
        ]

    def distribution(self, design: str, engine: str = "rtl") -> Dict[str, float]:
        """Average-power distribution over seeds for one (design, engine)."""
        powers = [r.average_power_mw for r in self.for_task(design, engine)]
        if not powers:
            raise KeyError(f"no results for design {design!r} engine {engine!r}")
        mean = sum(powers) / len(powers)
        variance = sum((p - mean) ** 2 for p in powers) / len(powers)
        return {
            "n_seeds": len(powers),
            "mean_mw": mean,
            "std_mw": variance ** 0.5,
            "min_mw": min(powers),
            "max_mw": max(powers),
        }

    def summary(self) -> str:
        lines = [
            f"{'design':12s} {'engine':9s} {'seeds':>5s} {'mean (mW)':>10s} "
            f"{'std (mW)':>9s} {'min (mW)':>9s} {'max (mW)':>9s}"
        ]
        for design in self.spec.designs:
            for engine in self.spec.engines:
                try:
                    d = self.distribution(design, engine)
                except KeyError:
                    continue
                lines.append(
                    f"{design:12s} {engine:9s} {d['n_seeds']:5d} {d['mean_mw']:10.4f} "
                    f"{d['std_mw']:9.4f} {d['min_mw']:9.4f} {d['max_mw']:9.4f}"
                )
        lines.append(
            f"{len(self.results)} runs in {self.wall_time_s:.2f}s "
            f"({self.n_workers} workers, {self.cache_hits} cache hits)"
        )
        return "\n".join(lines)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "results": [result.to_dict() for result in self.results],
            "wall_time_s": self.wall_time_s,
            "n_workers": self.n_workers,
            "cache_hits": self.cache_hits,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepResult":
        return cls(
            spec=SweepSpec.from_dict(payload["spec"]),
            results=[EstimateResult.from_dict(r) for r in payload["results"]],
            wall_time_s=payload.get("wall_time_s", 0.0),
            n_workers=payload.get("n_workers", 0),
            cache_hits=payload.get("cache_hits", 0),
        )


def _group_tasks(
    missing: List[RunSpec],
) -> List[Dict[str, object]]:
    """Group cache-missing specs into shard payloads.

    Multi-seed RTL groups (backend ``auto``/``batch``) become one
    ``rtl-batch`` payload — their seeds run as simulator lanes inside one
    worker; everything else is one payload per spec.
    """
    by_group: Dict[Tuple[str, str], List[RunSpec]] = {}
    for spec in missing:
        by_group.setdefault((spec.design, spec.engine), []).append(spec)
    payloads: List[Dict[str, object]] = []
    for (_, engine), specs in by_group.items():
        if (
            engine == "rtl"
            and len(specs) > 1
            and all(s.backend in ("auto", "batch") for s in specs)
        ):
            payloads.append(
                {"kind": "rtl-batch", "specs": [s.to_dict() for s in specs]}
            )
        else:
            payloads.extend({"kind": "single", "spec": s.to_dict()} for s in specs)
    return payloads


def sweep(spec: SweepSpec) -> SweepResult:
    """Run the sweep: batch lanes per RTL group, shard pool across groups."""
    from repro.bench.shard import run_payload_tasks

    start = time.perf_counter()
    all_specs = spec.run_specs()
    cache = (
        ResultCache(spec.cache_dir, namespace=CACHE_NAMESPACE)
        if spec.cache_dir
        else None
    )

    resolved: Dict[RunSpec, EstimateResult] = {}
    cache_hits = 0
    if cache is not None:
        for run_spec in all_specs:
            payload = cache.get(cache.key(spec=run_spec.to_dict()))
            if payload is not None:
                resolved[run_spec] = EstimateResult.from_dict(payload)
                cache_hits += 1

    missing = [s for s in all_specs if s not in resolved]
    payloads = _group_tasks(missing)

    def persist(index: int, result_dicts: List[Dict[str, object]]) -> None:
        # persist each completed result immediately so finished work
        # survives a later task failing
        if cache is None:
            return
        for result_dict in result_dicts:
            cache.put(cache.key(spec=result_dict["spec"]), result_dict)

    produced = run_payload_tasks(
        payloads, _sweep_worker, n_workers=spec.n_workers, on_result=persist
    )
    for result_dicts in produced:
        for result_dict in result_dicts:
            result = EstimateResult.from_dict(result_dict)
            resolved[result.spec] = result

    results = [resolved[s] for s in all_specs]
    return SweepResult(
        spec=spec,
        results=results,
        wall_time_s=time.perf_counter() - start,
        n_workers=spec.n_workers,
        cache_hits=cache_hits,
    )
