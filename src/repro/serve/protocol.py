"""Job states, progress events and job records of the estimation service.

A submitted :class:`~repro.api.spec.RunSpec` becomes a :class:`JobRecord`
that walks the state machine::

    queued -> coalesced -> compiling -> simulating -> done
                                                   \\-> failed
    (any non-terminal state) ------------------------> interrupted

``coalesced`` is the state where the server has grouped the job with every
compatible pending job (equal :func:`~repro.api.spec.coalesce_key`) into one
shared lane block; ``compiling`` covers lane-program + kernel builds (instant
when the process caches are warm), ``simulating`` the actual lane execution.
Every transition appends a :class:`ProgressEvent` to the record — the ordered
event list is the job's streamable progress history, and the record itself is
JSON-round-trippable so the :class:`~repro.serve.store.JobStore` can persist
it across server restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.spec import RunSpec

#: every state a job can be in, in nominal order
JOB_STATES: Tuple[str, ...] = (
    "queued",
    "coalesced",
    "compiling",
    "simulating",
    "done",
    "failed",
    "interrupted",
)

#: states a job never leaves
TERMINAL_STATES: Tuple[str, ...] = ("done", "failed", "interrupted")


@dataclass
class ProgressEvent:
    """One state transition of one job, streamable as a JSON line."""

    job_id: str
    state: str
    #: per-job sequence number (0 = the ``queued`` event)
    seq: int
    #: Unix timestamp of the transition
    at_s: float
    #: state-specific facts: group size and lane on ``coalesced``, kernel
    #: resolution on ``simulating``, cycle count and power on ``done``, the
    #: structured error summary on ``failed``
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "seq": self.seq,
            "at_s": self.at_s,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProgressEvent":
        return cls(
            job_id=payload["job_id"],
            state=payload["state"],
            seq=int(payload["seq"]),
            at_s=float(payload["at_s"]),
            detail=dict(payload.get("detail") or {}),
        )


@dataclass
class JobRecord:
    """One submitted run: its spec, live state, event history and outcome."""

    job_id: str
    spec: RunSpec
    state: str = "queued"
    submitted_at: float = 0.0
    finished_at: Optional[float] = None
    #: lanes in the merged lane block this job ran in (0 = not yet grouped)
    group_size: int = 0
    #: the result was served straight from the persistent result cache
    cached: bool = False
    #: result-cache key in the shared ``estimate`` namespace (set when done)
    result_key: Optional[str] = None
    #: :class:`~repro.resilience.failures.TaskFailure` payload when failed
    error: Optional[Dict[str, object]] = None
    events: List[ProgressEvent] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> str:
        seed = f" seed={self.spec.seed}" if self.spec.seed is not None else ""
        extra = ""
        if self.state == "done" and self.group_size > 1:
            extra = f" (lane of {self.group_size})"
        if self.cached:
            extra = " (cached)"
        if self.error is not None:
            extra = f" ({self.error.get('error_type')}: {self.error.get('message')})"
        return (
            f"{self.job_id}  {self.spec.design}[{self.spec.engine}]{seed}: "
            f"{self.state}{extra}"
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "group_size": self.group_size,
            "cached": self.cached,
            "result_key": self.result_key,
            "error": dict(self.error) if self.error is not None else None,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobRecord":
        return cls(
            job_id=payload["job_id"],
            spec=RunSpec.from_dict(payload["spec"]),
            state=payload.get("state", "queued"),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            finished_at=payload.get("finished_at"),
            group_size=int(payload.get("group_size", 0)),
            cached=bool(payload.get("cached", False)),
            result_key=payload.get("result_key"),
            error=payload.get("error"),
            events=[
                ProgressEvent.from_dict(e) for e in payload.get("events") or []
            ],
        )
