"""Power hotspots on the MPEG-4 encoder: where, and *when*, energy goes.

The DATE'05 pitch is that power emulation turns estimation into runtime
*observation* — the strobe/aggregator hardware exposes power over time
while the workload runs.  ``repro.power.profile`` is that view for every
engine: a windowed ``(n_windows × n_components)`` energy matrix whose sums
match the run's total energy to 1e-9, bounded in memory at any run length.
This example runs the MPEG-4 motion-estimation kernel and shows the
analysis stack on top of the matrix:

* the hotspot report — top-K components with energy share, the highest
  power windows with their dominant component, per-type totals;
* the power-over-time view (`PowerProfile.table()` renders it as an ASCII
  sparkline; `window_power_mw()`/`power_by_type_mw()` are the raw series);
* window rebinning (`profile.rebin(n)`) for a coarser timeline;
* the Chrome-trace merge: with tracing on, the same profile lands as
  counter tracks (`ph: "C"`) on the wall-clock timeline next to the spans
  that produced it — open ``power_hotspots_trace.json`` in Perfetto and
  the per-type power curve draws under the ``lanes.simulate`` span.

The CLI spells this ``python -m repro profile --design MPEG4 --trace ...``;
``run``/``sweep``/``submit`` take ``--power-profile out.json`` to attach
the same artifact to any estimate.

Run from the repository root:

    PYTHONPATH=src python examples/power_hotspots.py
"""

from __future__ import annotations

from repro import obs
from repro.api import RunSpec, estimate

MAX_CYCLES = 512
TRACE_PATH = "power_hotspots_trace.json"


def main() -> None:
    obs.enable(tracing=True)  # so the profile's counter events join the trace

    result = estimate(RunSpec(
        design="MPEG4",
        engine="rtl",
        seed=7,
        max_cycles=MAX_CYCLES,
        power_profile=True,   # attach the windowed profile
        keep_cycle_trace=False,  # telemetry without per-cycle lists
    ))
    profile = result.profile

    # ------------------------------------------------------- hotspot report
    print(profile.table(top_k=6))
    print()

    hotspots = profile.hotspots(top_k=3)
    worst = hotspots["peak_windows"][0]
    print(f"worst window: cycles {worst['start_cycle']}-{worst['end_cycle']} "
          f"at {worst['power_mw']:.4f} mW, led by {worst['top_component']}")
    for row in hotspots["top_components"]:
        series = profile.component_series(row["name"])
        print(f"  {row['name']:28s} {row['share']:6.1%} of total energy, "
              f"busiest in window {row['peak_window']} "
              f"({max(series):.1f} fJ)")

    # the matrix is the report, re-bucketed: sums match exactly
    drift = abs(profile.total_energy_fj() - result.report.total_energy_fj)
    print(f"\nwindow sums vs report total: {drift:.2e} fJ drift "
          f"({profile.n_windows} windows x {profile.window_cycles} cycles)")

    # ------------------------------------------------------------ rebinning
    coarse = profile.rebin(profile.window_cycles * 4)
    print(f"rebinned to {coarse.window_cycles}-cycle windows: "
          f"{coarse.n_windows} windows, peak {coarse.peak_power_mw():.4f} mW "
          f"(finer peak {profile.peak_power_mw():.4f} mW)")

    # ----------------------------------------------------------- trace merge
    events = obs.drain_spans()
    n_counters = sum(1 for e in events if e.get("ph") == "C")
    n_spans = obs.write_chrome_trace(TRACE_PATH, events)
    print(f"\nwrote {TRACE_PATH} ({n_spans} spans + {n_counters} power "
          f"samples) — open in https://ui.perfetto.dev: the "
          f"'power_mw:MPEG4' counter track draws per-type power under "
          f"the run's spans")


if __name__ == "__main__":
    main()
