"""The ``python -m repro`` command line.

One CLI over the unified estimation API::

    python -m repro run --design binary_search --engine rtl --max-cycles 64
    python -m repro sweep --designs DCT HVPeakF --seeds 0 1 2 3 --workers 4
    python -m repro characterize --pairs 150
    python -m repro fig3 --workers 4

``run`` executes one :class:`~repro.api.spec.RunSpec` through any engine,
``sweep`` fans a (design × engine × seed) grid over batch lanes + the shard
pool, ``characterize`` fits macromodels against the gate-level references,
and ``fig3`` reproduces the paper's Figure 3 study (the former
``python -m repro.bench.fig3`` entry, which remains as a shim).  Every
subcommand can emit its result as a JSON artifact via ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _add_common_run_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.api.spec import BACKENDS

    parser.add_argument("--max-cycles", type=int, default=None,
                        help="cycle budget (default: the testbench's own)")
    parser.add_argument("--backend", choices=BACKENDS, default="auto",
                        help="simulation backend (default auto; batch = lane path)")
    parser.add_argument("--coefficient-bits", type=int, default=12,
                        help="instrumentation coefficient width (emulation engine)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the result as a JSON artifact")


def _design_names() -> List[str]:
    from repro.designs.registry import all_designs

    return sorted(all_designs())


def _write_json(path: Optional[str], payload: dict) -> None:
    if not path:
        return
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
    print(f"wrote {path}")


# ------------------------------------------------------------------ run
def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, estimate

    spec = RunSpec(
        design=args.design,
        engine=args.engine,
        seed=args.seed,
        max_cycles=args.max_cycles,
        backend=args.backend,
        coefficient_bits=args.coefficient_bits,
        workload_cycles=args.workload_cycles,
        compare_to_rtl=args.compare_to_rtl,
    )
    result = estimate(spec)
    print(result.report.table(n=args.top))
    print()
    print(result.summary())
    if result.metadata.get("device"):
        print(f"  device {result.metadata['device']} "
              f"@ {result.metadata['emulation_clock_mhz']:.1f} MHz, "
              f"LUT overhead {result.metadata['lut_overhead']:.1%}")
    _write_json(args.json, result.to_dict())
    return 0


# ---------------------------------------------------------------- sweep
def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import SweepSpec, sweep

    spec = SweepSpec(
        designs=tuple(args.designs),
        engines=tuple(args.engines),
        seeds=tuple(args.seeds),
        max_cycles=args.max_cycles,
        backend=args.backend,
        coefficient_bits=args.coefficient_bits,
        n_workers=args.workers,
        cache_dir=args.cache_dir or None,
    )
    result = sweep(spec)
    print(result.summary())
    _write_json(args.json, result.to_dict())
    return 0


# --------------------------------------------------------- characterize
def _characterize_components(names: Optional[List[str]]):
    from repro.netlist.components import Adder, Comparator, LogicOp, Multiplier

    builders = {
        "adder8": lambda: Adder("adder8", 8),
        "adder16": lambda: Adder("adder16", 16),
        "mult8": lambda: Multiplier("mult8", 8),
        "cmp16": lambda: Comparator("cmp16", 16),
        "xor16": lambda: LogicOp("xor16", "xor", 16),
    }
    selected = names if names else sorted(builders)
    unknown = sorted(set(selected) - set(builders))
    if unknown:
        raise SystemExit(
            f"unknown component(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(builders))}"
        )
    return [(name, builders[name]()) for name in selected]


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.power import CharacterizationEngine

    engine = CharacterizationEngine(n_pairs=args.pairs, seed=args.seed,
                                    batch=not args.no_batch)
    rows = []
    print(f"{'component':12s} {'R^2':>7s} {'NRMSE':>7s} {'mean E (fJ)':>12s} "
          f"{'max |err| (fJ)':>15s}")
    for name, component in _characterize_components(args.components):
        result = engine.characterize(component)
        metrics = result.metrics
        print(f"{name:12s} {metrics.r_squared:7.3f} {metrics.nrmse:7.3f} "
              f"{metrics.mean_energy_fj:12.1f} {metrics.max_abs_error_fj:15.1f}")
        rows.append({
            "component": name,
            "n_samples": metrics.n_samples,
            "r_squared": metrics.r_squared,
            "nrmse": metrics.nrmse,
            "mean_energy_fj": metrics.mean_energy_fj,
            "max_abs_error_fj": metrics.max_abs_error_fj,
        })
    _write_json(args.json, {"n_pairs": args.pairs, "seed": args.seed, "models": rows})
    return 0


# ----------------------------------------------------------------- main
def build_parser() -> argparse.ArgumentParser:
    from repro.api.spec import ENGINES

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified power-estimation CLI (Coburn/Ravi/Raghunathan, DATE'05 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one estimation run through any engine")
    run.add_argument("--design", required=True, choices=_design_names())
    run.add_argument("--engine", choices=ENGINES, default="rtl")
    run.add_argument("--seed", type=int, default=None,
                     help="stimulus seed (default: the design's standard stimulus)")
    run.add_argument("--workload-cycles", type=int, default=None,
                     help="nominal workload for the emulation time model")
    run.add_argument("--compare-to-rtl", action="store_true",
                     help="attach accuracy vs a software-RTL reference run")
    run.add_argument("--top", type=int, default=10,
                     help="component rows to print in the power table")
    _add_common_run_arguments(run)
    run.set_defaults(func=_cmd_run)

    swp = sub.add_parser("sweep", help="(design x engine x seed) sweep: "
                                       "batch lanes + shard pool + cache")
    swp.add_argument("--designs", nargs="+", required=True, choices=_design_names())
    swp.add_argument("--engines", nargs="+", choices=ENGINES, default=["rtl"])
    swp.add_argument("--seeds", nargs="+", type=int, default=[0, 1],
                     help="stimulus seeds (one RTL lane per seed)")
    swp.add_argument("--workers", type=int, default=1,
                     help="shard-pool worker processes (1 = serial)")
    swp.add_argument("--cache-dir", default="",
                     help="on-disk result cache directory ('' disables caching)")
    _add_common_run_arguments(swp)
    swp.set_defaults(func=_cmd_sweep)

    cha = sub.add_parser("characterize",
                         help="fit macromodels against gate-level references")
    cha.add_argument("--components", nargs="*", default=None,
                     help="subset of the standard component set")
    cha.add_argument("--pairs", type=int, default=150,
                     help="training vector pairs per component")
    cha.add_argument("--seed", type=int, default=2005)
    cha.add_argument("--no-batch", action="store_true",
                     help="use the scalar (non-lane) characterization path")
    cha.add_argument("--json", metavar="PATH", default=None,
                     help="write fit metrics as a JSON artifact")
    cha.set_defaults(func=_cmd_characterize)

    # listed for `python -m repro --help` only: every real fig3 invocation —
    # including `fig3 --help` — is forwarded to the study's own parser by
    # main() before argparse runs
    sub.add_parser("fig3", add_help=False,
                   help="the paper's Figure 3 study (sharded + cached); "
                        "all arguments forward to repro.bench.fig3")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["fig3"]:
        # forward everything after `fig3` — including --help — to the
        # study's own parser (argparse REMAINDER does not reliably pass
        # optionals through sub-parsers)
        from repro.bench.fig3 import main as fig3_main

        return fig3_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as error:
        # registry lookups and spec validation raise with actionable messages
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
