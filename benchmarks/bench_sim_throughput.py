"""Simulation throughput: compiled vs interpreter backend (cycles/sec).

The compiled backend is the repo's Verilator-style move: the levelized
schedule is code-generated once per module into slot-indexed straight-line
Python (see :mod:`repro.sim.compiled`), so every benchmark, characterization
sweep and Fig. 3 study that is gated on ``Simulator.settle()`` gets the
speedup for free.  This harness measures simulated-cycles-per-second for both
backends on every Figure 3 design plus the paper's headline case — the
*instrumented* MPEG-4 netlist — and records the numbers in
``benchmark.extra_info`` so the perf trajectory (``BENCH_*.json``) captures
the speedup over time.  Writes ``benchmarks/results/sim_throughput.txt``.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.core import InstrumentationConfig
from repro.core.instrument import instrument
from repro.designs.registry import FIGURE3_ORDER, build_flat, get_design
from repro.power import build_seed_library
from repro.sim import Simulator

#: design -> (interp cycles/s, compiled cycles/s, speedup, cycles)
_ROWS = {}


def _format_table() -> str:
    lines = [
        "Simulation throughput — interpreter vs compiled backend",
        "",
        f"{'design':24s} {'cycles':>8s} {'interp c/s':>12s} {'compiled c/s':>14s} {'speedup':>9s}",
    ]
    for name, (interp_cps, compiled_cps, speedup, cycles) in _ROWS.items():
        lines.append(
            f"{name:24s} {cycles:>8d} {interp_cps:>12,.0f} {compiled_cps:>14,.0f} "
            f"{speedup:>8.2f}x"
        )
    return "\n".join(lines)


def _record(benchmark, name, interp, compiled):
    speedup = compiled.cycles_per_second / interp.cycles_per_second
    _ROWS[name] = (
        interp.cycles_per_second,
        compiled.cycles_per_second,
        speedup,
        compiled.cycles,
    )
    benchmark.extra_info.update(
        {
            "cycles": compiled.cycles,
            "interp_cycles_per_s": round(interp.cycles_per_second, 1),
            "compiled_cycles_per_s": round(compiled.cycles_per_second, 1),
            "speedup": round(speedup, 2),
        }
    )
    # every test refreshes the table and the repo-root BENCH_*.json summary,
    # so partial runs (CI smoke with -k, an early failure) still leave a
    # perf-trajectory entry behind instead of an empty trajectory
    write_result(
        "sim_throughput.txt",
        _format_table(),
        metrics={f"speedup_{n}": round(row[2], 2) for n, row in _ROWS.items()},
    )
    return speedup


@pytest.mark.parametrize("design_name", FIGURE3_ORDER)
def test_sim_throughput(benchmark, design_name):
    design = get_design(design_name)
    module = build_flat(design_name)
    interp = Simulator(module, backend="interp").run(design.testbench())
    compiled = benchmark.pedantic(
        lambda: Simulator(module, backend="compiled").run(design.testbench()),
        rounds=3,
        iterations=1,
    )
    _record(benchmark, design_name, interp, compiled)
    # same workload, same results — throughput comparison is apples-to-apples
    assert compiled.cycles == interp.cycles
    assert compiled.final_outputs == interp.final_outputs


def test_instrumented_mpeg4_throughput(benchmark):
    """Acceptance: >=5x simulated-cycles/sec on the instrumented MPEG-4 netlist."""
    library = build_seed_library()
    design = get_design("MPEG4")
    instrumented = instrument(design.build(), library, InstrumentationConfig())
    module = instrumented.module
    interp = Simulator(module, backend="interp").run(design.testbench())
    compiled = benchmark.pedantic(
        lambda: Simulator(module, backend="compiled").run(design.testbench()),
        rounds=3,
        iterations=1,
    )
    speedup = _record(benchmark, "MPEG4 (instrumented)", interp, compiled)
    assert compiled.final_outputs == interp.final_outputs
    assert speedup >= 5.0
