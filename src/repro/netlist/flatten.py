"""Hierarchy elaboration: flattening a module tree into a single flat module.

All analysis and transformation passes (simulation, technology mapping, power
estimation, power-emulation instrumentation, FPGA resource estimation) operate
on flat modules.  :func:`flatten` always returns a *new* module — even for an
already-flat input — so callers are free to mutate the result (e.g. the
instrumentation pass inserts power-estimation hardware) without disturbing the
original design.
"""

from __future__ import annotations

import copy
from typing import Dict, Mapping

from repro import obs
from repro.netlist.components import Component
from repro.netlist.module import Module
from repro.netlist.nets import Net

#: separator used between instance names and child object names in flat names
HIER_SEP = "."


def clone_component(component: Component, new_name: str | None = None) -> Component:
    """Deep-copy a component, detaching it from any nets.

    Internal state (register contents, memory arrays, FSM state) is copied as
    well, which also captures backdoor-initialized memories.
    """
    cloned = copy.deepcopy(component)
    cloned.name = new_name if new_name is not None else component.name
    for port in cloned.ports.values():
        port.net = None
    return cloned


def flatten(module: Module, name: str | None = None) -> Module:
    """Elaborate ``module`` into a fresh, fully flat module."""
    with obs.span("netlist.flatten", module=module.name) as span:
        flat = Module(name if name is not None else module.name)
        flat.attributes = dict(module.attributes)
        _inline(flat, module, prefix="", port_binding=None)
        span.set(n_components=len(flat.components), n_nets=len(flat.nets))
    return flat


def _inline(
    flat: Module,
    source: Module,
    prefix: str,
    port_binding: Mapping[str, Net] | None,
) -> None:
    """Copy the contents of ``source`` into ``flat`` under a name prefix.

    ``port_binding`` maps the source module's port names to nets that already
    exist in ``flat`` (the nets of the parent that the instance was connected
    to); it is ``None`` only for the top level, where the module's ports are
    re-created on ``flat`` itself.
    """
    net_map: Dict[Net, Net] = {}

    if port_binding is not None:
        for port_name, parent_net in port_binding.items():
            net_map[source.ports[port_name].net] = parent_net

    for net in source.nets.values():
        if net in net_map:
            continue
        net_map[net] = flat.add_net(prefix + net.name, net.width)

    if port_binding is None:
        for port_name, port in source.ports.items():
            flat.add_port(port_name, port.direction, net_map[port.net])

    for component in source.components.values():
        cloned = clone_component(component, prefix + component.name)
        flat.add_component(cloned)
        for port_name, port in component.ports.items():
            if port.net is not None:
                cloned.connect(port_name, net_map[port.net])

    for instance in source.instances.values():
        child_binding = {
            child_port: net_map[parent_net]
            for child_port, parent_net in instance.connections.items()
        }
        _inline(
            flat,
            instance.module,
            prefix=prefix + instance.name + HIER_SEP,
            port_binding=child_binding,
        )
