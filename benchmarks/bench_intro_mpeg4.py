"""Introduction data point: MPEG4, 4-frame stimulus, 43 min / 55 min.

The paper motivates power emulation with one absolute number: RTL power
estimation of a 1.25M-transistor MPEG4 decoder over a 4-frame stimulus took
43 minutes (PowerTheater) and 55 minutes (NEC's RTL power estimator).  The
commercial-tool models are calibrated against exactly this point, so this
harness verifies the calibration is self-consistent and reports what power
emulation achieves on the same workload.
Writes ``benchmarks/results/intro_mpeg4.txt``.
"""

from __future__ import annotations

import pytest

from conftest import (
    PAPER_MPEG4_NEC_S,
    PAPER_MPEG4_POWERTHEATER_S,
    write_result,
)


def test_intro_mpeg4_datapoint(benchmark, fig3_study):
    row = benchmark.pedantic(fig3_study.compute, args=("MPEG4",), rounds=1, iterations=1)

    lines = [
        "Introduction data point — MPEG4 decoder, 4-frame stimulus",
        "",
        f"{'quantity':36s} {'paper':>12s} {'this reproduction':>18s}",
        f"{'PowerTheater runtime':36s} {PAPER_MPEG4_POWERTHEATER_S / 60:>10.0f}min "
        f"{row.time_powertheater_s / 60:>16.1f}min",
        f"{'NEC RTL power estimator runtime':36s} {PAPER_MPEG4_NEC_S / 60:>10.0f}min "
        f"{row.time_nec_s / 60:>16.1f}min",
        f"{'power emulation runtime':36s} {'n/a':>12s} {row.time_emulation_s:>17.1f}s",
        f"{'emulation speedup over PowerTheater':36s} {'-':>12s} "
        f"{row.speedup_powertheater:>17.0f}x",
        f"{'emulation speedup over NEC tool':36s} {'-':>12s} {row.speedup_nec:>17.0f}x",
        "",
        f"workload: {row.nominal_cycles} cycles, {row.monitored_bits} monitored bits; "
        f"device {row.device} at {row.emulation_clock_mhz:.0f} MHz",
    ]
    write_result("intro_mpeg4.txt", "\n".join(lines))

    # calibration self-consistency: the tool models reproduce the paper's numbers
    assert row.time_powertheater_s == pytest.approx(PAPER_MPEG4_POWERTHEATER_S, rel=1e-6)
    assert row.time_nec_s == pytest.approx(PAPER_MPEG4_NEC_S, rel=1e-6)
    # emulation completes the same workload in seconds, not tens of minutes
    assert row.time_emulation_s < 60.0
