"""Detailed tests for reports, accuracy helpers, synthesis cost models and the
emulation time model — the pieces the benchmark harnesses lean on."""

from __future__ import annotations

import pytest

from repro.core import (
    InstrumentationConfig,
    ResourceEstimate,
    SynthesisEstimator,
    compare_reports,
    instrument,
)
from repro.core.emulator import EmulationPlatform, EmulationTimeBreakdown, HostInterface
from repro.core.fpga import VIRTEX2_DEVICES
from repro.netlist import NetlistBuilder, flatten
from repro.netlist.components import Adder, Comparator, LogicOp, Multiplier, Mux
from repro.netlist.fsm import FSMController
from repro.netlist.sequential import Accumulator, Memory, Register, RegisterFile, ROM, Counter
from repro.power import CB130M_TECHNOLOGY, RTLPowerEstimator, build_seed_library
from repro.power.report import ComponentPower, PowerReport
from repro.sim import RandomTestbench


# ----------------------------------------------------------------- PowerReport
def make_report(name="dut", estimator="test", powers=(("a", "adder", 100.0), ("m", "multiplier", 300.0))):
    components = {
        n: ComponentPower(name=n, component_type=t, energy_fj=e,
                          average_power_mw=e * 1e-4)
        for n, t, e in powers
    }
    total = sum(c.energy_fj for c in components.values())
    return PowerReport(
        design=name, estimator=estimator, cycles=10, clock_mhz=200.0,
        total_energy_fj=total, average_power_mw=total * 1e-4,
        components=components, cycle_energy_fj=[total / 10.0] * 10,
    )


def test_power_report_views():
    report = make_report()
    assert report.energy_by_type() == {"adder": 100.0, "multiplier": 300.0}
    assert report.top_consumers(1)[0].name == "m"
    assert report.component_share("m") == pytest.approx(0.75)
    assert "dut" in report.table()
    empty = PowerReport(design="x", estimator="e", cycles=0, clock_mhz=200.0,
                        total_energy_fj=0.0, average_power_mw=0.0)
    assert empty.component_share("anything") == 0.0 if "anything" in empty.components else True
    assert empty.relative_error_to(empty) == 0.0


def test_compare_reports_totals_and_components():
    reference = make_report()
    test = make_report(powers=(("a", "adder", 110.0), ("m", "multiplier", 290.0)))
    accuracy = compare_reports(test, reference)
    assert accuracy.relative_error == pytest.approx(0.0, abs=1e-9)
    assert accuracy.per_component_relative_error["a"] == pytest.approx(0.1)
    assert accuracy.per_component_relative_error["m"] == pytest.approx(-1.0 / 30.0)
    assert accuracy.percent_error == pytest.approx(100 * accuracy.relative_error)
    assert "vs" in accuracy.summary()


def test_compare_reports_ignores_unknown_components():
    reference = make_report()
    test = make_report(powers=(("a", "adder", 100.0),))
    accuracy = compare_reports(test, reference)
    assert "m" not in accuracy.per_component_relative_error


# ------------------------------------------------------------------- synthesis
def test_synthesis_costs_reflect_component_structure():
    estimator = SynthesisEstimator()
    adder = estimator.estimate_component(Adder("a", 16))
    mult_hard = estimator.estimate_component(Multiplier("m", 16))
    mult_soft = SynthesisEstimator(use_hard_multipliers=False).estimate_component(
        Multiplier("m2", 16)
    )
    mux = estimator.estimate_component(Mux("x", 16, 4))
    logic = estimator.estimate_component(LogicOp("l", "and", 16))
    register = estimator.estimate_component(Register("r", 16))
    counter = estimator.estimate_component(Counter("c", 16))
    small_memory = estimator.estimate_component(Memory("sm", 8, 32))
    big_memory = estimator.estimate_component(Memory("bm", 16, 1024))
    regfile = estimator.estimate_component(RegisterFile("rf", 16, 16, n_read_ports=2))
    rom = estimator.estimate_component(ROM("rom", 16, list(range(2048))))
    fsm = estimator.estimate_component(
        FSMController("f", ["A", "B", "C"], {"x": 1}, {"y": 2})
    )
    assert mult_hard.multipliers == 1 and mult_hard.luts < 10
    assert mult_soft.multipliers == 0 and mult_soft.luts > 100
    assert adder.luts > logic.luts
    assert mux.luts > logic.luts
    assert register.ffs == 16 and counter.ffs == 16
    assert small_memory.bram_kbits == 0 and small_memory.luts > 0
    assert big_memory.bram_kbits >= 18
    assert rom.bram_kbits >= 18
    assert regfile.luts > 0
    assert fsm.ffs >= 2 and fsm.luts > 0


def test_synthesis_timing_model_monotone_in_depth():
    estimator = SynthesisEstimator()
    assert estimator.achievable_clock_mhz(2) > estimator.achievable_clock_mhz(10)
    assert estimator.achievable_clock_mhz(1) < 600


def test_power_hardware_costs_scale_with_monitored_bits():
    estimator = SynthesisEstimator()
    library = build_seed_library()
    fmt_bits = InstrumentationConfig().coefficient_bits
    from repro.core.fixedpoint import FixedPointFormat
    from repro.core.power_model_hw import HardwarePowerModel

    fmt = FixedPointFormat(bits=fmt_bits, lsb_fj=0.1)
    small = HardwarePowerModel("s", library.lookup(Adder("a", 8)), fmt)
    large = HardwarePowerModel("l", library.lookup(Multiplier("m", 16)), fmt)
    assert estimator.estimate_component(large).luts > estimator.estimate_component(small).luts
    assert estimator.estimate_component(large).ffs > estimator.estimate_component(small).ffs


def test_resource_estimate_infinite_overhead_for_new_resource():
    base = ResourceEstimate(luts=100, ffs=10)
    enhanced = ResourceEstimate(luts=150, ffs=20, multipliers=1)
    overhead = enhanced.overhead_relative_to(base)
    assert overhead["multipliers"] == float("inf")
    assert overhead["bram_kbits"] == 0.0


# -------------------------------------------------------------- emulation time
def build_tiny_design():
    b = NetlistBuilder("tiny")
    a = b.input("a", 8)
    c = b.input("c", 8)
    b.output("y", b.pipe(b.add(a, c)))
    return b.build()


def test_emulation_time_breakdown_components():
    breakdown = EmulationTimeBreakdown(download_s=1.0, execute_s=0.5, stimulus_s=2.0,
                                       readback_s=0.1)
    assert breakdown.total_s == pytest.approx(3.6)
    assert set(breakdown.as_dict()) == {"download_s", "execute_s", "stimulus_s",
                                        "readback_s", "total_s"}


def test_emulation_time_scales_with_workload_and_clock():
    library = build_seed_library()
    design = instrument(build_tiny_design(), library)
    platform = EmulationPlatform(device=VIRTEX2_DEVICES["XC2V1000"])
    short = platform.run(design, RandomTestbench(20, seed=1), workload_cycles=1_000_000)
    design2 = instrument(build_tiny_design(), library)
    long = platform.run(design2, RandomTestbench(20, seed=1), workload_cycles=100_000_000)
    assert long.time_breakdown.execute_s == pytest.approx(
        100 * short.time_breakdown.execute_s
    )
    assert long.time_breakdown.download_s == pytest.approx(short.time_breakdown.download_s)


def test_larger_bitstream_longer_download():
    library = build_seed_library()
    host = HostInterface()
    small_dev = VIRTEX2_DEVICES["XC2V250"]
    large_dev = VIRTEX2_DEVICES["XC2V8000"]
    design = instrument(build_tiny_design(), library)
    t_small = EmulationPlatform(device=small_dev, host=host).run(
        design, RandomTestbench(10, seed=0)
    ).time_breakdown.download_s
    design2 = instrument(build_tiny_design(), library)
    t_large = EmulationPlatform(device=large_dev, host=host).run(
        design2, RandomTestbench(10, seed=0)
    ).time_breakdown.download_s
    assert t_large > t_small


def test_readback_cost_scales_with_per_component_totals():
    library = build_seed_library()
    with_totals = instrument(build_tiny_design(), library,
                             InstrumentationConfig(per_component_totals=True))
    without_totals = instrument(build_tiny_design(), library,
                                InstrumentationConfig(per_component_totals=False))
    platform = EmulationPlatform()
    r1 = platform.run(with_totals, RandomTestbench(10, seed=0))
    r2 = platform.run(without_totals, RandomTestbench(10, seed=0))
    assert r1.time_breakdown.readback_s > r2.time_breakdown.readback_s


# ------------------------------------------------------------ estimator extras
def test_estimator_respects_max_cycles():
    library = build_seed_library()
    module = flatten(build_tiny_design())
    estimator = RTLPowerEstimator(module, library=library)
    report = estimator.estimate(RandomTestbench(1000, seed=2), max_cycles=50)
    assert report.cycles == 50
    assert len(report.cycle_energy_fj) == 50


def test_estimator_cycle_trace_optional():
    library = build_seed_library()
    module = flatten(build_tiny_design())
    report = RTLPowerEstimator(module, library=library).estimate(
        RandomTestbench(20, seed=2), keep_cycle_trace=False
    )
    assert report.cycle_energy_fj == []
    assert report.total_energy_fj > 0


def test_technology_constants_are_sane():
    tech = CB130M_TECHNOLOGY
    assert tech.vdd_v == pytest.approx(1.2)
    assert tech.cell_library.feature_nm == 130
    assert tech.memory_write_energy_fj_per_bit > tech.memory_read_energy_fj_per_bit > 0
