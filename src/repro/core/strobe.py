"""The power strobe generator.

One strobe generator is instantiated per clock domain (our designs are all
single-clock, so the instrumentation pass inserts exactly one).  It raises its
``strobe`` output for a single cycle every ``period`` cycles; the hardware
power models evaluate/flush on that strobe and the aggregator accumulates the
flushed energies one cycle later.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.netlist.sequential import SequentialComponent


class PowerStrobeGenerator(SequentialComponent):
    """Free-running divider producing a 1-cycle-wide strobe every ``period`` cycles."""

    type_name = "power_strobe"

    def __init__(self, name: str, period: int = 1) -> None:
        super().__init__(name)
        if period < 1:
            raise ValueError(f"strobe period must be >= 1, got {period}")
        self.period = period
        self.params = {"period": period}
        self.add_input("enable", 1)
        self.add_output("strobe", 1)
        self._count = 0
        self._strobe = 1 if period == 1 else 0
        self._pending_count = 0
        self._pending_strobe = self._strobe

    def monitored_ports(self):
        return []

    def reset(self) -> None:
        self._count = 0
        self._strobe = 1 if self.period == 1 else 0
        self._pending_count = 0
        self._pending_strobe = self._strobe

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"strobe": self._strobe}

    def capture(self, inputs: Mapping[str, int]) -> None:
        if not (inputs.get("enable", 1) & 1):
            self._pending_count = self._count
            self._pending_strobe = 0
            return
        next_count = self._count + 1
        if next_count >= self.period:
            next_count = 0
        self._pending_count = next_count
        self._pending_strobe = 1 if next_count == self.period - 1 or self.period == 1 else 0

    def commit(self) -> None:
        self._count = self._pending_count
        self._strobe = self._pending_strobe
