"""Sweep-level robustness: on_error policy, resume, manifest, CLI exit codes.

These run the real ``sweep()`` over registry designs with faults injected at
the worker site, all in serial mode (``n_workers=0``) so they stay fast —
the pool-specific machinery has its own tests in ``test_resilience.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import RunSpec, SweepInterrupted, SweepSpec, sweep
from repro.api.cli import main
from repro.api.spec import EXECUTION_POLICY_FIELDS
from repro.api.sweep import SweepResult, load_manifest, manifest_path
from repro.bench.cache import ResultCache
from repro.resilience import faults


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _spec(tmp_path, **overrides):
    base = dict(designs=("binary_search",), seeds=(0, 1), max_cycles=32,
                cache_dir=str(tmp_path / "cache"))
    base.update(overrides)
    return SweepSpec(**base)


# ------------------------------------------------------------------- specs
class TestSpecPolicyFields:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec(design="binary_search", timeout_s=-1.0)
        with pytest.raises(ValueError):
            SweepSpec(designs=("binary_search",), max_retries=-1)
        with pytest.raises(ValueError):
            SweepSpec(designs=("binary_search",), on_error="explode")

    def test_sweep_copies_policy_into_run_specs(self):
        spec = SweepSpec(designs=("binary_search",), seeds=(0,),
                         timeout_s=2.0, max_retries=3)
        run_spec = spec.run_specs()[0]
        assert run_spec.timeout_s == 2.0 and run_spec.max_retries == 3

    def test_cache_dict_excludes_execution_policy(self, tmp_path):
        # changing the retry budget must not change cache identity
        a = RunSpec(design="binary_search", max_cycles=32)
        b = RunSpec(design="binary_search", max_cycles=32,
                    timeout_s=9.0, max_retries=5)
        assert a.to_dict() != b.to_dict()
        assert a.cache_dict() == b.cache_dict()
        for name in EXECUTION_POLICY_FIELDS:
            assert name not in a.cache_dict()
        cache = ResultCache(str(tmp_path), namespace="estimate")
        assert cache.key(spec=a.cache_dict()) == cache.key(spec=b.cache_dict())


# --------------------------------------------------------------- on_error
class TestOnErrorPolicy:
    def test_raise_aborts_with_original_exception(self, tmp_path):
        faults.install_plan("worker:fail")
        with pytest.raises(faults.InjectedFault):
            sweep(_spec(tmp_path))

    def test_skip_returns_healthy_results_and_failures(self, tmp_path):
        spec = _spec(tmp_path, designs=("binary_search", "DCT"),
                     on_error="skip")
        # the expansion groups per design: payload 1 (DCT) always fails
        faults.install_plan("worker@1:fail")
        result = sweep(spec)
        assert not result.ok
        assert {r.spec.design for r in result.results} == {"binary_search"}
        assert len(result.results) == 2
        (failure,) = result.failures
        assert failure.kind == "exception"
        assert failure.error_type == "InjectedFault"
        specs = failure.context["specs"]
        assert {d["design"] for d in specs} == {"DCT"}

    def test_result_round_trips_with_failures(self, tmp_path):
        spec = _spec(tmp_path, on_error="skip")
        faults.install_plan("worker:fail")
        result = sweep(spec)
        clone = SweepResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert not clone.ok
        assert [f.kind for f in clone.failures] == [f.kind for f in result.failures]

    def test_transient_failure_records_attempts(self, tmp_path):
        faults.install_plan("worker@0:fail*2")
        result = sweep(_spec(tmp_path, max_retries=3))
        assert result.ok
        assert all(r.metadata["task_attempts"] == 3 for r in result.results)


# ----------------------------------------------------------------- resume
class TestResume:
    def test_resume_requires_cache_dir(self):
        spec = SweepSpec(designs=("binary_search",), seeds=(0,), max_cycles=32)
        with pytest.raises(ValueError, match="cache_dir"):
            sweep(spec, resume=True)

    def test_resume_recomputes_only_failures(self, tmp_path):
        spec = _spec(tmp_path, designs=("binary_search", "DCT"),
                     on_error="skip")
        faults.install_plan("worker@1:fail")
        first = sweep(spec)
        assert len(first.results) == 2 and first.failures

        faults.install_plan(None)
        second = sweep(spec, resume=True)
        assert second.ok and len(second.results) == 4
        # the healthy group came straight from disk
        assert second.cache_hits == 2

    def test_manifest_tracks_task_status(self, tmp_path):
        spec = _spec(tmp_path, designs=("binary_search", "DCT"),
                     on_error="skip")
        faults.install_plan("worker@1:fail")
        sweep(spec)
        manifest = load_manifest(spec)
        statuses = manifest["tasks"]
        assert statuses["binary_search[rtl] seed 0"] == "done"
        assert statuses["DCT[rtl] seed 0"] == "failed"

        faults.install_plan(None)
        sweep(spec, resume=True)
        statuses = load_manifest(spec)["tasks"]
        assert statuses["binary_search[rtl] seed 0"] == "cached"
        assert statuses["DCT[rtl] seed 0"] == "done"

    def test_manifest_identity_ignores_execution_policy(self, tmp_path):
        spec = _spec(tmp_path)
        tweaked = _spec(tmp_path, timeout_s=60.0, max_retries=9,
                        on_error="skip", n_workers=8)
        assert manifest_path(spec) == manifest_path(tweaked)


# ------------------------------------------------------------------ Ctrl-C
class TestInterruption:
    def test_interrupt_carries_partial_result(self, tmp_path):
        spec = _spec(tmp_path, designs=("binary_search", "DCT"),
                     on_error="skip")
        # payload 0 completes, payload 1 raises KeyboardInterrupt
        faults.install_plan("worker@1:interrupt")
        with pytest.raises(SweepInterrupted) as exc_info:
            sweep(spec)
        partial = exc_info.value.partial
        assert partial.interrupted and not partial.ok
        assert {r.spec.design for r in partial.results} == {"binary_search"}
        # completed work was persisted: a resume finishes from disk
        faults.install_plan(None)
        result = sweep(spec, resume=True)
        assert result.ok and result.cache_hits == 2


# --------------------------------------------------------------------- CLI
class TestCli:
    BASE = ["sweep", "--designs", "binary_search", "--seeds", "0",
            "--max-cycles", "32"]

    def test_skip_policy_exits_3_on_failures(self, monkeypatch, capsys):
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "worker:fail")
        assert main(self.BASE + ["--on-error", "skip"]) == 3
        out = capsys.readouterr().out
        assert "FAILED" in out and "InjectedFault" in out

    def test_healthy_sweep_exits_0(self, capsys):
        assert main(self.BASE + ["--max-retries", "1"]) == 0
        assert "1 runs" in capsys.readouterr().out

    def test_interrupt_exits_130_and_persists(self, tmp_path, monkeypatch,
                                              capsys):
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "worker:interrupt")
        code = main(self.BASE + ["--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 130
        assert "--resume" in captured.err

    def test_resume_without_cache_dir_is_a_usage_error(self, capsys):
        assert main(self.BASE + ["--resume"]) == 2
        assert "cache_dir" in capsys.readouterr().err
