"""The end-to-end power-emulation design flow (paper Fig. 2).

Step 1 — power model inference and estimation-hardware generation
          (:func:`repro.core.instrument.instrument`),
Step 2 — FPGA synthesis / capacity check / timing
          (:class:`repro.core.synthesis.SynthesisEstimator`,
           :mod:`repro.core.fpga`),
Step 3 — download to the platform, execute the testbench, read back power
          (:class:`repro.core.emulator.EmulationPlatform`).

The flow also records the cost of the inserted power-estimation hardware
(the area-overhead concern raised in the paper's closing discussion) and can
compare its modeled runtime against the commercial-tool runtime models —
which is exactly the comparison plotted in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.emulator import EmulationPlatform, EmulationResult
from repro.core.instrument import InstrumentationConfig, InstrumentedDesign, instrument
from repro.core.synthesis import SynthesisEstimator, SynthesisResult
from repro.netlist.flatten import flatten
from repro.netlist.module import Module
from repro.power.commercial import CommercialToolModel
from repro.power.library import PowerModelLibrary, build_seed_library
from repro.power.report import PowerReport
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.testbench import Testbench


@dataclass
class FlowReport:
    """Everything the power-emulation flow produces for one design."""

    design: str
    instrumented: InstrumentedDesign
    base_synthesis: SynthesisResult
    enhanced_synthesis: SynthesisResult
    emulation: EmulationResult
    #: fractional resource increase caused by the power-estimation hardware
    instrumentation_overhead: Dict[str, float] = field(default_factory=dict)

    @property
    def power_report(self) -> PowerReport:
        return self.emulation.power_report

    @property
    def emulation_time_s(self) -> float:
        return self.emulation.time_breakdown.total_s

    def speedup_over(self, tool: CommercialToolModel,
                     workload_cycles: Optional[int] = None) -> float:
        """Speedup of power emulation over a software tool for this workload."""
        cycles = workload_cycles if workload_cycles is not None else self.emulation.workload_cycles
        tool_time = tool.estimate_runtime_s(cycles, self.instrumented.monitored_bits)
        return tool_time / self.emulation_time_s

    def summary(self) -> str:
        emu = self.emulation
        lines = [
            f"power-emulation flow report for {self.design!r}",
            f"  power models inserted : {self.instrumented.n_power_models} "
            f"({self.instrumented.monitored_bits} monitored bits)",
            f"  base design           : {self.base_synthesis.summary()}",
            f"  enhanced design        : {self.enhanced_synthesis.summary()}",
            f"  LUT overhead           : {self.instrumentation_overhead.get('luts', 0.0):.1%}",
            f"  FF overhead            : {self.instrumentation_overhead.get('ffs', 0.0):.1%}",
            f"  device                 : {emu.device.name} "
            f"(LUT util {emu.utilization['luts']:.1%})",
            f"  emulation clock        : {emu.emulation_clock_mhz:.1f} MHz",
            f"  workload               : {emu.workload_cycles} cycles "
            f"({emu.executed_cycles} executed)",
            f"  emulation time (model) : {self.emulation_time_s:.3f} s "
            f"{emu.time_breakdown.as_dict()}",
            f"  average power          : {emu.power_report.average_power_mw:.4f} mW",
        ]
        return "\n".join(lines)


class PowerEmulationFlow:
    """Orchestrates instrument -> synthesize -> emulate for one design."""

    def __init__(
        self,
        library: Optional[PowerModelLibrary] = None,
        technology: Technology = CB130M_TECHNOLOGY,
        config: Optional[InstrumentationConfig] = None,
        synthesis: Optional[SynthesisEstimator] = None,
        platform: Optional[EmulationPlatform] = None,
    ) -> None:
        self.technology = technology
        self.library = library if library is not None else build_seed_library(technology)
        self.config = config if config is not None else InstrumentationConfig()
        self.synthesis = synthesis if synthesis is not None else SynthesisEstimator()
        self.platform = platform if platform is not None else EmulationPlatform(
            synthesis=self.synthesis
        )

    def run(
        self,
        module: Module,
        testbench: Testbench,
        workload_cycles: Optional[int] = None,
        testbench_on_fpga: bool = True,
        max_cycles: Optional[int] = None,
        profile_window: Optional[int] = None,
    ) -> FlowReport:
        """Run the full Fig. 2 flow on one design.

        ``profile_window`` sets the power-profile readback interval in
        cycles (default: the instrumentation strobe period) — see
        :meth:`EmulationPlatform.run`.
        """
        flat = flatten(module)
        base_synthesis = self.synthesis.estimate_module(flat)
        instrumented = instrument(module, self.library, self.config)
        enhanced_synthesis = self.synthesis.estimate_module(instrumented.module)
        emulation = self.platform.run(
            instrumented,
            testbench,
            technology=self.technology,
            workload_cycles=workload_cycles,
            testbench_on_fpga=testbench_on_fpga,
            max_cycles=max_cycles,
            profile_window=profile_window,
        )
        overhead = enhanced_synthesis.resources.overhead_relative_to(base_synthesis.resources)
        return FlowReport(
            design=module.name,
            instrumented=instrumented,
            base_synthesis=base_synthesis,
            enhanced_synthesis=enhanced_synthesis,
            emulation=emulation,
            instrumentation_overhead=overhead,
        )
