"""The power aggregator.

The paper implements aggregation "as a sequence of additions to accumulate
the outputs of the power models".  Our aggregator component adds all power
model outputs presented in a cycle into a wide accumulator register that
holds the design's total energy so far; the emulation host reads this
register (or any individual model's output) at the end of the run — or
periodically, for a power-over-time profile.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.netlist.sequential import SequentialComponent
from repro.netlist.signals import mask_value


class PowerAggregator(SequentialComponent):
    """Adds ``n_inputs`` energy values into a running total every cycle."""

    type_name = "power_aggregator"

    def __init__(
        self,
        name: str,
        n_inputs: int,
        input_width: int = 32,
        total_width: int = 48,
    ) -> None:
        super().__init__(name)
        if n_inputs < 1:
            raise ValueError("aggregator needs at least one energy input")
        self.n_inputs = n_inputs
        self.input_width = input_width
        self.total_width = total_width
        self.params = {
            "n_inputs": n_inputs,
            "input_width": input_width,
            "total_width": total_width,
        }
        for i in range(n_inputs):
            self.add_input(f"e{i}", input_width)
        self.add_input("clear", 1)
        self.add_output("total", total_width)
        self._total = 0
        self._pending = 0

    def monitored_ports(self):
        return []

    @property
    def value(self) -> int:
        """Current accumulated energy code (what the host reads back)."""
        return self._total

    def reset(self) -> None:
        self._total = 0
        self._pending = 0

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"total": self._total}

    def capture(self, inputs: Mapping[str, int]) -> None:
        if inputs.get("clear", 0) & 1:
            self._pending = 0
            return
        cycle_sum = 0
        for i in range(self.n_inputs):
            cycle_sum += inputs.get(f"e{i}", 0)
        self._pending = mask_value(self._total + cycle_sum, self.total_width)

    def commit(self) -> None:
        self._total = self._pending
