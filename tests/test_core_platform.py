"""Tests for the FPGA device models, synthesis estimator, emulation platform and flow."""

from __future__ import annotations

import pytest

from repro.core import (
    EmulationPlatform,
    FPGADevice,
    InstrumentationConfig,
    PowerEmulationFlow,
    ResourceEstimate,
    SynthesisEstimator,
    VIRTEX2_DEVICES,
    instrument,
    smallest_fitting_device,
    sweep_coefficient_bits,
)
from repro.core.emulator import CapacityError, HostInterface
from repro.netlist import NetlistBuilder, flatten
from repro.power import NEC_RTPOWER, POWERTHEATER, RTLPowerEstimator, build_seed_library
from repro.sim import RandomTestbench


def build_design(width=8, name="dut"):
    b = NetlistBuilder(name)
    a = b.input("a", width)
    x = b.input("x", width)
    product = b.mul(a, x, width_y=2 * width, name="mult")
    acc = b.accumulator("acc", 2 * width + 8)
    b.drive("acc", d=b.zext(product, 2 * width + 8), en=b.const(1, 1), clear=b.const(0, 1))
    b.output("acc", acc)
    mem_rdata = b.memory("buffer", width, 256, we=b.const(0, 1), addr=b.slice(a, 7, 0),
                         wdata=x, sync_read=True)
    b.output("probe", mem_rdata)
    return b.build()


@pytest.fixture(scope="module")
def library():
    return build_seed_library()


# ------------------------------------------------------------------ synthesis
def test_resource_estimate_arithmetic():
    a = ResourceEstimate(luts=10, ffs=5, logic_depth=3)
    b = ResourceEstimate(luts=2, ffs=1, bram_kbits=18, logic_depth=5)
    total = a + b
    assert total.luts == 12 and total.ffs == 6 and total.bram_kbits == 18
    assert total.logic_depth == 5
    assert a.scaled(2.0).luts == 20
    overhead = total.overhead_relative_to(a)
    assert overhead["luts"] == pytest.approx(0.2)
    assert overhead["bram_kbits"] == float("inf")


def test_synthesis_estimator_module_totals(library):
    estimator = SynthesisEstimator()
    flat = flatten(build_design())
    result = estimator.estimate_module(flat)
    assert result.resources.luts > 0
    assert result.resources.ffs > 0
    assert result.resources.bram_kbits > 0      # the 256x8 buffer maps to BRAM
    assert result.resources.multipliers >= 1    # 8x8 multiplier uses a MULT18
    assert 0 < result.achievable_clock_mhz < 700
    assert result.per_component["mult"].multipliers == 1
    assert "LUTs" in result.summary()


def test_synthesis_wider_design_uses_more_resources():
    estimator = SynthesisEstimator()
    small = estimator.estimate_module(flatten(build_design(width=8, name="small")))
    large = estimator.estimate_module(flatten(build_design(width=16, name="large")))
    assert large.resources.luts > small.resources.luts
    assert large.resources.ffs > small.resources.ffs


def test_synthesis_rejects_hierarchical():
    from repro.netlist.module import Module

    child = build_design()
    parent = Module("p")
    a = parent.add_input("a", 8)
    x = parent.add_input("x", 8)
    acc = parent.add_net("acc", 24)
    probe = parent.add_net("probe", 8)
    parent.add_instance("u", child, {"a": a, "x": x, "acc": acc, "probe": probe})
    with pytest.raises(ValueError, match="hierarchical"):
        SynthesisEstimator().estimate_module(parent)


def test_instrumentation_overhead_is_visible(library):
    estimator = SynthesisEstimator()
    module = build_design()
    base = estimator.estimate_module(flatten(module))
    enhanced = estimator.estimate_module(instrument(module, library).module)
    assert enhanced.resources.luts > base.resources.luts
    assert enhanced.resources.ffs > base.resources.ffs


# ----------------------------------------------------------------------- FPGA
def test_device_fit_and_utilization():
    device = VIRTEX2_DEVICES["XC2V1000"]
    small = ResourceEstimate(luts=1000, ffs=800, bram_kbits=72, multipliers=2)
    too_big = ResourceEstimate(luts=500_000, ffs=10, bram_kbits=0, multipliers=0)
    assert device.fits(small)
    assert not device.fits(too_big)
    util = device.utilization(small)
    assert 0 < util["luts"] < 1
    assert smallest_fitting_device(small).name == "XC2V250" or smallest_fitting_device(small).fits(small)
    assert smallest_fitting_device(too_big) is None


def test_device_family_is_ordered():
    sizes = [d.luts for d in sorted(VIRTEX2_DEVICES.values(), key=lambda d: d.luts)]
    assert sizes == sorted(sizes)
    assert len(VIRTEX2_DEVICES) >= 6


# ------------------------------------------------------------------- platform
def test_emulation_platform_run(library):
    module = build_design()
    design = instrument(module, library, InstrumentationConfig(coefficient_bits=16))
    platform = EmulationPlatform()
    result = platform.run(design, RandomTestbench(200, seed=5), workload_cycles=1_000_000)
    assert result.device.fits(result.synthesis.resources)
    assert result.executed_cycles == 200
    assert result.workload_cycles == 1_000_000
    assert result.emulation_clock_mhz <= result.device.max_clock_mhz
    assert result.power_report.average_power_mw > 0
    assert result.power_report.estimator == "power-emulation"
    breakdown = result.time_breakdown
    assert breakdown.total_s == pytest.approx(
        breakdown.download_s + breakdown.execute_s + breakdown.stimulus_s + breakdown.readback_s
    )
    assert breakdown.execute_s == pytest.approx(
        1_000_000 / (result.emulation_clock_mhz * 1e6)
    )
    assert 0 < result.utilization["luts"] <= 1


def test_emulation_platform_capacity_error(library):
    tiny = FPGADevice("tiny", luts=10, ffs=10, bram_kbits=0, multipliers_18x18=0,
                      max_clock_mhz=50.0, bitstream_mbits=0.1)
    design = instrument(build_design(), library)
    with pytest.raises(CapacityError):
        EmulationPlatform(device=tiny).run(design, RandomTestbench(10, seed=0))


def test_host_stimulus_streaming_cost(library):
    design = instrument(build_design(), library)
    platform = EmulationPlatform(host=HostInterface(stimulus_cycles_per_s=100_000.0))
    streamed = platform.run(design, RandomTestbench(50, seed=1), workload_cycles=500_000,
                            testbench_on_fpga=False)
    onboard = platform.run(design, RandomTestbench(50, seed=1), workload_cycles=500_000,
                           testbench_on_fpga=True)
    assert streamed.time_breakdown.stimulus_s > 0
    assert onboard.time_breakdown.stimulus_s == 0
    assert streamed.time_breakdown.total_s > onboard.time_breakdown.total_s


# ----------------------------------------------------------------------- flow
def test_power_emulation_flow_end_to_end(library):
    flow = PowerEmulationFlow(library=library)
    module = build_design()
    report = flow.run(module, RandomTestbench(150, seed=7), workload_cycles=2_000_000)
    assert report.design == module.name
    assert report.instrumented.n_power_models > 0
    assert report.instrumentation_overhead["luts"] > 0
    assert report.emulation_time_s > 0
    # power emulation beats both software tools on a multi-million-cycle workload
    assert report.speedup_over(POWERTHEATER) > 1
    assert report.speedup_over(NEC_RTPOWER) > 1
    assert "power-emulation flow report" in report.summary()
    # flow's emulated power agrees with the software estimator
    reference = RTLPowerEstimator(flatten(module), library=library).estimate(
        RandomTestbench(150, seed=7)
    )
    assert report.power_report.average_power_mw == pytest.approx(
        reference.average_power_mw, rel=0.02
    )


def test_sweep_coefficient_bits_monotone_trend(library):
    module = build_design()
    results = sweep_coefficient_bits(
        module,
        lambda: RandomTestbench(80, seed=13),
        bits_values=(4, 8, 16),
        library=library,
    )
    errors = {bits: abs(acc.relative_error) for bits, acc in results}
    assert errors[16] <= errors[4]
    assert errors[16] < 0.01
    for _, accuracy in results:
        assert "vs" in accuracy.summary()
