"""Persistent job ledger + shared result store of the estimation service.

Two stores behind one object:

* **Job records** live in the ``job`` namespace of a
  :class:`~repro.bench.cache.ResultCache` — one JSON file per job, rewritten
  on every state transition, so a restarted server (or ``python -m repro
  status``) can list what happened across process lifetimes.
* **Results** live in the very same ``estimate`` namespace, under the very
  same ``cache.key(spec=spec.cache_dict())`` keys, that the
  :func:`repro.api.sweep` runner uses.  The server and the sweep therefore
  *share* one result store: a job whose spec was already swept is served from
  cache without simulating, and a sweep after a serving session hits the
  server's results.

Without a directory the store is purely in-memory: job records and results
die with the process, which is exactly right for tests and embedded use.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Dict, List, Optional, Tuple

from repro.api.spec import EstimateResult, RunSpec
from repro.api.sweep import CACHE_NAMESPACE
from repro.bench.cache import ResultCache
from repro.serve.protocol import JobRecord

#: cache namespace holding job records (results use ``estimate``)
JOB_NAMESPACE = "job"


def new_job_id() -> str:
    """A short, collision-resistant job identifier."""
    return f"j{uuid.uuid4().hex[:12]}"


class JobStore:
    """Job records + results, in-memory always and on disk when configured."""

    def __init__(
        self, directory: Optional[str] = None, max_bytes: Optional[int] = None
    ) -> None:
        self.directory = os.path.abspath(directory) if directory else None
        self._records: Dict[str, JobRecord] = {}
        self._jobs: Optional[ResultCache] = None
        self._results: Optional[ResultCache] = None
        if self.directory:
            self._jobs = ResultCache(self.directory, namespace=JOB_NAMESPACE)
            self._results = ResultCache(
                self.directory, namespace=CACHE_NAMESPACE, max_bytes=max_bytes
            )
        #: key() helper also in memory-only mode (never touches disk)
        self._keyer = self._results or ResultCache(
            "<memory>", namespace=CACHE_NAMESPACE
        )
        self._mem_results: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------- job records
    def create(self, spec: RunSpec) -> JobRecord:
        record = JobRecord(
            job_id=new_job_id(), spec=spec, submitted_at=time.time()
        )
        self._records[record.job_id] = record
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        """Persist the record's current state (no-op in memory-only mode)."""
        if self._jobs is not None:
            self._jobs.put(
                self._jobs.key(job_id=record.job_id), record.to_dict()
            )

    def get(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> List[JobRecord]:
        """Every known job record, in submission order."""
        return sorted(self._records.values(), key=lambda r: r.submitted_at)

    def load_persisted(self) -> List[JobRecord]:
        """Read every job record present on disk into this store.

        Lets a restarted server (or a status command) see jobs from earlier
        server processes.  Records already known in memory win — they are at
        least as fresh as their on-disk copy.
        """
        if self.directory is None or not os.path.isdir(self.directory):
            return []
        loaded: List[JobRecord] = []
        prefix = f"{JOB_NAMESPACE}-"
        for name in sorted(os.listdir(self.directory)):
            if not (name.startswith(prefix) and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.directory, name)) as handle:
                    record = JobRecord.from_dict(json.load(handle))
            except (OSError, ValueError, KeyError):
                continue
            if record.job_id not in self._records:
                self._records[record.job_id] = record
                loaded.append(record)
        return loaded

    # ---------------------------------------------------------------- results
    def result_key(self, spec: RunSpec) -> str:
        """The shared (sweep-compatible) result-cache key of one spec."""
        return self._keyer.key(spec=spec.cache_dict())

    def cached_result(
        self, spec: RunSpec
    ) -> Optional[Tuple[str, Dict[str, object]]]:
        """(key, result payload) when this spec's result already exists."""
        key = self.result_key(spec)
        if self._results is not None:
            payload = self._results.get(key)
        else:
            payload = self._mem_results.get(key)
        if payload is None:
            return None
        return key, payload

    def put_result(self, spec: RunSpec, payload: Dict[str, object]) -> str:
        key = self.result_key(spec)
        if self._results is not None:
            self._results.put(key, payload)
        else:
            self._mem_results[key] = payload
        return key

    def get_result(self, record: JobRecord) -> Optional[EstimateResult]:
        """The completed job's result, or None when it is gone (evicted)."""
        if record.result_key is None:
            return None
        if self._results is not None:
            payload = self._results.get(record.result_key)
        else:
            payload = self._mem_results.get(record.result_key)
        if payload is None:
            return None
        result = EstimateResult.from_dict(payload)
        # a cached payload may predate this job (sweep-written or another
        # job's lane): the result always names the job that fetched it
        result.metadata["job_id"] = record.job_id
        return result

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, object]:
        if self._results is not None:
            return self._results.stats()
        return {
            "directory": None,
            "namespace": CACHE_NAMESPACE,
            "entries": len(self._mem_results),
            "bytes": sum(
                len(json.dumps(p)) for p in self._mem_results.values()
            ),
            "max_bytes": None,
        }
