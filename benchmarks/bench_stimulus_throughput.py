"""Stimulus driving throughput: array driver vs per-lane LaneView loop.

The per-lane Python drive loop is the piece ROADMAP.md named as bounding
lane-sweep speedup at low lane counts: every cycle it calls ``drive()`` once
per lane, walks the returned dict, masks and writes each value — ``O(n_lanes
× n_ports)`` interpreter work before any simulation happens.  Spec-backed
testbenches compile into chunked lane tensors instead
(:mod:`repro.stim.compile`) and the lane power estimator writes them as one
NumPy row per port per cycle, independent of lane count.

This harness runs the *same* :class:`~repro.stim.testbench.SpecTestbench`
set through :class:`~repro.power.lane_estimator.BatchRTLPowerEstimator`
twice — ``use_array_driver=True`` vs ``False`` — so the simulation and
macromodel work is identical and only the drive path differs.  Results are
exactly equal either way (asserted); the acceptance floor is that the array
driver wins at *low* lane counts (≤ 32 lanes), where the old loop's
per-lane overhead used to be amortized worst.

Writes ``benchmarks/results/stimulus_throughput.txt`` and the repo-root
``BENCH_stimulus.json`` trajectory artifact.  ``REPRO_BENCH_STIM_CYCLES``
overrides the workload length (CI smoke runs use a small value).
"""

from __future__ import annotations

import os
import time

from repro.designs.registry import build_flat, get_design
from repro.power import build_seed_library
from repro.power.lane_estimator import BatchRTLPowerEstimator
from repro.stim import SpecTestbench

from conftest import write_result

N_CYCLES = int(os.environ.get("REPRO_BENCH_STIM_CYCLES", "384"))
DESIGN = "HVPeakF"
LANE_COUNTS = (8, 16, 32)


def _testbenches(spec, n_lanes):
    return [SpecTestbench(spec, seed=seed) for seed in range(n_lanes)]


def _time_path(estimator, spec, n_lanes, use_array_driver):
    best = float("inf")
    reports = None
    for _ in range(3):
        start = time.perf_counter()
        reports = estimator.estimate_all(
            _testbenches(spec, n_lanes),
            keep_cycle_trace=False,
            use_array_driver=use_array_driver,
        )
        best = min(best, time.perf_counter() - start)
    return best, reports


def test_stimulus_driver_throughput(benchmark):
    spec = get_design(DESIGN).make_stimulus_spec().replace(n_cycles=N_CYCLES)
    estimator = BatchRTLPowerEstimator(build_flat(DESIGN), library=build_seed_library())
    # warm the batch compilation and stimulus machinery once
    estimator.estimate_all(_testbenches(spec.replace(n_cycles=8), 2))

    rows = {}
    for n_lanes in LANE_COUNTS:
        t_array, array_reports = _time_path(estimator, spec, n_lanes, True)
        t_loop, loop_reports = _time_path(estimator, spec, n_lanes, False)
        # identical lane machinery, identical streams: exactly equal results
        for a, b in zip(array_reports, loop_reports):
            assert a.total_energy_fj == b.total_energy_fj
            assert a.cycles == b.cycles
        rows[n_lanes] = {
            "array_s": t_array,
            "laneview_s": t_loop,
            "array_lane_cycles_per_s": n_lanes * N_CYCLES / t_array,
            "laneview_lane_cycles_per_s": n_lanes * N_CYCLES / t_loop,
            "speedup": t_loop / t_array,
        }

    benchmark.pedantic(
        lambda: estimator.estimate_all(
            _testbenches(spec, LANE_COUNTS[-1]), keep_cycle_trace=False
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {f"speedup_{n}_lanes": round(row["speedup"], 2) for n, row in rows.items()}
    )

    lines = [
        f"Stimulus driving throughput — array driver vs per-lane LaneView loop",
        f"({DESIGN}, {N_CYCLES}-cycle spec stimulus; identical per-lane reports)",
        "",
        f"{'lanes':>5s} {'loop lane-cyc/s':>16s} {'array lane-cyc/s':>17s} {'speedup':>9s}",
    ]
    for n_lanes, row in rows.items():
        lines.append(
            f"{n_lanes:5d} {row['laneview_lane_cycles_per_s']:16,.0f} "
            f"{row['array_lane_cycles_per_s']:17,.0f} {row['speedup']:8.2f}x"
        )
    write_result(
        "stimulus_throughput.txt",
        "\n".join(lines),
        metrics={
            "design": DESIGN,
            "n_cycles": N_CYCLES,
            **{f"speedup_{n}_lanes": round(r["speedup"], 2) for n, r in rows.items()},
        },
        bench_name="stimulus",
    )

    # acceptance: the array driver beats the per-lane loop at every low lane
    # count (the regime the ROADMAP called out)
    for n_lanes, row in rows.items():
        assert row["speedup"] > 1.0, (
            f"array driver slower than the LaneView loop at {n_lanes} lanes: "
            f"{row['speedup']:.2f}x"
        )
