"""On-disk result cache for benchmark studies.

Entries are small JSON files in a cache directory, named by the SHA-256 of a
canonical key.  Every key embeds a *code fingerprint* — a hash over the
``repro`` package sources — so results computed by an older version of the
code can never be served for the current one: editing any ``.py`` file under
``repro/`` silently invalidates the whole cache, while repeat runs of
unchanged code hit disk instead of recomputing.

Robustness: an entry that exists but cannot be parsed (truncated write on a
full disk, bit rot, a concurrent writer from an older interpreter) is
*quarantined* — renamed to ``<entry>.corrupt`` so the next lookup is an
honest miss instead of re-reading (and re-reporting) the same corruption
forever; ``corruption_count`` on the cache object surfaces how many entries
were quarantined.  Cache reads and writes are also a named fault-injection
site (``cache``) of :mod:`repro.resilience.faults`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.resilience.faults import maybe_inject

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    Computed once per process (a few milliseconds); cache keys embed it so
    results are keyed to the exact code that produced them.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


class ResultCache:
    """JSON file cache keyed by hashed, code-fingerprinted key dicts."""

    def __init__(self, directory: str, namespace: str = "bench") -> None:
        self.directory = os.path.abspath(directory)
        self.namespace = namespace
        #: unreadable entries quarantined (renamed to ``*.corrupt``) so far
        self.corruption_count = 0

    # ------------------------------------------------------------------ keys
    def key(self, **parts) -> str:
        """Hash a key from JSON-serializable parts (+ the code fingerprint)."""
        payload = dict(parts)
        payload["__code__"] = code_fingerprint()
        payload["__namespace__"] = self.namespace
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{self.namespace}-{key}.json")

    # ------------------------------------------------------------------- I/O
    def get(self, key: str) -> Optional[Dict]:
        """The cached value for ``key``, or None on miss.

        A present-but-unparsable entry is quarantined (renamed to
        ``*.corrupt``, counted in ``corruption_count``) and reported as a
        miss, so corruption costs one recompute instead of one per lookup.
        """
        maybe_inject("cache")
        path = self._path(key)
        try:
            with open(path) as handle:
                return json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._quarantine(path)
            return None

    def _quarantine(self, path: str) -> None:
        self.corruption_count += 1
        try:
            os.replace(path, path + ".corrupt")
        except OSError:  # pragma: no cover - raced or read-only directory
            pass

    def put(self, key: str, value: Dict) -> None:
        """Atomically persist ``value`` (a JSON-serializable dict)."""
        maybe_inject("cache")
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(value, handle, sort_keys=True)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete this namespace's entries; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        prefix = f"{self.namespace}-"
        for name in os.listdir(self.directory):
            if name.startswith(prefix) and name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed
