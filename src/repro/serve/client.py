"""In-process client for :class:`~repro.serve.server.PowerServer`.

The thinnest possible front end: a :class:`Client` wraps a running server in
the same event loop and exposes submit/status/result/events plus the bulk
helper :meth:`Client.estimate_all` — submit every spec *concurrently*, then
gather results.  Concurrent submission is what makes coalescing work: specs
landing inside one coalescing window merge into one shared lane block, so

::

    async with PowerServer() as server:
        results = await Client(server).estimate_all(specs)

is the served counterpart of ``RTLEstimatorAdapter.estimate_many`` — same
results (bit-identical), same single compile, but jobs arrive independently,
as they would from separate network clients.
"""

from __future__ import annotations

from typing import AsyncIterator, Dict, List, Sequence, Union

import asyncio

from repro.api.spec import EstimateResult, RunSpec
from repro.serve.protocol import JobRecord, ProgressEvent
from repro.serve.server import PowerServer


class Client:
    """In-process handle on a running :class:`PowerServer`."""

    def __init__(self, server: PowerServer) -> None:
        self._server = server

    async def submit(self, spec: Union[RunSpec, Dict[str, object]]) -> str:
        return await self._server.submit(spec)

    def status(self, job_id: str) -> JobRecord:
        return self._server.status(job_id)

    async def wait(self, job_id: str) -> JobRecord:
        return await self._server.wait(job_id)

    async def result(self, job_id: str) -> EstimateResult:
        return await self._server.result(job_id)

    def events(self, job_id: str) -> AsyncIterator[ProgressEvent]:
        return self._server.events(job_id)

    async def estimate(self, spec: Union[RunSpec, Dict[str, object]]) -> EstimateResult:
        """Submit one spec and await its result."""
        return await self.result(await self.submit(spec))

    async def estimate_all(
        self, specs: Sequence[Union[RunSpec, Dict[str, object]]]
    ) -> List[EstimateResult]:
        """Submit all specs concurrently, then await every result in order.

        Compatible specs submitted this way coalesce into shared lane
        blocks; results come back in submission order either way.
        """
        job_ids = await asyncio.gather(
            *(self.submit(spec) for spec in specs)
        )
        return list(
            await asyncio.gather(*(self.result(job_id) for job_id in job_ids))
        )
