"""Shared 2-D 8x8 transform engine used by the DCT and IDCT benchmarks.

The engine computes ``Y = C · X · C^T`` (forward DCT) or ``Y = C^T · X · C``
(inverse DCT) as two passes of 1-D transforms through a multiply-accumulate
datapath:

* pass 1 (rows):    ``M[r][v] = sum_k X[r][k] * B[v][k]``
* pass 2 (columns): ``Y[u][v] = (sum_r B2[u][r] * M[r][v])``

where ``B``/``B2`` are integer basis ROMs scaled by ``stimuli.DCT_SCALE``;
each pass rescales by an arithmetic shift.  Data lives in three on-chip
memories (input block, intermediate, output block) accessed through a single
MAC loop driven by an FSM — the classic behavioral-synthesis result for a
transform kernel.

Interface: ``start``/``done``; the testbench loads ``in_mem`` and reads
``out_mem`` through the backdoor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.netlist.signals import from_signed, to_signed
from repro.sim.testbench import Testbench
from repro.designs import stimuli

#: element widths
IN_WIDTH = 12          # signed input samples / coefficients
MID_WIDTH = 16         # intermediate (after pass 1)
OUT_WIDTH = 14         # signed outputs
COEFF_WIDTH = 11       # signed basis coefficients (scaled by 256)
ACC_WIDTH = 30


def cycles_per_block() -> int:
    """Cycle count of one 8x8 block through the engine (both passes)."""
    # per output value: 8 taps x 2 cycles (READ + MAC) + 3 control cycles
    per_output = 8 * 2 + 3
    return 2 * 64 * per_output + 16


def reference_transform(block: Sequence[int], forward: bool) -> List[int]:
    """Bit-accurate software model of the engine (for testbench checking)."""
    basis = stimuli.dct_basis_matrix()
    pass1 = [[0] * 8 for _ in range(8)]
    for r in range(8):
        for v in range(8):
            acc = 0
            for k in range(8):
                coeff = basis[v][k] if forward else basis[k][v]
                acc += block[r * 8 + k] * coeff
            pass1[r][v] = _clamp(acc >> stimuli.DCT_SHIFT, MID_WIDTH)
    out = [[0] * 8 for _ in range(8)]
    for u in range(8):
        for v in range(8):
            acc = 0
            for r in range(8):
                coeff = basis[u][r] if forward else basis[r][u]
                acc += pass1[r][v] * coeff
            out[u][v] = _clamp(acc >> stimuli.DCT_SHIFT, OUT_WIDTH)
    return [out[u][v] for u in range(8) for v in range(8)]


def _clamp(value: int, width: int) -> int:
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return max(lo, min(hi, value))


def build_transform(name: str, forward: bool) -> Module:
    """Build the transform engine (forward or inverse)."""
    basis = stimuli.dct_basis_matrix()
    # Pass-1 ROM holds B[v][k] addressed by {v,k}; for the inverse transform the
    # transposed basis is used.  Pass-2 uses the same ROM with swapped roles.
    rom_contents = []
    for v in range(8):
        for k in range(8):
            coeff = basis[v][k] if forward else basis[k][v]
            rom_contents.append(from_signed(coeff, COEFF_WIDTH))

    b = NetlistBuilder(name)
    start = b.input("start", 1)

    # ------------------------------------------------------------- counters
    # o = output index within a 1-D transform, blk = row/column index,
    # k = MAC tap index, pass_q = 0 (rows) / 1 (columns)
    o_q = b.register("reg_o", 3, has_enable=True, has_clear=True)
    blk_q = b.register("reg_blk", 3, has_enable=True, has_clear=True)
    k_q = b.register("reg_k", 3, has_enable=True, has_clear=True)
    pass_q = b.register("reg_pass", 1, has_enable=True, has_clear=True)
    acc_q = b.register("reg_acc", ACC_WIDTH, has_enable=True, has_clear=True)

    one3 = b.const(1, 3, name="const_one3")
    k_next = b.add(k_q, one3, name="k_inc")
    o_next = b.add(o_q, one3, name="o_inc")
    blk_next = b.add(blk_q, one3, name="blk_inc")
    seven = b.const(7, 3, name="const_seven")
    k_last = b.eq(k_q, seven, name="k_last")
    o_last = b.eq(o_q, seven, name="o_last")
    blk_last = b.eq(blk_q, seven, name="blk_last")

    # ----------------------------------------------------------- controller
    fsm, ctrl = b.fsm(
        "ctrl",
        states=["IDLE", "CLEAR", "READ", "MAC", "WRITE", "NEXT_OUT", "NEXT_BLK",
                "NEXT_PASS", "FINISH"],
        inputs={"start": start, "k_last": k_last, "o_last": o_last,
                "blk_last": blk_last, "pass_bit": pass_q},
        outputs={
            "clear_all": 1, "acc_clear": 1, "acc_en": 1,
            "k_en": 1, "k_clear": 1, "o_en": 1, "o_clear": 1,
            "blk_en": 1, "blk_clear": 1, "pass_en": 1,
            "mid_we": 1, "out_we": 1, "done": 1,
        },
        moore_outputs={
            "CLEAR": {"clear_all": 1, "k_clear": 1, "k_en": 1, "o_clear": 1, "o_en": 1,
                      "blk_clear": 1, "blk_en": 1, "acc_clear": 1, "acc_en": 1},
            "MAC": {"acc_en": 1, "k_en": 1},
            "WRITE": {"mid_we": 1, "out_we": 1},  # gated by the pass bit below
            "NEXT_OUT": {"o_en": 1, "k_clear": 1, "k_en": 1, "acc_clear": 1, "acc_en": 1},
            "NEXT_BLK": {"blk_en": 1, "o_clear": 1, "o_en": 1, "k_clear": 1, "k_en": 1,
                         "acc_clear": 1, "acc_en": 1},
            "NEXT_PASS": {"pass_en": 1, "blk_clear": 1, "blk_en": 1, "o_clear": 1,
                          "o_en": 1, "k_clear": 1, "k_en": 1, "acc_clear": 1, "acc_en": 1},
            "FINISH": {"done": 1},
        },
    )
    fsm.when("IDLE", "CLEAR", start=1)
    fsm.otherwise("CLEAR", "READ")
    fsm.otherwise("READ", "MAC")
    fsm.when("MAC", "WRITE", k_last=1)
    fsm.otherwise("MAC", "READ")
    fsm.when("WRITE", "NEXT_BLK", o_last=1)
    fsm.otherwise("WRITE", "NEXT_OUT")
    fsm.otherwise("NEXT_OUT", "READ")
    fsm.when("NEXT_BLK", "NEXT_PASS", blk_last=1)
    fsm.otherwise("NEXT_BLK", "READ")
    fsm.when("NEXT_PASS", "FINISH", pass_bit=1)
    fsm.otherwise("NEXT_PASS", "READ")
    fsm.otherwise("FINISH", "IDLE")

    # --------------------------------------------------------------- memory
    zero1 = b.const(0, 1, name="const_zero1")
    zero_in = b.const(0, IN_WIDTH, name="const_zero_in")
    # pass 1 reads in_mem[blk*8 + k]; pass 2 reads mid_mem[k*8 + blk]
    addr_p1 = b.concat(k_q, blk_q, name="addr_pass1")      # blk*8 + k
    addr_p2 = b.concat(blk_q, k_q, name="addr_pass2")      # k*8 + blk
    read_addr = b.mux(pass_q, addr_p1, addr_p2, name="read_addr_mux")

    in_rdata = b.memory("in_mem", IN_WIDTH, 64, we=zero1, addr=read_addr,
                        wdata=zero_in, sync_read=True)

    # intermediate memory: written in pass 1 at [blk*8 + o], read in pass 2
    mid_waddr = b.concat(o_q, blk_q, name="mid_waddr")      # blk*8 + o
    mid_we = b.and_(ctrl["mid_we"], b.not_(pass_q, name="pass_inv"), name="mid_we_gate")
    mid_addr = b.mux(pass_q, mid_waddr, read_addr, name="mid_addr_mux")

    # MAC datapath
    coeff_addr = b.concat(k_q, o_q, name="coeff_addr")      # o*8 + k
    coeff = b.rom("coeff_rom", COEFF_WIDTH, rom_contents, coeff_addr)
    sample_p1 = b.sext(in_rdata, MID_WIDTH, name="sample_p1")

    # accumulate: acc += sample * coeff
    acc_scaled = b.shr(acc_q, stimuli.DCT_SHIFT, arithmetic=True, name="acc_rescale")
    result_p1 = b.saturate(acc_scaled, MID_WIDTH, signed=True, name="sat_mid")
    result_p2 = b.saturate(acc_scaled, OUT_WIDTH, signed=True, name="sat_out")

    mid_rdata = b.memory("mid_mem", MID_WIDTH, 64, we=mid_we, addr=mid_addr,
                         wdata=result_p1, sync_read=True)

    sample = b.mux(pass_q, sample_p1, b.sext(mid_rdata, MID_WIDTH, name="sample_p2"),
                   name="sample_mux")
    product = b.mul(sample, b.sext(coeff, MID_WIDTH, name="coeff_ext"),
                    width_y=ACC_WIDTH, signed=True, name="mac_mult")
    acc_sum = b.add(acc_q, product, name="mac_add")
    b.drive("reg_acc", d=acc_sum, en=ctrl["acc_en"], clear=ctrl["acc_clear"])

    # output memory: written in pass 2 at [o*8 + blk] (= Y[u][v] with u=o, v=blk)
    out_waddr = b.concat(blk_q, o_q, name="out_waddr")
    out_we = b.and_(ctrl["out_we"], pass_q, name="out_we_gate")
    b.memory("out_mem", OUT_WIDTH, 64, we=out_we, addr=out_waddr,
             wdata=b.slice(result_p2, OUT_WIDTH - 1, 0, name="out_trunc"), sync_read=True)

    # ------------------------------------------------------ counter updates
    b.drive("reg_k", d=k_next, en=ctrl["k_en"], clear=ctrl["k_clear"])
    b.drive("reg_o", d=o_next, en=ctrl["o_en"], clear=ctrl["o_clear"])
    b.drive("reg_blk", d=blk_next, en=ctrl["blk_en"], clear=ctrl["blk_clear"])
    b.drive("reg_pass", d=b.const(1, 1, name="const_one1"), en=ctrl["pass_en"],
            clear=ctrl["clear_all"])

    b.output("done", ctrl["done"])

    module = b.build()
    module.attributes["forward"] = forward
    module.attributes["in_memory"] = "in_mem"
    module.attributes["out_memory"] = "out_mem"
    module.attributes["description"] = (
        "2-D 8x8 forward DCT engine" if forward else "2-D 8x8 inverse DCT engine"
    )
    return module


class TransformTestbench(Testbench):
    """Runs one or more blocks through the engine and checks the outputs."""

    def __init__(self, blocks: Sequence[Sequence[int]], forward: bool,
                 name: str = "transform_tb") -> None:
        super().__init__(name)
        self.blocks = [list(block) for block in blocks]
        self.forward = forward
        self.expected = [reference_transform(block, forward) for block in self.blocks]
        self._block_index = 0
        self._started = False
        self._checked_blocks = 0
        self.max_cycles = (cycles_per_block() + 50) * max(1, len(self.blocks))

    # ------------------------------------------------------------- plumbing
    def _memory(self, simulator, suffix: str):
        for name, component in simulator.module.components.items():
            if component.type_name == "memory" and name.endswith(suffix):
                return component
        raise KeyError(f"memory {suffix!r} not found")

    def _load_block(self, simulator) -> None:
        memory = self._memory(simulator, "in_mem")
        block = self.blocks[self._block_index]
        memory.load([from_signed(v, IN_WIDTH) for v in block])

    def bind(self, simulator) -> None:
        self._block_index = 0
        self._started = False
        self._checked_blocks = 0
        self._load_block(simulator)

    def drive(self, cycle: int, simulator):
        if self._block_index >= len(self.blocks):
            return {"start": 0}
        if not self._started:
            self._started = True
            return {"start": 1}
        return {"start": 0}

    def check(self, cycle: int, simulator) -> None:
        if self._started and simulator.get_output("done"):
            out_mem = self._memory(simulator, "out_mem")
            actual = [to_signed(out_mem.read_word(i), OUT_WIDTH) for i in range(64)]
            expected = self.expected[self._block_index]
            assert actual == expected, (
                f"block {self._block_index}: transform mismatch "
                f"(first diff at {next(i for i in range(64) if actual[i] != expected[i])})"
            )
            self._checked_blocks += 1
            self._block_index += 1
            self._started = False
            if self._block_index < len(self.blocks):
                self._load_block(simulator)

    def finished(self, cycle: int, simulator) -> bool:
        return self._block_index >= len(self.blocks)

    def captured(self):
        return {"blocks_checked": self._checked_blocks}
