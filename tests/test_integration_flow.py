"""End-to-end integration tests: benchmark designs through the full paper flow.

These tests exercise the complete pipeline on real benchmark designs:
build -> software RTL power estimation -> instrumentation -> FPGA mapping ->
emulation -> accuracy/overhead/speedup checks.  They are the executable form
of the paper's core claims.
"""

from __future__ import annotations

import pytest

from repro.core import (
    InstrumentationConfig,
    PowerEmulationFlow,
    compare_reports,
)
from repro.designs.registry import get_design
from repro.netlist import flatten, module_stats
from repro.power import (
    NEC_RTPOWER,
    POWERTHEATER,
    RTLPowerEstimator,
    build_seed_library,
)


@pytest.fixture(scope="module")
def library():
    return build_seed_library()


@pytest.fixture(scope="module")
def flow(library):
    return PowerEmulationFlow(
        library=library, config=InstrumentationConfig(coefficient_bits=14)
    )


@pytest.mark.parametrize("design_name", ["binary_search", "Bubble_Sort", "HVPeakF", "Ispq", "Vld"])
def test_emulated_power_matches_software_estimate(design_name, library, flow):
    """Paper claim: power emulation loses little or no accuracy."""
    design = get_design(design_name)
    module = design.build()
    reference = RTLPowerEstimator(flatten(module), library=library).estimate(
        design.testbench()
    )
    report = flow.run(module, design.testbench(), workload_cycles=design.nominal_cycles)
    accuracy = compare_reports(report.power_report, reference)
    assert abs(accuracy.relative_error) < 0.02, accuracy.summary()
    assert report.power_report.average_power_mw > 0


@pytest.mark.parametrize("design_name", ["Bubble_Sort", "Ispq", "Vld"])
def test_emulation_is_faster_than_software_tools(design_name, flow):
    """Paper claim: 10x-500x speedup over commercial RTL power estimation."""
    design = get_design(design_name)
    report = flow.run(design.build(), design.testbench(),
                      workload_cycles=design.nominal_cycles)
    speedup_pt = report.speedup_over(POWERTHEATER)
    speedup_nec = report.speedup_over(NEC_RTPOWER)
    assert speedup_pt > 3
    assert speedup_nec > 3


def test_functional_behaviour_preserved_by_instrumentation(flow):
    """The enhanced design still computes the original function (the testbench
    self-checks), while producing power as a side effect."""
    design = get_design("Bubble_Sort")
    report = flow.run(design.build(), design.testbench())
    emulation = report.emulation
    assert emulation.power_report.total_energy_fj > 0
    # the self-checking testbench captured the sorted array during emulation
    # (it would have raised on a functional mismatch)
    assert emulation.executed_cycles > 0
    assert emulation.final_outputs["done"] in (0, 1)


def test_instrumentation_overhead_and_fpga_fit(flow):
    """The paper's closing discussion: estimation hardware costs area; designs
    must still fit the Virtex-II parts."""
    design = get_design("Ispq")
    report = flow.run(design.build(), design.testbench())
    assert report.instrumentation_overhead["luts"] > 0.2      # clearly visible
    assert report.emulation.device.fits(report.enhanced_synthesis.resources)
    assert 0 < report.emulation.utilization["luts"] <= 1.0


def test_emulation_clock_bounded_by_device(flow):
    design = get_design("HVPeakF")
    report = flow.run(design.build(), design.testbench())
    assert report.emulation.emulation_clock_mhz <= report.emulation.device.max_clock_mhz
    assert report.emulation.emulation_clock_mhz > 5.0


def test_larger_design_larger_speedup(flow):
    """Fig. 3 trend: bigger designs benefit more from emulation."""
    small = get_design("Bubble_Sort")
    large = get_design("Vld")
    small_report = flow.run(small.build(), small.testbench(),
                            workload_cycles=small.nominal_cycles)
    large_report = flow.run(large.build(), large.testbench(),
                            workload_cycles=large.nominal_cycles)
    small_cost = small_report.instrumented.monitored_bits * small.nominal_cycles
    large_cost = large_report.instrumented.monitored_bits * large.nominal_cycles
    if large_cost > small_cost:
        assert large_report.speedup_over(POWERTHEATER) > small_report.speedup_over(POWERTHEATER)


def test_design_size_ordering_matches_paper():
    """The MPEG4 composite is the largest design, its sub-blocks are smaller."""
    sizes = {
        name: module_stats(get_design(name).build()).monitored_bits
        for name in ("HVPeakF", "Ispq", "Vld", "MPEG4")
    }
    assert sizes["MPEG4"] == max(sizes.values())
    assert sizes["HVPeakF"] < sizes["MPEG4"]
