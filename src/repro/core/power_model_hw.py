"""The synthesizable hardware power model.

One :class:`HardwarePowerModel` is instantiated for every monitored RTL
component (paper Fig. 1).  Its structure follows Section 2.1:

* input queues holding the previous value of every monitored input/output bit
  (one register per bit),
* an XOR per bit computing the transition indicator ``T(x_i)``,
* the products ``Coeff_i * T(x_i)`` — since ``T`` is 0/1 these are vector AND
  gates selecting the (fixed-point) coefficient,
* an adder tree accumulating the selected coefficients plus a base term,
* an internal accumulator gathering per-cycle energy between strobes, and an
  output register loaded when the power strobe fires.

The component is a normal :class:`~repro.netlist.sequential.SequentialComponent`,
so the *enhanced* design remains an ordinary RTL netlist: it can be simulated
by :mod:`repro.sim` (which is how our emulation platform model executes it),
passed to the FPGA resource estimator, or — in the real-world flow — emitted
as synthesizable HDL.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.fixedpoint import FixedPointFormat
from repro.netlist.ports import Port
from repro.netlist.sequential import SequentialComponent
from repro.netlist.signals import mask_value
from repro.power.macromodel import LinearTransitionModel

#: prefix applied to monitored-port names so they cannot clash with "strobe"
MONITOR_PREFIX = "x_"


class HardwarePowerModel(SequentialComponent):
    """Per-component power-estimation hardware (value queues + dot product)."""

    type_name = "power_model_hw"

    def __init__(
        self,
        name: str,
        model: LinearTransitionModel,
        fmt: FixedPointFormat,
        energy_width: int = 32,
        monitored_component: Optional[str] = None,
        sample_on_strobe_only: bool = False,
    ) -> None:
        super().__init__(name)
        self.model = model
        self.fmt = fmt
        self.energy_width = energy_width
        #: name of the RTL component this model observes (for reports)
        self.monitored_component = monitored_component
        #: paper-literal sampling: value queues update and the dot product is
        #: evaluated only when the strobe fires (undersamples activity between
        #: strobes).  The default accumulates every cycle and flushes on the
        #: strobe, which is exact for any strobe period.
        self.sample_on_strobe_only = sample_on_strobe_only
        self.port_widths: Dict[str, int] = dict(model.port_widths)

        # quantized coefficients in the model's canonical flat order
        self.flat_ports: List[Tuple[str, int]] = [
            (port, bit) for port, bit, _ in model.flat_coefficients()
        ]
        self.coefficient_codes: List[int] = [
            fmt.quantize(value) for _, _, value in model.flat_coefficients()
        ]
        self.base_code: int = fmt.quantize(model.base_energy_fj)

        # Per-port lookup tables mapping an 8-bit toggle pattern to the sum of
        # the selected coefficient codes, so `capture` costs one table read per
        # toggled byte instead of one add per toggled bit.  Entries are
        # (port_name, monitor_input_name, value_mask, chunk_tables).
        self._chunked: List[Tuple[str, str, int, List[List[int]]]] = []
        index = 0
        for port_name in sorted(self.port_widths):
            width = self.port_widths[port_name]
            coeffs = self.coefficient_codes[index : index + width]
            index += width
            tables: List[List[int]] = []
            for base in range(0, width, 8):
                chunk = coeffs[base : base + 8]
                table = [0] * 256
                for pattern in range(1, 256):
                    low = (pattern & -pattern).bit_length() - 1
                    table[pattern] = table[pattern & (pattern - 1)] + (
                        chunk[low] if low < len(chunk) else 0
                    )
                tables.append(table)
            self._chunked.append(
                (port_name, MONITOR_PREFIX + port_name, (1 << width) - 1, tables)
            )

        self.params = {
            "monitored_bits": model.total_bits,
            "coefficient_bits": fmt.bits,
            "energy_width": energy_width,
            "monitored_component": monitored_component,
        }

        for port_name, width in sorted(self.port_widths.items()):
            self.add_input(MONITOR_PREFIX + port_name, width)
        self.add_input("strobe", 1)
        self.add_output("energy", energy_width)

        self._previous: Dict[str, int] = {p: 0 for p in self.port_widths}
        self._accumulated = 0
        self._output = 0
        self._pending_previous = dict(self._previous)
        self._pending_accumulated = 0
        self._pending_output = 0

    # -------------------------------------------------------------- queries
    def monitored_ports(self) -> List[Port]:
        # The power-estimation hardware itself is not monitored by another
        # power model — the paper measures its *area* overhead, not its power.
        return []

    def max_cycle_energy_code(self) -> int:
        """Worst-case per-cycle energy code (all monitored bits toggling)."""
        return self.base_code + sum(self.coefficient_codes)

    def energy_fj_from_code(self, code: int) -> float:
        return self.fmt.dequantize(code)

    # ------------------------------------------------------------ behaviour
    def reset(self) -> None:
        self._previous = {p: 0 for p in self.port_widths}
        self._accumulated = 0
        self._output = 0
        self._pending_previous = dict(self._previous)
        self._pending_accumulated = 0
        self._pending_output = 0

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"energy": self._output}

    def capture(self, inputs: Mapping[str, int]) -> None:
        strobe = inputs.get("strobe", 0) & 1
        if self.sample_on_strobe_only and not strobe:
            # paper-literal mode: between strobes the queues hold their values
            # and no energy is computed
            self._pending_previous = dict(self._previous)
            self._pending_accumulated = self._accumulated
            self._pending_output = 0
            return
        cycle_energy = self.base_code
        previous = self._previous
        new_previous: Dict[str, int] = {}
        for port_name, in_name, value_mask, tables in self._chunked:
            current = inputs.get(in_name, 0) & value_mask
            toggles = previous[port_name] ^ current
            new_previous[port_name] = current
            chunk = 0
            while toggles:
                cycle_energy += tables[chunk][toggles & 255]
                toggles >>= 8
                chunk += 1
        accumulated = self._accumulated + cycle_energy
        if strobe:
            self._pending_output = mask_value(accumulated, self.energy_width)
            self._pending_accumulated = 0
        else:
            self._pending_output = 0
            self._pending_accumulated = accumulated
        self._pending_previous = new_previous

    def commit(self) -> None:
        self._previous = self._pending_previous
        self._accumulated = self._pending_accumulated
        self._output = self._pending_output
