"""Value Change Dump (VCD) support.

Software power-estimation flows typically dump switching activity to a VCD
file during HDL simulation and post-process it; this package provides a
writer (from recorded waveforms), a tolerant parser, and switching-activity
counting from parsed dumps.  The power-emulation flow makes exactly this
step unnecessary — the activity is reduced to power on the fly, in hardware —
which is one source of its speedup.
"""

from repro.vcd.writer import write_vcd, vcd_string
from repro.vcd.parser import parse_vcd, VCDSignal, VCDFile, VCDParseError
from repro.vcd.activity import activity_from_vcd, ActivitySummary

__all__ = [
    "write_vcd",
    "vcd_string",
    "parse_vcd",
    "VCDSignal",
    "VCDFile",
    "VCDParseError",
    "activity_from_vcd",
    "ActivitySummary",
]
