"""Tests for the behavioral-synthesis substrate (DFG, scheduling, binding, datapath)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hls import (
    DFGError,
    DataflowGraph,
    alap_schedule,
    allocate,
    asap_schedule,
    bind,
    list_schedule,
    synthesize,
)
from repro.netlist import flatten, validate_module
from repro.netlist.signals import from_signed, to_signed
from repro.sim import Simulator


def build_fir4():
    """4-tap FIR-like kernel: y = c0*x0 + c1*x1 + c2*x2 + c3*x3 (16-bit)."""
    g = DataflowGraph("fir4")
    taps = [3, -5, 7, 11]
    accumulator = None
    for i, coeff in enumerate(taps):
        x = g.input(f"x{i}", 8)
        c = g.const(coeff, 8, name=f"c{i}")
        product = g.mul(x, c, width=16, name=f"p{i}")
        accumulator = product if accumulator is None else g.add(
            accumulator, product, width=16, name=f"s{i}"
        )
    g.output("y", accumulator)
    return g, taps


def fir4_reference(values, taps):
    return sum(to_signed(v, 8) * c for v, c in zip(values, taps))


def build_butterfly():
    """DCT-style butterfly: sums/differences then scaling by shifts."""
    g = DataflowGraph("butterfly")
    a = g.input("a", 12)
    b = g.input("b", 12)
    s = g.add(a, b, width=13, name="s")
    d = g.sub(a, b, width=13, name="d")
    g.output("sum_out", g.asr(s, 1, name="sh_s"))
    g.output("diff_out", g.asr(d, 1, name="sh_d"))
    return g


# ----------------------------------------------------------------------- DFG
def test_dfg_construction_and_validation():
    g, _ = build_fir4()
    g.validate()
    assert len(g.inputs) == 4
    assert len(g.operations) == 7  # 4 muls + 3 adds
    assert set(g.outputs) == {"y"}


def test_dfg_errors():
    g = DataflowGraph("bad")
    with pytest.raises(DFGError):
        g.add("missing", "alsomissing")
    with pytest.raises(DFGError):
        g._add("bogus_op", 8)
    a = g.input("a", 8)
    with pytest.raises(DFGError):
        g.input("a", 8)
    with pytest.raises(DFGError):
        g.output("y", "nope")
    empty = DataflowGraph("empty")
    with pytest.raises(DFGError):
        empty.validate()


def test_dfg_reference_evaluation():
    g, taps = build_fir4()
    values = [10, 250, 3, 128]
    expected = fir4_reference(values, taps)
    result = g.evaluate({f"x{i}": v for i, v in enumerate(values)})
    assert to_signed(result["y"], 16) == expected


# ----------------------------------------------------------------- scheduling
def test_asap_respects_dependencies():
    g, _ = build_fir4()
    schedule = asap_schedule(g)
    schedule.verify_dependencies()
    # products can all go in step 0; the chained adds serialize
    assert schedule.start_step["p0"] == 0
    assert schedule.start_step["s1"] == 1
    assert schedule.start_step["s3"] == 3
    assert schedule.n_steps == 4


def test_alap_pushes_late_and_respects_bound():
    g, _ = build_fir4()
    asap = asap_schedule(g)
    alap = alap_schedule(g)
    for name in asap.start_step:
        assert alap.start_step[name] >= asap.start_step[name]
    alap.verify_dependencies()
    with pytest.raises(ValueError):
        alap_schedule(g, latency_bound=2)


def test_list_schedule_respects_resource_constraints():
    g, _ = build_fir4()
    schedule = list_schedule(g, {"multiplier": 1, "alu": 1})
    schedule.verify_dependencies()
    concurrency = schedule.max_concurrency()
    assert concurrency["multiplier"] == 1
    assert concurrency["alu"] == 1
    # serializing 4 multiplications on one unit takes at least 4 steps
    assert schedule.n_steps >= 4
    unconstrained = asap_schedule(g)
    assert schedule.n_steps >= unconstrained.n_steps


def test_schedule_concurrency_profile():
    g, _ = build_fir4()
    schedule = asap_schedule(g)
    assert schedule.max_concurrency()["multiplier"] == 4
    assert len(schedule.operations_in_step(0)) == 4


# ---------------------------------------------------------- allocation/binding
def test_allocation_matches_concurrency():
    g, _ = build_fir4()
    schedule = list_schedule(g, {"multiplier": 2, "alu": 1})
    allocation = allocate(g, schedule)
    assert len(allocation.shared_units["multiplier"]) == 2
    assert len(allocation.shared_units["alu"]) == 1
    assert allocation.shared_widths["multiplier"] >= 16
    assert "multiplier" in allocation.summary()


def test_binding_units_never_double_booked():
    g, _ = build_fir4()
    schedule = list_schedule(g, {"multiplier": 2, "alu": 1})
    allocation = allocate(g, schedule)
    binding = bind(g, schedule, allocation)
    for step in range(schedule.n_steps):
        used = [binding.unit_of[n.name] for n in schedule.operations_in_step(step)]
        assert len(used) == len(set(used))


def test_register_binding_left_edge_no_overlap():
    g, _ = build_fir4()
    schedule = asap_schedule(g)
    allocation = allocate(g, schedule)
    binding = bind(g, schedule, allocation)
    # values sharing a register never have overlapping lifetimes
    for reg, values in binding.register_values.items():
        for i, first in enumerate(values):
            for second in values[i + 1:]:
                assert not binding.lifetimes[first].overlaps(binding.lifetimes[second])
    # sharing happened: fewer registers than values
    assert binding.n_registers <= len(g.operations)


# -------------------------------------------------------------- datapath gen
def run_kernel(module, inputs, output_names, max_cycles=100):
    """Pulse start, wait for done, return outputs."""
    sim = Simulator(flatten(module))
    sim.set_inputs(inputs)
    sim.set_input("start", 1)
    sim.step()
    sim.set_input("start", 0)
    for _ in range(max_cycles):
        sim.settle()
        if sim.get_output("done"):
            break
        sim.step()
    else:
        raise AssertionError("kernel did not finish")
    return {name: sim.get_output(name) for name in output_names}


def test_synthesized_fir_matches_reference():
    g, taps = build_fir4()
    result = synthesize(g, resource_constraints={"multiplier": 1, "alu": 1})
    validate_module(result.module)
    rng = random.Random(0)
    for _ in range(10):
        values = [rng.getrandbits(8) for _ in range(4)]
        outputs = run_kernel(result.module, {f"x{i}": v for i, v in enumerate(values)}, ["y"])
        assert to_signed(outputs["y"], 16) == fir4_reference(values, taps)


def test_synthesized_fir_parallel_matches_reference():
    g, taps = build_fir4()
    result = synthesize(g)  # unconstrained: 4 multipliers in parallel
    assert len(result.allocation.shared_units["multiplier"]) == 4
    values = [255, 1, 77, 200]
    outputs = run_kernel(result.module, {f"x{i}": v for i, v in enumerate(values)}, ["y"])
    assert to_signed(outputs["y"], 16) == fir4_reference(values, taps)


def test_resource_sharing_reduces_multipliers():
    g, _ = build_fir4()
    shared = synthesize(g, resource_constraints={"multiplier": 1, "alu": 1})
    parallel = synthesize(g)
    n_shared = len([c for c in shared.module.components.values() if c.type_name == "multiplier"])
    n_parallel = len([c for c in parallel.module.components.values() if c.type_name == "multiplier"])
    assert n_shared == 1
    assert n_parallel == 4
    assert shared.latency_cycles > parallel.latency_cycles


def test_butterfly_kernel_with_shifts():
    g = build_butterfly()
    result = synthesize(g, resource_constraints={"alu": 1})
    for a, b in [(100, 50), (2047, 2047), (0, 1), (1024, 4000)]:
        outputs = run_kernel(result.module, {"a": a, "b": b}, ["sum_out", "diff_out"])
        reference = g.evaluate({"a": a, "b": b})
        assert outputs["sum_out"] == reference["sum_out"]
        assert outputs["diff_out"] == reference["diff_out"]


def test_hls_result_summary_and_restart():
    g = build_butterfly()
    result = synthesize(g)
    assert "HLS" in result.summary()
    assert result.latency_cycles >= 2
    # the generated design can be restarted for a second computation
    outputs1 = run_kernel(result.module, {"a": 10, "b": 3}, ["sum_out"])
    outputs2 = run_kernel(result.module, {"a": 20, "b": 6}, ["sum_out"])
    assert outputs1["sum_out"] == g.evaluate({"a": 10, "b": 3})["sum_out"]
    assert outputs2["sum_out"] == g.evaluate({"a": 20, "b": 6})["sum_out"]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=4, max_size=4))
def test_synthesized_fir_property(values):
    g, taps = build_fir4()
    result = synthesize(g, resource_constraints={"multiplier": 2, "alu": 1})
    outputs = run_kernel(result.module, {f"x{i}": v for i, v in enumerate(values)}, ["y"])
    assert to_signed(outputs["y"], 16) == fir4_reference(values, taps)
