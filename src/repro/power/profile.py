"""Windowed power telemetry: time- and component-resolved energy profiles.

The paper's pitch is that power emulation turns power estimation into a
runtime *observation* problem — the strobe/aggregator hardware exposes power
over time while the workload runs, and the host reads it back "at the end of
the run — or periodically, for a power-over-time profile"
(:mod:`repro.core.aggregator`).  This module is that periodic view for every
engine in the repository: an ``(n_windows × n_components)`` energy matrix at
a configurable window granularity, bounded in memory at any run length, plus
the analysis layered on top of it (hotspots, peak windows, per-type
breakdowns, Chrome-trace counter events).

Two pieces:

* :class:`WindowedEnergyCollector` — the streaming accumulator the
  simulation observers feed.  Observers add per-component energies into the
  current window buffer (scalar floats or ``(n_lanes,)`` NumPy rows — one
  vectorized add per component per cycle, never per-lane Python) and call
  :meth:`~WindowedEnergyCollector.end_cycle`.  When the committed window
  count reaches ``max_windows`` adjacent windows merge pairwise and the
  window width doubles, so an arbitrarily long run costs a fixed amount of
  memory while window sums stay exact.
* :class:`PowerProfile` — the immutable artifact: JSON round-trippable,
  attached to :class:`~repro.api.spec.EstimateResult`, with hotspot/top-K
  views, window rebinning, and Chrome ``"C"`` (counter) events that merge
  simulated power onto the same wall-clock timeline as the software spans
  from :mod:`repro.obs`.

Energies are femtojoules per window; powers are milliwatts using the same
``P[mW] = E[fJ]/cycles * f[MHz] * 1e-6`` conversion as
:meth:`~repro.power.technology.Technology.energy_to_power_mw`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_MAX_WINDOWS",
    "DEFAULT_WINDOW_TARGET",
    "PowerProfile",
    "ProfileConfig",
    "WindowedEnergyCollector",
]

#: default bound on the number of windows held in memory; past it, adjacent
#: windows merge pairwise and the window width doubles
DEFAULT_MAX_WINDOWS = 512

#: when no window width is requested and the cycle budget is known up
#: front, engines default to the finest width that yields about this many
#: windows — per-cycle windows over a long run would only coalesce away,
#: paying their collection cost for nothing
DEFAULT_WINDOW_TARGET = 64


@dataclass(frozen=True)
class ProfileConfig:
    """How an estimator should collect its windowed profile.

    ``window_cycles`` is the *initial* window width in cycles (``None`` =
    the engine's natural granularity: one cycle on the software estimators,
    the strobe period on the emulation platform); the effective width in the
    resulting profile may be a power-of-two multiple when the run was long
    enough to trigger coalescing against ``max_windows``.
    """

    window_cycles: Optional[int] = None
    max_windows: int = DEFAULT_MAX_WINDOWS

    def __post_init__(self) -> None:
        if self.window_cycles is not None and self.window_cycles < 1:
            raise ValueError(
                f"profile window must be >= 1 cycle, got {self.window_cycles}"
            )
        if self.max_windows < 2:
            raise ValueError(
                f"max_windows must be >= 2, got {self.max_windows}"
            )

    def resolved_window(self, default: int = 1) -> int:
        return self.window_cycles if self.window_cycles is not None else default


class WindowedEnergyCollector:
    """Streaming ``(window × component)`` energy accumulator, bounded memory.

    ``n_lanes=None`` collects scalar per-cycle energies (the scalar RTL,
    gate-level and emulation observers); an integer collects ``(n_lanes,)``
    rows per component (the lane estimator), one vectorized add per
    component per cycle.  Component order is fixed at construction and is
    the row order of every emitted profile.
    """

    def __init__(
        self,
        names: Sequence[str],
        types: Sequence[str],
        window_cycles: int = 1,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        n_lanes: Optional[int] = None,
    ) -> None:
        if len(names) != len(types):
            raise ValueError("names and types must align")
        if window_cycles < 1:
            raise ValueError(f"window_cycles must be >= 1, got {window_cycles}")
        if max_windows < 2:
            raise ValueError(f"max_windows must be >= 2, got {max_windows}")
        self.names = list(names)
        self.types = list(types)
        #: current window width; doubles every time the window list fills
        self.window_cycles = int(window_cycles)
        self.initial_window_cycles = int(window_cycles)
        # an odd bound would misalign boundaries after a pairwise merge
        self.max_windows = max_windows + (max_windows % 2)
        self.n_lanes = n_lanes
        shape = (len(self.names),) if n_lanes is None else (len(self.names), n_lanes)
        #: the open window's per-component energies; observers add into it
        #: directly (``collector.add(row, energy)``) then call ``end_cycle``
        self.buf = np.zeros(shape, dtype=np.float64)
        self._windows: List[np.ndarray] = []
        self._in_window = 0
        # cumulative-mode state: running totals at the last window boundary
        self._snapshot: Optional[np.ndarray] = None
        #: total cycles observed
        self.cycles = 0

    # ----------------------------------------------------------- streaming
    def add(self, row: int, energy) -> None:
        """Add one component's energy for the current cycle.

        ``energy`` is a float (scalar mode) or an ``(n_lanes,)`` array.
        """
        self.buf[row] += energy

    def end_cycle(self) -> None:
        self.cycles += 1
        self._in_window += 1
        if self._in_window >= self.window_cycles:
            self._windows.append(self.buf.copy())
            self.buf[:] = 0.0
            self._in_window = 0
            if len(self._windows) >= self.max_windows:
                self._coalesce()

    def end_cycle_cumulative(self, totals: np.ndarray) -> None:
        """``end_cycle`` for observers that maintain *running* totals.

        The batch lane loop already accumulates every component's energy
        into one ``(n_components, n_lanes)`` matrix; rather than mirroring
        those adds into :attr:`buf` (per-component per-cycle work), this
        mode commits the delta of ``totals`` since the previous window
        boundary — profiling costs nothing off boundaries.  Use either
        this or :meth:`add`/:meth:`end_cycle` on one collector, not both.
        """
        self.cycles += 1
        self._in_window += 1
        if self._in_window >= self.window_cycles:
            if self._snapshot is None:
                self._snapshot = np.zeros_like(totals)
            self._windows.append(totals - self._snapshot)
            np.copyto(self._snapshot, totals)
            self._in_window = 0
            if len(self._windows) >= self.max_windows:
                self._coalesce()

    def finish_cumulative(self, totals: np.ndarray) -> None:
        """Fold the open partial window into :attr:`buf` (cumulative mode)."""
        if self._in_window:
            if self._snapshot is None:
                self.buf[:] = totals
            else:
                self.buf[:] = totals - self._snapshot

    def _coalesce(self) -> None:
        # merge adjacent pairs and double the granularity: window sums are
        # preserved exactly, boundaries stay multiples of the new width
        merged = [
            self._windows[i] + self._windows[i + 1]
            for i in range(0, len(self._windows) - 1, 2)
        ]
        self._windows = merged
        self.window_cycles *= 2

    # ------------------------------------------------------------- reading
    @property
    def n_windows(self) -> int:
        return len(self._windows) + (1 if self._in_window else 0)

    def matrix(self) -> np.ndarray:
        """All windows, committed plus the open partial one, stacked."""
        windows = list(self._windows)
        if self._in_window:
            windows.append(self.buf.copy())
        if not windows:
            shape = (0,) + self.buf.shape
            return np.zeros(shape, dtype=np.float64)
        return np.stack(windows, axis=0)

    def profile(
        self,
        design: str,
        estimator: str,
        clock_mhz: float,
        cycles: Optional[int] = None,
        lane: Optional[int] = None,
        notes: Optional[Dict[str, object]] = None,
    ) -> "PowerProfile":
        """The collected matrix as an immutable :class:`PowerProfile`.

        ``lane`` extracts one lane's column from a lane-mode collector;
        ``cycles`` (that lane's executed cycle count) trims trailing windows
        the lane never reached — energies past its finish are exact zeros
        because inactive lanes are masked out of the accumulation.
        """
        matrix = self.matrix()
        if lane is not None:
            if self.n_lanes is None:
                raise ValueError("collector is scalar; no lanes to extract")
            matrix = matrix[:, :, lane]
        elif self.n_lanes is not None:
            raise ValueError("lane-mode collector needs an explicit lane")
        return self._emit(matrix, design, estimator, clock_mhz, cycles, notes)

    def lane_profiles(
        self,
        design: str,
        estimator: str,
        clock_mhz: float,
        lane_cycles: Sequence[int],
        notes: Optional[Dict[str, object]] = None,
    ) -> List["PowerProfile"]:
        """Every lane's profile in one pass (the matrix is stacked once)."""
        if self.n_lanes is None:
            raise ValueError("collector is scalar; no lanes to extract")
        # one contiguous (n_lanes, n_windows, n_components) copy so each
        # lane's list materialization is a straight memory walk
        per_lane = np.ascontiguousarray(self.matrix().transpose(2, 0, 1))
        return [
            self._emit(per_lane[lane], design, estimator, clock_mhz, cycles,
                       notes)
            for lane, cycles in enumerate(lane_cycles)
        ]

    def _emit(
        self,
        matrix: np.ndarray,
        design: str,
        estimator: str,
        clock_mhz: float,
        cycles: Optional[int],
        notes: Optional[Dict[str, object]],
    ) -> "PowerProfile":
        total_cycles = self.cycles if cycles is None else int(cycles)
        if total_cycles > self.cycles:
            raise ValueError(
                f"lane reports {total_cycles} cycles but the collector only "
                f"observed {self.cycles}"
            )
        n_windows = (
            -(-total_cycles // self.window_cycles) if total_cycles else 0
        )
        return PowerProfile(
            design=design,
            estimator=estimator,
            clock_mhz=float(clock_mhz),
            cycles=total_cycles,
            window_cycles=self.window_cycles,
            component_names=list(self.names),
            component_types=list(self.types),
            energy_fj=np.asarray(matrix[:n_windows], dtype=np.float64).tolist(),
            notes=dict(notes or {}),
        )


@dataclass
class PowerProfile:
    """An ``(n_windows × n_components)`` energy matrix with analysis views.

    Window ``w`` covers cycles ``[w * window_cycles, min((w+1) *
    window_cycles, cycles))`` — every window spans ``window_cycles`` cycles
    except possibly the last, so per-window powers are normalized by each
    window's actual span.  The matrix rows sum (over windows) to each
    component's total energy, and the whole matrix sums to the report's
    ``total_energy_fj``.
    """

    design: str
    estimator: str
    clock_mhz: float
    cycles: int
    window_cycles: int
    component_names: List[str]
    component_types: List[str]
    #: ``energy_fj[window][component]`` in fJ
    energy_fj: List[List[float]]
    notes: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.component_names) != len(self.component_types):
            raise ValueError("component names and types must align")
        for row in self.energy_fj:
            if len(row) != len(self.component_names):
                raise ValueError(
                    f"profile row has {len(row)} entries for "
                    f"{len(self.component_names)} components"
                )

    # ----------------------------------------------------------- geometry
    @property
    def n_windows(self) -> int:
        return len(self.energy_fj)

    @property
    def n_components(self) -> int:
        return len(self.component_names)

    def window_bounds(self, window: int) -> Tuple[int, int]:
        """``(start_cycle, end_cycle)`` covered by one window."""
        start = window * self.window_cycles
        return start, min(start + self.window_cycles, self.cycles)

    def _window_spans(self) -> np.ndarray:
        spans = np.full(self.n_windows, float(self.window_cycles))
        if self.n_windows:
            start, end = self.window_bounds(self.n_windows - 1)
            spans[-1] = max(end - start, 1)
        return spans

    def _matrix(self) -> np.ndarray:
        if not self.energy_fj:
            return np.zeros((0, self.n_components), dtype=np.float64)
        return np.asarray(self.energy_fj, dtype=np.float64)

    # ------------------------------------------------------------- energy
    def total_energy_fj(self) -> float:
        return float(self._matrix().sum())

    def component_energy_fj(self) -> Dict[str, float]:
        totals = self._matrix().sum(axis=0)
        return {
            name: float(totals[i]) if self.n_windows else 0.0
            for i, name in enumerate(self.component_names)
        }

    def component_series(self, name: str) -> List[float]:
        """One component's energy per window."""
        try:
            column = self.component_names.index(name)
        except ValueError:
            raise KeyError(
                f"component {name!r} is not in this profile"
            ) from None
        return [float(row[column]) for row in self.energy_fj]

    def window_energy_fj(self) -> List[float]:
        return [float(v) for v in self._matrix().sum(axis=1)]

    # -------------------------------------------------------------- power
    def _to_mw(self, energy_fj: float, cycles: float) -> float:
        if cycles <= 0:
            return 0.0
        return energy_fj / cycles * self.clock_mhz * 1e-6

    def window_power_mw(self) -> List[float]:
        spans = self._window_spans()
        return [
            self._to_mw(energy, span)
            for energy, span in zip(self._matrix().sum(axis=1), spans)
        ]

    def mean_power_mw(self) -> float:
        return self._to_mw(self.total_energy_fj(), self.cycles)

    def peak_window(self) -> Optional[int]:
        powers = self.window_power_mw()
        if not powers:
            return None
        return int(np.argmax(powers))

    def peak_power_mw(self) -> float:
        powers = self.window_power_mw()
        return max(powers) if powers else 0.0

    def power_by_type_mw(self) -> Dict[str, List[float]]:
        """Per-type average power per window (the stacked-counter series)."""
        matrix = self._matrix()
        spans = self._window_spans()
        series: Dict[str, np.ndarray] = {}
        for column, kind in enumerate(self.component_types):
            acc = series.setdefault(
                kind, np.zeros(self.n_windows, dtype=np.float64)
            )
            acc += matrix[:, column]
        return {
            kind: [self._to_mw(e, s) for e, s in zip(values, spans)]
            for kind, values in sorted(series.items())
        }

    def energy_by_type(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        column_totals = self._matrix().sum(axis=0)
        for i, kind in enumerate(self.component_types):
            energy = float(column_totals[i]) if self.n_windows else 0.0
            totals[kind] = totals.get(kind, 0.0) + energy
        return totals

    # ------------------------------------------------------------ hotspots
    def top_components(self, n: int = 5) -> List[Dict[str, object]]:
        """The ``n`` largest consumers with share and their peak window."""
        matrix = self._matrix()
        totals = self.component_energy_fj()
        grand = sum(totals.values())
        ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:n]
        out = []
        for name, energy in ranked:
            column = self.component_names.index(name)
            series = matrix[:, column] if self.n_windows else np.zeros(0)
            out.append({
                "name": name,
                "component_type": self.component_types[column],
                "energy_fj": energy,
                "share": energy / grand if grand > 0 else 0.0,
                "average_power_mw": self._to_mw(energy, self.cycles),
                "peak_window": int(np.argmax(series)) if series.size else None,
            })
        return out

    def peak_windows(self, n: int = 3) -> List[Dict[str, object]]:
        """The ``n`` highest-power windows, each with its top component."""
        matrix = self._matrix()
        powers = self.window_power_mw()
        order = sorted(range(len(powers)), key=lambda w: -powers[w])[:n]
        out = []
        for window in order:
            start, end = self.window_bounds(window)
            row = matrix[window]
            top = int(np.argmax(row)) if row.size else None
            out.append({
                "window": window,
                "start_cycle": start,
                "end_cycle": end,
                "power_mw": powers[window],
                "energy_fj": float(row.sum()),
                "top_component": (
                    self.component_names[top] if top is not None else None
                ),
            })
        return out

    def hotspots(self, top_k: int = 5) -> Dict[str, object]:
        """The full hotspot report as one JSON-serializable dict."""
        return {
            "design": self.design,
            "estimator": self.estimator,
            "cycles": self.cycles,
            "window_cycles": self.window_cycles,
            "n_windows": self.n_windows,
            "total_energy_fj": self.total_energy_fj(),
            "mean_power_mw": self.mean_power_mw(),
            "peak_power_mw": self.peak_power_mw(),
            "peak_window": self.peak_window(),
            "top_components": self.top_components(top_k),
            "peak_windows": self.peak_windows(min(top_k, 3)),
            "energy_by_type": self.energy_by_type(),
        }

    # ----------------------------------------------------------- rebinning
    def rebin(self, window_cycles: int) -> "PowerProfile":
        """The same profile at a coarser window (an exact multiple)."""
        if window_cycles == self.window_cycles:
            return self
        if window_cycles <= 0 or window_cycles % self.window_cycles:
            raise ValueError(
                f"rebin window must be a positive multiple of "
                f"{self.window_cycles}, got {window_cycles}"
            )
        group = window_cycles // self.window_cycles
        matrix = self._matrix()
        merged = [
            matrix[i:i + group].sum(axis=0)
            for i in range(0, self.n_windows, group)
        ]
        return dataclasses.replace(
            self,
            window_cycles=window_cycles,
            energy_fj=[[float(e) for e in row] for row in merged],
        )

    # -------------------------------------------------------- trace export
    def counter_events(
        self,
        t0_us: float,
        t1_us: float,
        pid: Optional[int] = None,
        tid: int = 0,
    ) -> List[dict]:
        """Chrome ``"C"`` counter events mapping windows onto ``[t0, t1]``.

        The simulated run's cycle axis is spread linearly over the given
        wall-clock interval (microseconds), so the power series lands under
        the very span that produced it in a ``--trace`` timeline.  One
        stacked counter carries per-type power; a closing zero sample ends
        the series at ``t1``.
        """
        if pid is None:
            pid = os.getpid()
        name = f"power_mw:{self.design}"
        span_us = max(t1_us - t0_us, float(self.n_windows) or 1.0)
        by_type = self.power_by_type_mw()
        events: List[dict] = []
        for window in range(self.n_windows):
            start, _ = self.window_bounds(window)
            ts = t0_us + span_us * (start / self.cycles if self.cycles else 0.0)
            events.append({
                "name": name,
                "cat": "repro.power",
                "ph": "C",
                "ts": int(ts),
                "pid": pid,
                "tid": tid,
                "args": {
                    kind: round(series[window], 6)
                    for kind, series in by_type.items()
                },
            })
        if events:
            events.append({
                "name": name,
                "cat": "repro.power",
                "ph": "C",
                "ts": int(t0_us + span_us),
                "pid": pid,
                "tid": tid,
                "args": {kind: 0.0 for kind in by_type},
            })
        return events

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "estimator": self.estimator,
            "clock_mhz": self.clock_mhz,
            "cycles": self.cycles,
            "window_cycles": self.window_cycles,
            "component_names": list(self.component_names),
            "component_types": list(self.component_types),
            "energy_fj": [list(row) for row in self.energy_fj],
            "notes": dict(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PowerProfile":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PowerProfile":
        return cls.from_dict(json.loads(text))

    # ----------------------------------------------------------- rendering
    def table(self, top_k: int = 8, width: int = 48) -> str:
        """Human-readable hotspot report with an ASCII power timeline."""
        peak = self.peak_power_mw()
        peak_w = self.peak_window()
        lines = [
            f"power profile — {self.design} [{self.estimator}]",
            f"  {self.cycles} cycles @ {self.clock_mhz:.0f} MHz in "
            f"{self.n_windows} windows × {self.window_cycles} cycles",
            f"  mean {self.mean_power_mw():.4f} mW   peak "
            f"{peak:.4f} mW"
            + (
                f" (window {peak_w}, cycles "
                f"{self.window_bounds(peak_w)[0]}-{self.window_bounds(peak_w)[1]})"
                if peak_w is not None
                else ""
            ),
        ]
        powers = self.window_power_mw()
        if powers and peak > 0:
            lines.append("")
            lines.append("  power over time (each row = one window):")
            shown = powers
            stride = 1
            if len(powers) > 24:
                stride = -(-len(powers) // 24)
                shown = [
                    max(powers[i:i + stride])
                    for i in range(0, len(powers), stride)
                ]
            for i, value in enumerate(shown):
                start = i * stride * self.window_cycles
                bar = "#" * max(int(round(value / peak * width)), 0)
                lines.append(f"  {start:>8d} |{bar:<{width}s}| {value:8.4f} mW")
        lines.append("")
        lines.append(
            f"  {'component':32s} {'type':14s} {'energy (fJ)':>14s} "
            f"{'share':>7s} {'peak win':>9s}"
        )
        for row in self.top_components(top_k):
            lines.append(
                f"  {row['name']:32.32s} {row['component_type']:14s} "
                f"{row['energy_fj']:14.1f} {row['share']:6.1%} "
                f"{str(row['peak_window']):>9s}"
            )
        by_type = self.energy_by_type()
        total = sum(by_type.values())
        if total > 0:
            shares = ", ".join(
                f"{kind} {energy / total:.1%}"
                for kind, energy in sorted(by_type.items(), key=lambda kv: -kv[1])
            )
            lines.append(f"  by type: {shares}")
        return "\n".join(lines)
