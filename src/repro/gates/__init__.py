"""Gate-level substrate: synthetic standard cells, technology mapping and
gate-level simulation/power.

The paper characterizes its RTL power macromodels against gate- or
transistor-level implementations in NEC's CB130M 0.13 µm library.  We cannot
ship that library, so this package provides a synthetic 0.13 µm-class
standard-cell library with self-consistent area/capacitance/energy numbers, a
technology mapper that expands every RTL component into gates (ripple-carry
adders, array multipliers, mux trees, ...), a levelized gate-level simulator,
and a switching/leakage power calculator.  Together they play the role of the
"gate-level implementation" against which macromodels are characterized, and
of the slow gate-level estimation baseline mentioned in the paper's
introduction.
"""

from repro.gates.cells import CellType, StandardCellLibrary, CB013_LIBRARY
from repro.gates.gate_netlist import GateInstance, GateNetlist
from repro.gates.techmap import TechnologyMapper, TechmapError
from repro.gates.gatesim import GateLevelSimulator, GateProgram, compile_gate_netlist
from repro.gates.gate_power import (
    BatchTransitionEnergy,
    GatePowerCalculator,
    GateTransitionEnergy,
)

__all__ = [
    "CellType",
    "StandardCellLibrary",
    "CB013_LIBRARY",
    "GateInstance",
    "GateNetlist",
    "TechnologyMapper",
    "TechmapError",
    "GateLevelSimulator",
    "GateProgram",
    "compile_gate_netlist",
    "GatePowerCalculator",
    "BatchTransitionEnergy",
    "GateTransitionEnergy",
]
