"""MPEG4 benchmark: a texture-decoding block pipeline.

This is the largest design of the benchmark set, mirroring the role of the
MPEG4 decoder in the paper (whose IDCT, inverse-quantization and VLD
sub-blocks are the ``IDCT``, ``Ispq`` and ``Vld`` benchmarks).  For every
8x8 block it performs the four texture-decoding stages of an MPEG-4 intra/
inter block:

1. **VLD** — a bit buffer, barrel shifter and code-table ROM decode 64
   variable-length symbols from the bitstream memory into quantized
   coefficient levels,
2. **IQ** — the inverse quantizer reconstructs coefficients
   (``sign(Q) * min(((2|Q|+1)*QP) >> 1, 2047)``),
3. **IDCT** — a two-pass 8x8 inverse DCT through a MAC datapath,
4. **MC** — motion compensation: the residual is added to the prediction
   block fetched from the prediction memory, clamped to 0..255 and written
   into the frame store.

One Moore FSM sequences all four stages; each stage has its own counters and
datapath, so the design's size is roughly the sum of the Vld/Ispq/IDCT
benchmarks plus the motion-compensation back end — matching the relative
design sizes in the paper's Figure 3.

Interface: ``start``, ``qp`` (5), ``block_index`` (3, selects one of the 6
blocks of a macroblock in the prediction/frame memories); ``done``.
The testbench loads ``bitstream_mem`` and ``pred_mem`` and reads
``frame_mem`` through the backdoor.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.netlist.signals import from_signed, to_signed
from repro.sim.testbench import Testbench
from repro.designs import stimuli
from repro.designs.ispq import reference_dequant
from repro.designs.transform import reference_transform

WORD_BITS = 16
BUFFER_BITS = 24
COEFF_WIDTH = 12
MID_WIDTH = 16
REC_WIDTH = 14
PIXEL_WIDTH = 8
ACC_WIDTH = 30
QP_WIDTH = 5
BITSTREAM_DEPTH = 128
FRAME_BLOCKS = 6
#: approximate cycles to decode one 8x8 block through all four stages
CYCLES_PER_BLOCK = 64 * 4 + 64 * 3 + 2 * 64 * 19 + 64 * 4 + 40


def reference_decode_block(
    symbols: Sequence[int], prediction: Sequence[int], qp: int
) -> List[int]:
    """Bit-accurate software model of the full block pipeline."""
    levels = [s - 3 for s in symbols]
    coefficients = reference_dequant(levels, qp)
    residual = reference_transform(coefficients, forward=False)
    return [
        max(0, min(255, prediction[i] + residual[i]))
        for i in range(64)
    ]


def build() -> Module:
    """Build the MPEG4 block-decoder composite."""
    b = NetlistBuilder("MPEG4")
    start = b.input("start", 1)
    qp = b.input("qp", QP_WIDTH)
    block_index = b.input("block_index", 3)

    zero1 = b.const(0, 1, name="const_zero1")

    # =====================================================================
    # Stage 1: VLD (bit buffer + barrel shifter + code table)
    # =====================================================================
    table = stimuli.vld_decode_table()
    buf_q = b.register("vld_buf", BUFFER_BITS, has_enable=True, has_clear=True)
    cnt_q = b.register("vld_cnt", 6, has_enable=True, has_clear=True)
    wptr_q = b.register("vld_wptr", 8, has_enable=True, has_clear=True)
    vidx_q = b.register("vld_idx", 6, has_enable=True, has_clear=True)

    prefix = b.slice(buf_q, BUFFER_BITS - 1, BUFFER_BITS - stimuli.VLD_LOOKUP_BITS,
                     name="vld_prefix")
    entry = b.rom("vld_table", 12, table, prefix)
    length = b.slice(entry, 11, 8, name="vld_length")
    symbol = b.slice(entry, 7, 0, name="vld_symbol")
    need_fill = b.compare(cnt_q, b.const(9, 6, name="const_nine"), name="vld_cmp_fill")[0]
    vidx_last = b.eq(vidx_q, b.const(63, 6, name="const_63v"), name="vld_idx_last")

    # level = symbol - 3, stored as a signed 12-bit coefficient
    level = b.sub(b.zext(symbol, COEFF_WIDTH, name="vld_sym_ext"),
                  b.const(3, COEFF_WIDTH, name="const_bias"), name="vld_level")

    # =====================================================================
    # Stage 2: IQ (inverse quantizer)
    # =====================================================================
    qidx_q = b.register("iq_idx", 6, has_enable=True, has_clear=True)
    qcoeff_q = b.register("iq_coeff", COEFF_WIDTH, has_enable=True)
    qidx_last = b.eq(qidx_q, b.const(63, 6, name="const_63q"), name="iq_idx_last")

    magnitude = b.absval(qcoeff_q, name="iq_abs")
    is_zero = b.eq(qcoeff_q, b.const(0, COEFF_WIDTH, name="const_zero_c"), name="iq_zero")
    sign = b.bit(qcoeff_q, COEFF_WIDTH - 1, name="iq_sign")
    doubled = b.shl(b.zext(magnitude, 20, name="iq_mag_ext"), 1, name="iq_double")
    incremented = b.add(doubled, b.const(1, 20, name="const_one20"), name="iq_plus1")
    scaled = b.mul(incremented, b.zext(qp, 20, name="iq_qp_ext"), width_y=25,
                   signed=False, name="iq_mult")
    halved = b.shr(scaled, 1, name="iq_halve")
    too_big = b.reduce("or", b.slice(halved, 24, COEFF_WIDTH - 1, name="iq_over"),
                       name="iq_too_big")
    clipped = b.mux(too_big, b.slice(halved, COEFF_WIDTH - 2, 0, name="iq_low"),
                    b.const(2047, COEFF_WIDTH - 1, name="const_2047"), name="iq_clip")
    positive = b.zext(clipped, COEFF_WIDTH, name="iq_pos")
    negative = b.sub(b.const(0, COEFF_WIDTH, name="const_zero_n"), positive, name="iq_neg")
    iq_value = b.mux(is_zero,
                     b.mux(sign, positive, negative, name="iq_sign_mux"),
                     b.const(0, COEFF_WIDTH, name="const_zero_f"), name="iq_final")

    # =====================================================================
    # Stage 3: IDCT (two-pass MAC engine)
    # =====================================================================
    basis = stimuli.dct_basis_matrix()
    rom_contents = [from_signed(basis[k][v], 11) for v in range(8) for k in range(8)]
    # contents indexed by {o,k}: rom[o*8 + k] = basis[k][o] (inverse transform)

    o_q = b.register("t_o", 3, has_enable=True, has_clear=True)
    blk_q = b.register("t_blk", 3, has_enable=True, has_clear=True)
    k_q = b.register("t_k", 3, has_enable=True, has_clear=True)
    pass_q = b.register("t_pass", 1, has_enable=True, has_clear=True)
    acc_q = b.register("t_acc", ACC_WIDTH, has_enable=True, has_clear=True)

    one3 = b.const(1, 3, name="const_one3")
    seven = b.const(7, 3, name="const_seven")
    k_last = b.eq(k_q, seven, name="t_k_last")
    o_last = b.eq(o_q, seven, name="t_o_last")
    blk_last = b.eq(blk_q, seven, name="t_blk_last")

    addr_p1 = b.concat(k_q, blk_q, name="t_addr_p1")
    addr_p2 = b.concat(blk_q, k_q, name="t_addr_p2")
    read_addr = b.mux(pass_q, addr_p1, addr_p2, name="t_read_addr")
    coeff_addr = b.concat(k_q, o_q, name="t_coeff_addr")
    coeff = b.rom("t_coeff_rom", 11, rom_contents, coeff_addr)

    # =====================================================================
    # Stage 4: MC (prediction add + clamp + frame store)
    # =====================================================================
    midx_q = b.register("mc_idx", 6, has_enable=True, has_clear=True)
    rec_q = b.register("mc_rec", REC_WIDTH, has_enable=True)
    midx_last = b.eq(midx_q, b.const(63, 6, name="const_63m"), name="mc_idx_last")
    frame_addr = b.concat(midx_q, block_index, name="mc_frame_addr")  # block*64 + idx

    # =====================================================================
    # Controller
    # =====================================================================
    fsm, ctrl = b.fsm(
        "ctrl",
        states=[
            "IDLE",
            # VLD
            "VCLEAR", "VCHECK", "VFILL_REQ", "VFILL", "VDECODE", "VEMIT",
            # IQ
            "QCLEAR", "QREAD", "QEXEC", "QWRITE",
            # IDCT
            "TCLEAR", "TREAD", "TMAC", "TWRITE", "TNEXT_OUT", "TNEXT_BLK", "TNEXT_PASS",
            # MC
            "MCLEAR", "MREAD", "MCAPT", "MWRITE",
            "FINISH",
        ],
        inputs={
            "start": start, "need_fill": need_fill, "vidx_last": vidx_last,
            "qidx_last": qidx_last, "k_last": k_last, "o_last": o_last,
            "blk_last": blk_last, "pass_bit": pass_q, "midx_last": midx_last,
        },
        outputs={
            "vclear": 1, "buf_en": 1, "buf_fill": 1, "cnt_en": 1, "wptr_en": 1,
            "vidx_en": 1, "coeff_we": 1,
            "qclear": 1, "qidx_en": 1, "qcoeff_en": 1, "iq_we": 1,
            "tclear": 1, "acc_en": 1, "acc_clear": 1, "k_en": 1, "k_clear": 1,
            "o_en": 1, "o_clear": 1, "blk_en": 1, "blk_clear": 1, "pass_en": 1,
            "mid_we": 1, "rec_we": 1,
            "mclear": 1, "midx_en": 1, "rec_en": 1, "frame_we": 1,
            "done": 1,
        },
        moore_outputs={
            "VCLEAR": {"vclear": 1},
            "VFILL": {"buf_en": 1, "buf_fill": 1, "cnt_en": 1, "wptr_en": 1},
            "VEMIT": {"buf_en": 1, "cnt_en": 1, "vidx_en": 1, "coeff_we": 1},
            "QCLEAR": {"qclear": 1},
            "QEXEC": {"qcoeff_en": 1},
            "QWRITE": {"iq_we": 1, "qidx_en": 1},
            "TCLEAR": {"tclear": 1, "acc_clear": 1, "acc_en": 1, "k_clear": 1, "k_en": 1,
                       "o_clear": 1, "o_en": 1, "blk_clear": 1, "blk_en": 1},
            "TMAC": {"acc_en": 1, "k_en": 1},
            "TWRITE": {"mid_we": 1, "rec_we": 1},
            "TNEXT_OUT": {"o_en": 1, "k_clear": 1, "k_en": 1, "acc_clear": 1, "acc_en": 1},
            "TNEXT_BLK": {"blk_en": 1, "o_clear": 1, "o_en": 1, "k_clear": 1, "k_en": 1,
                          "acc_clear": 1, "acc_en": 1},
            "TNEXT_PASS": {"pass_en": 1, "blk_clear": 1, "blk_en": 1, "o_clear": 1,
                           "o_en": 1, "k_clear": 1, "k_en": 1, "acc_clear": 1, "acc_en": 1},
            "MCLEAR": {"mclear": 1},
            "MCAPT": {"rec_en": 1},
            "MWRITE": {"frame_we": 1, "midx_en": 1},
            "FINISH": {"done": 1},
        },
    )
    # stage 1: VLD decodes exactly 64 levels
    fsm.when("IDLE", "VCLEAR", start=1)
    fsm.otherwise("VCLEAR", "VCHECK")
    fsm.when("VCHECK", "VFILL_REQ", need_fill=1)
    fsm.otherwise("VCHECK", "VDECODE")
    fsm.otherwise("VFILL_REQ", "VFILL")
    fsm.otherwise("VFILL", "VCHECK")
    fsm.otherwise("VDECODE", "VEMIT")
    fsm.when("VEMIT", "QCLEAR", vidx_last=1)
    fsm.otherwise("VEMIT", "VCHECK")
    # stage 2: IQ over 64 coefficients
    fsm.otherwise("QCLEAR", "QREAD")
    fsm.otherwise("QREAD", "QEXEC")
    fsm.otherwise("QEXEC", "QWRITE")
    fsm.when("QWRITE", "TCLEAR", qidx_last=1)
    fsm.otherwise("QWRITE", "QREAD")
    # stage 3: IDCT (two passes)
    fsm.otherwise("TCLEAR", "TREAD")
    fsm.otherwise("TREAD", "TMAC")
    fsm.when("TMAC", "TWRITE", k_last=1)
    fsm.otherwise("TMAC", "TREAD")
    fsm.when("TWRITE", "TNEXT_BLK", o_last=1)
    fsm.otherwise("TWRITE", "TNEXT_OUT")
    fsm.otherwise("TNEXT_OUT", "TREAD")
    fsm.when("TNEXT_BLK", "TNEXT_PASS", blk_last=1)
    fsm.otherwise("TNEXT_BLK", "TREAD")
    fsm.when("TNEXT_PASS", "MCLEAR", pass_bit=1)
    fsm.otherwise("TNEXT_PASS", "TREAD")
    # stage 4: motion compensation over 64 pixels
    fsm.otherwise("MCLEAR", "MREAD")
    fsm.otherwise("MREAD", "MCAPT")
    fsm.otherwise("MCAPT", "MWRITE")
    fsm.when("MWRITE", "FINISH", midx_last=1)
    fsm.otherwise("MWRITE", "MREAD")
    fsm.otherwise("FINISH", "IDLE")

    # =====================================================================
    # Memories
    # =====================================================================
    word = b.memory("bitstream_mem", WORD_BITS, BITSTREAM_DEPTH, we=zero1,
                    addr=wptr_q, wdata=b.const(0, WORD_BITS, name="const_zero_w"),
                    sync_read=True)
    coeff_rdata = b.memory("coeff_mem", COEFF_WIDTH, 64, we=ctrl["coeff_we"],
                           addr=b.mux(ctrl["coeff_we"], qidx_q, vidx_q, name="coeff_addr_mux"),
                           wdata=level, sync_read=True)
    iq_rdata = b.memory("iq_mem", COEFF_WIDTH, 64, we=ctrl["iq_we"],
                        addr=b.mux(ctrl["iq_we"], read_addr, qidx_q, name="iq_addr_mux"),
                        wdata=iq_value, sync_read=True)

    # VLD refill datapath (needs the bitstream word read port)
    shift_room = b.sub(b.const(BUFFER_BITS - WORD_BITS, 6, name="const_room"), cnt_q,
                       name="vld_fill_amt")
    word_shifted = b.shl(b.zext(word, BUFFER_BITS, name="vld_word_ext"),
                         b.slice(shift_room, 3, 0, name="vld_fill_amt4"),
                         name="vld_fill_shifter")
    buf_filled = b.or_(buf_q, word_shifted, name="vld_buf_or")
    buf_consumed = b.shl(buf_q, b.zext(length, 5, name="vld_len_ext"), name="vld_consume")
    cnt_filled = b.add(cnt_q, b.const(WORD_BITS, 6, name="const_16"), name="vld_cnt_fill")
    cnt_consumed = b.sub(cnt_q, b.zext(length, 6, name="vld_len6"), name="vld_cnt_consume")

    b.drive("vld_buf", d=b.mux(ctrl["buf_fill"], buf_consumed, buf_filled, name="vld_buf_mux"),
            en=ctrl["buf_en"], clear=ctrl["vclear"])
    b.drive("vld_cnt", d=b.mux(ctrl["buf_fill"], cnt_consumed, cnt_filled, name="vld_cnt_mux"),
            en=ctrl["cnt_en"], clear=ctrl["vclear"])
    b.drive("vld_wptr", d=b.add(wptr_q, b.const(1, 8, name="const_one8"), name="vld_wptr_inc"),
            en=ctrl["wptr_en"], clear=ctrl["vclear"])
    b.drive("vld_idx", d=b.add(vidx_q, b.const(1, 6, name="const_one6"), name="vld_idx_inc"),
            en=ctrl["vidx_en"], clear=ctrl["vclear"])

    # IQ stage registers
    b.drive("iq_idx", d=b.add(qidx_q, b.const(1, 6, name="const_one6q"), name="iq_idx_inc"),
            en=ctrl["qidx_en"], clear=ctrl["qclear"])
    b.drive("iq_coeff", d=coeff_rdata, en=ctrl["qcoeff_en"])

    # IDCT MAC datapath
    sample_p1 = b.sext(iq_rdata, MID_WIDTH, name="t_sample_p1")
    acc_scaled = b.shr(acc_q, stimuli.DCT_SHIFT, arithmetic=True, name="t_acc_rescale")
    result_p1 = b.saturate(acc_scaled, MID_WIDTH, signed=True, name="t_sat_mid")
    result_p2 = b.saturate(acc_scaled, REC_WIDTH, signed=True, name="t_sat_rec")

    mid_we = b.and_(ctrl["mid_we"], b.not_(pass_q, name="t_pass_inv"), name="t_mid_we")
    mid_waddr = b.concat(o_q, blk_q, name="t_mid_waddr")
    mid_addr = b.mux(pass_q, mid_waddr, read_addr, name="t_mid_addr")
    mid_rdata = b.memory("t_mid_mem", MID_WIDTH, 64, we=mid_we, addr=mid_addr,
                         wdata=result_p1, sync_read=True)

    sample = b.mux(pass_q, sample_p1, b.sext(mid_rdata, MID_WIDTH, name="t_sample_p2"),
                   name="t_sample_mux")
    product = b.mul(sample, b.sext(coeff, MID_WIDTH, name="t_coeff_ext"),
                    width_y=ACC_WIDTH, signed=True, name="t_mac_mult")
    b.drive("t_acc", d=b.add(acc_q, product, name="t_mac_add"),
            en=ctrl["acc_en"], clear=ctrl["acc_clear"])

    rec_we = b.and_(ctrl["rec_we"], pass_q, name="t_rec_we")
    rec_waddr = b.concat(blk_q, o_q, name="t_rec_waddr")
    rec_rdata = b.memory("rec_mem", REC_WIDTH, 64, we=rec_we,
                         addr=b.mux(rec_we, midx_q, rec_waddr, name="rec_addr_mux"),
                         wdata=b.slice(result_p2, REC_WIDTH - 1, 0, name="t_rec_trunc"),
                         sync_read=True)

    # IDCT counters
    b.drive("t_k", d=b.add(k_q, one3, name="t_k_inc"), en=ctrl["k_en"], clear=ctrl["k_clear"])
    b.drive("t_o", d=b.add(o_q, one3, name="t_o_inc"), en=ctrl["o_en"], clear=ctrl["o_clear"])
    b.drive("t_blk", d=b.add(blk_q, one3, name="t_blk_inc"), en=ctrl["blk_en"],
            clear=ctrl["blk_clear"])
    b.drive("t_pass", d=b.const(1, 1, name="const_one1"), en=ctrl["pass_en"],
            clear=ctrl["tclear"])

    # MC stage: prediction fetch, residual add, clamp, frame store
    pred_rdata = b.memory("pred_mem", PIXEL_WIDTH, FRAME_BLOCKS * 64, we=zero1,
                          addr=frame_addr, wdata=b.const(0, PIXEL_WIDTH, name="const_zero_p"),
                          sync_read=True)
    b.drive("mc_rec", d=rec_rdata, en=ctrl["rec_en"])
    b.drive("mc_idx", d=b.add(midx_q, b.const(1, 6, name="const_one6m"), name="mc_idx_inc"),
            en=ctrl["midx_en"], clear=ctrl["mclear"])

    mc_sum = b.add(b.sext(rec_q, REC_WIDTH + 2, name="mc_rec_ext"),
                   b.zext(pred_rdata, REC_WIDTH + 2, name="mc_pred_ext"), name="mc_add")
    mc_sign = b.bit(mc_sum, REC_WIDTH + 1, name="mc_sign")
    mc_over = b.and_(b.not_(mc_sign, name="mc_pos"),
                     b.reduce("or", b.slice(mc_sum, REC_WIDTH, PIXEL_WIDTH, name="mc_high"),
                              name="mc_any"), name="mc_overflow")
    mc_upper = b.mux(mc_over, b.slice(mc_sum, PIXEL_WIDTH - 1, 0, name="mc_low"),
                     b.const(255, PIXEL_WIDTH, name="const_255"), name="mc_clamp_hi")
    mc_pixel = b.mux(mc_sign, mc_upper, b.const(0, PIXEL_WIDTH, name="const_zero_px"),
                     name="mc_clamp")

    b.memory("frame_mem", PIXEL_WIDTH, FRAME_BLOCKS * 64, we=ctrl["frame_we"],
             addr=frame_addr, wdata=mc_pixel, sync_read=True)

    b.output("done", ctrl["done"])

    module = b.build()
    module.attributes["bitstream_memory"] = "bitstream_mem"
    module.attributes["prediction_memory"] = "pred_mem"
    module.attributes["frame_memory"] = "frame_mem"
    module.attributes["description"] = "MPEG4 block decoder composite"
    return module


class Mpeg4Testbench(Testbench):
    """Decodes blocks and compares the frame store with the software reference."""

    def __init__(self, blocks: Sequence[Sequence[int]],
                 predictions: Sequence[Sequence[int]], qp: int = 8,
                 name: str = "mpeg4_tb") -> None:
        super().__init__(name)
        if len(blocks) != len(predictions):
            raise ValueError("need one prediction block per coefficient block")
        if len(blocks) > FRAME_BLOCKS:
            raise ValueError(f"at most {FRAME_BLOCKS} blocks per run")
        self.symbol_blocks = [list(block) for block in blocks]
        self.predictions = [list(p) for p in predictions]
        self.qp = qp
        self.expected = [
            reference_decode_block(symbols, prediction, qp)
            for symbols, prediction in zip(self.symbol_blocks, self.predictions)
        ]
        self._block_index = 0
        self._started = False
        self._checked = 0
        self.max_cycles = (CYCLES_PER_BLOCK + 200) * max(1, len(blocks))

    def _memory(self, simulator, suffix: str):
        for name, component in simulator.module.components.items():
            if component.type_name == "memory" and name.endswith(suffix):
                return component
        raise KeyError(f"memory {suffix!r} not found")

    def _load_block(self, simulator) -> None:
        symbols = self.symbol_blocks[self._block_index]
        words = stimuli.vld_encode(symbols, word_bits=WORD_BITS)
        self._memory(simulator, "bitstream_mem").load(words)
        self._memory(simulator, "pred_mem").load(
            self.predictions[self._block_index], offset=self._block_index * 64
        )

    def bind(self, simulator) -> None:
        self._block_index = 0
        self._started = False
        self._checked = 0
        self._load_block(simulator)

    def drive(self, cycle: int, simulator):
        base = {"qp": self.qp, "block_index": self._block_index % FRAME_BLOCKS}
        if self._block_index >= len(self.symbol_blocks):
            return dict(base, start=0)
        if not self._started:
            self._started = True
            return dict(base, start=1)
        return dict(base, start=0)

    def check(self, cycle: int, simulator) -> None:
        if self._started and simulator.get_output("done"):
            frame = self._memory(simulator, "frame_mem")
            offset = self._block_index * 64
            actual = [frame.read_word(offset + i) for i in range(64)]
            expected = self.expected[self._block_index]
            assert actual == expected, (
                f"block {self._block_index}: decoded pixels mismatch "
                f"(first diff at {next(i for i in range(64) if actual[i] != expected[i])})"
            )
            self._checked += 1
            self._block_index += 1
            self._started = False
            if self._block_index < len(self.symbol_blocks):
                self._load_block(simulator)

    def finished(self, cycle: int, simulator) -> bool:
        return self._block_index >= len(self.symbol_blocks)

    def captured(self):
        return {"blocks_checked": self._checked}


def testbench(n_blocks: int = 1, seed: int = 10, qp: int = 8) -> Mpeg4Testbench:
    """Standard stimulus: random coded blocks plus random prediction blocks."""
    import random

    rng = random.Random(seed)
    blocks = []
    predictions = []
    for i in range(n_blocks):
        # mostly near-zero levels with a stronger DC term, like real residuals
        symbols = [rng.choice([2, 3, 3, 3, 4, 1, 5]) for _ in range(64)]
        symbols[0] = rng.randint(0, 7)
        blocks.append(symbols)
        predictions.append(stimuli.random_pixel_block(seed=seed + 100 + i))
    return Mpeg4Testbench(blocks, predictions, qp=qp)
