"""Cycle-accurate RTL simulation.

The simulator executes flat :class:`~repro.netlist.module.Module` objects one
clock cycle at a time: combinational logic is levelized once and evaluated in
topological order, then all sequential components capture and commit their
next state.  Observers (signal traces, power estimators, the emulated power
aggregator readback) hook into the end of the combinational settle phase of
every cycle — exactly the instant at which the paper's power strobe samples
component inputs/outputs.
"""

from repro.sim.scheduler import levelize, SchedulingError
from repro.sim.engine import Simulator, SimulationResult, SimulationObserver
from repro.sim.testbench import (
    Testbench,
    VectorTestbench,
    CallbackTestbench,
    RandomTestbench,
)
from repro.sim.trace import SignalTrace, NetStatistics, ComponentActivityTrace
from repro.sim.waveform import Waveform, WaveformRecorder

__all__ = [
    "levelize",
    "SchedulingError",
    "Simulator",
    "SimulationResult",
    "SimulationObserver",
    "Testbench",
    "VectorTestbench",
    "CallbackTestbench",
    "RandomTestbench",
    "SignalTrace",
    "NetStatistics",
    "ComponentActivityTrace",
    "Waveform",
    "WaveformRecorder",
]
