"""Signal activity tracing.

Switching activity (per-net toggle counts and densities, per-component I/O
transition streams) is the raw material of every power estimation method in
this package: the software RTL estimator evaluates macromodels on it, the
gate-level estimator converts it into dynamic power directly, and the
hardware power models inserted by the instrumentation pass compute it with
XOR gates on the emulation platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.netlist.components import Component
from repro.netlist.nets import Net
from repro.netlist.signals import popcount
from repro.sim.engine import SimulationObserver, Simulator


@dataclass
class NetStatistics:
    """Per-net switching statistics over a traced run."""

    net: Net
    cycles: int = 0
    #: total number of bit toggles observed (Hamming distance accumulated)
    toggles: int = 0
    #: accumulated number of 1-bits (for static probability)
    ones_bits: int = 0

    @property
    def toggle_density(self) -> float:
        """Average toggles per bit per cycle (switching activity alpha)."""
        if self.cycles == 0 or self.net.width == 0:
            return 0.0
        return self.toggles / (self.cycles * self.net.width)

    @property
    def static_probability(self) -> float:
        """Average probability of a bit being 1."""
        if self.cycles == 0 or self.net.width == 0:
            return 0.0
        return self.ones_bits / (self.cycles * self.net.width)


class SignalTrace(SimulationObserver):
    """Observer accumulating per-net toggle counts and static probabilities."""

    def __init__(self, nets: Optional[Iterable[Net]] = None) -> None:
        self._selected = list(nets) if nets is not None else None
        self.stats: Dict[Net, NetStatistics] = {}
        self._previous: Dict[Net, int] = {}
        self.cycles = 0

    def on_reset(self, simulator: Simulator) -> None:
        nets = self._selected if self._selected is not None else list(simulator.module.nets.values())
        self.stats = {net: NetStatistics(net) for net in nets}
        self._previous = {net: 0 for net in nets}
        self.cycles = 0

    def on_cycle(self, simulator: Simulator, cycle: int) -> None:
        if not self.stats:
            self.on_reset(simulator)
        values = simulator.values
        for net, stat in self.stats.items():
            current = values[net]
            stat.cycles += 1
            stat.toggles += popcount(self._previous[net] ^ current)
            stat.ones_bits += popcount(current)
            self._previous[net] = current
        self.cycles += 1

    # ---------------------------------------------------------------- views
    def total_toggles(self) -> int:
        return sum(s.toggles for s in self.stats.values())

    def by_name(self) -> Dict[str, NetStatistics]:
        return {net.name: stat for net, stat in self.stats.items()}

    def densest(self, n: int = 10) -> List[NetStatistics]:
        """The ``n`` nets with the highest toggle density."""
        return sorted(self.stats.values(), key=lambda s: s.toggle_density, reverse=True)[:n]


class ComponentActivityTrace(SimulationObserver):
    """Records per-cycle I/O snapshots for selected components.

    The power characterization engine uses this to pair observed RTL
    transitions with reference gate-level energies; tests use it to verify
    that the hardware power models see exactly the same values as the
    software estimator.
    """

    def __init__(self, components: Iterable[Component], max_cycles: Optional[int] = None) -> None:
        self.components = list(components)
        self.max_cycles = max_cycles
        self.history: Dict[Component, List[Dict[str, int]]] = {c: [] for c in self.components}

    def on_reset(self, simulator: Simulator) -> None:
        self.history = {c: [] for c in self.components}

    def on_cycle(self, simulator: Simulator, cycle: int) -> None:
        if self.max_cycles is not None and cycle >= self.max_cycles:
            return
        for component in self.components:
            self.history[component].append(simulator.component_io_values(component))

    def transition_counts(self, component: Component) -> List[int]:
        """Per-cycle total transition counts (Hamming distance of all ports)."""
        snapshots = self.history[component]
        counts: List[int] = []
        previous: Optional[Dict[str, int]] = None
        for snapshot in snapshots:
            if previous is None:
                counts.append(0)
            else:
                total = 0
                for port_name, value in snapshot.items():
                    total += popcount(previous.get(port_name, 0) ^ value)
                counts.append(total)
            previous = snapshot
        return counts
