"""Contracts of the fault-tolerant execution layer (repro.resilience).

Everything here drives real failure paths — worker exceptions, ``os._exit``
worker crashes, wall-clock deadlines, Ctrl-C — through the deterministic
fault-injection plans of :mod:`repro.resilience.faults` rather than mocks, so
the recovery machinery (retries, pool respawn, crash isolation, checkpoint/
resume) is exercised exactly as production would hit it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.resilience import faults
from repro.resilience.failures import TaskError, TaskFailure
from repro.resilience.policy import RetryPolicy
from repro.resilience.runner import run_resilient_tasks
from repro.resilience.testing import double_task, echo_task


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    """Every test starts and ends with no fault plan in effect."""
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


# ------------------------------------------------------------- fault plans
class TestFaultPlans:
    def test_parse_full_grammar(self):
        rules = faults.parse_plan("worker@3:fail*2; kernel:hang=1.5 ;cache:exit=139")
        assert rules[0] == faults.FaultRule(
            site="worker", action="fail", task=3, count=2
        )
        assert rules[1].action == "hang" and rules[1].value == 1.5
        assert rules[1].task is None and rules[1].count is None
        assert rules[2].action == "exit" and rules[2].value == 139

    @pytest.mark.parametrize("bad", [
        "worker",            # no action
        "worker:explode",    # unknown action
        "worker@x:fail",     # non-integer task
        "worker:fail*0",     # count < 1
        "worker:hang",       # hang without seconds
        "worker:fail=3",     # value on a valueless action
    ])
    def test_parse_rejects_bad_rules(self, bad):
        with pytest.raises(ValueError):
            faults.parse_plan(bad)

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "worker:fail")
        faults.install_plan("cache:fail")
        assert faults.plan_text() == "cache:fail"
        faults.install_plan(None)
        assert faults.plan_text() == "worker:fail"

    def test_maybe_inject_matches_site_task_and_count(self):
        faults.install_plan("worker@1:fail*2")
        faults.maybe_inject("worker", task=0, attempt=0)  # wrong task: no-op
        faults.maybe_inject("cache")                      # wrong site: no-op
        with pytest.raises(faults.InjectedFault):
            faults.maybe_inject("worker", task=1, attempt=0)
        with pytest.raises(faults.InjectedFault):
            faults.maybe_inject("worker", task=1, attempt=1)
        # attempt >= count: the transient fault has burned out
        faults.maybe_inject("worker", task=1, attempt=2)

    def test_countless_sites_use_process_local_counter(self):
        faults.install_plan("cache:fail*2")
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                faults.maybe_inject("cache")
        faults.maybe_inject("cache")  # third call: burned out


# ------------------------------------------------------------ retry policy
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_crashes=0)

    def test_backoff_is_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.3, jitter_fraction=0.0)
        assert policy.backoff_s(0, 0) == pytest.approx(0.1)
        assert policy.backoff_s(0, 1) == pytest.approx(0.2)
        assert policy.backoff_s(0, 5) == pytest.approx(0.3)  # capped
        jittered = RetryPolicy(jitter_seed=7)
        assert jittered.backoff_s(3, 1) == jittered.backoff_s(3, 1)
        assert jittered.backoff_s(3, 1) != jittered.backoff_s(4, 1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT_S", "2.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "3")
        policy = RetryPolicy.from_env()
        assert policy.timeout_s == 2.5 and policy.max_retries == 3
        # explicit arguments beat the environment
        policy = RetryPolicy.from_env(timeout_s=1.0, max_retries=0)
        assert policy.timeout_s == 1.0 and policy.max_retries == 0

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "many")
        with pytest.raises(ValueError):
            RetryPolicy.from_env()


# ------------------------------------------------------------ serial runner
class TestSerialRunner:
    def test_plain_success_and_order(self):
        outcome = run_resilient_tasks([1, 2, 3], double_task)
        assert outcome.ok and outcome.values() == [2, 4, 6]
        assert [o.attempts for o in outcome.outcomes] == [1, 1, 1]

    def test_transient_failure_retries_to_success(self):
        faults.install_plan("worker@1:fail*2")
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.001)
        outcome = run_resilient_tasks([10, 20, 30], double_task, policy=policy)
        assert outcome.ok and outcome.values() == [20, 40, 60]
        assert outcome.outcomes[1].attempts == 3  # failed twice, then won

    def test_exhausted_retries_record_structured_failure(self):
        faults.install_plan("worker@0:fail")
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.001)
        outcome = run_resilient_tasks(["a", "b"], echo_task, policy=policy)
        assert not outcome.ok and outcome.values() == [None, "b"]
        failure = outcome.outcomes[0].failure
        assert failure.kind == "exception"
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 2
        assert "injected fault" in failure.message
        assert failure.traceback  # the worker-side traceback came across

    def test_raise_first_failure_reraises_original_exception(self):
        faults.install_plan("worker@0:fail")
        outcome = run_resilient_tasks([1], echo_task)
        with pytest.raises(faults.InjectedFault):
            outcome.raise_first_failure()

    def test_stop_on_failure_skips_later_tasks(self):
        faults.install_plan("worker@1:fail")
        outcome = run_resilient_tasks(
            [0, 1, 2], echo_task, stop_on_failure=True
        )
        kinds = [o.failure.kind if o.failure else None for o in outcome.outcomes]
        assert kinds == [None, "exception", "skipped"]

    def test_interrupt_returns_partial_outcome(self):
        faults.install_plan("worker@1:interrupt")
        outcome = run_resilient_tasks([0, 1, 2], echo_task)
        assert outcome.interrupted and not outcome.ok
        assert outcome.outcomes[0].ok
        assert outcome.outcomes[1].failure.kind == "interrupted"
        assert outcome.outcomes[2].failure.kind == "interrupted"

    def test_serial_run_restores_installed_plan(self, monkeypatch):
        # regression: the serial path runs the worker envelope in-process,
        # and its install_plan() call must not outlive the run — a stale
        # installed plan would shadow every later env change
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "worker@0:fail")
        outcome = run_resilient_tasks([1], echo_task)
        assert not outcome.ok
        assert faults.installed_plan() is None
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "")
        assert run_resilient_tasks([1], echo_task).ok

    def test_worker_wall_time_is_measured(self):
        from repro.resilience.testing import sleep_task

        outcome = run_resilient_tasks([0.05], sleep_task)
        assert outcome.outcomes[0].wall_time_s >= 0.04


# -------------------------------------------------------------- pool runner
class TestPoolRunner:
    def test_pool_matches_serial_results(self):
        outcome = run_resilient_tasks(list(range(6)), double_task, n_workers=2)
        assert outcome.ok
        assert outcome.values() == [2 * v for v in range(6)]

    def test_worker_crash_is_quarantined_with_structured_failure(self):
        # an os._exit(139) inside the worker kills its process and poisons
        # the pool: the runner must respawn, re-run suspects in isolation,
        # quarantine the culprit and still complete every innocent task
        faults.install_plan("worker@1:exit=139")
        outcome = run_resilient_tasks(list(range(4)), double_task, n_workers=2)
        assert not outcome.ok
        assert outcome.values() == [0, None, 4, 6]
        failure = outcome.outcomes[1].failure
        assert failure.kind == "crash"
        assert failure.error_type == "WorkerCrashed"
        assert "died abruptly" in failure.message
        assert outcome.n_pool_respawns >= 2  # initial strike + solo strike

    def test_transient_crash_recovers_via_retry(self):
        # dies once, then succeeds on the isolated re-run
        faults.install_plan("worker@1:exit=1*1")
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.001)
        outcome = run_resilient_tasks(
            list(range(3)), double_task, n_workers=2, policy=policy
        )
        assert outcome.ok and outcome.values() == [0, 2, 4]
        assert outcome.outcomes[1].attempts >= 2
        assert outcome.n_pool_respawns == 1

    def test_hung_task_times_out_with_kind_timeout(self):
        faults.install_plan("worker@0:hang=30")
        policy = RetryPolicy(timeout_s=0.5)
        outcome = run_resilient_tasks(
            list(range(3)), double_task, n_workers=2, policy=policy
        )
        assert outcome.values() == [None, 2, 4]
        failure = outcome.outcomes[0].failure
        assert failure.kind == "timeout"
        assert "0.5s deadline" in failure.message


# ------------------------------------------------------------ serialization
class TestFailureSerialization:
    def test_task_failure_round_trip(self):
        failure = TaskFailure(
            task_index=3, label="DCT[rtl] seed 1", kind="timeout",
            error_type="TaskTimeout", message="too slow", attempts=2,
            wall_time_s=1.5, context={"specs": [{"design": "DCT"}]},
        )
        clone = TaskFailure.from_dict(json.loads(json.dumps(failure.to_dict())))
        assert clone == failure

    def test_task_error_carries_failure(self):
        failure = TaskFailure(task_index=0, label="t", kind="crash",
                              error_type="WorkerCrashed", message="boom")
        error = TaskError(failure)
        assert error.failure is failure
        assert "crash" in str(error)
