"""Multi-core kernel scale-out: native-kernel throughput vs thread count.

The native C kernels split the lane dimension into blocks and fan the settle
and clock-edge loops over a persistent thread pool (OpenMP when the
toolchain supports it, a hand-rolled pthread pool otherwise — see
``repro.sim.kernels.native``).  Lanes are data-parallel and every lane block
writes disjoint store columns, so any thread count is bit-identical to the
serial kernel.

This harness steps designs for ``REPRO_BENCH_SCALING_CYCLES`` cycles at a
``REPRO_BENCH_SCALING_LANES`` x ``REPRO_BENCH_SCALING_THREADS`` matrix and
records lane-cycles/second per cell, plus the host core count the numbers
were measured on.  Bit-identity across thread counts is asserted always;
the >= 2x speedup floor at 4 threads (vs 1 thread, >= 1024 lanes, a Fig. 3
design) only binds on hosts with >= 4 physical cores — single-core CI
runners still measure and record the matrix, they just cannot exhibit
parallel speedup.

Writes ``benchmarks/results/kernel_scaling.txt`` and the repo-root
``BENCH_kernel_scaling.json`` trajectory artifact.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.designs.registry import build_flat
from repro.sim import BatchSimulator
from repro.sim.kernels import find_compiler
from repro.sim.kernels.native import threading_mode

from conftest import write_result

N_LANES = int(os.environ.get("REPRO_BENCH_SCALING_LANES", "1024"))
N_CYCLES = int(os.environ.get("REPRO_BENCH_SCALING_CYCLES", "192"))
THREADS = tuple(
    int(t) for t in os.environ.get("REPRO_BENCH_SCALING_THREADS", "1,2,4").split(",")
)
DESIGNS = tuple(
    os.environ.get("REPRO_BENCH_SCALING_DESIGNS", "Bubble_Sort,HVPeakF").split(",")
)
N_CORES = os.cpu_count() or 1

#: the speedup floor only binds in the regime the issue names: a compiled
#: threaded kernel, >= 1024 lanes and enough physical cores to scale onto
ASSERT_SPEEDUP = (
    N_LANES >= 1024 and 4 in THREADS and N_CORES >= 4 and find_compiler() is not None
)

#: design -> {n_threads: lane-cycles/s}
_ROWS = {}


def _native_simulator(design_name: str, n_threads: int) -> BatchSimulator:
    module = build_flat(design_name)
    simulator = BatchSimulator(
        module, N_LANES, kernel_backend="native", kernel_threads=n_threads
    )
    if simulator.kernel_backend != "native":
        pytest.skip(f"no C compiler: native kernel unavailable "
                    f"({simulator.kernel_fallback})")
    return simulator


def _lane_cycles_per_s(design_name: str, n_threads: int) -> float:
    simulator = _native_simulator(design_name, n_threads)
    simulator.step(cycles=8)  # warm the kernel cache and the thread pool
    best = float("inf")
    for _ in range(3):
        simulator.reset()
        start = time.perf_counter()
        simulator.step(cycles=N_CYCLES)
        best = min(best, time.perf_counter() - start)
    return N_LANES * N_CYCLES / best


def _format_table() -> str:
    lines = [
        "Native-kernel thread scaling — lane-cycles/s vs worker threads",
        f"({N_LANES} lanes x {N_CYCLES} cycles; host: {N_CORES} core(s), "
        f"pool: {threading_mode() or 'n/a'})",
        "",
        f"{'design':16s} " + " ".join(f"{f'{t} thr':>14s}" for t in THREADS)
        + f" {'best x':>8s}",
    ]
    for name, row in _ROWS.items():
        cells = " ".join(f"{row[t]:>14,.0f}" for t in THREADS)
        best = max(row[t] / row[THREADS[0]] for t in THREADS)
        lines.append(f"{name:16s} {cells} {best:>7.2f}x")
    return "\n".join(lines)


def _metrics() -> dict:
    metrics = {
        "n_lanes": N_LANES,
        "n_cycles": N_CYCLES,
        "host_cores": N_CORES,
        "threading_mode": threading_mode() or "n/a",
    }
    for name, row in _ROWS.items():
        metrics[f"lane_cycles_per_s_{name}_1thr"] = round(row[THREADS[0]], 1)
        for t in THREADS[1:]:
            metrics[f"speedup_{name}_{t}thr"] = round(row[t] / row[THREADS[0]], 2)
    return metrics


@pytest.mark.parametrize("design_name", DESIGNS)
def test_kernel_thread_scaling(benchmark, design_name):
    row = {t: _lane_cycles_per_s(design_name, t) for t in THREADS}
    _ROWS[design_name] = row

    benchmark.pedantic(
        lambda: _lane_cycles_per_s(design_name, THREADS[-1]), rounds=1, iterations=1
    )
    benchmark.extra_info.update({
        "host_cores": N_CORES,
        **{f"speedup_{t}thr": round(row[t] / row[THREADS[0]], 2)
           for t in THREADS[1:]},
    })
    # every design updates the trajectory artifact, so partial runs still
    # leave a complete summary behind
    write_result("kernel_scaling.txt", _format_table(), metrics=_metrics(),
                 bench_name="kernel_scaling")

    if ASSERT_SPEEDUP:
        assert row[4] >= 2.0 * row[THREADS[0]], (
            f"{design_name}: 4-thread native kernel below the 2x floor on a "
            f"{N_CORES}-core host ({row[4]:,.0f} vs {row[THREADS[0]]:,.0f} "
            f"lane-cycles/s)"
        )


@pytest.mark.parametrize("design_name", DESIGNS)
def test_kernel_thread_bit_identity(design_name):
    """Any thread count leaves a bit-identical value store."""
    stores = {}
    for n_threads in THREADS:
        simulator = _native_simulator(design_name, n_threads)
        simulator.reset()
        simulator.step(cycles=32)
        stores[n_threads] = simulator._v.copy()
    reference = stores[THREADS[0]]
    for n_threads in THREADS[1:]:
        assert np.array_equal(reference, stores[n_threads]), (
            f"{design_name}: {n_threads}-thread store differs from "
            f"{THREADS[0]}-thread store"
        )
