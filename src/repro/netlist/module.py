"""Hierarchical RTL modules.

A :class:`Module` owns nets, components and (optionally) instances of other
modules.  Hierarchy is elaborated away by :func:`repro.netlist.flatten.flatten`
before simulation, technology mapping or power-emulation instrumentation, so
all downstream passes only have to handle flat modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.netlist.components import Component
from repro.netlist.nets import Net
from repro.netlist.ports import PortDirection


@dataclass
class ModulePort:
    """A top-level port of a module, bound to one of the module's nets."""

    name: str
    direction: PortDirection
    net: Net

    @property
    def width(self) -> int:
        return self.net.width

    @property
    def is_input(self) -> bool:
        return self.direction is PortDirection.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction is PortDirection.OUTPUT


class Instance:
    """An instantiation of a child module inside a parent module.

    ``connections`` maps the child's port names to nets of the parent.
    """

    def __init__(self, name: str, module: "Module", connections: Mapping[str, Net]) -> None:
        self.name = name
        self.module = module
        self.connections: Dict[str, Net] = dict(connections)
        for port_name, net in self.connections.items():
            if port_name not in module.ports:
                raise ValueError(
                    f"instance {name!r}: module {module.name!r} has no port {port_name!r}"
                )
            expected = module.ports[port_name].width
            if expected != net.width:
                raise ValueError(
                    f"instance {name!r}: port {port_name!r} is {expected} bits but net "
                    f"{net.name!r} is {net.width} bits"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({self.name!r} of {self.module.name!r})"


class Module:
    """A flat-or-hierarchical RTL netlist container."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: Dict[str, ModulePort] = {}
        self.nets: Dict[str, Net] = {}
        self.components: Dict[str, Component] = {}
        self.instances: Dict[str, Instance] = {}
        #: free-form metadata (design description, stimulus hints, ...)
        self.attributes: Dict[str, object] = {}

    # ----------------------------------------------------------------- nets
    def add_net(self, name: str, width: int) -> Net:
        if name in self.nets:
            raise ValueError(f"module {self.name!r}: duplicate net {name!r}")
        net = Net(name, width)
        self.nets[name] = net
        return net

    def get_net(self, name: str) -> Net:
        return self.nets[name]

    # ---------------------------------------------------------------- ports
    def add_port(self, name: str, direction: PortDirection, net: Net) -> ModulePort:
        if name in self.ports:
            raise ValueError(f"module {self.name!r}: duplicate port {name!r}")
        if net.name not in self.nets or self.nets[net.name] is not net:
            raise ValueError(
                f"module {self.name!r}: port {name!r} must be bound to one of the module's nets"
            )
        port = ModulePort(name=name, direction=direction, net=net)
        self.ports[name] = port
        if direction is PortDirection.INPUT:
            if net.driver is not None:
                raise ValueError(
                    f"net {net.name!r} already has a driver; cannot use it as input port {name!r}"
                )
            net.driver = ("module", name)
        return port

    def add_input(self, name: str, width: int) -> Net:
        """Create a net and expose it as a module input port; returns the net."""
        net = self.add_net(name, width)
        self.add_port(name, PortDirection.INPUT, net)
        return net

    def add_output(self, name: str, net: Net) -> ModulePort:
        """Expose an existing (driven) net as a module output port."""
        return self.add_port(name, PortDirection.OUTPUT, net)

    @property
    def input_ports(self) -> List[ModulePort]:
        return [p for p in self.ports.values() if p.is_input]

    @property
    def output_ports(self) -> List[ModulePort]:
        return [p for p in self.ports.values() if p.is_output]

    # ----------------------------------------------------------- components
    def add_component(self, component: Component) -> Component:
        if component.name in self.components:
            raise ValueError(
                f"module {self.name!r}: duplicate component {component.name!r}"
            )
        self.components[component.name] = component
        return component

    def get_component(self, name: str) -> Component:
        return self.components[name]

    def remove_component(self, name: str) -> Component:
        """Detach and return a component (used by optimization passes)."""
        component = self.components.pop(name)
        for port in component.ports.values():
            net = port.net
            if net is None:
                continue
            if port.is_output and net.driver == (component, port.name):
                net.driver = None
            elif port.is_input:
                net.sinks = [s for s in net.sinks if s[0] is not component]
            port.net = None
        return component

    # ------------------------------------------------------------ instances
    def add_instance(self, name: str, module: "Module", connections: Mapping[str, Net]) -> Instance:
        if name in self.instances:
            raise ValueError(f"module {self.name!r}: duplicate instance {name!r}")
        instance = Instance(name, module, connections)
        self.instances[name] = instance
        # record driver/sink relationships for validation purposes
        for port_name, net in instance.connections.items():
            child_port = module.ports[port_name]
            if child_port.is_output:
                if net.driver is not None:
                    raise ValueError(
                        f"net {net.name!r} already driven; instance {name!r} output "
                        f"{port_name!r} cannot drive it too"
                    )
                net.driver = (instance, port_name)
            else:
                net.sinks.append((instance, port_name))
        return instance

    @property
    def is_hierarchical(self) -> bool:
        return bool(self.instances)

    # --------------------------------------------------------------- queries
    def iter_components(self) -> Iterable[Component]:
        return self.components.values()

    def sequential_components(self) -> List[Component]:
        return [c for c in self.components.values() if c.is_sequential]

    def combinational_components(self) -> List[Component]:
        return [c for c in self.components.values() if not c.is_sequential]

    def find_components(self, type_name: str) -> List[Component]:
        return [c for c in self.components.values() if c.type_name == type_name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Module({self.name!r}, {len(self.components)} components, "
            f"{len(self.nets)} nets, {len(self.instances)} instances)"
        )
