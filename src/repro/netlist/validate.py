"""Structural validation of RTL modules.

Checks performed:

* every component input port is connected to a net owned by the module,
* every net has exactly one driver (component output, instance output or
  module input),
* no combinational cycles (through components with an input→output
  combinational path),
* module output ports are driven.

Unconnected optional inputs and undriven nets that have no sinks are reported
as warnings rather than errors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List

from repro.netlist.module import Module
from repro.netlist.nets import Net


class ValidationError(Exception):
    """Raised by :func:`validate_module` when a structural check fails."""


@dataclass
class ValidationReport:
    """Outcome of validation: hard errors and advisory warnings."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def validate_module(module: Module, raise_on_error: bool = True) -> ValidationReport:
    """Run all structural checks on a flat or hierarchical module."""
    report = ValidationReport()
    _check_ports_connected(module, report)
    _check_net_drivers(module, report)
    _check_combinational_loops(module, report)
    if raise_on_error and report.errors:
        raise ValidationError(
            f"module {module.name!r} failed validation:\n  " + "\n  ".join(report.errors)
        )
    return report


def _check_ports_connected(module: Module, report: ValidationReport) -> None:
    for component in module.components.values():
        for port in component.ports.values():
            if port.net is None:
                kind = "input" if port.is_input else "output"
                message = f"component {component.name!r}: unconnected {kind} port {port.name!r}"
                if port.is_input:
                    report.errors.append(message)
                else:
                    report.warnings.append(message)
            elif port.net.name not in module.nets or module.nets[port.net.name] is not port.net:
                report.errors.append(
                    f"component {component.name!r}: port {port.name!r} is connected to net "
                    f"{port.net.name!r} which does not belong to module {module.name!r}"
                )
    for port_name, mport in module.ports.items():
        if mport.is_output and mport.net.driver is None:
            report.errors.append(f"module output port {port_name!r} is undriven")


def _check_net_drivers(module: Module, report: ValidationReport) -> None:
    for net in module.nets.values():
        if net.driver is None:
            if net.sinks:
                report.errors.append(
                    f"net {net.name!r} has {len(net.sinks)} sink(s) but no driver"
                )
            else:
                report.warnings.append(f"net {net.name!r} is dangling (no driver, no sinks)")
        elif not net.sinks and not any(
            p.net is net and p.is_output for p in module.ports.values()
        ):
            report.warnings.append(f"net {net.name!r} is driven but never read")


def _check_combinational_loops(module: Module, report: ValidationReport) -> None:
    """Kahn topological sort over components with combinational paths."""
    comb = [c for c in module.components.values() if c.has_comb_path]
    comb_by_net_out: Dict[Net, object] = {}
    for component in comb:
        for net in component.output_nets():
            comb_by_net_out[net] = component

    successors: Dict[object, List[object]] = {c: [] for c in comb}
    indegree: Dict[object, int] = {c: 0 for c in comb}
    for component in comb:
        for net in component.input_nets():
            producer = comb_by_net_out.get(net)
            if producer is not None and producer is not component:
                successors[producer].append(component)
                indegree[component] += 1
            elif producer is component:
                report.errors.append(
                    f"component {component.name!r} combinationally feeds itself"
                )

    queue = deque(c for c, d in indegree.items() if d == 0)
    visited = 0
    while queue:
        current = queue.popleft()
        visited += 1
        for succ in successors[current]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if visited != len(comb):
        stuck = sorted(c.name for c, d in indegree.items() if d > 0)
        report.errors.append(
            "combinational loop detected involving: " + ", ".join(stuck[:10])
        )
