"""Unit tests for sequential components and the FSM controller."""

from __future__ import annotations

import pytest

from repro.netlist.fsm import FSMController, Guard
from repro.netlist.sequential import (
    Accumulator,
    Counter,
    Memory,
    Register,
    RegisterFile,
    ROM,
)


def clock(component, inputs):
    """Helper: run one capture/commit edge with the given inputs."""
    component.capture(inputs)
    component.commit()


def test_register_basic():
    reg = Register("r", 8, reset_value=5)
    assert reg.evaluate({})["q"] == 5
    clock(reg, {"d": 42})
    assert reg.evaluate({})["q"] == 42
    reg.reset()
    assert reg.value == 5


def test_register_enable_and_clear():
    reg = Register("r", 8, has_enable=True, has_clear=True)
    clock(reg, {"d": 7, "en": 0, "clear": 0})
    assert reg.value == 0
    clock(reg, {"d": 7, "en": 1, "clear": 0})
    assert reg.value == 7
    clock(reg, {"d": 9, "en": 1, "clear": 1})
    assert reg.value == 0


def test_counter_counts_loads_and_wraps():
    counter = Counter("c", 4, has_load=True, wrap_at=10)
    for _ in range(9):
        clock(counter, {"en": 1, "load": 0, "d": 0})
    assert counter.value == 9
    clock(counter, {"en": 1, "load": 0, "d": 0})
    assert counter.value == 0
    clock(counter, {"en": 0, "load": 1, "d": 7})
    assert counter.value == 7
    clock(counter, {"en": 0, "load": 0, "d": 0})
    assert counter.value == 7


def test_accumulator():
    acc = Accumulator("acc", 8)
    clock(acc, {"d": 10, "en": 1, "clear": 0})
    clock(acc, {"d": 20, "en": 1, "clear": 0})
    assert acc.value == 30
    clock(acc, {"d": 99, "en": 0, "clear": 0})
    assert acc.value == 30
    clock(acc, {"d": 0, "en": 0, "clear": 1})
    assert acc.value == 0


def test_accumulator_wraps_at_width():
    acc = Accumulator("acc", 8)
    clock(acc, {"d": 200, "en": 1, "clear": 0})
    clock(acc, {"d": 100, "en": 1, "clear": 0})
    assert acc.value == (300 & 0xFF)


def test_register_file_read_write():
    rf = RegisterFile("rf", 16, 8, n_read_ports=2)
    clock(rf, {"we": 1, "waddr": 3, "wdata": 0xABC, "raddr0": 0, "raddr1": 0})
    out = rf.evaluate({"raddr0": 3, "raddr1": 0})
    assert out["rdata0"] == 0xABC
    assert out["rdata1"] == 0
    rf.write_word(5, 77)
    assert rf.read_word(5) == 77


def test_register_file_rejects_bad_initial():
    with pytest.raises(ValueError):
        RegisterFile("rf", 8, 4, initial=[1, 2])


def test_memory_sync_read_is_registered():
    mem = Memory("m", 8, 16, sync_read=True, initial=list(range(16)))
    # before any clock edge the read register holds 0
    assert mem.evaluate({"addr": 5, "we": 0, "wdata": 0})["rdata"] == 0
    clock(mem, {"addr": 5, "we": 0, "wdata": 0})
    assert mem.evaluate({"addr": 9, "we": 0, "wdata": 0})["rdata"] == 5


def test_memory_async_read_and_write():
    mem = Memory("m", 8, 16, sync_read=False)
    assert mem.has_comb_path is True
    clock(mem, {"addr": 2, "we": 1, "wdata": 0x5A})
    assert mem.evaluate({"addr": 2, "we": 0, "wdata": 0})["rdata"] == 0x5A


def test_memory_read_before_write_semantics():
    mem = Memory("m", 8, 4, sync_read=True, initial=[1, 2, 3, 4])
    clock(mem, {"addr": 1, "we": 1, "wdata": 99})
    # the read port captured the OLD value at address 1
    assert mem.evaluate({"addr": 0, "we": 0, "wdata": 0})["rdata"] == 2
    assert mem.read_word(1) == 99


def test_memory_backdoor_load():
    mem = Memory("m", 16, 8)
    mem.load([10, 20, 30], offset=2)
    assert mem.read_word(2) == 10
    assert mem.read_word(4) == 30


def test_rom_lookup():
    rom = ROM("rom", 8, [3, 1, 4, 1, 5, 9, 2, 6])
    assert rom.evaluate({"addr": 4})["rdata"] == 5
    assert rom.evaluate({"addr": 12})["rdata"] == 5  # address wraps modulo depth
    with pytest.raises(ValueError):
        ROM("empty", 8, [])


def test_fsm_transitions_and_outputs():
    fsm = FSMController(
        "ctrl",
        states=["IDLE", "RUN", "DONE"],
        inputs={"start": 1, "count": 4},
        outputs={"busy": 1, "finish": 1},
        moore_outputs={"RUN": {"busy": 1}, "DONE": {"finish": 1}},
    )
    fsm.when("IDLE", "RUN", start=1)
    fsm.add_transition("RUN", "DONE", [Guard("count", ">=", 3)])
    fsm.otherwise("DONE", "IDLE")

    assert fsm.state == "IDLE"
    assert fsm.evaluate({}) == {"busy": 0, "finish": 0}
    clock(fsm, {"start": 0, "count": 0})
    assert fsm.state == "IDLE"
    clock(fsm, {"start": 1, "count": 0})
    assert fsm.state == "RUN"
    assert fsm.evaluate({})["busy"] == 1
    clock(fsm, {"start": 0, "count": 2})
    assert fsm.state == "RUN"
    clock(fsm, {"start": 0, "count": 3})
    assert fsm.state == "DONE"
    assert fsm.evaluate({})["finish"] == 1
    clock(fsm, {"start": 0, "count": 0})
    assert fsm.state == "IDLE"


def test_fsm_transition_priority():
    fsm = FSMController(
        "p", states=["A", "B", "C"], inputs={"x": 2}, outputs={"o": 1}
    )
    fsm.when("A", "B", x=1)
    fsm.otherwise("A", "C")
    clock(fsm, {"x": 1})
    assert fsm.state == "B"
    fsm.reset()
    clock(fsm, {"x": 2})
    assert fsm.state == "C"


def test_fsm_validation_errors():
    with pytest.raises(ValueError):
        FSMController("empty", states=[], inputs={}, outputs={})
    fsm = FSMController("f", states=["A"], inputs={"x": 1}, outputs={"y": 1})
    with pytest.raises(ValueError):
        fsm.when("A", "MISSING", x=1)
    with pytest.raises(ValueError):
        fsm.add_transition("A", "A", [Guard("unknown", "==", 1)])
    with pytest.raises(ValueError):
        Guard("x", "~", 1)


def test_fsm_reachable_states():
    fsm = FSMController(
        "r", states=["A", "B", "ORPHAN"], inputs={"x": 1}, outputs={"y": 1}
    )
    fsm.when("A", "B", x=1)
    assert fsm.reachable_states() == ["A", "B"]


def test_fsm_signed_guard():
    fsm = FSMController(
        "s", states=["A", "B"], inputs={"delta": 8}, outputs={"y": 1}
    )
    fsm.add_transition("A", "B", [Guard("delta", "<", 0, signed=True)])
    clock(fsm, {"delta": 0x80})  # -128 signed
    assert fsm.state == "B"
