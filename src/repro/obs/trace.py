"""Structured trace spans exporting Chrome ``trace_event`` JSON.

Spans mark phases of the estimation pipeline (``netlist.flatten``,
``program.build``, ``kernel.compile``, ``lanes.simulate``, per-job serve
states) and serialize as complete ("X") events — wall-clock ``ts`` plus
monotonic-measured ``dur``, both in microseconds — which Perfetto and
``chrome://tracing`` load directly.  Using wall-clock for ``ts`` is what
lets spans recorded in forkserver shard workers land on the same timeline
as the parent once their buffers are merged (each keeps its own ``pid``
row in the viewer).

Two span APIs with different disabled-path costs:

* ``span(name, **args)`` — context manager for instrumentation sites.
  With tracing off it returns a shared no-op singleton: one module-global
  check, no allocation.
* ``start_span(name, **args)`` — always returns a measuring :class:`Span`
  whose ``duration_s`` is valid after ``end()`` even with tracing off.
  ``repro.serve`` uses this so streaming progress events carry phase
  durations from the span layer unconditionally.

Nothing here runs per simulated cycle; the lane hot path
(``BatchSimulator.settle``/``clock_edge``/``step``) stays untouched.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "Span",
    "add_events",
    "chrome_trace",
    "disable_tracing",
    "drain_events",
    "enable_tracing",
    "event_count",
    "load_trace",
    "peek_events",
    "span",
    "start_span",
    "summarize_trace",
    "tracing_enabled",
    "write_chrome_trace",
]

_lock = threading.Lock()
_events: List[dict] = []
_tracing = False


def enable_tracing() -> None:
    global _tracing
    _tracing = True


def disable_tracing() -> None:
    global _tracing
    _tracing = False


def tracing_enabled() -> bool:
    return _tracing


class Span:
    """One timed phase; records a Chrome event on ``end()`` if tracing."""

    __slots__ = ("name", "args", "duration_s", "_start_wall", "_start_perf",
                 "_done")

    def __init__(self, name: str, args: Optional[dict] = None) -> None:
        self.name = name
        self.args = dict(args) if args else {}
        self.duration_s = 0.0
        self._done = False
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()

    def set(self, **args: object) -> None:
        self.args.update(args)

    def end(self) -> float:
        if self._done:
            return self.duration_s
        self._done = True
        self.duration_s = time.perf_counter() - self._start_perf
        if _tracing:
            event = {
                "name": self.name,
                "cat": "repro",
                "ph": "X",
                "ts": int(self._start_wall * 1e6),
                "dur": max(int(self.duration_s * 1e6), 1),
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0x7FFFFFFF,
            }
            if self.args:
                event["args"] = {k: _jsonable(v) for k, v in self.args.items()}
            with _lock:
                _events.append(event)
        return self.duration_s

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self.end()


class _NoopSpan:
    """Shared do-nothing span returned by ``span()`` when tracing is off."""

    __slots__ = ()
    name = ""
    args: dict = {}
    duration_s = 0.0

    def set(self, **args: object) -> None:
        pass

    def end(self) -> float:
        return 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


def span(name: str, **args: object) -> Union[Span, _NoopSpan]:
    """Context manager for a traced phase; free when tracing is off."""
    if not _tracing:
        return _NOOP_SPAN
    return Span(name, args)


def start_span(name: str, **args: object) -> Span:
    """A span that always measures ``duration_s``, recording only if tracing."""
    return Span(name, args)


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ------------------------------------------------------------------ buffer


def drain_events() -> List[dict]:
    """Remove and return all buffered events (worker export, trace write)."""
    global _events
    with _lock:
        events, _events = _events, []
    return events


def peek_events() -> List[dict]:
    with _lock:
        return list(_events)


def event_count() -> int:
    with _lock:
        return len(_events)


def add_events(events: Iterable[dict]) -> int:
    """Merge events recorded elsewhere (shard workers) into this buffer."""
    merged = [e for e in events if isinstance(e, dict) and "name" in e]
    if merged:
        with _lock:
            _events.extend(merged)
    return len(merged)


# ------------------------------------------------------------------ export


def chrome_trace(events: Optional[List[dict]] = None) -> dict:
    """Wrap events as a Chrome trace object with process-name metadata."""
    if events is None:
        events = peek_events()
    main_pid = os.getpid()
    metadata = []
    for pid in sorted({e.get("pid", main_pid) for e in events}):
        label = "repro (main)" if pid == main_pid else "repro worker %d" % pid
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(path: str,
                       events: Optional[List[dict]] = None) -> int:
    """Write the trace JSON to ``path``; returns the span count."""
    trace = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")


def load_trace(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("%s is not a Chrome trace (no traceEvents)" % path)
    return trace


def summarize_trace(trace: Union[str, dict]) -> dict:
    """Aggregate a trace by span name: counts, total/mean/max duration."""
    if isinstance(trace, str):
        trace = load_trace(trace)
    spans = [e for e in trace.get("traceEvents", [])
             if e.get("ph") == "X" and "dur" in e]
    by_name: Dict[str, dict] = {}
    for event in spans:
        entry = by_name.setdefault(event["name"], {
            "count": 0, "total_ms": 0.0, "max_ms": 0.0, "pids": set(),
        })
        dur_ms = event["dur"] / 1000.0
        entry["count"] += 1
        entry["total_ms"] += dur_ms
        entry["max_ms"] = max(entry["max_ms"], dur_ms)
        entry["pids"].add(event.get("pid"))
    for entry in by_name.values():
        entry["mean_ms"] = entry["total_ms"] / entry["count"]
        entry["pids"] = sorted(p for p in entry["pids"] if p is not None)
    wall_ms = 0.0
    if spans:
        start = min(e["ts"] for e in spans)
        end = max(e["ts"] + e["dur"] for e in spans)
        wall_ms = (end - start) / 1000.0
    return {
        "n_spans": len(spans),
        "n_processes": len({e.get("pid") for e in spans}),
        "wall_ms": wall_ms,
        "by_name": dict(sorted(
            by_name.items(), key=lambda kv: -kv[1]["total_ms"])),
    }
