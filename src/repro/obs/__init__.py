"""repro.obs — unified tracing + metrics for the whole estimation stack.

One import gives every layer (``repro.sim``, ``repro.api``,
``repro.resilience``, ``repro.serve``) the same two primitives:

* a process-wide :class:`~repro.obs.metrics.MetricsRegistry` (``REGISTRY``)
  of labelled counters/gauges/histograms, rendered on demand as Prometheus
  text (``GET /metrics`` on the serve HTTP frontend, ``repro obs dump``);
* structured trace spans (:func:`span` / :func:`start_span`) exporting
  Chrome ``trace_event`` JSON (``repro sweep --trace out.json``), with
  helpers to ship spans and counter deltas from forkserver shard workers
  back to the parent timeline.

Defaults: metrics **on** (cheap — one dict update per build/job/cache op,
never per simulated cycle), tracing **off** until :func:`enable` or a
``--trace`` flag or ``REPRO_OBS=1`` turns it on.  ``disable()`` exists for
overhead measurement; counters registered ``essential=True`` (the build
counters that ``repro.serve`` stats and back-compat module attributes
read) keep counting even then.
"""

from __future__ import annotations

import os
from typing import Optional

from . import trace as _trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .trace import (
    Span,
    add_events,
    chrome_trace,
    load_trace,
    span,
    start_span,
    summarize_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "add_events",
    "capture_state",
    "chrome_trace",
    "counter",
    "disable",
    "drain_spans",
    "enable",
    "gauge",
    "histogram",
    "load_trace",
    "merge_worker",
    "metrics_enabled",
    "render_prometheus",
    "reset",
    "span",
    "start_span",
    "summarize_trace",
    "tracing_enabled",
    "worker_begin",
    "worker_export",
    "write_chrome_trace",
]

#: The process-wide registry every instrumentation site registers against.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "", essential: bool = False) -> Counter:
    return REGISTRY.counter(name, help, essential)


def gauge(name: str, help: str = "", essential: bool = False) -> Gauge:
    return REGISTRY.gauge(name, help, essential)


def histogram(name: str, help: str = "", essential: bool = False,
              buckets=None) -> Histogram:
    return REGISTRY.histogram(name, help, essential, buckets=buckets)


def render_prometheus() -> str:
    return REGISTRY.render_prometheus()


# ------------------------------------------------------------------ control


def enable(tracing: bool = True, metrics: bool = True) -> None:
    """Turn observability on (tracing defaults on; metrics stay on)."""
    if metrics:
        REGISTRY.set_enabled(True)
    if tracing:
        _trace.enable_tracing()


def disable() -> None:
    """Turn tracing and non-essential metrics off (overhead measurement)."""
    _trace.disable_tracing()
    REGISTRY.set_enabled(False)


def tracing_enabled() -> bool:
    return _trace.tracing_enabled()


def metrics_enabled() -> bool:
    return REGISTRY.enabled


def reset() -> dict:
    """Zero all metric values and drop buffered spans; returns what was cut."""
    dropped = len(_trace.drain_events())
    n_metrics = len(REGISTRY.metrics())
    REGISTRY.reset()
    return {"metrics_reset": n_metrics, "spans_dropped": dropped}


def drain_spans():
    return _trace.drain_events()


# ------------------------------------------------- cross-process plumbing
#
# The resilience runner ships ``capture_state()`` with every task call
# (alongside the fault plan).  Worker side: ``worker_begin`` installs the
# state and snapshots counters, ``worker_export`` drains this task's spans
# plus counter *deltas* into the result envelope.  Parent side:
# ``merge_worker`` folds them into the local buffer/registry.  In-process
# (serial) execution is a no-op: same pid, token is None.


def capture_state() -> dict:
    return {"pid": os.getpid(), "tracing": _trace.tracing_enabled()}


def worker_begin(state: Optional[dict]) -> Optional[dict]:
    if not state or state.get("pid") == os.getpid():
        return None
    if state.get("tracing"):
        _trace.enable_tracing()
    return {"counters": REGISTRY.counters_snapshot()}


def worker_export(token: Optional[dict]) -> Optional[dict]:
    if token is None:
        return None
    return {
        "spans": _trace.drain_events(),
        "counters": REGISTRY.counter_deltas(token["counters"]),
    }


def merge_worker(payload: Optional[dict]) -> None:
    if not payload:
        return
    _trace.add_events(payload.get("spans") or ())
    REGISTRY.merge_counter_deltas(payload.get("counters") or {})


# REPRO_OBS=1 (or "trace") pre-enables tracing at import — the hook that
# lets forkserver workers spawned outside the runner's state-shipping path
# (and ad-hoc scripts) trace without code changes.
if os.environ.get("REPRO_OBS", "").strip().lower() in {"1", "on", "trace", "true"}:
    _trace.enable_tracing()
