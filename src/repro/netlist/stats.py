"""Netlist size statistics.

These numbers drive the reporting in the benchmark harnesses (design size
column of the Fig. 3 reproduction) and sanity checks on the instrumentation
overhead (how much hardware power emulation adds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.netlist.module import Module
from repro.netlist.visitor import walk_components


@dataclass
class ModuleStats:
    """Aggregate size statistics for a module (hierarchy included)."""

    name: str
    n_components: int = 0
    n_sequential: int = 0
    n_combinational: int = 0
    n_nets: int = 0
    total_net_bits: int = 0
    state_bits: int = 0
    monitored_bits: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"module {self.name}: {self.n_components} components "
            f"({self.n_sequential} sequential, {self.n_combinational} combinational), "
            f"{self.n_nets} nets / {self.total_net_bits} bits, "
            f"{self.state_bits} state bits, {self.monitored_bits} power-monitored bits",
        ]
        for type_name in sorted(self.by_type):
            lines.append(f"  {type_name:16s} x {self.by_type[type_name]}")
        return "\n".join(lines)


def _component_state_bits(component) -> int:
    type_name = component.type_name
    params = component.params
    if type_name in ("register", "accumulator", "counter"):
        return int(params.get("width", 0))
    if type_name in ("memory", "regfile"):
        return int(params.get("width", 0)) * int(params.get("depth", 0))
    if type_name == "fsm":
        return max(1, (int(params.get("n_states", 1)) - 1).bit_length())
    return 0


def module_stats(module: Module, recurse: bool = True) -> ModuleStats:
    """Compute :class:`ModuleStats` for a module."""
    stats = ModuleStats(name=module.name)
    for _, component in walk_components(module, recurse=recurse):
        stats.n_components += 1
        if component.is_sequential:
            stats.n_sequential += 1
        else:
            stats.n_combinational += 1
        stats.by_type[component.type_name] = stats.by_type.get(component.type_name, 0) + 1
        stats.state_bits += _component_state_bits(component)
        stats.monitored_bits += component.monitored_bits()
    stats.n_nets = len(module.nets)
    stats.total_net_bits = sum(net.width for net in module.nets.values())
    if recurse:
        for instance in module.instances.values():
            child = module_stats(instance.module, recurse=True)
            stats.n_nets += child.n_nets
            stats.total_net_bits += child.total_net_bits
    return stats
