"""A synthetic 0.13 µm-class standard-cell library.

The numbers below are *representative*, not vendor data: areas, input
capacitances, internal energies and leakage currents are scaled consistently
with published 0.13 µm generic libraries so that relative power between RTL
components (adder vs. multiplier vs. mux, 8-bit vs. 16-bit) behaves
realistically.  Absolute accuracy is irrelevant to the reproduction — every
estimator (software RTL, gate level, emulated) is characterized against the
same cells, which is exactly the paper's experimental situation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple


@dataclass(frozen=True)
class CellType:
    """A combinational standard cell.

    ``function`` maps the tuple of input bits to the output bit.  Energy is
    split into internal (``intrinsic_energy_fj`` per output toggle) and
    switching energy (computed from load capacitance by the power calculator).
    """

    name: str
    n_inputs: int
    function: Callable[[Tuple[int, ...]], int]
    area_um2: float
    input_cap_ff: float
    output_cap_ff: float
    intrinsic_energy_fj: float
    leakage_nw: float

    def evaluate(self, inputs: Sequence[int]) -> int:
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"cell {self.name}: expected {self.n_inputs} inputs, got {len(inputs)}"
            )
        return self.function(tuple(inputs)) & 1


def _inv(x):
    return 1 - x[0]


def _buf(x):
    return x[0]


def _nand2(x):
    return 1 - (x[0] & x[1])


def _nand3(x):
    return 1 - (x[0] & x[1] & x[2])


def _nor2(x):
    return 1 - (x[0] | x[1])


def _nor3(x):
    return 1 - (x[0] | x[1] | x[2])


def _and2(x):
    return x[0] & x[1]


def _and3(x):
    return x[0] & x[1] & x[2]


def _or2(x):
    return x[0] | x[1]


def _or3(x):
    return x[0] | x[1] | x[2]


def _xor2(x):
    return x[0] ^ x[1]


def _xnor2(x):
    return 1 - (x[0] ^ x[1])


def _mux2(x):
    # inputs: (d0, d1, sel)
    return x[1] if x[2] else x[0]


def _aoi21(x):
    # inputs: (a, b, c) -> !((a & b) | c)
    return 1 - ((x[0] & x[1]) | x[2])


def _oai21(x):
    # inputs: (a, b, c) -> !((a | b) & c)
    return 1 - ((x[0] | x[1]) & x[2])


def _maj3(x):
    # carry of a full adder
    return 1 if (x[0] + x[1] + x[2]) >= 2 else 0


def _xor3(x):
    return (x[0] ^ x[1] ^ x[2]) & 1


class StandardCellLibrary:
    """Container of cell types plus the electrical constants shared by them."""

    def __init__(
        self,
        name: str,
        cells: Dict[str, CellType],
        vdd_v: float = 1.2,
        wire_cap_per_fanout_ff: float = 1.5,
        feature_nm: int = 130,
    ) -> None:
        self.name = name
        self.cells = dict(cells)
        self.vdd_v = vdd_v
        #: estimated interconnect capacitance added per fanout endpoint
        self.wire_cap_per_fanout_ff = wire_cap_per_fanout_ff
        self.feature_nm = feature_nm

    def cell(self, name: str) -> CellType:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(
                f"library {self.name!r} has no cell {name!r}; available: {sorted(self.cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def switching_energy_fj(self, load_cap_ff: float) -> float:
        """Energy of one output toggle into ``load_cap_ff``: ``1/2 C V^2`` in fJ."""
        return 0.5 * load_cap_ff * self.vdd_v * self.vdd_v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StandardCellLibrary({self.name!r}, {len(self.cells)} cells)"


def _make_cb013() -> StandardCellLibrary:
    """Build the synthetic CB013-class library."""
    cells = {}

    def add(name, n_inputs, function, area, in_cap, out_cap, energy, leak):
        cells[name] = CellType(
            name=name,
            n_inputs=n_inputs,
            function=function,
            area_um2=area,
            input_cap_ff=in_cap,
            output_cap_ff=out_cap,
            intrinsic_energy_fj=energy,
            leakage_nw=leak,
        )

    #    name     #in  fn       area  in_cap out_cap energy leak
    add("INV",     1, _inv,     2.4,  1.8,   1.0,    0.45,  0.8)
    add("BUF",     1, _buf,     3.2,  1.6,   1.2,    0.80,  1.0)
    add("NAND2",   2, _nand2,   3.2,  1.9,   1.1,    0.60,  1.1)
    add("NAND3",   3, _nand3,   4.0,  2.0,   1.2,    0.78,  1.4)
    add("NOR2",    2, _nor2,    3.2,  2.1,   1.1,    0.66,  1.1)
    add("NOR3",    3, _nor3,    4.0,  2.3,   1.2,    0.85,  1.4)
    add("AND2",    2, _and2,    4.0,  1.8,   1.1,    0.85,  1.2)
    add("AND3",    3, _and3,    4.8,  1.9,   1.2,    1.00,  1.5)
    add("OR2",     2, _or2,     4.0,  1.9,   1.1,    0.88,  1.2)
    add("OR3",     3, _or3,     4.8,  2.0,   1.2,    1.05,  1.5)
    add("XOR2",    2, _xor2,    6.4,  2.6,   1.3,    1.60,  1.8)
    add("XNOR2",   2, _xnor2,   6.4,  2.6,   1.3,    1.60,  1.8)
    add("XOR3",    3, _xor3,    9.6,  2.9,   1.4,    2.40,  2.6)
    add("MAJ3",    3, _maj3,    8.0,  2.4,   1.3,    1.90,  2.2)
    add("MUX2",    3, _mux2,    5.6,  2.2,   1.2,    1.20,  1.6)
    add("AOI21",   3, _aoi21,   4.0,  2.0,   1.1,    0.80,  1.3)
    add("OAI21",   3, _oai21,   4.0,  2.0,   1.1,    0.80,  1.3)

    return StandardCellLibrary("CB013-synthetic", cells, vdd_v=1.2,
                               wire_cap_per_fanout_ff=1.5, feature_nm=130)


#: the default library used across the package
CB013_LIBRARY = _make_cb013()
