"""A traced multi-worker sweep: one Chrome-trace timeline, every process.

``repro.obs`` gives the whole estimation stack two primitives — a
process-wide metrics registry (counters/gauges/histograms, rendered as
Prometheus text) and structured trace spans exported as Chrome
``trace_event`` JSON.  This example turns tracing on, fans a sweep across
two shard-pool workers, and shows what comes back:

* a ``traced_sweep.json`` you can drop into https://ui.perfetto.dev or
  ``chrome://tracing`` — the parent's ``sweep`` span with each worker's
  ``task.run`` → ``program.build`` → ``kernel.compile`` → ``lanes.simulate``
  spans merged onto the same wall-clock timeline under their own pid rows
  (workers ship their spans home inside the result envelope);
* a per-span-name timing table (the same aggregation as
  ``python -m repro obs summarize traced_sweep.json``);
* the per-result phase breakdown every estimate carries in
  ``EstimateResult.metadata["phase_s"]`` — no tracing required;
* the metrics registry, counting builds/retries/cache traffic since import.

The CLI spells the same thing ``python -m repro sweep ... --trace out.json``.

Run from the repository root:

    PYTHONPATH=src python examples/traced_sweep.py
"""

from __future__ import annotations

from repro import obs
from repro.api import SweepSpec, sweep


def main() -> None:
    obs.enable(tracing=True)  # metrics are already on by default

    spec = SweepSpec(
        designs=("binary_search", "DCT"),
        engines=("rtl",),
        seeds=tuple(range(4)),
        max_cycles=96,
        kernel_backend="numpy",  # deterministic builds, no compiler needed
        n_workers=2,
    )
    result = sweep(spec)
    print(result.summary())

    n_spans = obs.write_chrome_trace("traced_sweep.json")
    print(f"\nwrote traced_sweep.json ({n_spans} spans) — open it in "
          f"Perfetto (ui.perfetto.dev) or chrome://tracing")

    summary = obs.summarize_trace("traced_sweep.json")
    print(f"\n{summary['n_spans']} spans across {summary['n_processes']} "
          f"process(es), {summary['wall_ms']:.1f} ms wall:")
    for name, row in summary["by_name"].items():
        pids = ",".join(str(pid) for pid in row["pids"])
        print(f"  {name:20s} x{row['count']:<3d} {row['total_ms']:9.2f} ms "
              f"total  (pids {pids})")

    # every estimate also carries its own phase breakdown — even untraced
    first = result.results[0]
    print(f"\nphase_s of {first.report.design} seed "
          f"{first.spec.seed}: {first.metadata['phase_s']}")

    print("\nmetrics registry (builds since import):")
    for line in obs.render_prometheus().splitlines():
        if line.startswith(("repro_program", "repro_kernel", "repro_task")):
            print(f"  {line}")


if __name__ == "__main__":
    main()
