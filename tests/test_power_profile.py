"""Tests for windowed power telemetry (repro.power.profile).

The load-bearing property: the windowed energy matrix is the *same*
accumulation every engine already performs, just bucketed — so window sums
must match ``total_energy_fj`` to 1e-9 relative on every registry design
and every engine/backend path, window geometry must not change totals, and
the bounded-memory coalescing must preserve sums exactly.  Plus the
artifact surface: JSON round-trip, hotspot reports, the always-populated
``peak_power_mw`` on no-trace paths, trace counter events, and the serve
``GET /jobs/<id>/profile`` route.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.api import EstimateResult, RunSpec, estimate
from repro.api.estimators import RTLEstimatorAdapter
from repro.designs import all_designs, get_design
from repro.power import (
    BatchRTLPowerEstimator,
    PowerProfile,
    ProfileConfig,
    RTLPowerEstimator,
    WindowedEnergyCollector,
)

REL_TOL = 1e-9


def _assert_parity(result: EstimateResult) -> None:
    profile = result.profile
    assert profile is not None
    assert profile.cycles == result.report.cycles
    total = result.report.total_energy_fj
    assert profile.total_energy_fj() == pytest.approx(total, rel=REL_TOL)
    # per-component window sums match the report's component totals
    by_component = profile.component_energy_fj()
    for name, component in result.report.components.items():
        assert by_component[name] == pytest.approx(
            component.energy_fj, rel=REL_TOL, abs=1e-6
        )
    assert profile.mean_power_mw() == pytest.approx(
        result.report.average_power_mw, rel=REL_TOL
    )


# --------------------------------------------------------- collector unit
def test_collector_bounded_memory_preserves_sums_exactly():
    rng = np.random.default_rng(7)
    energies = rng.uniform(0.0, 5.0, size=(1000, 3))
    collector = WindowedEnergyCollector(
        ["a", "b", "c"], ["adder", "adder", "register"],
        window_cycles=1, max_windows=8,
    )
    for cycle in range(1000):
        for row in range(3):
            collector.add(row, energies[cycle, row])
        collector.end_cycle()
    # bounded: never more than max_windows (+ the open partial window)
    assert collector.n_windows <= 8 + 1
    # width doubled to a power of two covering the run
    assert collector.window_cycles % 2 == 0
    assert collector.window_cycles * 8 >= 1000
    matrix = collector.matrix()
    # pairwise merging is pure addition: sums stay exact per component
    np.testing.assert_allclose(
        matrix.sum(axis=0), energies.sum(axis=0), rtol=1e-12
    )
    profile = collector.profile("unit", "test", clock_mhz=100.0)
    assert profile.n_windows == collector.n_windows
    assert profile.total_energy_fj() == pytest.approx(
        float(energies.sum()), rel=1e-12
    )


def test_collector_window_geometry_and_partial_last_window():
    collector = WindowedEnergyCollector(
        ["a"], ["adder"], window_cycles=4, max_windows=512
    )
    for cycle in range(10):
        collector.add(0, float(cycle))
        collector.end_cycle()
    profile = collector.profile("unit", "test", clock_mhz=200.0)
    assert profile.n_windows == 3  # 4 + 4 + 2 cycles
    assert profile.window_bounds(2) == (8, 10)
    assert profile.component_series("a") == [
        pytest.approx(0 + 1 + 2 + 3),
        pytest.approx(4 + 5 + 6 + 7),
        pytest.approx(8 + 9),
    ]
    with pytest.raises(KeyError):
        profile.component_series("nope")
    # the last (2-cycle) window normalizes power by its actual span
    powers = profile.window_power_mw()
    assert powers[2] == pytest.approx(17 / 2 * 200.0 * 1e-6)


def test_profile_rebin_matches_coarse_collection():
    rng = np.random.default_rng(11)
    energies = rng.uniform(0.0, 2.0, size=(37, 2))
    fine = WindowedEnergyCollector(["a", "b"], ["x", "y"], window_cycles=1)
    coarse = WindowedEnergyCollector(["a", "b"], ["x", "y"], window_cycles=5)
    for cycle in range(37):
        for collector in (fine, coarse):
            collector.add(0, energies[cycle, 0])
            collector.add(1, energies[cycle, 1])
            collector.end_cycle()
    rebinned = fine.profile("u", "t", 100.0).rebin(5)
    direct = coarse.profile("u", "t", 100.0)
    assert rebinned.n_windows == direct.n_windows
    np.testing.assert_allclose(
        np.asarray(rebinned.energy_fj), np.asarray(direct.energy_fj),
        rtol=1e-12,
    )
    with pytest.raises(ValueError):
        direct.rebin(7)  # not a multiple
    assert direct.rebin(5) is direct  # no-op


def test_profile_json_roundtrip():
    profile = PowerProfile(
        design="d", estimator="e", clock_mhz=250.0, cycles=7,
        window_cycles=4, component_names=["a", "b"],
        component_types=["adder", "register"],
        energy_fj=[[1.5, 2.5], [0.5, 3.0]], notes={"k": 1},
    )
    clone = PowerProfile.from_json(profile.to_json())
    assert clone == profile
    # EstimateResult carries the profile through its own round-trip
    spec = RunSpec(design="DCT", engine="rtl", seed=1, max_cycles=32,
                   power_profile=True)
    result = estimate(spec)
    clone = EstimateResult.from_dict(
        json.loads(json.dumps(result.to_dict()))
    )
    assert clone.profile == result.profile
    # and tolerates absent profiles
    spec2 = RunSpec(design="DCT", engine="rtl", seed=1, max_cycles=32)
    result2 = estimate(spec2)
    assert result2.profile is None
    assert EstimateResult.from_dict(result2.to_dict()).profile is None


# ------------------------------------------------------ engine-path parity
@pytest.mark.parametrize("design", sorted(all_designs()))
def test_profile_sums_match_total_on_every_design(design):
    spec = RunSpec(design=design, engine="rtl", seed=3, max_cycles=48,
                   power_profile=True)
    _assert_parity(estimate(spec))


@pytest.mark.parametrize("backend,kernel_backend", [
    ("compiled", "auto"),
    ("interp", "auto"),
    ("batch", "off"),
    ("batch", "numpy"),
    ("batch", "native"),
])
def test_profile_parity_across_backends(backend, kernel_backend):
    spec = RunSpec(design="HVPeakF", engine="rtl", seed=5, max_cycles=64,
                   backend=backend, kernel_backend=kernel_backend,
                   power_profile=True, profile_window=8)
    result = estimate(spec)
    _assert_parity(result)
    assert result.profile.window_cycles == 8


@pytest.mark.parametrize("design", ["binary_search", "Bubble_Sort"])
def test_profile_parity_gate_level(design):
    spec = RunSpec(design=design, engine="gate", seed=2, max_cycles=32,
                   power_profile=True)
    result = estimate(spec)
    _assert_parity(result)
    # gate-mapped and macromodelled components both appear
    assert result.profile.notes["n_gate_mapped"] >= 1


def test_profile_parity_emulation_and_default_strobe_window():
    spec = RunSpec(design="HVPeakF", engine="emulation", seed=4,
                   max_cycles=64, power_profile=True)
    result = estimate(spec)
    _assert_parity(result)
    # emulation's natural window is the strobe period
    assert (result.profile.window_cycles
            == result.profile.notes["strobe_period"])
    # satellite: peak_power_mw is populated even though emulation never
    # keeps a per-cycle trace
    assert result.report.peak_power_mw > 0.0
    assert result.report.peak_power_mw == pytest.approx(
        result.profile.peak_power_mw(), rel=REL_TOL
    )


def test_emulation_peak_populated_without_profile_request():
    spec = RunSpec(design="binary_search", engine="emulation", seed=1,
                   max_cycles=48)
    result = estimate(spec)
    assert result.profile is None
    assert result.report.peak_power_mw > 0.0


def test_window_size_does_not_change_totals():
    totals = []
    for window in (1, 4, 16):
        spec = RunSpec(design="DCT", engine="rtl", seed=7, max_cycles=48,
                       power_profile=True, profile_window=window)
        result = estimate(spec)
        _assert_parity(result)
        totals.append(result.profile.total_energy_fj())
    assert totals[0] == pytest.approx(totals[1], rel=1e-12)
    assert totals[1] == pytest.approx(totals[2], rel=1e-12)


# ------------------------------------------------- batch lanes / no-trace
def test_batch_per_lane_profiles_match_scalar_runs():
    entry = get_design("HVPeakF")
    module = entry.build()
    seeds = [0, 1, 2, 3]
    batch = BatchRTLPowerEstimator(module)
    reports = batch.estimate_all(
        [entry.make_testbench(seed) for seed in seeds],
        max_cycles=48, profile=ProfileConfig(),
    )
    assert batch.last_profiles is not None
    assert len(batch.last_profiles) == len(seeds)
    for seed, report, profile in zip(seeds, reports, batch.last_profiles):
        assert profile.total_energy_fj() == pytest.approx(
            report.total_energy_fj, rel=REL_TOL
        )
        scalar = RTLPowerEstimator(entry.build())
        scalar_report = scalar.estimate(
            entry.make_testbench(seed), max_cycles=48,
            profile=ProfileConfig(),
        )
        assert profile.total_energy_fj() == pytest.approx(
            scalar.last_profile.total_energy_fj(), rel=REL_TOL
        )
        assert report.peak_power_mw == pytest.approx(
            scalar_report.peak_power_mw, rel=REL_TOL
        )


def test_no_cycle_trace_keeps_peak_and_bounds_memory():
    entry = get_design("DCT")
    estimator = RTLPowerEstimator(entry.build())
    traced = estimator.estimate(entry.make_testbench(9), max_cycles=64)
    estimator2 = RTLPowerEstimator(entry.build())
    untraced = estimator2.estimate(
        entry.make_testbench(9), max_cycles=64, keep_cycle_trace=False
    )
    # satellite: no per-cycle list is accumulated, yet the peak is the
    # same running maximum the traced path reports
    assert untraced.cycle_energy_fj == []
    assert traced.cycle_energy_fj != []
    assert untraced.peak_power_mw == pytest.approx(
        traced.peak_power_mw, rel=REL_TOL
    )
    assert untraced.total_energy_fj == pytest.approx(
        traced.total_energy_fj, rel=REL_TOL
    )


def test_estimate_many_mixed_profile_lane_mates():
    adapter = RTLEstimatorAdapter()
    specs = [
        RunSpec(design="binary_search", engine="rtl", seed=seed,
                max_cycles=48, power_profile=(seed % 2 == 0),
                profile_window=4 if seed == 2 else None)
        for seed in range(4)
    ]
    results = adapter.estimate_many(specs)
    for spec, result in zip(specs, results):
        if spec.power_profile:
            _assert_parity(result)
            assert result.profile.window_cycles == (spec.profile_window or 1)
        else:
            assert result.profile is None


# ------------------------------------------------------ hotspots / trace
def test_hotspot_report_structure():
    spec = RunSpec(design="DCT", engine="rtl", seed=1, max_cycles=48,
                   power_profile=True)
    profile = estimate(spec).profile
    hotspots = profile.hotspots(top_k=3)
    assert hotspots["design"] == "DCT"
    assert len(hotspots["top_components"]) == 3
    shares = [c["share"] for c in hotspots["top_components"]]
    assert shares == sorted(shares, reverse=True)
    assert all(0.0 < s <= 1.0 for s in shares)
    peak = hotspots["peak_windows"][0]
    assert peak["power_mw"] == pytest.approx(hotspots["peak_power_mw"])
    assert peak["top_component"] in profile.component_names
    assert sum(hotspots["energy_by_type"].values()) == pytest.approx(
        hotspots["total_energy_fj"], rel=REL_TOL
    )
    # JSON-serializable end to end, and the ASCII rendering holds together
    json.dumps(hotspots)
    text = profile.table(top_k=3)
    assert "power over time" in text
    assert "peak" in text


def test_profile_counter_events_on_trace_timeline():
    spec = RunSpec(design="DCT", engine="rtl", seed=2, max_cycles=32,
                   power_profile=True)
    obs.drain_spans()
    obs.enable(tracing=True)
    try:
        estimate(spec)
        events = obs.drain_spans()
    finally:
        obs.disable()
        obs.enable(tracing=False)  # tracing off, metrics back on
    counters = [e for e in events if isinstance(e, dict)
                and e.get("ph") == "C"]
    assert counters, "profiled estimate should emit counter events"
    assert counters[0]["name"] == "power_mw:DCT"
    assert counters[0]["cat"] == "repro.power"
    # timestamps are monotonic and the series closes at zero
    timestamps = [e["ts"] for e in counters]
    assert timestamps == sorted(timestamps)
    assert all(v == 0.0 for v in counters[-1]["args"].values())


def test_obs_power_gauges_track_last_run():
    spec = RunSpec(design="DCT", engine="rtl", seed=1, max_cycles=32)
    result = estimate(spec)
    peak = obs.REGISTRY.gauge("repro_power_last_peak_mw", "").value(
        design="DCT", engine="rtl"
    )
    mean = obs.REGISTRY.gauge("repro_power_last_mean_mw", "").value(
        design="DCT", engine="rtl"
    )
    assert peak == pytest.approx(result.report.peak_power_mw)
    assert mean == pytest.approx(result.report.average_power_mw)


# ----------------------------------------------------------------- serve
def _http(url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def test_serve_profile_route_end_to_end():
    from repro.serve import HttpFrontend, PowerServer

    async def go():
        async with PowerServer(coalesce_window_s=0.02) as server:
            http = HttpFrontend(server, port=0)
            await http.start()
            try:
                spec = {"design": "DCT", "engine": "rtl", "seed": 1,
                        "max_cycles": 48, "power_profile": True,
                        "profile_window": 4}
                status, body = await asyncio.to_thread(
                    _http, f"{http.url}/jobs", spec
                )
                assert status == 202
                job_id = body["job_id"]
                status, payload = await asyncio.to_thread(
                    _http, f"{http.url}/jobs/{job_id}/profile"
                )
                assert status == 200
                profile = PowerProfile.from_dict(payload)
                assert profile.design == "DCT"
                assert profile.window_cycles == 4
                assert profile.total_energy_fj() > 0
                # the done event streams a bounded windowed-power summary
                status, record = await asyncio.to_thread(
                    _http, f"{http.url}/jobs/{job_id}"
                )
                done = [e for e in record["events"]
                        if e["state"] == "done"][0]
                summary = done["detail"]["profile"]
                assert summary["n_windows"] == profile.n_windows
                assert len(summary["window_power_mw"]) <= 32
                assert summary["peak_power_mw"] == pytest.approx(
                    profile.peak_power_mw(), abs=1e-5
                )
                assert done["detail"]["peak_power_mw"] > 0
                # a job without power_profile has no profile: 404
                status, body = await asyncio.to_thread(
                    _http, f"{http.url}/jobs",
                    {"design": "DCT", "engine": "rtl", "seed": 2,
                     "max_cycles": 32},
                )
                job_id = body["job_id"]
                status, _ = await asyncio.to_thread(
                    _http, f"{http.url}/jobs/{job_id}/result"
                )
                assert status == 200
                status, body = await asyncio.to_thread(
                    _http, f"{http.url}/jobs/{job_id}/profile"
                )
                assert status == 404
                assert "no power profile" in body["error"]
            finally:
                await http.stop()

    asyncio.run(go())


# ------------------------------------------------------------------- CLI
def test_cli_profile_subcommand(tmp_path, capsys):
    from repro.api.cli import main

    artifact = tmp_path / "profile.json"
    code = main([
        "profile", "--design", "binary_search", "--max-cycles", "32",
        "--power-profile", str(artifact),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "power profile — binary_search" in out
    payload = json.loads(artifact.read_text())
    profile = PowerProfile.from_dict(payload)
    assert profile.design == "binary_search"
    assert profile.cycles == 32
