"""Fixed-point quantization of power-model coefficients.

The hardware power models carry their regression coefficients as unsigned
integers; every model inserted into one design shares a single global scale
(fJ per LSB) so that the power aggregator can sum model outputs without any
per-model rescaling.  The quantization error this introduces is one of the
"little or no tradeoff in accuracy" knobs the paper alludes to, and is swept
explicitly by ``benchmarks/bench_accuracy.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class FixedPointFormat:
    """Unsigned fixed-point encoding: ``code = round(value / lsb)``."""

    #: number of bits available for a coefficient code
    bits: int
    #: value (in fJ) of one least-significant bit
    lsb_fj: float

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"coefficient width must be >= 1 bit, got {self.bits}")
        if self.lsb_fj <= 0:
            raise ValueError(f"LSB must be positive, got {self.lsb_fj}")

    @property
    def max_code(self) -> int:
        return (1 << self.bits) - 1

    @property
    def max_value_fj(self) -> float:
        return self.max_code * self.lsb_fj

    # ------------------------------------------------------------------ API
    def quantize(self, value_fj: float) -> int:
        """Encode a (non-negative) energy value, saturating at the top code."""
        if value_fj <= 0:
            return 0
        return min(self.max_code, int(round(value_fj / self.lsb_fj)))

    def dequantize(self, code: int) -> float:
        return code * self.lsb_fj

    def quantization_error_fj(self, value_fj: float) -> float:
        return abs(self.dequantize(self.quantize(value_fj)) - max(value_fj, 0.0))

    @classmethod
    def for_coefficients(cls, coefficients: Iterable[float], bits: int) -> "FixedPointFormat":
        """Choose the LSB so the largest coefficient uses the full code range."""
        largest = max((c for c in coefficients if c > 0), default=1.0)
        return cls(bits=bits, lsb_fj=largest / ((1 << bits) - 1))


def quantize_coefficients(
    coefficients: Sequence[float], fmt: FixedPointFormat
) -> List[int]:
    """Quantize a coefficient vector; order is preserved."""
    return [fmt.quantize(c) for c in coefficients]
