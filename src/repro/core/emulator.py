"""The emulation platform model: download, execute at hardware speed, read back.

The functional behaviour of the FPGA is obtained by executing the *enhanced*
netlist on the cycle-accurate RTL simulator — the power numbers therefore come
out of the inserted power-estimation hardware itself, exactly as they would on
a real board.  What the FPGA changes is *time*: the platform model converts
the workload's cycle count into wall-clock seconds using the achievable
emulation clock, plus bitstream download and result readback overheads (and,
optionally, host-side stimulus streaming when the testbench is not mapped
onto the FPGA).  This mirrors how the paper measured "power emulation time".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.fpga import FPGADevice, smallest_fitting_device
from repro.core.instrument import InstrumentedDesign
from repro.core.synthesis import SynthesisEstimator, SynthesisResult
from repro.power.profile import DEFAULT_MAX_WINDOWS, PowerProfile
from repro.power.report import ComponentPower, PowerReport
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.engine import SimulationObserver, Simulator
from repro.sim.testbench import Testbench


class CapacityError(Exception):
    """Raised when the enhanced design does not fit any available FPGA device."""


class _ProfileReadbackObserver(SimulationObserver):
    """Periodic accumulator readback for a power-over-time profile.

    The aggregator docstring's "read back periodically" mode: every
    ``interval`` emulated cycles the host samples the *cumulative*
    per-component accumulators (or the single aggregator total when
    per-component accumulators are disabled).  ``on_cycle(c)`` fires before
    cycle ``c``'s clock edge, so the accumulators then cover exactly the
    ``c`` committed cycles — boundaries land precisely on multiples of the
    interval and window diffs telescope to the end-of-run totals with no
    residue.  When the stored reading count hits ``max_windows`` every other
    reading is dropped and the interval doubles, so an arbitrarily long
    emulation costs a bounded number of readback transactions.
    """

    def __init__(
        self,
        instrumented: InstrumentedDesign,
        interval: int,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        self.instrumented = instrumented
        self.interval = max(int(interval), 1)
        self.max_windows = max_windows + (max_windows % 2)
        if instrumented.accumulator_map:
            self.names = list(instrumented.accumulator_map)
        else:
            # no per-component accumulators: profile the aggregator total as
            # one design-wide pseudo-component
            self.names = [instrumented.original_name]
        #: (boundary cycle, cumulative per-component fJ) samples
        self.readings: List[Tuple[int, np.ndarray]] = []

    def _read(self, simulator: Simulator) -> np.ndarray:
        if self.instrumented.accumulator_map:
            energies = self.instrumented.component_energies_fj(simulator)
            return np.asarray([energies[name] for name in self.names])
        return np.asarray([self.instrumented.read_total_energy_fj(simulator)])

    def on_cycle(self, simulator: Simulator, cycle: int) -> None:
        if cycle and cycle % self.interval == 0:
            self.readings.append((cycle, self._read(simulator)))
            if len(self.readings) >= self.max_windows:
                # keep the readings landing on multiples of the doubled
                # interval; cumulative samples need no re-summing
                self.readings = self.readings[1::2]
                self.interval *= 2

    def profile(
        self,
        simulator: Simulator,
        executed_cycles: int,
        technology: Technology,
        component_types: Dict[str, str],
    ) -> PowerProfile:
        """Turn the cumulative samples into a windowed :class:`PowerProfile`."""
        cumulative = [
            reading for boundary, reading in self.readings
            if boundary < executed_cycles
        ]
        if executed_cycles:
            cumulative.append(self._read(simulator))
        matrix = []
        previous = np.zeros(len(self.names))
        for reading in cumulative:
            matrix.append([float(e) for e in reading - previous])
            previous = reading
        return PowerProfile(
            design=self.instrumented.original_name,
            estimator="power-emulation",
            clock_mhz=technology.clock_mhz,
            cycles=executed_cycles,
            window_cycles=self.interval,
            component_names=list(self.names),
            component_types=[
                component_types.get(name, "design") for name in self.names
            ],
            energy_fj=matrix,
            notes={
                "readback_transactions": len(cumulative),
                "strobe_period": self.instrumented.config.strobe_period,
            },
        )


@dataclass(frozen=True)
class HostInterface:
    """PC <-> emulation board link characteristics."""

    #: sustained configuration (bitstream download) bandwidth
    download_mbits_per_s: float = 33.0
    #: fixed board bring-up / handshake time per run
    setup_s: float = 1.5
    #: latency of one readback transaction (aggregator / model registers)
    readback_latency_s: float = 0.02
    #: per-word readback cost
    readback_word_s: float = 2.0e-5
    #: host-side stimulus streaming rate when the testbench stays on the PC
    stimulus_cycles_per_s: float = 750_000.0


@dataclass
class EmulationTimeBreakdown:
    """Modeled wall-clock time of one emulation run (Fig. 3's 'Emulation' bar)."""

    download_s: float
    execute_s: float
    stimulus_s: float
    readback_s: float

    @property
    def total_s(self) -> float:
        return self.download_s + self.execute_s + self.stimulus_s + self.readback_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "download_s": self.download_s,
            "execute_s": self.execute_s,
            "stimulus_s": self.stimulus_s,
            "readback_s": self.readback_s,
            "total_s": self.total_s,
        }


@dataclass
class EmulationResult:
    """Everything produced by one emulation run."""

    design: str
    device: FPGADevice
    synthesis: SynthesisResult
    emulation_clock_mhz: float
    power_report: PowerReport
    time_breakdown: EmulationTimeBreakdown
    #: cycles actually executed by the (simulated) platform
    executed_cycles: int
    #: cycles of the nominal workload the time model was evaluated for
    workload_cycles: int
    #: functional outputs of the design at the end of the run
    final_outputs: Dict[str, int] = field(default_factory=dict)
    #: wall-clock time of the host-side functional simulation (for reference)
    host_simulation_s: float = 0.0
    #: windowed power-over-time profile from periodic accumulator readback
    power_profile: Optional[PowerProfile] = None

    @property
    def utilization(self) -> Dict[str, float]:
        return self.device.utilization(self.synthesis.resources)


class EmulationPlatform:
    """PC-based FPGA emulation platform model (paper Section 3 setup)."""

    def __init__(
        self,
        device: Optional[FPGADevice] = None,
        host: HostInterface = HostInterface(),
        synthesis: Optional[SynthesisEstimator] = None,
    ) -> None:
        #: explicit device, or None to auto-select the smallest fitting part
        self.device = device
        self.host = host
        self.synthesis = synthesis if synthesis is not None else SynthesisEstimator()

    # ------------------------------------------------------------------ API
    def run(
        self,
        instrumented: InstrumentedDesign,
        testbench: Testbench,
        technology: Technology = CB130M_TECHNOLOGY,
        workload_cycles: Optional[int] = None,
        testbench_on_fpga: bool = True,
        max_cycles: Optional[int] = None,
        profile_window: Optional[int] = None,
        profile_max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> EmulationResult:
        """Emulate the enhanced design and read back its power results.

        ``workload_cycles`` lets the caller evaluate the *time model* for a
        nominal workload larger than what is actually executed here (our
        Python functional execution of multi-frame video workloads would be
        needlessly slow); power results always come from the executed cycles.

        A windowed power-over-time profile is always collected via periodic
        accumulator readback (:attr:`EmulationResult.power_profile`);
        ``profile_window`` sets the readback interval in cycles and defaults
        to the design's strobe period, so windows align with the aggregator
        flushes the paper's hardware produces.
        """
        synthesis = self.synthesis.estimate_module(instrumented.module)
        device = self.device or smallest_fitting_device(synthesis.resources)
        if device is None or not device.fits(synthesis.resources):
            raise CapacityError(
                f"design {instrumented.module.name!r} needs {synthesis.resources.luts} LUTs / "
                f"{synthesis.resources.ffs} FFs and does not fit the available Virtex-II parts"
            )
        emulation_clock_mhz = min(device.max_clock_mhz, synthesis.achievable_clock_mhz)

        interval = (
            profile_window
            if profile_window is not None
            else max(instrumented.config.strobe_period, 1)
        )
        readback = _ProfileReadbackObserver(
            instrumented, interval, max_windows=profile_max_windows
        )

        start = time.perf_counter()
        simulator = Simulator(instrumented.module)
        simulator.add_observer(readback)
        simulation = simulator.run(testbench, max_cycles=max_cycles)
        host_elapsed = time.perf_counter() - start

        executed_cycles = simulation.cycles
        nominal_cycles = workload_cycles if workload_cycles is not None else executed_cycles

        power_report = self._build_power_report(
            instrumented, simulator, executed_cycles, technology, host_elapsed
        )
        power_profile = readback.profile(
            simulator,
            executed_cycles,
            technology,
            self._component_types(instrumented),
        )
        # the cycle trace never exists on the emulation path; the windowed
        # profile is the authoritative peak at its readback resolution
        power_report.peak_power_mw = power_profile.peak_power_mw()
        power_report.notes["profile_window_cycles"] = power_profile.window_cycles
        breakdown = self._time_breakdown(
            device, instrumented, nominal_cycles, emulation_clock_mhz, testbench_on_fpga
        )
        power_report.estimation_time_s = breakdown.total_s
        power_report.notes["device"] = device.name
        power_report.notes["emulation_clock_mhz"] = emulation_clock_mhz

        return EmulationResult(
            design=instrumented.original_name,
            device=device,
            synthesis=synthesis,
            emulation_clock_mhz=emulation_clock_mhz,
            power_report=power_report,
            time_breakdown=breakdown,
            executed_cycles=executed_cycles,
            workload_cycles=nominal_cycles,
            final_outputs=simulation.final_outputs,
            host_simulation_s=host_elapsed,
            power_profile=power_profile,
        )

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _component_types(instrumented: InstrumentedDesign) -> Dict[str, str]:
        return {
            name: instrumented.module.components[model_name].model.component_type
            for name, model_name in instrumented.model_map.items()
        }

    def _build_power_report(
        self,
        instrumented: InstrumentedDesign,
        simulator: Simulator,
        cycles: int,
        technology: Technology,
        host_elapsed: float,
    ) -> PowerReport:
        total_energy_fj = instrumented.read_total_energy_fj(simulator)
        components: Dict[str, ComponentPower] = {}
        if instrumented.accumulator_map:
            type_by_name = self._component_types(instrumented)
            for original, energy in instrumented.component_energies_fj(simulator).items():
                components[original] = ComponentPower(
                    name=original,
                    component_type=type_by_name.get(original, "unknown"),
                    energy_fj=energy,
                    average_power_mw=technology.energy_to_power_mw(
                        energy / cycles if cycles else 0.0
                    ),
                )
        return PowerReport(
            design=instrumented.original_name,
            estimator="power-emulation",
            cycles=cycles,
            clock_mhz=technology.clock_mhz,
            total_energy_fj=total_energy_fj,
            average_power_mw=technology.energy_to_power_mw(
                total_energy_fj / cycles if cycles else 0.0
            ),
            components=components,
            estimation_time_s=0.0,  # replaced by the modeled emulation time
            notes={
                "n_power_models": instrumented.n_power_models,
                "monitored_bits": instrumented.monitored_bits,
                "host_functional_simulation_s": host_elapsed,
            },
        )

    def _time_breakdown(
        self,
        device: FPGADevice,
        instrumented: InstrumentedDesign,
        workload_cycles: int,
        emulation_clock_mhz: float,
        testbench_on_fpga: bool,
    ) -> EmulationTimeBreakdown:
        host = self.host
        download_s = host.setup_s + device.bitstream_mbits / host.download_mbits_per_s
        execute_s = workload_cycles / (emulation_clock_mhz * 1e6)
        stimulus_s = (
            0.0 if testbench_on_fpga else workload_cycles / host.stimulus_cycles_per_s
        )
        readback_words = 1 + len(instrumented.accumulator_map)
        readback_s = host.readback_latency_s + readback_words * host.readback_word_s
        return EmulationTimeBreakdown(
            download_s=download_s,
            execute_s=execute_s,
            stimulus_s=stimulus_s,
            readback_s=readback_s,
        )
