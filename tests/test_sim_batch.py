"""Lane-vs-scalar parity and unit tests for the batch simulation backend.

Every lane of a :class:`~repro.sim.batch.BatchSimulator` must behave exactly
like a scalar simulation driven with that lane's inputs — for fused
components, for the lane-scalar fallback (exercised below through FSM/memory
subclasses, which miss the exact-type fused dispatch on purpose), and for the
object-dtype whole-module fallback used by very wide nets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstrumentationConfig
from repro.core.instrument import instrument
from repro.designs.registry import all_designs, get_design
from repro.netlist import NetlistBuilder, flatten
from repro.netlist.components import Component
from repro.netlist.fsm import FSMController
from repro.netlist.sequential import Memory
from repro.power import build_seed_library
from repro.sim import BatchSimulator, Simulator, compile_module_batch
from repro.sim.batch import LaneComponent

N_LANES = 3
N_CYCLES = 32


def _input_sequences(module, rng, n_cycles=N_CYCLES, n_lanes=N_LANES):
    return {
        name: rng.integers(
            0, 1 << min(port.net.width, 16), size=(n_cycles, n_lanes), dtype=np.int64
        )
        for name, port in module.ports.items()
        if port.is_input
    }


def _run_batch(module, sequences, n_cycles=N_CYCLES, n_lanes=N_LANES):
    simulator = BatchSimulator(module, n_lanes)
    rows = []
    for cycle in range(n_cycles):
        simulator.set_inputs({name: sequences[name][cycle] for name in sequences})
        simulator.settle()
        rows.append(simulator.get_outputs())
        simulator.clock_edge()
    return simulator, rows


def _assert_lane_parity(build_module, sequences, rows, n_cycles=N_CYCLES, n_lanes=N_LANES):
    for lane in range(n_lanes):
        scalar = Simulator(build_module())
        for cycle in range(n_cycles):
            scalar.set_inputs(
                {name: int(sequences[name][cycle, lane]) for name in sequences}
            )
            scalar.settle()
            for output, lanes in rows[cycle].items():
                assert int(lanes[lane]) == scalar.get_output(output), (
                    f"lane {lane} cycle {cycle} output {output!r} diverged"
                )
            scalar.clock_edge()


@pytest.mark.parametrize("design_name", sorted(all_designs()))
def test_registry_design_lane_parity(design_name):
    """Each lane of every registry design matches a scalar run bit for bit."""
    design = get_design(design_name)
    rng = np.random.default_rng(hash(design_name) % (2**32))
    module = flatten(design.build())
    sequences = _input_sequences(module, rng)
    simulator, rows = _run_batch(module, sequences)
    assert simulator.program.n_fused > 0
    _assert_lane_parity(lambda: flatten(design.build()), sequences, rows)


def test_instrumented_design_lane_parity():
    """Power-estimation hardware (models, aggregator, strobe) is lane-exact."""
    library = build_seed_library()
    design = get_design("binary_search")
    rng = np.random.default_rng(5)
    module = instrument(design.build(), library, InstrumentationConfig()).module
    sequences = _input_sequences(module, rng)
    _, rows = _run_batch(module, sequences)
    _assert_lane_parity(
        lambda: instrument(design.build(), library, InstrumentationConfig()).module,
        sequences,
        rows,
    )


class _ShadowMemory(Memory):
    """Subclassed memory: misses the fused dispatch, runs on the lane fallback."""

    type_name = "shadow_memory"


class _ShadowFSM(FSMController):
    """Subclassed FSM controller: exercises the FSM scalar-fallback path."""

    type_name = "shadow_fsm"


def _module_with_shadow_state(memory_cls=_ShadowMemory, fsm_cls=_ShadowFSM):
    """A small design whose FSM and memory run on the lane-scalar fallback."""
    builder = NetlistBuilder("shadow")
    addr = builder.input("addr", 4)
    wdata = builder.input("wdata", 8)
    go = builder.input("go", 1)
    module = builder.build()

    memory = memory_cls("mem0", width=8, depth=16, sync_read=True)
    module.add_component(memory)
    memory.connect("addr", module.nets["addr"])
    memory.connect("wdata", module.nets["wdata"])

    fsm = fsm_cls(
        "ctl0",
        states=["IDLE", "WRITE", "DONE"],
        inputs={"go": 1},
        outputs={"we": 1, "busy": 1},
        moore_outputs={"WRITE": {"we": 1, "busy": 1}, "DONE": {"busy": 1}},
    )
    fsm.when("IDLE", "WRITE", go=1)
    fsm.otherwise("WRITE", "DONE")
    fsm.otherwise("DONE", "IDLE")
    module.add_component(fsm)
    fsm.connect("go", module.nets["go"])
    we = module.add_net("we", 1)
    busy = module.add_net("busy", 1)
    fsm.connect("we", we)
    fsm.connect("busy", busy)
    memory.connect("we", we)

    rdata = module.add_net("rdata", 8)
    memory.connect("rdata", rdata)
    module.add_output("rdata", rdata)
    module.add_output("busy", busy)
    return flatten(module)


def test_fsm_memory_scalar_fallback_lane_parity():
    """The FSM/memory lane-scalar fallback is exact across lanes.

    The stock FSM/memory types are lane-vectorized, so this design subclasses
    both — the exact-type fused dispatch misses and the components run their
    scalar capture/evaluate per lane with private per-lane state.
    """
    rng = np.random.default_rng(17)
    module = _module_with_shadow_state()
    simulator = BatchSimulator(module, N_LANES)
    assert simulator.program.n_fallback > 0, "shadow components should not fuse"
    sequences = _input_sequences(module, rng)
    simulator, rows = _run_batch(module, sequences)
    _assert_lane_parity(_module_with_shadow_state, sequences, rows)


def test_stock_fsm_memory_fuse():
    """The unsubclassed FSM/memory types are fully lane-vectorized."""
    module = _module_with_shadow_state(memory_cls=Memory, fsm_cls=FSMController)
    simulator = BatchSimulator(module, N_LANES)
    assert simulator.program.n_fallback == 0


class _OpaqueXor(Component):
    type_name = "opaque_xor"

    def __init__(self, name, width):
        super().__init__(name)
        self.width = width
        self.add_input("a", width)
        self.add_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs):
        return {"y": (inputs["a"] ^ inputs["b"]) & ((1 << self.width) - 1)}


def test_exotic_component_lane_fallback():
    builder = NetlistBuilder("opaque")
    builder.input("a", 8)
    builder.input("b", 8)
    module = builder.build()
    component = _OpaqueXor("x0", 8)
    module.add_component(component)
    component.connect("a", module.nets["a"])
    component.connect("b", module.nets["b"])
    y = module.add_net("y", 8)
    component.connect("y", y)
    module.add_output("y", y)
    module = flatten(module)

    simulator = BatchSimulator(module, 4)
    assert simulator.program.n_fallback >= 1
    a = np.array([1, 2, 3, 255])
    b = np.array([255, 7, 3, 255])
    simulator.set_inputs({"a": a, "b": b})
    simulator.settle()
    assert list(simulator.get_output("y")) == [int(x) ^ int(yv) for x, yv in zip(a, b)]


def test_wide_nets_use_limb_store():
    """Nets of 61..240 bits stay in the int64 store as limb arrays."""
    builder = NetlistBuilder("wide")
    x = builder.input("x", 80)
    y = builder.input("y", 80)
    builder.output("s", builder.add(x, y, name="sum80"))
    module = flatten(builder.build())

    simulator = BatchSimulator(module, 2)
    assert simulator.program.dtype is np.int64
    assert simulator.program.limbs_of[module.nets["x"]] == 2
    xs = [(1 << 79) - 3, 123456789012345678901]
    ys = [5, (1 << 78) + 17]
    simulator.set_inputs(
        {"x": np.array(xs, dtype=object), "y": np.array(ys, dtype=object)}
    )
    simulator.settle()
    out = simulator.get_output("s")
    mask = (1 << 80) - 1
    assert [int(v) for v in out] == [(a + b) & mask for a, b in zip(xs, ys)]


def test_very_wide_nets_use_object_lanes():
    """Nets past MAX_LIMB_WIDTH still fall back to object-dtype exact ints."""
    width = 250
    builder = NetlistBuilder("very_wide")
    x = builder.input("x", width)
    y = builder.input("y", width)
    builder.output("s", builder.add(x, y, name="sum250"))
    module = flatten(builder.build())

    simulator = BatchSimulator(module, 2)
    assert simulator.program.dtype is object
    assert not simulator.program.limbs_of
    xs = [(1 << (width - 1)) - 3, 123456789012345678901]
    ys = [5, (1 << (width - 2)) + 17]
    simulator.set_inputs(
        {"x": np.array(xs, dtype=object), "y": np.array(ys, dtype=object)}
    )
    simulator.settle()
    out = simulator.get_output("s")
    mask = (1 << width) - 1
    assert [int(v) for v in out] == [(a + b) & mask for a, b in zip(xs, ys)]


def test_n_lanes_zero_rejected():
    module = flatten(get_design("binary_search").build())
    with pytest.raises(ValueError, match="n_lanes >= 1"):
        BatchSimulator(module, 0)
    with pytest.raises(ValueError, match="n_lanes >= 1"):
        compile_module_batch(module, 0)


def test_scalar_inputs_broadcast_to_all_lanes():
    module = flatten(get_design("binary_search").build())
    simulator = BatchSimulator(module, 4)
    name = next(iter(simulator._input_keys))
    simulator.set_input(name, 1)
    assert list(simulator.get_net(module.ports[name].net)) == [1, 1, 1, 1]


def test_wrong_lane_shape_rejected():
    module = flatten(get_design("binary_search").build())
    simulator = BatchSimulator(module, 4)
    name = next(iter(simulator._input_keys))
    with pytest.raises(ValueError, match="shape"):
        simulator.set_input(name, np.zeros(3, dtype=np.int64))


def test_unknown_ports_listed_in_errors():
    module = flatten(get_design("binary_search").build())
    simulator = BatchSimulator(module, 2)
    with pytest.raises(KeyError, match="valid input ports"):
        simulator.set_input("nope", 1)
    with pytest.raises(KeyError, match="valid output ports"):
        simulator.get_output("nope")


def test_batch_program_cached_per_module_and_lane_count():
    module = flatten(get_design("binary_search").build())
    first = BatchSimulator(module, 4)
    second = BatchSimulator(module, 4)
    assert first.program is second.program
    other = BatchSimulator(module, 8)
    assert other.program is not first.program


def test_lane_component_reset_isolates_lanes():
    """Fallback lane state starts from the component's reset state per lane."""
    memory = _ShadowMemory("m", width=8, depth=4, sync_read=True, initial=[1, 2, 3, 4])
    wrapper = LaneComponent(memory, 2)
    wrapper.reset()
    assert wrapper.lane_states is not None
    first, second = wrapper.lane_states
    assert first["_state"] == [1, 2, 3, 4]
    assert first["_state"] is not second["_state"], "lanes must not share storage"
