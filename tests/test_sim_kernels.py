"""Fused lane-kernel tests: IR extraction, backends, parity, and fallbacks.

The kernel subsystem (:mod:`repro.sim.kernels`) must never change results —
only speed.  These tests pin that down three ways:

* bit-parity of the plain batch path vs the NumPy kernel vs the native (C)
  kernel across every registry design, the instrumented power hardware, and
  spec-driven stimulus tensors,
* automatic per-module fallback for everything the IR cannot express
  (subclassed components on the lane-scalar path, >60-bit object-dtype
  stores), and
* graceful degradation from the native backend to the NumPy kernel on hosts
  without a C compiler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstrumentationConfig
from repro.core.instrument import instrument
from repro.designs.registry import all_designs, build_flat, get, get_design
from repro.netlist import NetlistBuilder, flatten
from repro.power import build_seed_library
from repro.power.lane_estimator import BatchRTLPowerEstimator
from repro.sim import BatchSimulator, Simulator
from repro.sim.kernels import (
    KernelUnsupportedError,
    NumpyKernel,
    compile_kernel,
    find_compiler,
    resolve_kernel_backend,
)
from repro.sim.kernels.native import NativeKernel
from repro.stim import SpecTestbench, UniformSpec
from repro.stim.spec import StimulusSpec

N_LANES = 3
N_CYCLES = 32

needs_cc = pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler on this host"
)

KERNEL_CASES = ["numpy"] + (["native"] if find_compiler() is not None else [])


def _sequences(module, rng, n_cycles=N_CYCLES, n_lanes=N_LANES):
    return {
        name: rng.integers(
            0, 1 << min(port.net.width, 16), size=(n_cycles, n_lanes), dtype=np.int64
        )
        for name, port in module.ports.items()
        if port.is_input
    }


def _run(build_module, sequences, kernel_backend, n_cycles=N_CYCLES, n_lanes=N_LANES):
    simulator = BatchSimulator(build_module(), n_lanes, kernel_backend=kernel_backend)
    rows = []
    for cycle in range(n_cycles):
        simulator.set_inputs({name: sequences[name][cycle] for name in sequences})
        simulator.settle()
        rows.append(simulator.get_outputs())
        simulator.clock_edge()
    return simulator, rows


def _assert_rows_equal(reference, candidate, label):
    for cycle, (expected, actual) in enumerate(zip(reference, candidate)):
        for port in expected:
            assert np.array_equal(expected[port], actual[port]), (
                f"{label}: cycle {cycle} output {port!r} diverged"
            )


# ---------------------------------------------------------------------------
# Cross-backend bit parity.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("design_name", sorted(all_designs()))
@pytest.mark.parametrize("backend", KERNEL_CASES)
def test_registry_design_kernel_parity(design_name, backend):
    """Every registry design: kernel outputs == plain batch outputs, per cycle."""
    design = get_design(design_name)
    rng = np.random.default_rng(hash(design_name) % (2**32))
    build = lambda: flatten(design.build())  # noqa: E731
    sequences = _sequences(build(), rng)
    _, reference = _run(build, sequences, "off")
    simulator, candidate = _run(build, sequences, backend)
    assert simulator.kernel_backend == backend
    assert simulator.kernel_fallback is None
    _assert_rows_equal(reference, candidate, f"{design_name}/{backend}")


@pytest.mark.parametrize("backend", KERNEL_CASES)
def test_instrumented_power_hardware_kernel_parity(backend):
    """Power models, aggregator and strobe lower to kernels bit-exactly."""
    library = build_seed_library()
    design = get_design("binary_search")
    build = lambda: instrument(  # noqa: E731
        design.build(), library, InstrumentationConfig()
    ).module
    sequences = _sequences(build(), np.random.default_rng(5))
    _, reference = _run(build, sequences, "off")
    simulator, candidate = _run(build, sequences, backend)
    assert simulator.kernel_backend == backend
    _assert_rows_equal(reference, candidate, f"instrumented/{backend}")


def test_kernel_vs_scalar_simulator_parity():
    """The native kernel path matches the scalar reference simulator lane by lane."""
    design = get_design("HVPeakF")
    build = lambda: flatten(design.build())  # noqa: E731
    sequences = _sequences(build(), np.random.default_rng(11))
    backend = "native" if find_compiler() is not None else "numpy"
    simulator, rows = _run(build, sequences, backend)
    assert simulator.kernel_backend == backend
    for lane in range(N_LANES):
        scalar = Simulator(build())
        for cycle in range(N_CYCLES):
            scalar.set_inputs(
                {name: int(sequences[name][cycle, lane]) for name in sequences}
            )
            scalar.settle()
            for port, lanes in rows[cycle].items():
                assert int(lanes[lane]) == scalar.get_output(port)
            scalar.clock_edge()


@pytest.mark.parametrize("backend", KERNEL_CASES)
def test_spec_driven_estimation_kernel_parity(backend):
    """Driven stimulus tensors + macromodel observation: reports are identical."""
    library = build_seed_library()
    spec = get("HVPeakF").make_stimulus_spec()
    seeds = list(range(5))

    def reports(kernel_backend):
        estimator = BatchRTLPowerEstimator(
            build_flat("HVPeakF"), library=library, kernel_backend=kernel_backend
        )
        return estimator.estimate_all(
            [SpecTestbench(spec, seed=seed) for seed in seeds], max_cycles=96
        ), estimator

    reference, _ = reports("off")
    candidate, estimator = reports(backend)
    assert estimator.last_kernel_backend == backend
    for expected, actual in zip(reference, candidate):
        assert expected.cycles == actual.cycles
        assert expected.total_energy_fj == actual.total_energy_fj
        assert expected.average_power_mw == actual.average_power_mw
        assert expected.cycle_energy_fj == actual.cycle_energy_fj
        assert {n: c.energy_fj for n, c in expected.components.items()} == {
            n: c.energy_fj for n, c in actual.components.items()
        }


# ---------------------------------------------------------------------------
# Automatic per-module fallback.
# ---------------------------------------------------------------------------


def _module_with_unfusable_component():
    """A module whose only component is a deliberately unknown type."""
    from repro.netlist.components import Component

    class OpaqueInc(Component):
        type_name = "opaque_inc"

        def __init__(self, name, width):
            super().__init__(name)
            self.width = width
            self.add_input("a", width)
            self.add_output("y", width)

        def evaluate(self, inputs):
            return {"y": (inputs.get("a", 0) + 1) & ((1 << self.width) - 1)}

    builder = NetlistBuilder("opaque")
    builder.input("a", 8)
    module = builder.build()
    component = OpaqueInc("inc", 8)
    module.add_component(component)
    component.connect("a", module.nets["a"])
    y = module.add_net("y", 8)
    component.connect("y", y)
    module.add_output("y", y)
    return module


def test_unfusable_component_falls_back_to_plain_batch():
    module = _module_with_unfusable_component()
    simulator = BatchSimulator(flatten(module), N_LANES, kernel_backend="numpy")
    assert simulator.kernel is None
    assert simulator.kernel_backend == "off"
    assert "fallback" in simulator.kernel_fallback
    simulator.set_input("a", np.array([1, 2, 3]))
    simulator.settle()
    assert list(simulator.get_output("y")) == [2, 3, 4]


@needs_cc
def test_limb_store_modules_compile_kernels():
    """61..240-bit nets live in int64 limb slots, so kernels still fuse."""
    builder = NetlistBuilder("wide")
    a = builder.input("a", 64)
    b = builder.input("b", 64)
    y = builder.logic("xor", a, b)
    builder.output("y", y)
    module = flatten(builder.build())
    simulator = BatchSimulator(module, N_LANES, kernel_backend="native")
    assert simulator.kernel is not None
    assert simulator.kernel_backend == "native"
    assert simulator.program.n_fallback == 0
    big = (1 << 63) | 5
    simulator.set_input("a", np.array([big, 1, 2], dtype=object))
    simulator.set_input("b", 1)
    simulator.settle()
    assert int(simulator.get_output("y")[0]) == big ^ 1


def test_very_wide_object_store_falls_back_to_plain_batch():
    """Past MAX_LIMB_WIDTH the store is object-dtype and kernels disable."""
    builder = NetlistBuilder("very_wide")
    a = builder.input("a", 250)
    b = builder.input("b", 250)
    y = builder.logic("xor", a, b)
    builder.output("y", y)
    module = flatten(builder.build())
    simulator = BatchSimulator(module, N_LANES, kernel_backend="native")
    assert simulator.kernel is None
    assert simulator.kernel_backend == "off"
    assert "object-dtype" in simulator.kernel_fallback
    big = (1 << 249) | 5
    simulator.set_input("a", np.array([big, 1, 2], dtype=object))
    simulator.set_input("b", 1)
    simulator.settle()
    assert int(simulator.get_output("y")[0]) == big ^ 1


def test_unsupported_reason_is_cached_on_the_program():
    module = flatten(_module_with_unfusable_component())
    first = BatchSimulator(module, 2, kernel_backend="numpy")
    second = BatchSimulator(module, 2, kernel_backend="native")
    assert first.kernel_fallback == second.kernel_fallback
    assert first.program is second.program
    assert first.program._kernel_unsupported is not None


# ---------------------------------------------------------------------------
# Backend selection and graceful degradation.
# ---------------------------------------------------------------------------


def test_resolve_kernel_backend_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    assert resolve_kernel_backend(None) == "auto"
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
    assert resolve_kernel_backend(None) == "numpy"
    assert resolve_kernel_backend("off") == "off"
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_kernel_backend("fpga")


def test_env_variable_selects_simulator_default(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "off")
    module = flatten(get_design("Bubble_Sort").build())
    simulator = BatchSimulator(module, 2)
    assert simulator.kernel is None and simulator.kernel_backend == "off"
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
    simulator = BatchSimulator(module, 2)
    assert simulator.kernel_backend == "numpy"


def _fresh_pipeline_module(width=9):
    """A module structure no other test compiles (defeats the .so cache)."""
    builder = NetlistBuilder("kernelless")
    a = builder.input("a", width)
    b = builder.input("b", width)
    total = builder.add(a, b, name="adder")
    builder.output("total", builder.pipe(total, name="sum_reg"))
    return flatten(builder.build())


def test_native_without_compiler_degrades_to_numpy_kernel(monkeypatch):
    """A no-compiler host still gets the fused NumPy kernel from "native"."""
    monkeypatch.setenv("REPRO_KERNEL_CC", "definitely-not-a-compiler")
    assert find_compiler() is None
    module = _fresh_pipeline_module()
    simulator = BatchSimulator(module, N_LANES, kernel_backend="native")
    assert isinstance(simulator.kernel, NumpyKernel)
    assert simulator.kernel_backend == "numpy"
    rng = np.random.default_rng(3)
    sequences = _sequences(module, rng)
    rows = []
    for cycle in range(N_CYCLES):
        simulator.set_inputs({name: sequences[name][cycle] for name in sequences})
        simulator.settle()
        rows.append(simulator.get_outputs())
        simulator.clock_edge()
    _, reference = _run(lambda: _fresh_pipeline_module(), sequences, "off")
    _assert_rows_equal(reference, rows, "no-compiler fallback")


@needs_cc
def test_native_kernel_compiles_once_per_structure():
    module = flatten(get_design("Bubble_Sort").build())
    first = BatchSimulator(module, 2, kernel_backend="native")
    second = BatchSimulator(module, 2, kernel_backend="native")
    assert isinstance(first.kernel, NativeKernel)
    assert first.kernel._lib is second.kernel._lib  # per-source .so cache


@needs_cc
def test_native_kernel_rebinds_after_sibling_plain_path_run():
    """reset() re-captures state pointers a sibling plain-path run detached.

    The plain batch commit *rebinds* holder arrays (``s.state = s.pending``),
    so a native kernel bound earlier to the same cached program would keep
    pointing at the detached arrays — two identical runs would accumulate
    instead of repeating.  ``reset()`` must re-split and re-bind.
    """

    def build():
        builder = NetlistBuilder("accum")
        d = builder.input("d", 8)
        en = builder.input("en", 1)
        total = builder.accumulator("acc", 8)
        builder.drive("acc", d=d, en=en)
        builder.output("total", total)
        return flatten(builder.build())

    module = build()
    native = BatchSimulator(module, 2, kernel_backend="native")
    assert isinstance(native.kernel, NativeKernel)
    plain = BatchSimulator(module, 2, kernel_backend="off")
    plain.set_inputs({"d": 1, "en": 1})
    plain.step(cycles=3)  # plain commits rebind the shared holder arrays

    outputs = []
    for _ in range(2):
        native.reset()
        native.set_inputs({"d": 1, "en": 1})
        native.step(cycles=5)
        native.settle()
        outputs.append(list(native.get_output("total")))
    assert outputs[0] == outputs[1] == [5, 5]


@needs_cc
def test_step_uses_fused_cycle_kernel():
    module = flatten(get_design("Bubble_Sort").build())
    fused = BatchSimulator(module, 2, kernel_backend="native")
    plain = BatchSimulator(flatten(get_design("Bubble_Sort").build()), 2,
                           kernel_backend="off")
    for simulator in (fused, plain):
        simulator.step({"start": 1}, cycles=1)
        simulator.step({"start": 0}, cycles=20)
        simulator.settle()
    assert fused.cycle == plain.cycle == 21
    for port in plain.get_outputs():
        assert np.array_equal(fused.get_output(port), plain.get_output(port))


# ---------------------------------------------------------------------------
# Gate-level settle kernels (characterization plumbing).
# ---------------------------------------------------------------------------


@needs_cc
def test_gate_level_native_settle_parity():
    from repro.gates.gatesim import GateLevelSimulator
    from repro.gates.techmap import TechnologyMapper
    from repro.netlist.components import Adder
    from repro.power.technology import CB130M_TECHNOLOGY

    component = Adder("a8", 8)
    netlist = TechnologyMapper(CB130M_TECHNOLOGY.cell_library).map_component(component)
    widths = {p.name: p.width for p in component.ports.values()}
    rng = np.random.default_rng(9)
    values = {
        p.name: rng.integers(0, 1 << p.width, size=12, dtype=np.int64)
        for p in component.input_ports
    }
    plain = GateLevelSimulator(netlist)
    native = GateLevelSimulator(netlist, kernel_backend="native")
    reference = plain.evaluate_ports_batch(values, widths)
    candidate = native.evaluate_ports_batch(values, widths)
    assert native.kernel_backend == "native"
    for port in reference:
        assert np.array_equal(reference[port], candidate[port])
    assert np.array_equal(plain.snapshot_batch(), native.snapshot_batch())


@needs_cc
def test_characterization_engine_kernel_backend_fits_identical_model():
    from repro.netlist.components import Adder
    from repro.power import CharacterizationEngine

    reference = CharacterizationEngine(n_pairs=50, kernel_backend="off")
    native = CharacterizationEngine(n_pairs=50, kernel_backend="native")
    fit_ref = reference.characterize(Adder("a8", 8))
    fit_nat = native.characterize(Adder("a8", 8))
    assert fit_ref.model.coefficients == fit_nat.model.coefficients
    assert fit_ref.model.base_energy_fj == fit_nat.model.base_energy_fj
    assert fit_ref.reference_energies == fit_nat.reference_energies


# ---------------------------------------------------------------------------
# API plumbing.
# ---------------------------------------------------------------------------


def test_runspec_validates_kernel_backend():
    from repro.api import RunSpec, SweepSpec

    spec = RunSpec(design="binary_search", kernel_backend="native")
    assert RunSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError, match="unknown kernel backend"):
        RunSpec(design="binary_search", kernel_backend="cuda")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        SweepSpec(designs=("binary_search",), kernel_backend="cuda")
    sweep = SweepSpec(designs=("binary_search",), seeds=(0, 1), kernel_backend="numpy")
    assert all(s.kernel_backend == "numpy" for s in sweep.run_specs())


@pytest.mark.parametrize("backend", KERNEL_CASES)
def test_estimate_batch_kernel_metadata_and_parity(backend):
    from repro.api import RunSpec, estimate

    base = RunSpec(design="binary_search", backend="batch", max_cycles=64)
    reference = estimate(base.replace(kernel_backend="off"))
    candidate = estimate(base.replace(kernel_backend=backend))
    assert candidate.metadata["kernel_backend"] == backend
    assert reference.report.total_energy_fj == candidate.report.total_energy_fj
    assert reference.report.cycles == candidate.report.cycles


def test_uniform_spec_stimulus_kernel_parity_on_lane_view_loop():
    """Interactive (non-spec) testbenches also run under kernels unchanged."""
    library = build_seed_library()
    spec = StimulusSpec(n_cycles=48, seed=7, default=UniformSpec())

    def reports(kernel_backend):
        estimator = BatchRTLPowerEstimator(
            build_flat("HVPeakF"), library=library, kernel_backend=kernel_backend
        )
        testbenches = [SpecTestbench(spec, seed=seed) for seed in range(3)]
        return estimator.estimate_all(
            testbenches, max_cycles=48, use_array_driver=False
        )

    reference = reports("off")
    candidate = reports("numpy")
    for expected, actual in zip(reference, candidate):
        assert expected.total_energy_fj == actual.total_energy_fj
        assert expected.cycle_energy_fj == actual.cycle_energy_fj
