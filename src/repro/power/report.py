"""Power report data structures shared by all estimators.

Every estimator in the package — the software RTL estimator, the gate-level
baseline, and the power-emulation platform readback — produces the same
:class:`PowerReport`, which is what makes the accuracy comparisons in
``benchmarks/bench_accuracy.py`` straightforward.  Reports serialize to plain
JSON dicts (:meth:`PowerReport.to_dict` / :meth:`PowerReport.from_dict`) so
the unified estimation API (:mod:`repro.api`) and the on-disk result cache
(:mod:`repro.bench.cache`) can persist them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ComponentPower:
    """Per-component energy/power results."""

    name: str
    component_type: str
    energy_fj: float
    average_power_mw: float

    def __post_init__(self) -> None:
        self.energy_fj = float(self.energy_fj)
        self.average_power_mw = float(self.average_power_mw)

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ComponentPower":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


@dataclass
class PowerReport:
    """Result of one power-estimation run."""

    design: str
    estimator: str
    cycles: int
    clock_mhz: float
    total_energy_fj: float
    average_power_mw: float
    peak_power_mw: float = 0.0
    components: Dict[str, ComponentPower] = field(default_factory=dict)
    #: optional per-cycle (or per-strobe) total energy trace in fJ
    cycle_energy_fj: List[float] = field(default_factory=list)
    #: wall-clock time spent producing this report (the quantity Fig. 3 compares)
    estimation_time_s: float = 0.0
    notes: Dict[str, object] = field(default_factory=dict)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (round-trips through :meth:`from_dict`)."""
        payload = dataclasses.asdict(self)
        payload["components"] = {
            name: component.to_dict() for name, component in self.components.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PowerReport":
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in fields}
        kwargs["components"] = {
            name: ComponentPower.from_dict(component)
            for name, component in (payload.get("components") or {}).items()
        }
        return cls(**kwargs)

    # ---------------------------------------------------------------- views
    def energy_by_type(self) -> Dict[str, float]:
        """Aggregate energy per component type (adders vs. registers vs. ...)."""
        totals: Dict[str, float] = {}
        for component in self.components.values():
            totals[component.component_type] = (
                totals.get(component.component_type, 0.0) + component.energy_fj
            )
        return totals

    def top_consumers(self, n: int = 10) -> List[ComponentPower]:
        return sorted(self.components.values(), key=lambda c: c.energy_fj, reverse=True)[:n]

    def component_share(self, name: str) -> float:
        if self.total_energy_fj <= 0:
            return 0.0
        return self.components[name].energy_fj / self.total_energy_fj

    def relative_error_to(self, reference: "PowerReport") -> float:
        """Relative error of this report's average power against a reference."""
        if reference.average_power_mw == 0:
            return 0.0
        return abs(self.average_power_mw - reference.average_power_mw) / reference.average_power_mw

    def table(self, n: int = 15) -> str:
        """Formatted per-component power table (largest consumers first)."""
        lines = [
            f"design {self.design} — {self.estimator}",
            f"  cycles={self.cycles}  clock={self.clock_mhz:.0f} MHz  "
            f"avg power={self.average_power_mw:.4f} mW  peak={self.peak_power_mw:.4f} mW  "
            f"estimation time={self.estimation_time_s:.3f} s",
            f"  {'component':32s} {'type':14s} {'energy (fJ)':>14s} {'power (mW)':>12s} {'share':>7s}",
        ]
        for component in self.top_consumers(n):
            share = self.component_share(component.name)
            lines.append(
                f"  {component.name:32.32s} {component.component_type:14s} "
                f"{component.energy_fj:14.1f} {component.average_power_mw:12.5f} {share:6.1%}"
            )
        return "\n".join(lines)
