"""The emulation platform model: download, execute at hardware speed, read back.

The functional behaviour of the FPGA is obtained by executing the *enhanced*
netlist on the cycle-accurate RTL simulator — the power numbers therefore come
out of the inserted power-estimation hardware itself, exactly as they would on
a real board.  What the FPGA changes is *time*: the platform model converts
the workload's cycle count into wall-clock seconds using the achievable
emulation clock, plus bitstream download and result readback overheads (and,
optionally, host-side stimulus streaming when the testbench is not mapped
onto the FPGA).  This mirrors how the paper measured "power emulation time".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.fpga import FPGADevice, smallest_fitting_device
from repro.core.instrument import InstrumentedDesign
from repro.core.synthesis import SynthesisEstimator, SynthesisResult
from repro.power.report import ComponentPower, PowerReport
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.engine import Simulator
from repro.sim.testbench import Testbench


class CapacityError(Exception):
    """Raised when the enhanced design does not fit any available FPGA device."""


@dataclass(frozen=True)
class HostInterface:
    """PC <-> emulation board link characteristics."""

    #: sustained configuration (bitstream download) bandwidth
    download_mbits_per_s: float = 33.0
    #: fixed board bring-up / handshake time per run
    setup_s: float = 1.5
    #: latency of one readback transaction (aggregator / model registers)
    readback_latency_s: float = 0.02
    #: per-word readback cost
    readback_word_s: float = 2.0e-5
    #: host-side stimulus streaming rate when the testbench stays on the PC
    stimulus_cycles_per_s: float = 750_000.0


@dataclass
class EmulationTimeBreakdown:
    """Modeled wall-clock time of one emulation run (Fig. 3's 'Emulation' bar)."""

    download_s: float
    execute_s: float
    stimulus_s: float
    readback_s: float

    @property
    def total_s(self) -> float:
        return self.download_s + self.execute_s + self.stimulus_s + self.readback_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "download_s": self.download_s,
            "execute_s": self.execute_s,
            "stimulus_s": self.stimulus_s,
            "readback_s": self.readback_s,
            "total_s": self.total_s,
        }


@dataclass
class EmulationResult:
    """Everything produced by one emulation run."""

    design: str
    device: FPGADevice
    synthesis: SynthesisResult
    emulation_clock_mhz: float
    power_report: PowerReport
    time_breakdown: EmulationTimeBreakdown
    #: cycles actually executed by the (simulated) platform
    executed_cycles: int
    #: cycles of the nominal workload the time model was evaluated for
    workload_cycles: int
    #: functional outputs of the design at the end of the run
    final_outputs: Dict[str, int] = field(default_factory=dict)
    #: wall-clock time of the host-side functional simulation (for reference)
    host_simulation_s: float = 0.0

    @property
    def utilization(self) -> Dict[str, float]:
        return self.device.utilization(self.synthesis.resources)


class EmulationPlatform:
    """PC-based FPGA emulation platform model (paper Section 3 setup)."""

    def __init__(
        self,
        device: Optional[FPGADevice] = None,
        host: HostInterface = HostInterface(),
        synthesis: Optional[SynthesisEstimator] = None,
    ) -> None:
        #: explicit device, or None to auto-select the smallest fitting part
        self.device = device
        self.host = host
        self.synthesis = synthesis if synthesis is not None else SynthesisEstimator()

    # ------------------------------------------------------------------ API
    def run(
        self,
        instrumented: InstrumentedDesign,
        testbench: Testbench,
        technology: Technology = CB130M_TECHNOLOGY,
        workload_cycles: Optional[int] = None,
        testbench_on_fpga: bool = True,
        max_cycles: Optional[int] = None,
    ) -> EmulationResult:
        """Emulate the enhanced design and read back its power results.

        ``workload_cycles`` lets the caller evaluate the *time model* for a
        nominal workload larger than what is actually executed here (our
        Python functional execution of multi-frame video workloads would be
        needlessly slow); power results always come from the executed cycles.
        """
        synthesis = self.synthesis.estimate_module(instrumented.module)
        device = self.device or smallest_fitting_device(synthesis.resources)
        if device is None or not device.fits(synthesis.resources):
            raise CapacityError(
                f"design {instrumented.module.name!r} needs {synthesis.resources.luts} LUTs / "
                f"{synthesis.resources.ffs} FFs and does not fit the available Virtex-II parts"
            )
        emulation_clock_mhz = min(device.max_clock_mhz, synthesis.achievable_clock_mhz)

        start = time.perf_counter()
        simulator = Simulator(instrumented.module)
        simulation = simulator.run(testbench, max_cycles=max_cycles)
        host_elapsed = time.perf_counter() - start

        executed_cycles = simulation.cycles
        nominal_cycles = workload_cycles if workload_cycles is not None else executed_cycles

        power_report = self._build_power_report(
            instrumented, simulator, executed_cycles, technology, host_elapsed
        )
        breakdown = self._time_breakdown(
            device, instrumented, nominal_cycles, emulation_clock_mhz, testbench_on_fpga
        )
        power_report.estimation_time_s = breakdown.total_s
        power_report.notes["device"] = device.name
        power_report.notes["emulation_clock_mhz"] = emulation_clock_mhz

        return EmulationResult(
            design=instrumented.original_name,
            device=device,
            synthesis=synthesis,
            emulation_clock_mhz=emulation_clock_mhz,
            power_report=power_report,
            time_breakdown=breakdown,
            executed_cycles=executed_cycles,
            workload_cycles=nominal_cycles,
            final_outputs=simulation.final_outputs,
            host_simulation_s=host_elapsed,
        )

    # -------------------------------------------------------------- helpers
    def _build_power_report(
        self,
        instrumented: InstrumentedDesign,
        simulator: Simulator,
        cycles: int,
        technology: Technology,
        host_elapsed: float,
    ) -> PowerReport:
        total_energy_fj = instrumented.read_total_energy_fj(simulator)
        components: Dict[str, ComponentPower] = {}
        if instrumented.accumulator_map:
            type_by_name = {
                name: instrumented.module.components[model_name].model.component_type
                for name, model_name in instrumented.model_map.items()
            }
            for original, energy in instrumented.component_energies_fj(simulator).items():
                components[original] = ComponentPower(
                    name=original,
                    component_type=type_by_name.get(original, "unknown"),
                    energy_fj=energy,
                    average_power_mw=technology.energy_to_power_mw(
                        energy / cycles if cycles else 0.0
                    ),
                )
        return PowerReport(
            design=instrumented.original_name,
            estimator="power-emulation",
            cycles=cycles,
            clock_mhz=technology.clock_mhz,
            total_energy_fj=total_energy_fj,
            average_power_mw=technology.energy_to_power_mw(
                total_energy_fj / cycles if cycles else 0.0
            ),
            components=components,
            estimation_time_s=0.0,  # replaced by the modeled emulation time
            notes={
                "n_power_models": instrumented.n_power_models,
                "monitored_bits": instrumented.monitored_bits,
                "host_functional_simulation_s": host_elapsed,
            },
        )

    def _time_breakdown(
        self,
        device: FPGADevice,
        instrumented: InstrumentedDesign,
        workload_cycles: int,
        emulation_clock_mhz: float,
        testbench_on_fpga: bool,
    ) -> EmulationTimeBreakdown:
        host = self.host
        download_s = host.setup_s + device.bitstream_mbits / host.download_mbits_per_s
        execute_s = workload_cycles / (emulation_clock_mhz * 1e6)
        stimulus_s = (
            0.0 if testbench_on_fpga else workload_cycles / host.stimulus_cycles_per_s
        )
        readback_words = 1 + len(instrumented.accumulator_map)
        readback_s = host.readback_latency_s + readback_words * host.readback_word_s
        return EmulationTimeBreakdown(
            download_s=download_s,
            execute_s=execute_s,
            stimulus_s=stimulus_s,
            readback_s=readback_s,
        )
