"""Macromodel characterization against gate-level reference implementations.

For a given RTL component the engine:

1. technology-maps it to gates (:mod:`repro.gates.techmap`),
2. generates training vector *pairs* spanning a range of toggle densities —
   all ``n_pairs`` of them at once, as NumPy lane arrays (seed-stable),
3. measures the reference transition energies with the gate-level power
   calculator — one lane-vectorized settle per vector set instead of one
   simulator call per pair,
4. extracts the per-bit transition indicators ``T(x_i)`` of the component's
   monitored ports for every pair with vectorized bit-unpacking, and
5. solves the least-squares problem ``E ≈ base + sum_i coeff_i * T(x_i)``
   (numpy ``lstsq``) to obtain the linear-transition macromodel, together
   with goodness-of-fit metrics.

This mirrors the characterization flow the paper's power-macromodel library
is built with ([6], [8] in the paper).

``CharacterizationEngine(batch=False)`` opts out of lane vectorization and
runs the same training pairs one at a time through the scalar gate-level
simulator; both paths consume identical stimuli and reference the same
gate-level implementation, so they fit the same model (the batch path is an
optimization, not a semantic change — see the lane-parity tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.gates.gate_power import GatePowerCalculator
from repro.gates.gatesim import GateLevelSimulator
from repro.gates.techmap import TechnologyMapper
from repro.netlist.components import Component
from repro.power.macromodel import CharacterizationMetrics, LinearTransitionModel, LUTPowerModel
from repro.power.technology import CB130M_TECHNOLOGY, Technology

#: per-pair flip probabilities; drawn per pair so the training set covers the
#: whole toggle-density range (the regression otherwise extrapolates badly at
#: low activities)
FLIP_PROBABILITIES = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0)

#: int64 bit-packing bound: ports wider than this cannot be held in one lane
MAX_LANE_PORT_WIDTH = 62


def _pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(n, width)`` 0/1 matrix into ``(n,)`` port-value arrays.

    Values up to :data:`MAX_LANE_PORT_WIDTH` bits pack into int64 lanes (the
    batch gate-simulation form); wider ports pack into exact Python ints in an
    object array, which the scalar pair loop consumes unchanged.
    """
    width = bits.shape[1]
    if width > MAX_LANE_PORT_WIDTH:
        out = np.empty(bits.shape[0], dtype=object)
        for index, row in enumerate(bits):
            value = 0
            for bit in range(width):
                if row[bit]:
                    value |= 1 << bit
            out[index] = value
        return out
    weights = np.left_shift(np.int64(1), np.arange(width, dtype=np.int64))
    return bits.astype(np.int64) @ weights


def _unpack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Unpack ``(n,)`` int values into an ``(n, width)`` 0/1 matrix."""
    unpacked = (values[:, None] >> np.arange(width, dtype=np.int64)) & 1
    return unpacked.astype(np.int64)


def _popcount(values: np.ndarray, width: int) -> np.ndarray:
    """Per-lane population count of ``width``-bit values."""
    if values.dtype != object and hasattr(np, "bitwise_count"):
        return np.bitwise_count(values.astype(np.uint64)).astype(np.int64)
    return _unpack_bits(values, width).sum(axis=1)


def _lane_packable(port_widths: Mapping[str, int]) -> bool:
    """True when every port fits an int64 lane (the batch path's precondition)."""
    return all(width <= MAX_LANE_PORT_WIDTH for width in port_widths.values())


def generate_training_pairs(
    component: Component, n_pairs: int, seed: int
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """All training pairs for one component, as per-port lane arrays.

    Each pair is a random vector and a perturbation of it whose per-pair flip
    probability is drawn from :data:`FLIP_PROBABILITIES`.  The same ``seed``
    always yields the same pairs, and both the batch and the scalar
    characterization paths consume exactly these stimuli — which is what makes
    them parity-comparable.
    """
    if n_pairs < 1:
        raise ValueError(f"characterization needs n_pairs >= 1, got {n_pairs}")
    rng = np.random.default_rng(seed)
    probabilities = rng.choice(FLIP_PROBABILITIES, size=n_pairs)
    firsts: Dict[str, np.ndarray] = {}
    seconds: Dict[str, np.ndarray] = {}
    for port in component.input_ports:
        bits = rng.integers(0, 2, size=(n_pairs, port.width), dtype=np.int64)
        flips = rng.random((n_pairs, port.width)) < probabilities[:, None]
        firsts[port.name] = _pack_bits(bits)
        seconds[port.name] = _pack_bits(bits ^ flips)
    return firsts, seconds


def holdout_error(
    component: Component,
    model,
    seed: int = 99,
    n_pairs: int = 40,
    technology: Technology = CB130M_TECHNOLOGY,
    mapper: Optional[TechnologyMapper] = None,
    batch: bool = True,
) -> float:
    """Average relative error of ``model`` on a fresh (non-training) vector set.

    Maps the component to gates, applies ``n_pairs`` independent uniform
    random vector pairs (not perturbation pairs — holdout stresses the model
    away from the training distribution), and compares the summed model
    energy against the summed gate-level reference energy.
    """
    if n_pairs < 1:
        raise ValueError(f"holdout evaluation needs n_pairs >= 1, got {n_pairs}")
    mapper = mapper if mapper is not None else TechnologyMapper(technology.cell_library)
    netlist = mapper.map_component(component)
    calculator = GatePowerCalculator(netlist, technology.cell_library)
    simulator = GateLevelSimulator(netlist)
    widths = {p.name: p.width for p in component.ports.values()}

    rng = np.random.default_rng(seed)
    firsts = {
        p.name: _pack_bits(rng.integers(0, 2, size=(n_pairs, p.width), dtype=np.int64))
        for p in component.input_ports
    }
    seconds = {
        p.name: _pack_bits(rng.integers(0, 2, size=(n_pairs, p.width), dtype=np.int64))
        for p in component.input_ports
    }
    energies, prev_io, curr_io = _run_pairs(
        component, simulator, calculator, widths, firsts, seconds, batch=batch
    )
    total_reference = float(energies.sum())
    total_model = 0.0
    for lane in range(n_pairs):
        previous = {p: int(a[lane]) for p, a in prev_io.items()}
        current = {p: int(a[lane]) for p, a in curr_io.items()}
        total_model += model.evaluate(previous, current)
    if total_reference == 0.0:
        return 0.0
    return abs(total_model - total_reference) / total_reference


def _run_pairs(
    component: Component,
    simulator: GateLevelSimulator,
    calculator: GatePowerCalculator,
    port_widths: Mapping[str, int],
    firsts: Mapping[str, np.ndarray],
    seconds: Mapping[str, np.ndarray],
    batch: bool,
) -> Tuple[np.ndarray, Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Reference energies and full I/O values for every training pair.

    Returns ``(energies, prev_io, curr_io)`` where ``energies`` is the
    ``(n_pairs,)`` gate-level transition energy vector and the I/O mappings
    hold per-port ``(n_pairs,)`` value arrays (inputs and simulated outputs).
    The gate-level implementation is the single source of output values on
    both paths, so ``batch`` only changes speed, never results.  The one
    known batch precondition — every port must fit an int64 lane — is checked
    explicitly; components with wider ports take the scalar loop (exact
    Python-int arithmetic), and any other batch failure propagates loudly
    rather than silently degrading.
    """
    if batch and _lane_packable(port_widths) and firsts:
        out_first = simulator.evaluate_ports_batch(firsts, port_widths)
        before = simulator.snapshot_batch()
        out_second = simulator.evaluate_ports_batch(seconds, port_widths)
        after = simulator.snapshot_batch()
        energies = calculator.transition_energy_batch(simulator, before, after)
        return (
            energies.total_fj,
            {**dict(firsts), **out_first},
            {**dict(seconds), **out_second},
        )

    n_pairs = next(iter(firsts.values())).shape[0] if firsts else 0
    energies = np.empty(n_pairs, dtype=np.float64)
    prev_cols: Dict[str, List[int]] = {p: [] for p in port_widths}
    curr_cols: Dict[str, List[int]] = {p: [] for p in port_widths}
    for lane in range(n_pairs):
        first = {p: int(a[lane]) for p, a in firsts.items()}
        second = {p: int(a[lane]) for p, a in seconds.items()}
        out_first = dict(simulator.evaluate_ports(first, port_widths))
        before = simulator.snapshot()
        out_second = dict(simulator.evaluate_ports(second, port_widths))
        after = simulator.snapshot()
        energies[lane] = calculator.transition_energy(before, after).total_fj
        for port, value in {**first, **out_first}.items():
            prev_cols[port].append(value)
        for port, value in {**second, **out_second}.items():
            curr_cols[port].append(value)
    def column(values: List[int]) -> np.ndarray:
        try:
            return np.asarray(values, dtype=np.int64)
        except OverflowError:  # >63-bit port values stay exact Python ints
            return np.array(values, dtype=object)

    prev_io = {p: column(v) for p, v in prev_cols.items() if v}
    curr_io = {p: column(v) for p, v in curr_cols.items() if v}
    return energies, prev_io, curr_io


@dataclass
class CharacterizationResult:
    """A fitted model plus the data and metrics behind it."""

    component_type: str
    model: LinearTransitionModel
    metrics: CharacterizationMetrics
    #: reference energies (fJ) per training transition
    reference_energies: List[float]
    #: model-predicted energies per training transition
    predicted_energies: List[float]


class CharacterizationEngine:
    """Fits linear-transition macromodels from gate-level simulations."""

    def __init__(
        self,
        technology: Technology = CB130M_TECHNOLOGY,
        mapper: Optional[TechnologyMapper] = None,
        n_pairs: int = 120,
        seed: int = 2005,
        nonnegative: bool = True,
        batch: bool = True,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if n_pairs < 1:
            raise ValueError(f"characterization needs n_pairs >= 1, got {n_pairs}")
        self.technology = technology
        self.mapper = mapper if mapper is not None else TechnologyMapper(technology.cell_library)
        self.n_pairs = n_pairs
        self.seed = seed
        #: clamp negative fitted coefficients to zero (hardware-friendly)
        self.nonnegative = nonnegative
        #: lane-vectorize the gate-level reference simulation (opt-out flag;
        #: the scalar path consumes identical stimuli and fits the same model)
        self.batch = batch
        #: lane-kernel backend for the batched gate-level settles ("native"
        #: compiles the settle via repro.sim.kernels when a C compiler exists)
        self.kernel_backend = kernel_backend

    # ------------------------------------------------------------------ API
    def characterize(self, component: Component) -> CharacterizationResult:
        """Fit a linear-transition model for one component."""
        inputs_bits, energies = self._collect_training_data(component)
        coefficients, base, predicted = self._fit(inputs_bits, energies)
        port_widths = {p.name: p.width for p in component.monitored_ports()}
        model = self._assemble_model(component, port_widths, coefficients, base)
        metrics = self._metrics(energies, predicted)
        model.metrics = metrics
        return CharacterizationResult(
            component_type=component.type_name,
            model=model,
            metrics=metrics,
            reference_energies=list(energies),
            predicted_energies=list(predicted),
        )

    def characterize_lut(self, component: Component, n_bins: int = 8) -> LUTPowerModel:
        """Fit a LUT macromodel (toggle-density binned) for the ablation study."""
        if n_bins < 1:
            raise ValueError(f"LUT characterization needs n_bins >= 1, got {n_bins}")
        port_widths = {p.name: p.width for p in component.ports.values()}
        input_ports = [p.name for p in component.input_ports]
        output_ports = [p.name for p in component.output_ports]

        energies, prev_io, curr_io = self._simulate_training_pairs(component)
        in_density = self._density(input_ports, port_widths, prev_io, curr_io)
        out_density = self._density(output_ports, port_widths, prev_io, curr_io)
        rows = np.minimum(n_bins - 1, (in_density * n_bins).astype(np.int64))
        cols = np.minimum(n_bins - 1, (out_density * n_bins).astype(np.int64))

        sums = np.zeros((n_bins, n_bins), dtype=np.float64)
        counts = np.zeros((n_bins, n_bins), dtype=np.int64)
        np.add.at(sums, (rows, cols), energies)
        np.add.at(counts, (rows, cols), 1)
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        table = [[float(means[r, c]) for c in range(n_bins)] for r in range(n_bins)]
        self._fill_empty_bins(table, counts.tolist())
        return LUTPowerModel(
            component.type_name,
            {p.name: p.width for p in component.monitored_ports()},
            input_ports,
            output_ports,
            table,
        )

    # -------------------------------------------------------- training data
    def _simulate_training_pairs(
        self, component: Component
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Generate, simulate and collect all ``n_pairs`` training pairs."""
        firsts, seconds = generate_training_pairs(component, self.n_pairs, self.seed)
        gate_netlist = self.mapper.map_component(component)
        calculator = GatePowerCalculator(gate_netlist, self.technology.cell_library)
        simulator = GateLevelSimulator(gate_netlist, kernel_backend=self.kernel_backend)
        port_widths = {p.name: p.width for p in component.ports.values()}
        return _run_pairs(
            component, simulator, calculator, port_widths, firsts, seconds,
            batch=self.batch,
        )

    def _collect_training_data(self, component: Component) -> Tuple[np.ndarray, np.ndarray]:
        energies, prev_io, curr_io = self._simulate_training_pairs(component)
        port_widths = {p.name: p.width for p in component.ports.values()}
        monitored = sorted(p.name for p in component.monitored_ports())
        columns = []
        for port in monitored:
            toggles = prev_io.get(port, 0) ^ curr_io.get(port, 0)
            columns.append(_unpack_bits(toggles, port_widths[port]))
        features = (
            np.concatenate(columns, axis=1).astype(np.float64)
            if columns
            else np.zeros((self.n_pairs, 0), dtype=np.float64)
        )
        return features, energies

    # ------------------------------------------------------------- fitting
    def _fit(self, features: np.ndarray, energies: np.ndarray):
        n_samples, n_bits = features.shape
        design = np.hstack([np.ones((n_samples, 1)), features])
        solution, *_ = np.linalg.lstsq(design, energies, rcond=None)
        base = float(solution[0])
        coefficients = solution[1:]
        if self.nonnegative:
            coefficients = np.clip(coefficients, 0.0, None)
            base = max(base, 0.0)
        predicted = design @ np.concatenate([[base], coefficients])
        return coefficients, base, predicted

    def _assemble_model(
        self,
        component: Component,
        port_widths: Mapping[str, int],
        flat_coefficients: Sequence[float],
        base: float,
    ) -> LinearTransitionModel:
        per_port: Dict[str, List[float]] = {}
        index = 0
        for port in sorted(port_widths):
            width = port_widths[port]
            per_port[port] = [float(c) for c in flat_coefficients[index:index + width]]
            index += width
        return LinearTransitionModel(component.type_name, port_widths, per_port, base)

    @staticmethod
    def _metrics(reference: np.ndarray, predicted: np.ndarray) -> CharacterizationMetrics:
        reference = np.asarray(reference, dtype=float)
        predicted = np.asarray(predicted, dtype=float)
        residual = reference - predicted
        ss_res = float(np.sum(residual**2))
        ss_tot = float(np.sum((reference - reference.mean()) ** 2))
        r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        rmse = float(np.sqrt(np.mean(residual**2)))
        spread = float(reference.max() - reference.min()) or 1.0
        return CharacterizationMetrics(
            n_samples=int(reference.size),
            r_squared=r_squared,
            nrmse=rmse / spread,
            max_abs_error_fj=float(np.max(np.abs(residual))),
            mean_energy_fj=float(reference.mean()),
        )

    @staticmethod
    def _density(ports, widths, previous, current) -> np.ndarray:
        """Per-lane toggle density over a set of ports (vectorized)."""
        bits = sum(widths[p] for p in ports) or 1
        n_lanes = next(iter(previous.values())).shape[0] if previous else 0
        toggles = np.zeros(n_lanes, dtype=np.int64)
        for port in ports:
            if port not in previous and port not in current:
                continue
            xor = previous.get(port, 0) ^ current.get(port, 0)
            toggles += _popcount(np.asarray(xor), widths[port])
        return toggles / bits

    def settings(self) -> "EngineSettings":
        """The engine's configuration as a hashable, picklable key.

        Engines carrying a custom ``mapper`` cannot be reconstructed in a
        worker process and raise — shard with the default mapper instead.
        """
        if (type(self.mapper) is not TechnologyMapper
                or self.mapper.library is not self.technology.cell_library):
            raise ValueError(
                "sharded characterization requires the technology's default "
                "TechnologyMapper; custom mappers cannot be shipped to worker "
                "processes"
            )
        return EngineSettings(
            technology=self.technology,
            n_pairs=self.n_pairs,
            seed=self.seed,
            nonnegative=self.nonnegative,
            batch=self.batch,
            kernel_backend=self.kernel_backend,
        )

    @staticmethod
    def _fill_empty_bins(table, counts) -> None:
        """Fill unobserved LUT bins with the nearest observed value."""
        n = len(table)
        observed = [(r, c) for r in range(n) for c in range(n) if counts[r][c]]
        if not observed:
            return
        for r in range(n):
            for c in range(n):
                if counts[r][c]:
                    continue
                nearest = min(observed, key=lambda rc: abs(rc[0] - r) + abs(rc[1] - c))
                table[r][c] = table[nearest[0]][nearest[1]]


# ------------------------------------------------------------ sharding
class EngineSettings(NamedTuple):
    """Hashable :class:`CharacterizationEngine` configuration.

    Worker processes key their process-lifetime engine cache on this tuple,
    so every component characterized under the same settings in one worker
    reuses one engine — and with it the technology mapper and, for the
    native backend, the process's compiled-kernel cache, which stays warm
    across components instead of being rebuilt per task.
    """

    technology: Technology
    n_pairs: int
    seed: int
    nonnegative: bool
    batch: bool
    kernel_backend: Optional[str]

    def make_engine(self) -> CharacterizationEngine:
        return CharacterizationEngine(
            technology=self.technology,
            n_pairs=self.n_pairs,
            seed=self.seed,
            nonnegative=self.nonnegative,
            batch=self.batch,
            kernel_backend=self.kernel_backend,
        )


#: per-worker-process engines, keyed by settings (process-lifetime cache)
_WORKER_ENGINES: Dict[EngineSettings, CharacterizationEngine] = {}


def _characterize_worker(
    payload: Tuple[Component, EngineSettings]
) -> CharacterizationResult:
    """Worker entry point: characterize one component on a cached engine."""
    component, settings = payload
    engine = _WORKER_ENGINES.get(settings)
    if engine is None:
        engine = settings.make_engine()
        _WORKER_ENGINES[settings] = engine
    return engine.characterize(component)


def characterize_many(
    components: Sequence[Component],
    engine: Optional[CharacterizationEngine] = None,
    n_workers: int = 1,
) -> List[CharacterizationResult]:
    """Characterize a set of components, optionally across a process pool.

    Results are in ``components`` order and identical for any ``n_workers``:
    each component's training stimulus depends only on the engine seed and
    the component itself, never on sharding (see the shard-parity tests).
    ``n_workers <= 1`` runs serially in-process on ``engine`` directly.
    """
    if engine is None:
        engine = CharacterizationEngine()
    if n_workers <= 1 or len(components) <= 1:
        return [engine.characterize(component) for component in components]
    from repro.bench.shard import run_payload_tasks

    settings = engine.settings()
    return run_payload_tasks(
        [(component, settings) for component in components],
        _characterize_worker,
        n_workers=n_workers,
    )
