"""Lowering stimulus specs into chunked ``(n_cycles, n_ports, n_lanes)`` tensors.

Every :class:`~repro.stim.spec.PortSpec` kind compiles into a *stream* — a
small stateful generator that produces that port's values for one lane, chunk
by chunk, using a dedicated ``numpy`` bit generator seeded from
``(salt, lane seed, port name)``.  Two invariants make the whole subsystem
trustworthy:

* **Chunk invariance** — a stream's values depend only on absolute cycle
  indices, never on how the run is split into chunks.  Draw counts per chunk
  are fully determined by the cycle range (uniform/burst draw exactly one
  value per refresh cycle, Markov draws exactly ``width`` uniforms per cycle,
  mixture children advance every cycle), so a scalar testbench pulling one
  cycle at a time and a 1024-lane driver pulling 256-cycle chunks read the
  same stream.
* **Per-(seed, port) independence** — lane ``i``'s stream is a pure function
  of ``(seeds[i], port name)``.  A scalar run re-seeded with ``seeds[i]``
  therefore reproduces lane ``i`` bit for bit, which is what makes
  spec-driven scalar and lane power estimates identical.

Ports wider than the int64 lane store's :data:`~repro.sim.batch.MAX_LANE_WIDTH`
bits generate object-dtype columns of Python ints (each value assembled from
fixed 32-bit draws, keeping chunk invariance).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sim.batch import MAX_LANE_WIDTH
from repro.stim.spec import (
    BurstSpec,
    ConstantSpec,
    MarkovSpec,
    MixtureSpec,
    PortSpec,
    ReplaySpec,
    StimulusSpec,
    UniformSpec,
    port_entropy,
)

#: default cycles per generated chunk (bounds tensor memory at high lane counts)
CHUNK_CYCLES = 256

#: salt separating stimulus streams from every other RNG consumer in the repo
_STIM_SALT = 0x5717_0001


def _stream_rng(entropy: Tuple[int, ...]) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(entropy))


class _Stream:
    """One (lane, port) value stream; ``take`` must be called sequentially."""

    def __init__(self, spec: PortSpec, width: int, entropy: Tuple[int, ...]) -> None:
        self.spec = spec
        self.width = width
        self.mask = (1 << width) - 1
        self.wide = width > MAX_LANE_WIDTH
        self._rng = _stream_rng(entropy)
        self._cycle = 0

    # ------------------------------------------------------------- raw draws
    def _draw(self, k: int) -> np.ndarray:
        """``k`` uniform values of this port's width (chunk-invariant)."""
        if k <= 0:
            return (
                np.empty(0, dtype=object) if self.wide else np.empty(0, dtype=np.int64)
            )
        if not self.wide:
            # power-of-two range: masked generation, one raw draw per value
            return self._rng.integers(0, 1 << self.width, size=k, dtype=np.int64)
        n_words = (self.width + 31) // 32
        words = self._rng.integers(0, 1 << 32, size=(k, n_words), dtype=np.int64)
        out = np.empty(k, dtype=object)
        for i in range(k):
            value = 0
            for j in range(n_words):
                value |= int(words[i, j]) << (32 * j)
            out[i] = value & self.mask
        return out

    def _empty(self, n: int) -> np.ndarray:
        return np.empty(n, dtype=object if self.wide else np.int64)

    # ------------------------------------------------------------------- API
    def take(self, n: int) -> np.ndarray:
        """The next ``n`` values (cycles ``self._cycle .. self._cycle + n``)."""
        start = self._cycle
        out = self._generate(start, n)
        self._cycle = start + n
        return out

    def _generate(self, start: int, n: int) -> np.ndarray:
        raise NotImplementedError


class _ConstantStream(_Stream):
    def _generate(self, start: int, n: int) -> np.ndarray:
        out = self._empty(n)
        out[:] = int(self.spec.value) & self.mask
        return out


class _HeldDrawStream(_Stream):
    """Shared machinery for uniform/burst: draw at refresh cycles, hold between.

    Subclasses define which absolute cycles are refresh cycles and which are
    quiet (driven with a fixed idle value instead of the held draw).
    """

    def __init__(self, spec, width, entropy, predraw: bool) -> None:
        super().__init__(spec, width, entropy)
        #: value held from the most recent refresh (predrawn when a stream can
        #: start mid-hold, e.g. a phase-shifted burst)
        self._current = self._draw(1)[0] if predraw else None

    def _refresh_mask(self, cycles: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _quiet_mask(self, cycles: np.ndarray) -> Optional[np.ndarray]:
        return None

    def _generate(self, start: int, n: int) -> np.ndarray:
        cycles = np.arange(start, start + n)
        refresh = self._refresh_mask(cycles)
        draws = self._draw(int(refresh.sum()))
        table = self._empty(len(draws) + 1)
        table[0] = self._current if self._current is not None else 0
        table[1:] = draws
        index = np.cumsum(refresh)  # 0 before the chunk's first refresh
        values = table[index]
        if len(draws):
            self._current = table[-1]
        quiet = self._quiet_mask(cycles)
        if quiet is None:
            return values
        out = self._empty(n)
        out[:] = values
        out[quiet] = int(getattr(self.spec, "idle_value", 0)) & self.mask
        return out


class _UniformStream(_HeldDrawStream):
    def __init__(self, spec: UniformSpec, width, entropy) -> None:
        super().__init__(spec, width, entropy, predraw=False)

    def _refresh_mask(self, cycles: np.ndarray) -> np.ndarray:
        return cycles % self.spec.hold == 0


class _BurstStream(_HeldDrawStream):
    def __init__(self, spec: BurstSpec, width, entropy) -> None:
        # a phase-shifted stream can start inside a hold window
        super().__init__(spec, width, entropy, predraw=True)

    def _position(self, cycles: np.ndarray) -> np.ndarray:
        return (cycles + self.spec.phase) % self.spec.period

    def _refresh_mask(self, cycles: np.ndarray) -> np.ndarray:
        position = self._position(cycles)
        return (position < self.spec.active) & (position % self.spec.hold == 0)

    def _quiet_mask(self, cycles: np.ndarray) -> np.ndarray:
        return self._position(cycles) >= self.spec.active


class _MarkovStream(_Stream):
    def __init__(self, spec: MarkovSpec, width, entropy) -> None:
        super().__init__(spec, width, entropy)
        init = int(spec.init) & self.mask
        self._bits = np.array(
            [(init >> b) & 1 for b in range(width)], dtype=np.int8
        )
        if not self.wide:
            self._pow2 = np.int64(1) << np.arange(width, dtype=np.int64)

    def _generate(self, start: int, n: int) -> np.ndarray:
        spec = self.spec
        uniforms = self._rng.random((n, self.width))
        out = self._empty(n)
        bits = self._bits
        for i in range(n):
            row = uniforms[i]
            bits = np.where(
                bits == 1,
                (row >= spec.p10).astype(np.int8),
                (row < spec.p01).astype(np.int8),
            )
            if self.wide:
                value = 0
                for b in range(self.width):
                    value |= int(bits[b]) << b
                out[i] = value
            else:
                out[i] = int(bits.astype(np.int64) @ self._pow2)
        self._bits = bits
        return out


class _MixtureStream(_Stream):
    def __init__(self, spec: MixtureSpec, width, entropy) -> None:
        super().__init__(spec, width, entropy)
        self._children = [
            _make_stream(child, width, entropy + (index,))
            for index, (_, child) in enumerate(spec.components)
        ]
        weights = np.array([w for w, _ in spec.components], dtype=np.float64)
        self._cumulative = np.cumsum(weights / weights.sum())
        self._selected = 0

    def _generate(self, start: int, n: int) -> np.ndarray:
        cycles = np.arange(start, start + n)
        refresh = cycles % self.spec.hold == 0
        draws = self._rng.random(int(refresh.sum()))
        selections = np.searchsorted(self._cumulative, draws, side="right")
        selections = np.minimum(selections, len(self._children) - 1)
        table = np.empty(len(selections) + 1, dtype=np.int64)
        table[0] = self._selected
        table[1:] = selections
        per_cycle = table[np.cumsum(refresh)]
        if len(selections):
            self._selected = int(table[-1])
        # every child advances every cycle, selected or not (chunk invariance)
        stacks = [child.take(n) for child in self._children]
        out = self._empty(n)
        for i in range(n):
            out[i] = stacks[per_cycle[i]][i]
        return out


class _ReplayStream(_Stream):
    def __init__(self, spec: ReplaySpec, width, entropy) -> None:
        super().__init__(spec, width, entropy)
        self._values = [int(v) & self.mask for v in spec.values]

    def _generate(self, start: int, n: int) -> np.ndarray:
        values = self._values
        length = len(values)
        spec = self.spec
        out = self._empty(n)
        for i in range(n):
            cycle = start + i
            if cycle < length:
                out[i] = values[cycle]
            elif spec.repeat:
                out[i] = values[cycle % length]
            elif spec.hold_last:
                out[i] = values[-1]
            else:
                out[i] = 0
        return out


_STREAMS = {
    ConstantSpec: _ConstantStream,
    UniformSpec: _UniformStream,
    BurstSpec: _BurstStream,
    MarkovSpec: _MarkovStream,
    MixtureSpec: _MixtureStream,
    ReplaySpec: _ReplayStream,
}


def _make_stream(spec: PortSpec, width: int, entropy: Tuple[int, ...]) -> _Stream:
    try:
        cls = _STREAMS[type(spec)]
    except KeyError:
        raise TypeError(
            f"no stream lowering for port spec {type(spec).__name__}"
        ) from None
    return cls(spec, width, entropy)


# ---------------------------------------------------------------------------
# The compiled form.
# ---------------------------------------------------------------------------


class CompiledStimulus:
    """A spec lowered against concrete port widths and lane seeds.

    Values are produced as chunked ``(chunk_cycles, n_ports, n_lanes)``
    tensors; :meth:`values_at` exposes them per cycle for interleaved
    simulate/observe loops, :meth:`chunks` iterates whole tensors, and
    :meth:`tensor` materializes the full run (previews, tests).  Access is
    forward-only — streams are sequential — but independent of chunk size.
    """

    def __init__(
        self,
        spec: StimulusSpec,
        input_widths: Mapping[str, int],
        seeds: Sequence[int],
        dtype=np.int64,
        chunk_cycles: int = CHUNK_CYCLES,
    ) -> None:
        if not seeds:
            raise ValueError("compile_stimulus needs at least one lane seed")
        if chunk_cycles < 1:
            raise ValueError(f"chunk_cycles must be >= 1, got {chunk_cycles}")
        self.spec = spec
        self.seeds = [int(seed) for seed in seeds]
        self.n_lanes = len(self.seeds)
        self.n_cycles = spec.n_cycles
        self.chunk_cycles = chunk_cycles
        resolved = spec.resolve(input_widths)
        self.port_names: List[str] = [name for name, _, _ in resolved]
        self.port_widths: List[int] = [width for _, _, width in resolved]
        self.dtype = (
            object
            if dtype is object or any(w > MAX_LANE_WIDTH for w in self.port_widths)
            else np.int64
        )
        self._resolved = resolved
        self._streams: List[List[_Stream]] = []
        self._chunk: Optional[np.ndarray] = None
        self._chunk_start = 0
        self.restart()

    @property
    def n_ports(self) -> int:
        return len(self.port_names)

    def restart(self) -> None:
        """Rewind to cycle 0 (streams are deterministic, so values repeat)."""
        self._streams = [
            [
                _make_stream(
                    port_spec, width, (_STIM_SALT, seed % 2**64, port_entropy(name))
                )
                for seed in self.seeds
            ]
            for name, port_spec, width in self._resolved
        ]
        self._chunk = None
        self._chunk_start = 0

    # ------------------------------------------------------------ generation
    def _generate_chunk(self, start: int) -> np.ndarray:
        n = min(self.chunk_cycles, self.n_cycles - start)
        out = np.empty((n, self.n_ports, self.n_lanes), dtype=self.dtype)
        for p, lanes in enumerate(self._streams):
            for lane, stream in enumerate(lanes):
                column = stream.take(n)
                if self.dtype is object and column.dtype != object:
                    out[:, p, lane] = [int(v) for v in column]
                else:
                    out[:, p, lane] = column
        return out

    def values_at(self, cycle: int) -> np.ndarray:
        """The ``(n_ports, n_lanes)`` stimulus slice for one cycle."""
        if not 0 <= cycle < self.n_cycles:
            raise IndexError(
                f"cycle {cycle} outside the stimulus range 0..{self.n_cycles - 1}"
            )
        if cycle == 0 and self._chunk_start != 0:
            self.restart()
        chunk = self._chunk
        if chunk is None or cycle >= self._chunk_start + len(chunk):
            expected = 0 if chunk is None else self._chunk_start + len(chunk)
            if cycle != expected:
                raise ValueError(
                    f"stimulus access must be sequential: expected cycle "
                    f"{expected}, got {cycle}"
                )
            self._chunk_start = cycle
            self._chunk = chunk = self._generate_chunk(cycle)
        offset = cycle - self._chunk_start
        if offset < 0:
            raise ValueError(
                f"stimulus access must be sequential: cycle {cycle} precedes "
                f"the current chunk at {self._chunk_start}"
            )
        return chunk[offset]

    def chunks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate ``(start_cycle, (chunk, n_ports, n_lanes))`` tensors
        from cycle 0 (any prior consumption of this object is rewound)."""
        self.restart()
        start = 0
        while start < self.n_cycles:
            chunk = self._generate_chunk(start)
            self._chunk = chunk
            self._chunk_start = start
            yield start, chunk
            start += len(chunk)

    def tensor(self) -> np.ndarray:
        """The full ``(n_cycles, n_ports, n_lanes)`` stimulus tensor."""
        return np.concatenate([chunk for _, chunk in self.chunks()], axis=0)

    # --------------------------------------------------------------- summary
    def port_statistics(self, tensor: Optional[np.ndarray] = None) -> List[Dict[str, object]]:
        """Per-port activity stats over the whole run (lane 0): duty + toggles.

        Pass a tensor from a previous :meth:`tensor` call to avoid
        regenerating the run.
        """
        if tensor is None:
            tensor = self.tensor()
        stats = []
        for p, (name, width) in enumerate(zip(self.port_names, self.port_widths)):
            lane0 = [int(v) for v in tensor[:, p, 0]]
            toggles = sum(
                bin(a ^ b).count("1") for a, b in zip(lane0, lane0[1:])
            )
            per_bit_cycle = (
                toggles / (width * max(1, len(lane0) - 1)) if width else 0.0
            )
            nonzero = sum(1 for v in lane0 if v) / max(1, len(lane0))
            stats.append(
                {
                    "port": name,
                    "width": width,
                    "toggle_rate": per_bit_cycle,
                    "nonzero_duty": nonzero,
                }
            )
        return stats


def compile_stimulus(
    spec: StimulusSpec,
    input_widths: Mapping[str, int],
    seeds: Sequence[int],
    dtype=np.int64,
    chunk_cycles: int = CHUNK_CYCLES,
) -> CompiledStimulus:
    """Lower ``spec`` against ``input_widths`` for one seed per lane."""
    return CompiledStimulus(spec, input_widths, seeds, dtype, chunk_cycles)
