"""repro — power emulation: hardware-accelerated RTL power estimation.

A from-scratch Python reproduction of "Hardware Accelerated Power Estimation"
(Coburn, Ravi, Raghunathan, DATE 2005).  The package contains:

* :mod:`repro.netlist` — structural RTL intermediate representation,
* :mod:`repro.sim` — cycle-accurate RTL simulator,
* :mod:`repro.vcd` — VCD dump/parse/activity counting,
* :mod:`repro.gates` — synthetic 0.13 µm standard-cell library, technology
  mapping and gate-level simulation/power (used for macromodel
  characterization and the gate-level baseline),
* :mod:`repro.power` — power macromodels, characterization and software RTL
  power estimation (the baseline tools),
* :mod:`repro.core` — the paper's contribution: power-estimation hardware
  (power models, strobe generator, aggregator), the instrumentation pass, the
  FPGA platform model and the end-to-end power-emulation flow,
* :mod:`repro.hls` — a small behavioral-synthesis substrate used to generate
  dataflow benchmark designs,
* :mod:`repro.designs` — the benchmark designs evaluated in the paper,
* :mod:`repro.stim` — declarative stimulus specs, the tensor compiler and
  the vectorized lane drivers behind Monte-Carlo scenario sweeps.
"""

__version__ = "1.0.0"

__all__ = [
    "netlist",
    "sim",
    "vcd",
    "gates",
    "power",
    "core",
    "hls",
    "designs",
    "stim",
]
