"""Strobe-period ablation.

The power strobe generator decouples power-model evaluation from the design
clock.  Two sampling policies are compared across strobe periods:

* *accumulate every cycle* (this library's default): the models observe every
  cycle and flush on the strobe — total energy is exact up to the unflushed
  tail at the end of the run;
* *sample on strobe only* (the paper's literal description — queues hold the
  previous strobe's values): activity between strobes is missed, so the energy
  estimate degrades as the period grows.

Writes ``benchmarks/results/strobe_ablation.txt``.
"""

from __future__ import annotations

import pytest

from repro.core import InstrumentationConfig, instrument
from repro.designs.registry import get_design
from repro.netlist import flatten
from repro.power import RTLPowerEstimator
from repro.sim import Simulator

from conftest import write_result

PERIODS = (1, 2, 4, 8, 16)


def _emulated_energy(module, library, testbench, period, literal):
    config = InstrumentationConfig(
        strobe_period=period,
        coefficient_bits=14,
        sample_on_strobe_only=literal,
        per_component_totals=False,
    )
    design = instrument(module, library, config)
    simulator = Simulator(design.module)
    simulator.run(testbench)
    return design.read_total_energy_fj(simulator)


def test_strobe_period_ablation(benchmark, seed_library):
    design = get_design("Ispq")
    module = design.build()
    reference = RTLPowerEstimator(flatten(module), library=seed_library).estimate(
        design.testbench()
    )

    def run_study():
        rows = {}
        for period in PERIODS:
            exact = _emulated_energy(module, seed_library, design.testbench(), period, False)
            literal = _emulated_energy(module, seed_library, design.testbench(), period, True)
            rows[period] = (
                exact / reference.total_energy_fj - 1.0,
                literal / reference.total_energy_fj - 1.0,
            )
        return rows

    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)

    lines = [
        "Strobe-period ablation (Ispq) — error of the emulated total energy vs software",
        "",
        f"{'strobe period':>14s} {'accumulate-every-cycle':>24s} {'sample-on-strobe-only':>23s}",
    ]
    for period, (exact_err, literal_err) in rows.items():
        lines.append(f"{period:14d} {exact_err:+23.2%} {literal_err:+22.2%}")
    write_result("strobe_ablation.txt", "\n".join(lines))
    benchmark.extra_info.update(
        {f"literal_err_p{p}": round(v[1], 4) for p, v in rows.items()}
    )

    # default policy stays accurate at every period; the literal policy degrades
    assert abs(rows[1][0]) < 0.02
    assert abs(rows[16][0]) < 0.12          # bounded by the unflushed tail
    assert abs(rows[16][1]) > abs(rows[1][1])
    assert rows[16][1] < -0.3               # misses most activity at period 16
