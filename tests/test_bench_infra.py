"""Tests for the benchmark-study infrastructure (repro.bench).

Covers the on-disk result cache (keying, code fingerprinting, atomicity),
the library-form Figure 3 study, and the process-pool shard runner's parity
with serial execution.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    Fig3Row,
    Fig3Study,
    ResultCache,
    StudyConfig,
    code_fingerprint,
    run_sharded,
    run_study_tasks,
)

_CHEAP_DESIGNS = ["Bubble_Sort", "HVPeakF"]


# ----------------------------------------------------------------- cache


def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="t")
    key = cache.key(design="X", config={"bits": 12})
    assert cache.get(key) is None
    cache.put(key, {"value": 1.5})
    assert cache.get(key) == {"value": 1.5}
    assert cache.clear() == 1
    assert cache.get(key) is None


def test_result_cache_key_depends_on_parts_and_namespace(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="a")
    other = ResultCache(str(tmp_path), namespace="b")
    assert cache.key(design="X") != cache.key(design="Y")
    assert cache.key(design="X", config={"bits": 12}) != cache.key(
        design="X", config={"bits": 8}
    )
    assert cache.key(design="X") != other.key(design="X")


def test_result_cache_survives_corruption(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="t")
    key = cache.key(design="X")
    cache.put(key, {"ok": True})
    with open(cache._path(key), "w") as handle:
        handle.write("{not json")
    assert cache.get(key) is None


def test_code_fingerprint_stable_and_hexadecimal():
    first = code_fingerprint()
    assert first == code_fingerprint()
    assert len(first) == 64
    int(first, 16)


# ------------------------------------------------------------ fig3 study


def test_fig3_study_disk_cache_hit(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="fig3")
    cold = Fig3Study(cache=cache)
    row = cold.compute("Bubble_Sort")
    assert cold.cache_hits == {"Bubble_Sort": False}

    warm = Fig3Study(cache=cache)
    again = warm.compute("Bubble_Sort")
    assert warm.cache_hits == {"Bubble_Sort": True}
    assert again.time_emulation_s == row.time_emulation_s
    assert again.monitored_bits == row.monitored_bits
    assert again.nominal_cycles == row.nominal_cycles


def test_fig3_row_dict_roundtrip():
    study = Fig3Study()
    row = study.compute("HVPeakF")
    clone = Fig3Row.from_dict(json.loads(json.dumps(row.to_dict())))
    assert clone == row
    assert clone.speedup_nec == pytest.approx(row.speedup_nec)


def test_study_config_participates_in_cache_key(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="fig3")
    study = Fig3Study(config=StudyConfig(coefficient_bits=12), cache=cache)
    study.compute("Bubble_Sort")
    other = Fig3Study(config=StudyConfig(coefficient_bits=8), cache=cache)
    other.compute("Bubble_Sort")
    assert other.cache_hits == {"Bubble_Sort": False}, "different config must miss"


# ------------------------------------------------------------- sharding


def test_run_sharded_serial_path():
    outcome = run_sharded(_CHEAP_DESIGNS, n_workers=1)
    assert sorted(outcome.rows) == sorted(_CHEAP_DESIGNS)
    assert outcome.n_workers == 1
    assert all(seconds >= 0.0 for seconds in outcome.task_times_s.values())


def test_run_sharded_pool_matches_serial(tmp_path):
    """One design per worker produces exactly the serial study's rows."""
    serial = run_sharded(_CHEAP_DESIGNS, n_workers=1)
    cache = ResultCache(str(tmp_path), namespace="fig3")
    pooled = run_sharded(_CHEAP_DESIGNS, n_workers=2, cache=cache)
    for name in _CHEAP_DESIGNS:
        ours, theirs = serial.rows[name], pooled.rows[name]
        assert ours.monitored_bits == theirs.monitored_bits
        assert ours.time_nec_s == theirs.time_nec_s
        assert ours.time_powertheater_s == theirs.time_powertheater_s
        assert ours.time_emulation_s == theirs.time_emulation_s
        assert ours.average_power_mw == theirs.average_power_mw
    # pooled rows were persisted for the next run
    config = StudyConfig()
    for name in _CHEAP_DESIGNS:
        key = cache.key(design=name, config=config.as_key())
        assert cache.get(key) is not None


def test_run_study_tasks_multi_config():
    tasks = [(name, StudyConfig(coefficient_bits=bits))
             for bits in (8, 12) for name in ["Bubble_Sort"]]
    outcome = run_study_tasks(tasks, n_workers=1)
    assert len(outcome.task_rows) == 2
    rows = list(outcome.task_rows.values())
    # coefficient width changes the instrumentation overhead, not the design
    assert rows[0].monitored_bits == rows[1].monitored_bits
