"""Accuracy claim: power emulation with "little or no tradeoff in accuracy".

Two studies:

1. per-design accuracy of the emulated power (read back from the inserted
   power-estimation hardware) against the software RTL estimator evaluating
   the same macromodels in floating point — the only differences are
   fixed-point coefficient quantization and end-of-run strobe flushing;
2. a quantization sweep on one design showing how the error shrinks with the
   coefficient word length (the design knob behind the accuracy claim).

Writes ``benchmarks/results/accuracy.txt``.
"""

from __future__ import annotations

import pytest

from repro.core import sweep_coefficient_bits
from repro.designs.registry import FIGURE3_ORDER, get_design

from conftest import write_result

#: designs whose full accuracy study is run (all of Fig. 3)
ACCURACY_DESIGNS = FIGURE3_ORDER


def test_accuracy_per_design(benchmark, fig3_study):
    rows = benchmark.pedantic(fig3_study.ensure_all, rounds=1, iterations=1)

    lines = [
        "Accuracy reproduction — emulated power vs software RTL power estimation",
        "(same macromodel library; differences stem from fixed-point quantization only)",
        "",
        f"{'design':12s} {'software power (mW)':>20s} {'emulated power (mW)':>20s} "
        f"{'error':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row.design:12s} {row.average_power_mw:20.4f} {row.emulated_power_mw:20.4f} "
            f"{row.accuracy_error:+7.2%}"
        )
    worst = max(abs(row.accuracy_error) for row in rows)
    lines += ["", f"worst-case error across designs: {worst:.2%} (paper: 'little or no tradeoff')"]
    write_result("accuracy.txt", "\n".join(lines))

    assert worst < 0.03, "emulated power should track the software estimate within a few percent"
    benchmark.extra_info["worst_case_error"] = round(worst, 4)


def test_accuracy_quantization_sweep(benchmark, seed_library):
    """Coefficient word-length ablation on the Ispq design."""
    design = get_design("Ispq")
    module = design.build()

    def run_sweep():
        return sweep_coefficient_bits(
            module,
            design.testbench,
            bits_values=(4, 6, 8, 10, 12, 16),
            library=seed_library,
        )

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        "Quantization ablation — coefficient word length vs emulated-power error (Ispq)",
        "",
        f"{'coefficient bits':>17s} {'relative error':>15s}",
    ]
    errors = {}
    for bits, accuracy in results:
        errors[bits] = abs(accuracy.relative_error)
        lines.append(f"{bits:17d} {accuracy.relative_error:+14.3%}")
    write_result("accuracy_quantization_sweep.txt", "\n".join(lines))

    assert errors[16] <= errors[4]
    assert errors[16] < 0.01
    benchmark.extra_info.update({f"error_{bits}b": round(err, 5) for bits, err in errors.items()})
