"""Tests for the cycle-accurate simulator, scheduler, testbenches and traces."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import NetlistBuilder, flatten
from repro.sim import (
    CallbackTestbench,
    ComponentActivityTrace,
    RandomTestbench,
    SchedulingError,
    SignalTrace,
    Simulator,
    VectorTestbench,
    WaveformRecorder,
    levelize,
)


def build_counter_module(width=8, limit=10):
    """Counter that counts up to ``limit`` then asserts done and stops."""
    b = NetlistBuilder("counting")
    start = b.input("start", 1)
    count = b.counter("cnt", width)
    lt, eq, gt = b.compare(count, limit)
    running = b.and_(start, lt)
    b.drive("cnt", en=running)
    b.output("count", count)
    b.output("done", b.or_(eq, gt))
    return b.build()


def build_mac_module():
    """Multiply-accumulate pipeline: acc += a*b each cycle when en=1."""
    b = NetlistBuilder("mac")
    a = b.input("a", 8)
    x = b.input("x", 8)
    en = b.input("en", 1)
    product = b.mul(a, x)
    acc = b.accumulator("acc", 24)
    b.drive("acc", d=b.zext(product, 24), en=en, clear=b.const(0, 1))
    b.output("acc", acc)
    return b.build()


def test_schedule_levelization_and_depth():
    module = flatten(build_counter_module())
    schedule = levelize(module)
    assert schedule.depth >= 2
    assert len(schedule.sequential) == 1
    # every combinational component appears exactly once
    assert len(schedule.ordered) == len(set(schedule.ordered))


def test_levelize_rejects_hierarchy():
    from repro.netlist.module import Module

    child = build_counter_module()
    parent = Module("p")
    s = parent.add_input("start", 1)
    c = parent.add_net("count", 8)
    d = parent.add_net("done", 1)
    parent.add_instance("u", child, {"start": s, "count": c, "done": d})
    with pytest.raises(SchedulingError):
        levelize(parent)


def test_counter_design_runs_to_done():
    sim = Simulator(flatten(build_counter_module()))
    sim.set_input("start", 1)
    cycles = 0
    while not sim.get_output("done") and cycles < 50:
        sim.step()
        sim.settle()
        cycles += 1
    assert sim.get_output("done") == 1
    assert sim.get_output("count") == 10
    assert cycles == 10


def test_simulator_reset_restores_state():
    sim = Simulator(flatten(build_counter_module()))
    sim.set_input("start", 1)
    sim.step(cycles=5)
    sim.settle()
    assert sim.get_output("count") == 5
    sim.reset()
    assert sim.get_output("count") == 0
    assert sim.cycle == 0


def test_mac_pipeline_accumulates():
    sim = Simulator(flatten(build_mac_module()))
    pairs = [(3, 4), (5, 6), (7, 8)]
    for a, x in pairs:
        sim.step({"a": a, "x": x, "en": 1})
    sim.settle()
    assert sim.get_output("acc") == sum(a * x for a, x in pairs)


def test_vector_testbench_and_result():
    module = flatten(build_mac_module())
    sim = Simulator(module)
    vectors = [{"a": i, "x": 2, "en": 1} for i in range(10)]
    result = sim.run(VectorTestbench(vectors))
    assert result.cycles == 10
    assert result.final_outputs["acc"] == sum(2 * i for i in range(10))
    assert result.cycles_per_second > 0


def test_callback_testbench_checks():
    module = flatten(build_counter_module())
    sim = Simulator(module)
    seen = []

    def drive(cycle, s):
        return {"start": 1}

    def check(cycle, s):
        seen.append(s.get_output("count"))

    sim.run(CallbackTestbench(drive, n_cycles=5, check_fn=check))
    assert seen == [0, 1, 2, 3, 4]


def test_random_testbench_is_deterministic():
    module = flatten(build_mac_module())
    r1 = Simulator(flatten(build_mac_module())).run(RandomTestbench(50, seed=7))
    r2 = Simulator(module).run(RandomTestbench(50, seed=7))
    assert r1.final_outputs == r2.final_outputs


def test_signal_trace_counts_toggles():
    module = flatten(build_counter_module())
    sim = Simulator(module)
    trace = sim.add_observer(SignalTrace())
    sim.set_input("start", 1)
    sim.step(cycles=12)
    stats = trace.by_name()
    # counter bit 0 toggles every cycle while counting
    assert stats["cnt_q"].toggles >= 10
    assert 0.0 <= stats["cnt_q"].toggle_density <= 1.0
    assert trace.total_toggles() > 0
    assert len(trace.densest(3)) == 3


def test_component_activity_trace():
    module = flatten(build_mac_module())
    sim = Simulator(module)
    multiplier = next(c for c in module.components.values() if c.type_name == "multiplier")
    trace = sim.add_observer(ComponentActivityTrace([multiplier]))
    sim.step({"a": 0xFF, "x": 0xFF, "en": 1})
    sim.step({"a": 0x00, "x": 0x00, "en": 1})
    counts = trace.transition_counts(multiplier)
    assert counts[0] == 0
    assert counts[1] > 0
    assert len(trace.history[multiplier]) == 2


def test_waveform_recorder_and_value_at():
    module = flatten(build_counter_module())
    sim = Simulator(module)
    recorder = sim.add_observer(WaveformRecorder())
    sim.set_input("start", 1)
    sim.step(cycles=4)
    wf = recorder.by_name()["cnt_q"]
    assert wf.value_at(0) == 0
    assert wf.value_at(3) == 3
    assert len(wf.toggle_cycles()) >= 3


def test_get_net_by_name_and_component_io_values():
    module = flatten(build_mac_module())
    sim = Simulator(module)
    sim.step({"a": 3, "x": 5, "en": 1})
    sim.settle()
    mul = next(c for c in module.components.values() if c.type_name == "multiplier")
    snapshot = sim.component_io_values(mul)
    assert snapshot["a"] == 3 and snapshot["b"] == 5 and snapshot["y"] == 15
    assert sim.get_net("acc_q") == 15


def test_observer_removal():
    sim = Simulator(flatten(build_counter_module()))
    trace = sim.add_observer(SignalTrace())
    sim.remove_observer(trace)
    sim.step(cycles=3)
    assert trace.cycles == 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)), min_size=1, max_size=20))
def test_mac_matches_python_reference(pairs):
    sim = Simulator(flatten(build_mac_module()))
    for a, x in pairs:
        sim.step({"a": a, "x": x, "en": 1})
    sim.settle()
    assert sim.get_output("acc") == sum(a * x for a, x in pairs) & (2**24 - 1)
