"""Top-level behavioral synthesis driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.hls.allocation import Allocation, allocate
from repro.hls.binding import Binding, bind
from repro.hls.datapath import generate_datapath
from repro.hls.dfg import DataflowGraph
from repro.hls.scheduling import Schedule, asap_schedule, list_schedule
from repro.netlist.module import Module


@dataclass
class HLSResult:
    """Everything produced by one behavioral-synthesis run."""

    graph: DataflowGraph
    schedule: Schedule
    allocation: Allocation
    binding: Binding
    module: Module

    @property
    def latency_cycles(self) -> int:
        """Cycles from the start pulse to ``done`` (execution states only)."""
        return self.schedule.n_steps + 1  # +1 for the DONE state

    def summary(self) -> str:
        return (
            f"HLS {self.graph.name!r}: {len(self.graph.operations)} operations in "
            f"{self.schedule.n_steps} steps, units [{self.allocation.summary()}], "
            f"{self.binding.n_registers} registers, "
            f"{len(self.module.components)} RTL components"
        )


def synthesize(
    graph: DataflowGraph,
    resource_constraints: Optional[Mapping[str, int]] = None,
    latencies: Optional[Mapping[str, int]] = None,
    name: Optional[str] = None,
) -> HLSResult:
    """Schedule, allocate, bind and generate RTL for a dataflow kernel.

    Without ``resource_constraints`` an ASAP schedule (maximum parallelism) is
    used; with constraints, resource-constrained list scheduling.
    """
    graph.validate()
    if resource_constraints:
        schedule = list_schedule(graph, resource_constraints, latencies)
    else:
        schedule = asap_schedule(graph, latencies)
    allocation = allocate(graph, schedule)
    binding = bind(graph, schedule, allocation)
    module = generate_datapath(graph, schedule, allocation, binding, name=name)
    return HLSResult(
        graph=graph,
        schedule=schedule,
        allocation=allocation,
        binding=binding,
        module=module,
    )
