"""A tolerant VCD parser.

Parses the subset of the VCD grammar emitted by common simulators (and by
:mod:`repro.vcd.writer`): header sections, ``$var`` declarations with scoped
names, ``$dumpvars`` blocks, timestamps and scalar/vector value changes.
Unknown values (``x``/``z``) are mapped to 0, matching the two-valued
simulation semantics used throughout the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class VCDParseError(Exception):
    """Raised on malformed VCD input."""


@dataclass
class VCDSignal:
    """One declared signal and its value-change history (in VCD time units)."""

    name: str
    width: int
    code: str
    scope: str = ""
    changes: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def full_name(self) -> str:
        return f"{self.scope}.{self.name}" if self.scope else self.name

    def value_at(self, time: int) -> int:
        value = 0
        for change_time, new_value in self.changes:
            if change_time > time:
                break
            value = new_value
        return value

    def toggle_count(self) -> int:
        """Total number of bit toggles across the recorded changes."""
        toggles = 0
        previous = None
        for _, value in self.changes:
            if previous is not None:
                toggles += bin(previous ^ value).count("1")
            previous = value
        return toggles


@dataclass
class VCDFile:
    """Parsed VCD contents."""

    timescale: str = "1 ns"
    signals: Dict[str, VCDSignal] = field(default_factory=dict)
    end_time: int = 0

    def by_name(self) -> Dict[str, VCDSignal]:
        return {signal.name: signal for signal in self.signals.values()}


def _parse_vector(token: str) -> int:
    value = 0
    for char in token:
        value <<= 1
        if char == "1":
            value |= 1
        elif char in "0xXzZ":
            pass
        else:
            raise VCDParseError(f"invalid vector digit {char!r}")
    return value


def parse_vcd(text: str) -> VCDFile:
    """Parse VCD text into a :class:`VCDFile`."""
    result = VCDFile()
    tokens = text.split()
    i = 0
    scope_stack: List[str] = []
    current_time = 0
    in_definitions = True

    while i < len(tokens):
        token = tokens[i]
        if token == "$timescale":
            parts = []
            i += 1
            while i < len(tokens) and tokens[i] != "$end":
                parts.append(tokens[i])
                i += 1
            result.timescale = " ".join(parts)
        elif token == "$scope":
            if i + 2 >= len(tokens):
                raise VCDParseError("truncated $scope directive")
            scope_stack.append(tokens[i + 2])
            i += 2
            while i < len(tokens) and tokens[i] != "$end":
                i += 1
        elif token == "$upscope":
            if scope_stack:
                scope_stack.pop()
            while i < len(tokens) and tokens[i] != "$end":
                i += 1
        elif token == "$var":
            if i + 4 >= len(tokens):
                raise VCDParseError("truncated $var directive")
            width = int(tokens[i + 2])
            code = tokens[i + 3]
            name = tokens[i + 4]
            signal = VCDSignal(
                name=name, width=width, code=code, scope=".".join(scope_stack)
            )
            result.signals[code] = signal
            i += 4
            while i < len(tokens) and tokens[i] != "$end":
                i += 1
        elif token == "$enddefinitions":
            in_definitions = False
            while i < len(tokens) and tokens[i] != "$end":
                i += 1
        elif token in ("$dumpvars", "$dumpall", "$dumpon", "$dumpoff", "$end"):
            pass
        elif token.startswith("$"):
            # skip other sections ($date, $version, $comment ...) up to $end
            while i < len(tokens) and tokens[i] != "$end":
                i += 1
        elif token.startswith("#"):
            current_time = int(token[1:])
            result.end_time = max(result.end_time, current_time)
        elif not in_definitions:
            if token[0] in "01xXzZ":
                # scalar change like "1!" or "x!"
                if len(token) < 2:
                    raise VCDParseError("scalar change missing identifier")
                value_char, code = token[0], token[1:]
                value = 1 if value_char == "1" else 0
                _append_change(result, code, current_time, value)
            elif token[0] in "bB":
                if i + 1 >= len(tokens):
                    raise VCDParseError("vector change missing identifier")
                value = _parse_vector(token[1:])
                code = tokens[i + 1]
                i += 1
                _append_change(result, code, current_time, value)
            elif token[0] in "rR":
                # real values are not produced by our flows; skip value + id
                i += 1
        i += 1
    return result


def _append_change(result: VCDFile, code: str, time: int, value: int) -> None:
    signal = result.signals.get(code)
    if signal is None:
        raise VCDParseError(f"value change references undeclared identifier {code!r}")
    signal.changes.append((time, value))
