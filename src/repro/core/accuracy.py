"""Accuracy comparison between emulated and software power estimates.

The paper claims power emulation extends RTL/gate-level estimation to large
designs "with little or no tradeoff in accuracy".  In this reproduction the
only accuracy differences between the software RTL estimator and the emulated
estimate come from (a) fixed-point coefficient quantization and (b) the power
strobe sampling policy — both introduced by the instrumentation pass and both
measurable with the helpers below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.emulator import EmulationPlatform
from repro.core.instrument import InstrumentationConfig, instrument
from repro.netlist.flatten import flatten
from repro.netlist.module import Module
from repro.power.library import PowerModelLibrary, build_seed_library
from repro.power.report import PowerReport
from repro.power.rtl_estimator import RTLPowerEstimator
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.testbench import Testbench


@dataclass
class AccuracyResult:
    """Comparison of a test power report against a reference report."""

    design: str
    reference_estimator: str
    test_estimator: str
    reference_power_mw: float
    test_power_mw: float
    relative_error: float
    per_component_relative_error: Dict[str, float] = field(default_factory=dict)

    @property
    def percent_error(self) -> float:
        return 100.0 * self.relative_error

    def summary(self) -> str:
        return (
            f"{self.design}: {self.test_estimator} vs {self.reference_estimator}: "
            f"{self.test_power_mw:.4f} mW vs {self.reference_power_mw:.4f} mW "
            f"({self.percent_error:+.2f}% error)"
        )


def compare_reports(test: PowerReport, reference: PowerReport) -> AccuracyResult:
    """Total and per-component accuracy of ``test`` against ``reference``."""
    if reference.average_power_mw > 0:
        relative = (test.average_power_mw - reference.average_power_mw) / reference.average_power_mw
    else:
        relative = 0.0
    per_component: Dict[str, float] = {}
    for name, ref_component in reference.components.items():
        if name not in test.components or ref_component.energy_fj <= 0:
            continue
        per_component[name] = (
            test.components[name].energy_fj - ref_component.energy_fj
        ) / ref_component.energy_fj
    return AccuracyResult(
        design=reference.design,
        reference_estimator=reference.estimator,
        test_estimator=test.estimator,
        reference_power_mw=reference.average_power_mw,
        test_power_mw=test.average_power_mw,
        relative_error=relative,
        per_component_relative_error=per_component,
    )


def sweep_coefficient_bits(
    module: Module,
    testbench_factory,
    bits_values: Sequence[int] = (4, 6, 8, 10, 12, 16),
    library: Optional[PowerModelLibrary] = None,
    technology: Technology = CB130M_TECHNOLOGY,
    max_cycles: Optional[int] = None,
) -> List[Tuple[int, AccuracyResult]]:
    """Quantization ablation: emulated accuracy as a function of coefficient width.

    ``testbench_factory`` must return a *fresh* testbench each time it is
    called (testbenches carry run state).
    """
    library = library if library is not None else build_seed_library(technology)
    flat = flatten(module)
    reference = RTLPowerEstimator(flat, library=library, technology=technology).estimate(
        testbench_factory(), max_cycles=max_cycles
    )
    platform = EmulationPlatform()
    results: List[Tuple[int, AccuracyResult]] = []
    for bits in bits_values:
        config = InstrumentationConfig(coefficient_bits=bits)
        instrumented = instrument(module, library, config)
        emulation = platform.run(
            instrumented,
            testbench_factory(),
            technology=technology,
            max_cycles=max_cycles,
        )
        results.append((bits, compare_reports(emulation.power_report, reference)))
    return results
