"""Ports: named, directed connection points of components and modules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.netlist.nets import Net


class PortDirection(enum.Enum):
    """Direction of a port as seen from its owner."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Port:
    """A directed, fixed-width connection point on a component.

    ``net`` is ``None`` until the port is connected.  Output ports drive
    their net; input ports read it.
    """

    name: str
    direction: PortDirection
    width: int
    net: Optional[Net] = field(default=None)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(
                f"port {self.name!r}: width must be positive, got {self.width}"
            )

    @property
    def is_input(self) -> bool:
        return self.direction is PortDirection.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction is PortDirection.OUTPUT

    @property
    def connected(self) -> bool:
        return self.net is not None
