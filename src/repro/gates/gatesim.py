"""Levelized, compiled gate-level simulation.

Two-valued (0/1), cycle-less evaluation: each call settles the combinational
gate network for one input vector.  Consecutive vectors yield per-net toggle
information which the power calculator converts into switching energy — this
is the "gate-level implementation" reference used to characterize RTL power
macromodels, and the engine behind the slow gate-level estimation baseline.

Like the RTL simulator's compiled backend, the gate network is lowered once
into slot-indexed straight-line Python: every net gets a dense integer slot
(aliases share the slot of the net they resolve to, so alias propagation
disappears entirely) and each gate of the levelized order becomes one inline
boolean expression.  Standard cells are recognized by their function object
and fused; unknown cells fall back to a bound ``CellType.evaluate`` call, so
custom libraries keep working.

Two execution modes share the lowering:

* *scalar* — one input vector at a time over a flat ``List[int]`` slot list
  (the original path, still the default),
* *batch* — ``n_lanes`` independent input vectors at once over a
  ``(n_slots, n_lanes)`` NumPy array; every fused gate becomes one elementwise
  array expression, so hundreds of characterization stimuli settle in a single
  pass (see :meth:`GateLevelSimulator.settle_batch`).

Lowering is cached *across simulator instances*: compiled programs are keyed
on a structural fingerprint of the netlist (gates, aliases, constants, I/O),
so characterizing the same component type twice — or re-running a holdout
evaluation on a freshly technology-mapped copy — reuses the levelization and
both compiled functions instead of recompiling.
"""

from __future__ import annotations

from collections import deque
from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.gates import cells as _cells
from repro.gates.gate_netlist import GateInstance, GateNetlist, bit_net

#: expression template per standard-cell function; inputs are 0/1 so every
#: template already produces a 0/1 result (no trailing ``& 1`` needed).
#: Every template except the two conditional ones is a pure elementwise
#: integer expression, so it is valid for both the scalar slot list and the
#: batch (NumPy lane-array) execution modes.
_CELL_EXPRS: Dict[object, str] = {
    _cells._inv: "1 - {0}",
    _cells._buf: "{0}",
    _cells._nand2: "1 - ({0} & {1})",
    _cells._nand3: "1 - ({0} & {1} & {2})",
    _cells._nor2: "1 - ({0} | {1})",
    _cells._nor3: "1 - ({0} | {1} | {2})",
    _cells._and2: "{0} & {1}",
    _cells._and3: "{0} & {1} & {2}",
    _cells._or2: "{0} | {1}",
    _cells._or3: "{0} | {1} | {2}",
    _cells._xor2: "{0} ^ {1}",
    _cells._xnor2: "1 - ({0} ^ {1})",
    _cells._mux2: "{1} if {2} else {0}",
    _cells._aoi21: "1 - (({0} & {1}) | {2})",
    _cells._oai21: "1 - (({0} | {1}) & {2})",
    _cells._maj3: "1 if {0} + {1} + {2} >= 2 else 0",
    _cells._xor3: "{0} ^ {1} ^ {2}",
}

#: batch overrides for the templates that use Python conditionals
_CELL_EXPRS_BATCH: Dict[object, str] = {
    _cells._mux2: "_where({2} != 0, {1}, {0})",
    _cells._maj3: "({0} + {1} + {2} >= 2) * 1",
}

#: dtype of the batch lane arrays; gate values are 0/1 so one byte suffices
LANE_DTYPE = np.int8


def _lanewise_cell(evaluate: Callable, columns: Tuple[np.ndarray, ...]) -> np.ndarray:
    """Lane-by-lane fallback for cells without an elementwise template."""
    n = columns[0].shape[0]
    out = np.empty(n, dtype=LANE_DTYPE)
    for lane in range(n):
        out[lane] = evaluate(tuple(int(c[lane]) for c in columns))
    return out


class GateValues(MutableMapping):
    """Live, name-keyed mapping view over the gate simulator's slot list.

    Reads and writes go straight through to the slots, so forcing a net with
    ``sim.values["w3"] = 1`` behaves exactly like it did when ``values`` was
    a plain dict.  Aliased names share one slot with their resolved source.
    """

    __slots__ = ("_slots", "_v")

    def __init__(self, slots: Dict[str, int], values: List[int]) -> None:
        self._slots = slots
        self._v = values

    def __getitem__(self, net: str) -> int:
        return self._v[self._slots[net]]

    def __setitem__(self, net: str, value: int) -> None:
        self._v[self._slots[net]] = value & 1

    def __delitem__(self, net: str) -> None:
        raise TypeError("net values cannot be deleted")

    def __iter__(self):
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)


@dataclass
class GateProgram:
    """The compiled, shareable form of one gate netlist's levelized order.

    Everything here is a pure function of the netlist *structure*, so one
    program serves every :class:`GateLevelSimulator` built over a structurally
    identical netlist (see :func:`netlist_fingerprint`); per-simulator state
    is just the slot value list.
    """

    n_slots: int
    #: net name -> dense slot (aliases share their source's slot)
    slots: Dict[str, int]
    #: net name -> resolved source name
    resolved: Dict[str, str]
    #: levelized gate order (kept for introspection and the batch compile)
    order: List[GateInstance]
    #: scalar settle function over the flat slot list
    fn: Callable[[List[int]], None]
    snap_pairs: List[Tuple[str, int]]
    const_pairs: List[Tuple[int, int]]
    input_pairs: List[Tuple[str, int]]
    output_triples: List[Tuple[str, int, int]]
    #: strong refs to the cell objects the fingerprint identifies by id()
    cells: Tuple[object, ...] = ()
    #: lazily compiled batch settle function over a (n_slots, n_lanes) array
    _batch_fn: Optional[Callable[[np.ndarray], None]] = field(default=None, repr=False)
    #: lazily compiled native (C) batch settle kernel; False = unavailable
    _native_kernel: object = field(default=None, repr=False)

    @property
    def batch_fn(self) -> Callable[[np.ndarray], None]:
        if self._batch_fn is None:
            self._batch_fn = _compile_settle(self.order, self.slots, self.resolved,
                                             batch=True)
        return self._batch_fn

    def native_batch_fn(self) -> Optional[Callable[[np.ndarray], None]]:
        """The batch settle as a fused C kernel, or None when unavailable.

        The gate lane program is stateless (pure ``v[i] = expr`` rows), so
        the lane-kernel IR extractor (:mod:`repro.sim.kernels`) lowers it
        directly; netlists with non-templated cells (lanewise fallbacks) and
        compiler-less hosts return None and stay on the NumPy ``batch_fn``.
        Shared across simulators like the other compiled forms.
        """
        if self._native_kernel is None:
            self._native_kernel = False
            try:
                from repro.sim.kernels import extract_ir
                from repro.sim.kernels.ir import KernelUnsupportedError
                from repro.sim.kernels.native import (
                    NativeKernel, NativeToolchainError, find_compiler,
                )

                if find_compiler() is not None:
                    source, env, name = _settle_source(
                        self.order, self.slots, self.resolved, batch=True
                    )
                    ir = extract_ir(
                        source, env, self.n_slots,
                        functions=((name, "settle"),), dtype="int8",
                    )
                    self._native_kernel = NativeKernel(ir, 0)
            except (KernelUnsupportedError, NativeToolchainError):
                self._native_kernel = False
        if self._native_kernel is False:
            return None
        return self._native_kernel.settle


def netlist_fingerprint(netlist: GateNetlist) -> tuple:
    """Structural identity of a gate netlist (the program-cache key).

    Cell types are identified by ``id``; cached programs keep strong
    references to the cell objects so an id can never be recycled while the
    entry is alive.
    """
    return (
        tuple((id(g.cell), g.output, tuple(g.inputs)) for g in netlist.gates),
        tuple(sorted(netlist.aliases.items())),
        tuple(sorted(netlist.constants.items())),
        tuple(netlist.primary_inputs),
        tuple(netlist.primary_outputs),
    )


#: fingerprint -> GateProgram; bounded FIFO so pathological sweeps over many
#: distinct structures cannot grow it without limit
_PROGRAM_CACHE: Dict[tuple, GateProgram] = {}
_PROGRAM_CACHE_MAX = 256


def _levelize(netlist: GateNetlist, resolve: Callable[[str], str]) -> List[GateInstance]:
    producers: Dict[str, GateInstance] = {g.output: g for g in netlist.gates}

    indegree: Dict[GateInstance, int] = {}
    successors: Dict[GateInstance, List[GateInstance]] = {g: [] for g in netlist.gates}
    for gate in netlist.gates:
        count = 0
        for net in gate.inputs:
            source = producers.get(resolve(net))
            if source is not None and source is not gate:
                successors[source].append(gate)
                count += 1
        indegree[gate] = count

    order: List[GateInstance] = []
    queue = deque(g for g in netlist.gates if indegree[g] == 0)
    while queue:
        gate = queue.popleft()
        order.append(gate)
        for succ in successors[gate]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if len(order) != len(netlist.gates):
        raise ValueError(
            f"gate netlist {netlist.name!r} contains a combinational cycle"
        )
    return order


def _settle_source(
    order: List[GateInstance],
    slots: Dict[str, int],
    resolved: Dict[str, str],
    batch: bool,
) -> Tuple[str, Dict[str, object], str]:
    """Source + exec environment of the straight-line settle function."""
    env: Dict[str, object] = {}
    name = "_evaluate_batch" if batch else "_evaluate"
    lines = [f"def {name}(v):"]
    body: List[str] = []
    for i, gate in enumerate(order):
        operands = [f"v[{slots[resolved.get(net, net)]}]" for net in gate.inputs]
        out = slots[resolved.get(gate.output, gate.output)]
        template = _CELL_EXPRS.get(gate.cell.function)
        if batch and gate.cell.function in _CELL_EXPRS_BATCH:
            template = _CELL_EXPRS_BATCH[gate.cell.function]
        if template is not None and gate.cell.n_inputs == len(operands):
            body.append(f"v[{out}] = {template.format(*operands)}")
        elif batch:
            fn_name = f"_g{i}"
            env[fn_name] = gate.cell.evaluate
            env["_lw"] = _lanewise_cell
            body.append(f"v[{out}] = _lw({fn_name}, ({', '.join(operands)},))")
        else:
            fn_name = f"_g{i}"
            env[fn_name] = gate.cell.evaluate
            body.append(f"v[{out}] = {fn_name}(({', '.join(operands)},))")
    if not body:
        body.append("pass")
    lines.extend("    " + line for line in body)
    return "\n".join(lines), env, name


def _compile_settle(
    order: List[GateInstance],
    slots: Dict[str, int],
    resolved: Dict[str, str],
    batch: bool,
) -> Callable:
    """Lower the levelized gate order into one straight-line function.

    With ``batch=True`` the generated function receives a ``(n_slots,
    n_lanes)`` NumPy array and each gate is an elementwise row expression;
    otherwise it receives the flat scalar slot list.
    """
    source, env, name = _settle_source(order, slots, resolved, batch)
    namespace = dict(env)
    if batch:
        namespace["_where"] = np.where
    namespace["__builtins__"] = {}
    exec(compile(source, f"<gatesim:{name}>", "exec"), namespace)
    return namespace[name]


def compile_gate_netlist(netlist: GateNetlist) -> GateProgram:
    """Levelize + compile ``netlist`` (cached across simulator instances)."""
    key = netlist_fingerprint(netlist)
    program = _PROGRAM_CACHE.get(key)
    if program is not None:
        return program

    resolver = _build_alias_resolver(netlist)
    resolved: Dict[str, str] = {net: resolver(net) for net in netlist.all_nets()}
    order = _levelize(netlist, resolver)

    # Dense slots; an alias is the same wire as its resolved source, so it
    # shares the source's slot and needs no propagation pass.
    slots: Dict[str, int] = {}
    for net in netlist.all_nets():
        source = resolved[net]
        if source not in slots:
            slots[source] = len(slots)
        slots.setdefault(net, slots[source])

    output_triples: List[Tuple[str, int, int]] = []
    for net in netlist.primary_outputs:
        port, index = _split_bit_net(net)
        output_triples.append((port, index, slots[resolved[net]]))

    program = GateProgram(
        n_slots=(max(slots.values()) + 1 if slots else 0),
        slots=slots,
        resolved=resolved,
        order=order,
        fn=_compile_settle(order, slots, resolved, batch=False),
        snap_pairs=sorted(slots.items()),
        const_pairs=[(slots[n], v & 1) for n, v in netlist.constants.items()],
        input_pairs=[(n, slots[n]) for n in netlist.primary_inputs],
        output_triples=output_triples,
        cells=tuple({id(g.cell): g.cell for g in netlist.gates}.values()),
    )
    if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_MAX:
        _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
    _PROGRAM_CACHE[key] = program
    return program


class GateLevelSimulator:
    """Evaluates a :class:`GateNetlist` one input vector (or lane batch) at a time."""

    def __init__(self, netlist: GateNetlist, kernel_backend: Optional[str] = None) -> None:
        self.netlist = netlist
        self.program = compile_gate_netlist(netlist)
        program = self.program
        #: requested lane-kernel backend for batch settles; only ``native``
        #: changes execution (the NumPy batch_fn already is one fused pass)
        from repro.sim.kernels import resolve_kernel_backend

        self._kernel_request = resolve_kernel_backend(kernel_backend)
        self._batch_settle_fn: Optional[Callable[[np.ndarray], None]] = None
        #: kernel backend actually serving batch settles ("native" or "off")
        self.kernel_backend = "off"
        self._slots = program.slots
        self._resolved = program.resolved
        self._order = program.order
        self._snap_pairs = program.snap_pairs
        self._const_pairs = program.const_pairs
        self._input_pairs = program.input_pairs
        self._output_triples = program.output_triples
        self._fn = program.fn
        self._n_slots = program.n_slots
        self._v: List[int] = [0] * self._n_slots
        #: live name-keyed view over the slots (reads and writes pass through)
        self.values = GateValues(self._slots, self._v)
        #: batch lane array, allocated on first batch call (n_slots, n_lanes)
        self._bv: Optional[np.ndarray] = None
        self.reset()

    # ------------------------------------------------------------- controls
    def reset(self) -> None:
        """Zero every net (and re-apply constants)."""
        self._v[:] = [0] * self._n_slots
        for slot, value in self._const_pairs:
            self._v[slot] = value
        self._bv = None

    def resolve(self, net: str) -> str:
        """Follow alias chains to the net that actually carries the value."""
        resolved = self._resolved.get(net)
        if resolved is None:
            resolved = _build_alias_resolver(self.netlist)(net)
            self._resolved[net] = resolved
        return resolved

    # ------------------------------------------------------ scalar execution
    def _settle(self, input_bits: Mapping[str, int]) -> None:
        v = self._v
        for slot, value in self._const_pairs:
            v[slot] = value
        get = input_bits.get
        for net, slot in self._input_pairs:
            v[slot] = get(net, 0) & 1
        self._fn(v)

    def evaluate(self, input_bits: Mapping[str, int]) -> "GateValues":
        """Settle the network for one vector of primary-input bit values.

        Returns the live :class:`GateValues` view of the settled net values.
        """
        self._settle(input_bits)
        return self.values

    def evaluate_ports(self, port_values: Mapping[str, int],
                       port_widths: Mapping[str, int]) -> Dict[str, int]:
        """Bit-blast RTL port values, evaluate, and reassemble output ports."""
        input_bits: Dict[str, int] = {}
        for port, value in port_values.items():
            width = port_widths.get(port, 1)
            for i in range(width):
                input_bits[bit_net(port, i)] = (value >> i) & 1
        self._settle(input_bits)
        v = self._v
        outputs: Dict[str, int] = {}
        for port, index, slot in self._output_triples:
            outputs[port] = outputs.get(port, 0) | (v[slot] << index)
        return outputs

    def snapshot(self) -> Dict[str, int]:
        """Copy of the current net values (for toggle counting across vectors)."""
        v = self._v
        return {net: v[slot] for net, slot in self._snap_pairs}

    # ------------------------------------------------------- batch execution
    def _lane_array(self, n_lanes: int) -> np.ndarray:
        if n_lanes < 1:
            raise ValueError(f"batch evaluation needs n_lanes >= 1, got {n_lanes}")
        if self._bv is None or self._bv.shape[1] != n_lanes:
            self._bv = np.zeros((self._n_slots, n_lanes), dtype=LANE_DTYPE)
        return self._bv

    def settle_batch(self, input_bits: Mapping[str, np.ndarray], n_lanes: int) -> np.ndarray:
        """Settle ``n_lanes`` independent input vectors in one vectorized pass.

        ``input_bits`` maps primary-input bit-net names to ``(n_lanes,)``
        integer arrays of 0/1 values.  Returns the live ``(n_slots, n_lanes)``
        lane array (row ``slots[net]`` holds that net's per-lane values).
        """
        v = self._lane_array(n_lanes)
        for slot, value in self._const_pairs:
            v[slot] = value
        get = input_bits.get
        zero = 0
        for net, slot in self._input_pairs:
            bits = get(net, zero)
            v[slot] = bits & 1 if isinstance(bits, int) else np.asarray(bits) & 1
        if self._batch_settle_fn is None:
            self._batch_settle_fn = self.program.batch_fn
            if self._kernel_request == "native":
                native = self.program.native_batch_fn()
                if native is not None:
                    self._batch_settle_fn = native
                    self.kernel_backend = "native"
        self._batch_settle_fn(v)
        return v

    def evaluate_ports_batch(
        self,
        port_values: Mapping[str, np.ndarray],
        port_widths: Mapping[str, int],
    ) -> Dict[str, np.ndarray]:
        """Batched :meth:`evaluate_ports`: port arrays in, port arrays out.

        ``port_values`` maps RTL port names to ``(n_lanes,)`` integer arrays;
        the return maps each output port to an ``(n_lanes,)`` ``int64`` array.
        """
        arrays = {p: np.asarray(a, dtype=np.int64) for p, a in port_values.items()}
        if not arrays:
            raise ValueError("evaluate_ports_batch needs at least one input port array")
        n_lanes = next(iter(arrays.values())).shape[0]
        input_bits: Dict[str, np.ndarray] = {}
        for port, value in arrays.items():
            width = port_widths.get(port, 1)
            for i in range(width):
                input_bits[bit_net(port, i)] = (value >> i) & 1
        v = self.settle_batch(input_bits, n_lanes)
        outputs: Dict[str, np.ndarray] = {}
        for port, index, slot in self._output_triples:
            bits = v[slot].astype(np.int64) << index
            if port in outputs:
                outputs[port] |= bits
            else:
                outputs[port] = bits
        return outputs

    def snapshot_batch(self) -> np.ndarray:
        """Copy of the ``(n_slots, n_lanes)`` lane array after a batch settle."""
        if self._bv is None:
            raise RuntimeError("no batch settle has run yet; call settle_batch first")
        return self._bv.copy()


def _build_alias_resolver(netlist: GateNetlist):
    cache: Dict[str, str] = {}

    def resolve(net: str) -> str:
        if net not in cache:
            current = net
            seen = set()
            while current in netlist.aliases:
                if current in seen:
                    raise ValueError(f"alias cycle through net {current!r}")
                seen.add(current)
                current = netlist.aliases[current]
            cache[net] = current
        return cache[net]

    return resolve


def _split_bit_net(net: str) -> tuple:
    if not net.endswith("]") or "[" not in net:
        return net, 0
    base, _, index = net.rpartition("[")
    return base, int(index[:-1])
