"""Netlist traversal utilities."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from repro.netlist.components import Component
from repro.netlist.module import Instance, Module


def walk_components(module: Module, recurse: bool = True) -> Iterator[Tuple[str, Component]]:
    """Yield ``(hierarchical_path, component)`` pairs.

    With ``recurse=True``, instances are descended into and paths are joined
    with ``.`` — useful for reporting on hierarchical designs without
    flattening them first.
    """
    for component in module.components.values():
        yield component.name, component
    if recurse:
        for instance in module.instances.values():
            for path, component in walk_components(instance.module, recurse=True):
                yield f"{instance.name}.{path}", component


def walk_instances(module: Module) -> Iterator[Tuple[str, Instance]]:
    """Yield ``(hierarchical_path, instance)`` pairs, depth first."""
    for instance in module.instances.values():
        yield instance.name, instance
        for path, child in walk_instances(instance.module):
            yield f"{instance.name}.{path}", child


def count_by_type(module: Module, recurse: bool = True) -> Dict[str, int]:
    """Histogram of component type names."""
    counts: Dict[str, int] = {}
    for _, component in walk_components(module, recurse):
        counts[component.type_name] = counts.get(component.type_name, 0) + 1
    return counts


def select_components(
    module: Module,
    predicate: Callable[[Component], bool],
    recurse: bool = True,
) -> List[Tuple[str, Component]]:
    """Return components (with their hierarchical path) matching ``predicate``."""
    return [(path, c) for path, c in walk_components(module, recurse) if predicate(c)]
