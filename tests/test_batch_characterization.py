"""Parity and edge tests for the lane-vectorized characterization pipeline.

The batch path must be an optimization only: identical training stimuli,
identical gate-level reference energies, identical per-bit toggle matrices
and (numerically) identical fitted coefficients as the scalar pair-at-a-time
path for the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gates import GateLevelSimulator, GatePowerCalculator, TechnologyMapper
from repro.gates.gatesim import compile_gate_netlist
from repro.netlist.components import Adder, Comparator, LogicOp, Multiplier, Mux, ShifterVar
from repro.power import CharacterizationEngine, generate_training_pairs, holdout_error

_COMPONENTS = [
    ("adder8", lambda: Adder("adder8", 8)),
    ("multiplier6", lambda: Multiplier("multiplier6", 6)),
    ("comparator8", lambda: Comparator("comparator8", 8)),
    ("mux4x8", lambda: Mux("mux4x8", 8, 4)),
    ("xor8", lambda: LogicOp("xor8", "xor", 8)),
    ("barrel8", lambda: ShifterVar("barrel8", 8, 3, "left")),
]


@pytest.mark.parametrize("label,factory", _COMPONENTS)
def test_batch_scalar_characterization_parity(label, factory):
    """Same seed -> same energies, toggle matrices and coefficients."""
    batch_engine = CharacterizationEngine(n_pairs=60, seed=13, batch=True)
    scalar_engine = CharacterizationEngine(n_pairs=60, seed=13, batch=False)

    batch_features, batch_energies = batch_engine._collect_training_data(factory())
    scalar_features, scalar_energies = scalar_engine._collect_training_data(factory())
    assert np.array_equal(batch_features, scalar_features), "toggle matrices differ"
    assert np.allclose(batch_energies, scalar_energies, rtol=1e-9, atol=1e-9)

    batch = batch_engine.characterize(factory())
    scalar = scalar_engine.characterize(factory())
    assert np.allclose(
        [v for _, _, v in batch.model.flat_coefficients()],
        [v for _, _, v in scalar.model.flat_coefficients()],
        rtol=1e-6,
        atol=1e-9,
    )
    assert batch.model.base_energy_fj == pytest.approx(scalar.model.base_energy_fj, abs=1e-7)
    assert batch.metrics.r_squared == pytest.approx(scalar.metrics.r_squared, abs=1e-9)


def test_batch_scalar_lut_parity():
    batch = CharacterizationEngine(n_pairs=60, seed=5, batch=True).characterize_lut(
        Mux("m", 8, 4), n_bins=4
    )
    scalar = CharacterizationEngine(n_pairs=60, seed=5, batch=False).characterize_lut(
        Mux("m", 8, 4), n_bins=4
    )
    assert np.allclose(batch.table, scalar.table, rtol=1e-9)


def test_training_pairs_seed_stable():
    firsts_a, seconds_a = generate_training_pairs(Adder("a", 8), 32, seed=42)
    firsts_b, seconds_b = generate_training_pairs(Adder("a", 8), 32, seed=42)
    for port in firsts_a:
        assert np.array_equal(firsts_a[port], firsts_b[port])
        assert np.array_equal(seconds_a[port], seconds_b[port])
    firsts_c, _ = generate_training_pairs(Adder("a", 8), 32, seed=43)
    assert any(not np.array_equal(firsts_a[p], firsts_c[p]) for p in firsts_a)


# ------------------------------------------------------------------- edges


def test_zero_pairs_rejected_everywhere():
    with pytest.raises(ValueError, match="n_pairs >= 1"):
        CharacterizationEngine(n_pairs=0)
    with pytest.raises(ValueError, match="n_pairs >= 1"):
        generate_training_pairs(Adder("a", 8), 0, seed=1)
    with pytest.raises(ValueError, match="n_pairs >= 1"):
        holdout_error(Adder("a", 8), None, n_pairs=0)


def test_wide_ports_characterize_via_scalar_loop():
    """Ports beyond the int64 lane width use exact Python-int pairs."""
    component = Adder("wide", 64)
    engine = CharacterizationEngine(n_pairs=12, seed=3)
    result = engine.characterize(component)
    assert result.metrics.n_samples == 12
    assert result.model.total_bits == 64 * 3  # monitored ports a, b, y
    # parity: batch=True transparently takes the same scalar loop
    scalar = CharacterizationEngine(n_pairs=12, seed=3, batch=False).characterize(
        Adder("wide", 64)
    )
    assert np.allclose(result.reference_energies, scalar.reference_energies)


def test_lut_single_bin_fill():
    """When every pair lands in one bin, the fill spreads that bin's mean."""
    engine = CharacterizationEngine(n_pairs=1, seed=3)
    lut = engine.characterize_lut(Adder("a", 8), n_bins=5)
    flat = [value for row in lut.table for value in row]
    assert len(set(flat)) == 1, "all bins should be filled from the single observation"
    assert flat[0] >= 0.0


def test_fill_empty_bins_noop_when_nothing_observed():
    table = [[0.0, 0.0], [0.0, 0.0]]
    CharacterizationEngine._fill_empty_bins(table, [[0, 0], [0, 0]])
    assert table == [[0.0, 0.0], [0.0, 0.0]]


def test_gate_batch_lane_edges():
    netlist = TechnologyMapper().map_component(Adder("a", 4))
    simulator = GateLevelSimulator(netlist)
    with pytest.raises(ValueError, match="n_lanes >= 1"):
        simulator.settle_batch({}, 0)
    with pytest.raises(ValueError, match="at least one input port"):
        simulator.evaluate_ports_batch({}, {})
    with pytest.raises(RuntimeError, match="settle_batch"):
        simulator.snapshot_batch()


# ----------------------------------------------------- lowering/cache reuse


def test_gate_program_cached_across_simulator_instances():
    """Characterizing the same component type twice does not recompile."""
    mapper = TechnologyMapper()
    first = GateLevelSimulator(mapper.map_component(Adder("adder8", 8)))
    second = GateLevelSimulator(mapper.map_component(Adder("adder8", 8)))
    assert first.program is second.program
    # a different shape compiles its own program
    other = GateLevelSimulator(mapper.map_component(Adder("adder9", 9)))
    assert other.program is not first.program


def test_techmap_cache_returns_shared_netlist():
    mapper = TechnologyMapper()
    a = mapper.map_component(Mux("m", 8, 4))
    b = mapper.map_component(Mux("m", 8, 4))
    assert a is b
    c = mapper.map_component(Mux("m2", 8, 4))
    assert c is not a  # name participates in the key (net names embed it)


def test_compile_gate_netlist_fingerprint_cache():
    mapper = TechnologyMapper()
    netlist = mapper.map_component(Comparator("c", 8))
    assert compile_gate_netlist(netlist) is compile_gate_netlist(netlist)


# ----------------------------------------------------------- batched energy


def test_vector_pair_energy_batch_matches_scalar():
    component = Multiplier("m", 5)
    netlist = TechnologyMapper().map_component(component)
    calculator = GatePowerCalculator(netlist)
    simulator = GateLevelSimulator(netlist)
    widths = {p.name: p.width for p in component.ports.values()}
    rng = np.random.default_rng(2)
    n = 24
    firsts = {p.name: rng.integers(0, 1 << p.width, n) for p in component.input_ports}
    seconds = {p.name: rng.integers(0, 1 << p.width, n) for p in component.input_ports}
    batch = calculator.vector_pair_energy_batch(simulator, firsts, seconds, widths)
    assert batch.n_lanes == n
    for lane in range(n):
        scalar = calculator.vector_pair_energy(
            simulator,
            {p: int(a[lane]) for p, a in firsts.items()},
            {p: int(a[lane]) for p, a in seconds.items()},
            widths,
        )
        assert batch.total_fj[lane] == pytest.approx(scalar.total_fj, rel=1e-9)
        assert int(batch.n_toggled_nets[lane]) == scalar.n_toggled_nets


def test_holdout_error_batch_scalar_parity():
    component = Adder("a", 8)
    model = CharacterizationEngine(n_pairs=60, seed=9).characterize(Adder("a", 8)).model
    batch = holdout_error(component, model, seed=4, n_pairs=24, batch=True)
    scalar = holdout_error(component, model, seed=4, n_pairs=24, batch=False)
    assert batch == pytest.approx(scalar, rel=1e-9)
    assert batch < 0.35
