"""Tests for the characterization engine (gate-level regression fitting)."""

from __future__ import annotations

import pytest

from repro.netlist.components import Adder, LogicOp, Multiplier, Mux
from repro.power import CharacterizationEngine
from repro.power.macromodel import LinearTransitionModel, LUTPowerModel


@pytest.fixture(scope="module")
def engine():
    # a modest number of training pairs keeps the suite fast while giving
    # stable fits for the small components used here
    return CharacterizationEngine(n_pairs=80, seed=7)


@pytest.fixture(scope="module")
def adder_result(engine):
    return engine.characterize(Adder("a", 8))


def test_characterized_adder_fits_well(adder_result):
    assert isinstance(adder_result.model, LinearTransitionModel)
    assert adder_result.metrics.r_squared > 0.8
    assert adder_result.metrics.nrmse < 0.2
    assert adder_result.metrics.n_samples == 80
    assert len(adder_result.reference_energies) == 80


def test_characterized_coefficients_nonnegative(adder_result):
    for _, _, value in adder_result.model.flat_coefficients():
        assert value >= 0.0
    assert adder_result.model.base_energy_fj >= 0.0


def test_characterized_model_tracks_activity(adder_result):
    model = adder_result.model
    quiet = model.evaluate({"a": 0, "b": 0, "y": 0}, {"a": 0, "b": 0, "y": 0})
    busy = model.evaluate({"a": 0, "b": 0, "y": 0}, {"a": 0xFF, "b": 0xFF, "y": 0xFF})
    assert busy > quiet


def test_characterized_metrics_attached_to_model(adder_result):
    assert adder_result.model.metrics is adder_result.metrics
    assert "R2=" in adder_result.metrics.summary()


def test_xor_gate_characterization(engine):
    result = engine.characterize(LogicOp("x", "xor", 8))
    assert result.metrics.r_squared > 0.7
    # an 8-bit XOR's total energy is far below an 8-bit adder's
    adder = engine.characterize(Adder("a2", 8))
    assert result.model.max_energy_fj() < adder.model.max_energy_fj()


def test_multiplier_characterization_energy_scale(engine):
    small_engine = CharacterizationEngine(n_pairs=50, seed=3)
    mul = small_engine.characterize(Multiplier("m", 6))
    add = small_engine.characterize(Adder("a", 6))
    assert mul.metrics.mean_energy_fj > add.metrics.mean_energy_fj
    assert mul.metrics.r_squared > 0.6


def test_lut_characterization(engine):
    lut = engine.characterize_lut(Mux("m", 8, 4), n_bins=4)
    assert isinstance(lut, LUTPowerModel)
    quiet = lut.evaluate({"d0": 0, "d1": 0, "d2": 0, "d3": 0, "sel": 0, "y": 0},
                         {"d0": 0, "d1": 0, "d2": 0, "d3": 0, "sel": 0, "y": 0})
    busy = lut.evaluate({"d0": 0, "d1": 0, "d2": 0, "d3": 0, "sel": 0, "y": 0},
                        {"d0": 255, "d1": 255, "d2": 255, "d3": 255, "sel": 3, "y": 255})
    assert busy >= quiet >= 0.0
