"""repro.api — the unified estimation API.

The paper's argument is a comparison between estimation engines over the same
designs and workloads; this package is the single front door that makes such
comparisons one-liners:

* :class:`RunSpec` / :class:`SweepSpec` — frozen, declarative run
  configurations (design by registry name, engine, stimulus seed, cycle
  budget, simulation backend),
* :class:`PowerEstimator` — the protocol all three engine adapters implement
  (``estimate(spec) -> EstimateResult``): software RTL, gate-level baseline,
  and the power-emulation flow,
* :class:`EstimateResult` — the uniform result (PowerReport + timing
  breakdown + accuracy-vs-baseline + engine metadata), JSON-round-trippable
  and persisted by the :mod:`repro.bench.cache` layer,
* :func:`sweep` — the multi-seed sweep runner: BatchSimulator lanes per RTL
  group, the PR-2 shard pool across groups, and the on-disk result cache,
* ``python -m repro`` — the CLI (``run``, ``sweep``, ``characterize``,
  ``fig3``) built on exactly this surface.

Quickstart::

    from repro.api import RunSpec, SweepSpec, estimate, sweep

    result = estimate(RunSpec(design="binary_search", engine="rtl"))
    print(result.summary())

    swept = sweep(SweepSpec(designs=("DCT",), seeds=tuple(range(8))))
    print(swept.summary())
"""

from repro.api.spec import (
    BACKENDS,
    COALESCE_FREE_FIELDS,
    ENGINES,
    EstimateResult,
    RunSpec,
    SweepSpec,
    coalesce_key,
    is_coalescable,
)
from repro.api.estimators import (
    EmulationEstimatorAdapter,
    GateLevelEstimatorAdapter,
    PowerEstimator,
    RTLEstimatorAdapter,
    estimate,
    estimator_for,
)
from repro.api.sweep import SweepInterrupted, SweepResult, sweep

__all__ = [
    "BACKENDS",
    "COALESCE_FREE_FIELDS",
    "ENGINES",
    "coalesce_key",
    "is_coalescable",
    "SweepInterrupted",
    "RunSpec",
    "SweepSpec",
    "EstimateResult",
    "SweepResult",
    "PowerEstimator",
    "RTLEstimatorAdapter",
    "GateLevelEstimatorAdapter",
    "EmulationEstimatorAdapter",
    "estimate",
    "estimator_for",
    "sweep",
]
