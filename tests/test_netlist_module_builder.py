"""Tests for Module, NetlistBuilder, flatten, validation and stats."""

from __future__ import annotations

import pytest

from repro.netlist import (
    Adder,
    NetlistBuilder,
    ValidationError,
    flatten,
    module_stats,
    validate_module,
)
from repro.netlist.module import Module
from repro.netlist.ports import PortDirection
from repro.netlist.visitor import count_by_type, select_components, walk_components
from repro.sim import Simulator


def build_adder_module(name="add8"):
    b = NetlistBuilder(name)
    a = b.input("a", 8)
    bb = b.input("b", 8)
    y = b.add(a, bb, name="the_adder")
    b.output("y", y)
    return b.build()


def test_builder_creates_valid_module():
    module = build_adder_module()
    report = validate_module(module)
    assert report.ok
    assert set(module.ports) == {"a", "b", "y"}
    assert "the_adder" in module.components


def test_builder_duplicate_names_rejected():
    b = NetlistBuilder("dup")
    b.input("a", 8)
    with pytest.raises(ValueError):
        b.input("a", 8)
    module = Module("m")
    module.add_component(Adder("x", 8))
    with pytest.raises(ValueError):
        module.add_component(Adder("x", 8))


def test_builder_const_operands():
    b = NetlistBuilder("c")
    a = b.input("a", 8)
    y = b.add(a, 3)
    b.output("y", y)
    sim = Simulator(flatten(b.build()))
    sim.set_input("a", 10)
    sim.settle()
    assert sim.get_output("y") == 13


def test_builder_integer_only_operands_rejected():
    b = NetlistBuilder("c")
    with pytest.raises(ValueError):
        b.add(1, 2)


def test_builder_resize_and_mux():
    b = NetlistBuilder("m")
    sel = b.input("sel", 1)
    a = b.input("a", 4)
    c = b.input("c", 8)
    y = b.mux(sel, a, c)
    b.output("y", y)
    sim = Simulator(flatten(b.build()))
    sim.set_inputs({"sel": 0, "a": 0xF, "c": 0xAB})
    sim.settle()
    assert sim.get_output("y") == 0x0F
    sim.set_input("sel", 1)
    sim.settle()
    assert sim.get_output("y") == 0xAB


def test_validate_detects_unconnected_input():
    module = Module("broken")
    module.add_component(Adder("a", 8))
    report = validate_module(module, raise_on_error=False)
    assert not report.ok
    with pytest.raises(ValidationError):
        validate_module(module)


def test_validate_detects_combinational_loop():
    b = NetlistBuilder("loop")
    a = b.input("a", 8)
    # create the loop by manually connecting an adder's output back to its input
    loop_net = b.module.add_net("loop", 8)
    adder = Adder("looping", 8)
    b.module.add_component(adder)
    adder.connect("a", a)
    adder.connect("b", loop_net)
    adder.connect("y", loop_net)
    report = validate_module(b.build(), raise_on_error=False)
    assert any("feeds itself" in e or "loop" in e for e in report.errors)


def test_flatten_single_level_hierarchy():
    child = build_adder_module("child")
    parent = Module("parent")
    a = parent.add_input("a", 8)
    b = parent.add_input("b", 8)
    result = parent.add_net("result", 8)
    parent.add_instance("u0", child, {"a": a, "b": b, "y": result})
    parent.add_output("y", result)

    flat = flatten(parent)
    assert not flat.is_hierarchical
    assert "u0.the_adder" in flat.components
    sim = Simulator(flat)
    sim.set_inputs({"a": 20, "b": 22})
    sim.settle()
    assert sim.get_output("y") == 42


def test_flatten_two_levels_and_shared_child():
    leaf = build_adder_module("leaf")
    mid = Module("mid")
    a = mid.add_input("a", 8)
    b = mid.add_input("b", 8)
    s1 = mid.add_net("s1", 8)
    mid.add_instance("inner", leaf, {"a": a, "b": b, "y": s1})
    mid.add_output("y", s1)

    top = Module("top")
    x = top.add_input("x", 8)
    y = top.add_input("y", 8)
    z = top.add_input("z", 8)
    t1 = top.add_net("t1", 8)
    t2 = top.add_net("t2", 8)
    top.add_instance("left", mid, {"a": x, "b": y, "y": t1})
    top.add_instance("right", leaf, {"a": t1, "b": z, "y": t2})
    top.add_output("out", t2)

    flat = flatten(top)
    validate_module(flat)
    sim = Simulator(flat)
    sim.set_inputs({"x": 1, "y": 2, "z": 3})
    sim.settle()
    assert sim.get_output("out") == 6
    # instance paths are prefixed
    assert "left.inner.the_adder" in flat.components
    assert "right.the_adder" in flat.components


def test_flatten_always_returns_new_module():
    module = build_adder_module()
    flat = flatten(module)
    assert flat is not module
    assert flat.components["the_adder"] is not module.components["the_adder"]


def test_flatten_preserves_memory_contents():
    b = NetlistBuilder("memmod")
    addr = b.input("addr", 3)
    zero = b.const(0, 1)
    zero8 = b.const(0, 8)
    rdata = b.memory("mem", 8, 8, we=zero, addr=addr, wdata=zero8,
                     sync_read=False, initial=[7, 6, 5, 4, 3, 2, 1, 0])
    b.output("rdata", rdata)
    flat = flatten(b.build())
    sim = Simulator(flat)
    sim.set_input("addr", 2)
    sim.settle()
    assert sim.get_output("rdata") == 5


def test_instance_connection_checks():
    child = build_adder_module("child")
    parent = Module("p")
    a = parent.add_input("a", 8)
    bad = parent.add_net("bad", 4)
    with pytest.raises(ValueError):
        parent.add_instance("u0", child, {"a": a, "b": bad, "y": parent.add_net("y", 8)})
    with pytest.raises(ValueError):
        parent.add_instance("u1", child, {"nonexistent": a})


def test_visitor_and_stats():
    module = build_adder_module()
    counts = count_by_type(module)
    assert counts == {"adder": 1}
    found = select_components(module, lambda c: c.type_name == "adder")
    assert len(found) == 1 and found[0][0] == "the_adder"

    stats = module_stats(module)
    assert stats.n_components == 1
    assert stats.n_combinational == 1
    assert stats.monitored_bits == 24  # a(8) + b(8) + y(8)
    assert "adder" in stats.summary()


def test_stats_hierarchical():
    child = build_adder_module("child")
    parent = Module("parent")
    a = parent.add_input("a", 8)
    b = parent.add_input("b", 8)
    r = parent.add_net("r", 8)
    parent.add_instance("u0", child, {"a": a, "b": b, "y": r})
    parent.add_output("y", r)
    stats = module_stats(parent)
    assert stats.n_components == 1
    assert stats.by_type["adder"] == 1
    paths = [p for p, _ in walk_components(parent)]
    assert "u0.the_adder" in paths


def test_module_port_direction_and_remove_component():
    module = build_adder_module()
    assert module.ports["a"].direction is PortDirection.INPUT
    assert module.ports["y"].direction is PortDirection.OUTPUT
    removed = module.remove_component("the_adder")
    assert removed.name == "the_adder"
    assert all(p.net is None for p in removed.ports.values())
    report = validate_module(module, raise_on_error=False)
    assert not report.ok  # output port now undriven
