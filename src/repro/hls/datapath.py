"""Datapath and controller generation.

Turns a scheduled and bound dataflow graph into a structural RTL module:

* one shared functional unit per allocated ALU/multiplier, fed by input
  multiplexers whose select lines are Moore outputs of the controller,
* dedicated units for cheap operations (bitwise logic, constant shifts),
* one register per left-edge register class, with an input multiplexer when it
  stores values produced by different units,
* a Moore FSM controller with states ``IDLE, S0..S{n-1}, DONE`` driving all
  register enables, multiplexer selects and the ALU add/sub controls.

Protocol: drive the kernel inputs, pulse ``start`` for one cycle, wait for
``done``; outputs stay valid until the next run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hls.allocation import Allocation
from repro.hls.binding import Binding
from repro.hls.dfg import DataflowGraph, DFGNode
from repro.hls.scheduling import OP_CLASSES, Schedule
from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.netlist.nets import Net


@dataclass
class _SharedUnitPlan:
    """Bookkeeping for one shared functional unit before netlist construction."""

    name: str
    op_class: str
    width: int
    #: ordered distinct source node names for each operand position
    a_sources: List[str] = field(default_factory=list)
    b_sources: List[str] = field(default_factory=list)
    #: node name -> (a index, b index, subtract flag)
    op_controls: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)

    def source_index(self, sources: List[str], node: str) -> int:
        if node not in sources:
            sources.append(node)
        return sources.index(node)


def _sel_width(n_sources: int) -> int:
    return max(1, (max(n_sources, 2) - 1).bit_length())


def generate_datapath(
    graph: DataflowGraph,
    schedule: Schedule,
    allocation: Allocation,
    binding: Binding,
    name: Optional[str] = None,
) -> Module:
    """Generate the RTL module implementing the scheduled kernel."""
    schedule.verify_dependencies()
    n_steps = schedule.n_steps
    states = ["IDLE"] + [f"S{i}" for i in range(n_steps)] + ["DONE"]

    # ---------------------------------------------------------------- plan
    unit_plans: Dict[str, _SharedUnitPlan] = {}
    for op_class, units in allocation.shared_units.items():
        for unit in units:
            unit_plans[unit] = _SharedUnitPlan(
                unit, op_class, allocation.shared_widths[op_class]
            )

    zero_const_needed = False
    for node in graph.operations:
        unit = binding.unit_of[node.name]
        if unit not in unit_plans:
            continue
        plan = unit_plans[unit]
        if node.op == "neg":
            zero_const_needed = True
            a_operand, b_operand = "__zero__", node.operands[0]
            subtract = 1
        elif node.op in ("sub",):
            a_operand, b_operand = node.operands[0], node.operands[1]
            subtract = 1
        elif node.op in ("add",):
            a_operand, b_operand = node.operands[0], node.operands[1]
            subtract = 0
        else:  # multiplier class
            a_operand, b_operand = node.operands[0], node.operands[1]
            subtract = 0
        a_index = plan.source_index(plan.a_sources, a_operand)
        b_index = plan.source_index(plan.b_sources, b_operand)
        plan.op_controls[node.name] = (a_index, b_index, subtract)

    # register input plans: register -> ordered distinct producing nodes
    register_sources: Dict[str, List[str]] = {}
    for reg, values in binding.register_values.items():
        sources: List[str] = []
        for value in values:
            if value not in sources:
                sources.append(value)
        register_sources[reg] = sources

    # ------------------------------------------------------ controller plan
    output_widths: Dict[str, int] = {"done": 1}
    for reg in binding.register_values:
        output_widths[f"en_{reg}"] = 1
        if len(register_sources[reg]) > 1:
            output_widths[f"sel_{reg}"] = _sel_width(len(register_sources[reg]))
    for unit, plan in unit_plans.items():
        if len(plan.a_sources) > 1:
            output_widths[f"sela_{unit}"] = _sel_width(len(plan.a_sources))
        if len(plan.b_sources) > 1:
            output_widths[f"selb_{unit}"] = _sel_width(len(plan.b_sources))
        if plan.op_class == "alu":
            output_widths[f"sub_{unit}"] = 1

    moore: Dict[str, Dict[str, int]] = {state: {} for state in states}
    moore["DONE"]["done"] = 1
    for node in graph.operations:
        step = schedule.start_step[node.name]
        state = f"S{step + schedule.latency(node.name) - 1}"
        exec_state = f"S{step}"
        unit = binding.unit_of[node.name]
        if unit in unit_plans:
            plan = unit_plans[unit]
            a_index, b_index, subtract = plan.op_controls[node.name]
            if f"sela_{unit}" in output_widths:
                moore[exec_state][f"sela_{unit}"] = a_index
            if f"selb_{unit}" in output_widths:
                moore[exec_state][f"selb_{unit}"] = b_index
            if f"sub_{unit}" in output_widths:
                moore[exec_state][f"sub_{unit}"] = subtract
        reg = binding.register_of[node.name]
        moore[state][f"en_{reg}"] = 1
        if f"sel_{reg}" in output_widths:
            moore[state][f"sel_{reg}"] = register_sources[reg].index(node.name)

    # -------------------------------------------------------------- netlist
    b = NetlistBuilder(name if name is not None else f"{graph.name}_hls")
    b.module.attributes["hls"] = {
        "n_steps": n_steps,
        "n_registers": binding.n_registers,
        "allocation": allocation.summary(),
    }
    start = b.input("start", 1)
    input_nets: Dict[str, Net] = {}
    for node in graph.inputs:
        input_nets[node.name] = b.input(node.name, node.width)

    fsm, fsm_outputs = b.fsm(
        "ctrl",
        states=states,
        inputs={"start": start},
        outputs=output_widths,
        moore_outputs=moore,
    )
    fsm.when("IDLE", "S0" if n_steps else "DONE", start=1)
    for i in range(n_steps - 1):
        fsm.otherwise(f"S{i}", f"S{i + 1}")
    if n_steps:
        fsm.otherwise(f"S{n_steps - 1}", "DONE")
    fsm.otherwise("DONE", "IDLE")

    # constants
    const_nets: Dict[str, Net] = {}
    for node in graph.nodes.values():
        if node.op == "const":
            const_nets[node.name] = b.const(int(node.params["value"]), node.width,
                                            name=f"k_{node.name}")
    if zero_const_needed:
        const_nets["__zero__"] = b.const(0, max(allocation.shared_widths.get("alu", 1), 1),
                                         name="k_zero")

    # registers (declared first so feedback through shared units resolves)
    register_q: Dict[str, Net] = {}
    for reg, width in binding.register_widths.items():
        register_q[reg] = b.register(f"reg_{reg}", width, has_enable=True)

    def source_net(node_name: str) -> Net:
        if node_name in input_nets:
            return input_nets[node_name]
        if node_name in const_nets:
            return const_nets[node_name]
        return register_q[binding.register_of[node_name]]

    signed = graph.signed

    def resized(net: Net, width: int) -> Net:
        return b.resize(net, width, signed=signed)

    # functional units
    unit_output: Dict[str, Net] = {}
    for unit, plan in unit_plans.items():
        a_net = _mux_or_wire(b, plan.a_sources, source_net, resized, plan.width,
                             fsm_outputs.get(f"sela_{unit}"), f"{unit}_a")
        b_net = _mux_or_wire(b, plan.b_sources, source_net, resized, plan.width,
                             fsm_outputs.get(f"selb_{unit}"), f"{unit}_b")
        if plan.op_class == "alu":
            unit_output[unit] = b.addsub(a_net, b_net, fsm_outputs[f"sub_{unit}"],
                                         width=plan.width, name=f"fu_{unit}")
        else:
            width_y = max(
                (graph.nodes[n].width for n in plan.op_controls), default=plan.width
            )
            unit_output[unit] = b.mul(a_net, b_net, width_y=width_y, signed=signed,
                                      name=f"fu_{unit}")

    # dedicated units
    for node_name in allocation.dedicated:
        node = graph.nodes[node_name]
        operand_nets = [source_net(op) for op in node.operands]
        unit_output[binding.unit_of[node_name]] = _dedicated_unit(
            b, node, operand_nets, resized
        )

    def producer_net(node_name: str) -> Net:
        return unit_output[binding.unit_of[node_name]]

    # register input muxes and drives.  Producer outputs are first truncated to
    # the value's semantic width (so wrap-around matches the DFG reference
    # semantics even when a wider shared unit computed it) and then extended to
    # the register width.
    for reg, sources in register_sources.items():
        width = binding.register_widths[reg]
        candidates = [
            resized(b.resize(producer_net(value), graph.nodes[value].width, signed=signed), width)
            for value in sources
        ]
        if len(candidates) == 1:
            d_net = candidates[0]
        else:
            d_net = b.mux(fsm_outputs[f"sel_{reg}"], *candidates, name=f"regmux_{reg}")
        b.drive(f"reg_{reg}", d=d_net, en=fsm_outputs[f"en_{reg}"])

    # outputs
    for out_name, value_node in graph.outputs.items():
        node = graph.nodes[value_node]
        if node.is_source:
            net = source_net(value_node)
        else:
            net = register_q[binding.register_of[value_node]]
        b.output(out_name, b.resize(net, node.width, signed=signed))
    b.output("done", fsm_outputs["done"])
    return b.build()


def _mux_or_wire(builder, sources, source_net, resized, width, sel_net, name):
    nets = [resized(source_net(s), width) for s in sources]
    if len(nets) == 1:
        return nets[0]
    return builder.mux(sel_net, *nets, name=f"mux_{name}")


def _dedicated_unit(builder: NetlistBuilder, node: DFGNode, operand_nets, resized):
    width = node.width
    if node.op in ("and", "or", "xor"):
        return builder.logic(node.op, resized(operand_nets[0], width),
                             resized(operand_nets[1], width), name=f"fu_{node.name}")
    if node.op == "shl":
        return builder.shl(resized(operand_nets[0], width), int(node.params["amount"]),
                           name=f"fu_{node.name}")
    if node.op == "shr":
        return builder.shr(resized(operand_nets[0], width), int(node.params["amount"]),
                           arithmetic=False, name=f"fu_{node.name}")
    if node.op == "asr":
        return builder.shr(resized(operand_nets[0], width), int(node.params["amount"]),
                           arithmetic=True, name=f"fu_{node.name}")
    raise ValueError(f"operation {node.op!r} has no dedicated-unit mapping")
