"""Single-pass vectorized NumPy code generator for the kernel IR.

Prints a :class:`~repro.sim.kernels.ir.KernelIR` back into one exec-compiled
module holding ``_settle``/``_clock_edge`` plus a fused ``_cycle`` (settle
followed by clock edge in a single function call), all row-vectorized over
the ``(n_slots, n_lanes)`` store.  This is the portable fallback backend: it
runs everywhere NumPy runs, costs no compiler invocation, and — because it is
generated from the same IR the native backend consumes — stays bit-identical
to both the plain batch path and the C kernels.

State statements print as holder-attribute *rebinds* (``_h3.pending = ...``),
exactly the form the plain batch program uses, so the NumPy kernel pays no
extra per-row copies and is never slower than the per-op batch path; memory
arrays (which the batch program also mutates in place) bind directly.
Holder-facing features — lane views, memory backdoors, ``reset_state`` —
keep working unchanged because all state still lives on the holders.

Multi-core: :meth:`NumpyKernel.set_threads` fans each phase out over
contiguous :data:`~repro.sim.kernels.native.BLOCK_LANES`-aligned lane slices
on a ``ThreadPoolExecutor`` — NumPy releases the GIL inside its large ufunc
loops, so slices genuinely overlap.  Threaded mode executes a second, sliced
printing of the same IR whose state statements write *in place* into each
slice's lanes (``_h3.pending[_sl] = ...``): slices touch disjoint lanes of
every store row, state array and memory column, so any thread count is
bit-identical to the serial kernel — this is the no-C-compiler counterpart
of the native kernel's lane-block thread pool.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from repro.sim.batch import _popcount_u64
from repro.sim.kernels.ir import (
    Abs, Bin, Const, KernelIR, Lane, MemRead, MemWrite, Min, Popcount,
    Select, SetSlot, SetState, SetTemp, SlotRef, StateRef, Stmt, Table,
    TempRef, Unary, Where,
)


class _Printer:
    """Prints IR as NumPy statements.

    ``state_slice``/``select_index`` configure the *sliced* printing used by
    the threaded path: state locations gain a ``[_sl]`` lane-slice suffix
    (reads become views, writes become in-place slice assignments) and
    ``Select`` gathers with the slice-local lane index instead of the global
    one (its stacked choice arrays are slice-shaped).  The default printing
    is the whole-store form described in the module docstring.
    """

    def __init__(
        self, ir: KernelIR, state_slice: str = "", select_index: str = "_lidx"
    ) -> None:
        self.ir = ir
        self.state_slice = state_slice
        self.select_index = select_index
        #: unique holder object -> bound name
        self.holder_names: Dict[int, str] = {}
        self.holders: List[object] = []
        for holder, _, _ in ir.state_specs:
            if id(holder) not in self.holder_names:
                self.holder_names[id(holder)] = f"_h{len(self.holders)}"
                self.holders.append(holder)

    # ------------------------------------------------------------- locations
    def state(self, row: int) -> str:
        holder, field, index = self.ir.state_specs[row]
        name = self.holder_names[id(holder)]
        suffix = "" if index is None else f"[{index}]"
        return f"{name}.{field}{suffix}{self.state_slice}"

    # ------------------------------------------------------------ expressions
    def expr(self, x) -> str:
        e = self.expr
        if isinstance(x, Const):
            return repr(x.value)
        if isinstance(x, Lane):
            return "_lidx"
        if isinstance(x, SlotRef):
            return f"v[{x.slot}]"
        if isinstance(x, StateRef):
            return self.state(x.row)
        if isinstance(x, TempRef):
            return x.name
        if isinstance(x, Table):
            return f"_T{x.table}[{e(x.index)}]"
        if isinstance(x, MemRead):
            return f"_g{x.mem}[{e(x.addr)}, _lidx]"
        if isinstance(x, Unary):
            return f"(-({e(x.a)}))" if x.op == "neg" else f"(~({e(x.a)}))"
        if isinstance(x, Bin):
            return f"(({e(x.a)}) {x.op} ({e(x.b)}))"
        if isinstance(x, Where):
            return f"_where({e(x.cond)}, {e(x.a)}, {e(x.b)})"
        if isinstance(x, Min):
            return f"_minimum({e(x.a)}, {e(x.b)})"
        if isinstance(x, Abs):
            return f"_abs({e(x.a)})"
        if isinstance(x, Popcount):
            return f"_popcount({e(x.a)})"
        if isinstance(x, Select):
            choices = ", ".join(e(c) for c in x.choices)
            return f"_stack(({choices}))[{e(x.index)}, {self.select_index}]"
        raise TypeError(f"unprintable IR node {x!r}")

    # ------------------------------------------------------------- statements
    def statement(self, stmt: Stmt) -> str:
        if isinstance(stmt, SetTemp):
            return f"{stmt.name} = {self.expr(stmt.expr)}"
        if isinstance(stmt, SetSlot):
            return f"v[{stmt.slot}] = {self.expr(stmt.expr)}"
        if isinstance(stmt, SetState):
            return f"{self.state(stmt.row)} = {self.expr(stmt.expr)}"
        if isinstance(stmt, MemWrite):
            mask = self.expr(stmt.enable)
            return (
                f"_g{stmt.mem}[({self.expr(stmt.addr)})[{mask}], "
                f"_lidx[{mask}]] = ({self.expr(stmt.data)})[{mask}]"
            )
        raise TypeError(f"unprintable IR statement {stmt!r}")


def generate_numpy_source(
    ir: KernelIR,
    printer: "_Printer" = None,
    name_suffix: str = "",
    params: str = "v",
) -> str:
    """The fused NumPy module source for one extracted lane program.

    ``name_suffix``/``params`` produce the sliced variants the threaded path
    executes (``_settle_sl(v, _sl, _lidx, _lidx0)`` and friends); the
    defaults print the whole-store functions.
    """
    printer = printer if printer is not None else _Printer(ir)
    lines: List[str] = []
    for phase, stmts in ir.phases.items():
        lines.append(f"def _{phase}{name_suffix}({params}):")
        body = [printer.statement(stmt) for stmt in stmts] or ["pass"]
        lines.extend("    " + line for line in body)
        lines.append("")
    if set(ir.phases) >= {"settle", "clock_edge"}:
        lines.append(f"def _cycle{name_suffix}({params}):")
        body = [
            printer.statement(stmt)
            for phase in ("settle", "clock_edge")
            for stmt in ir.phases[phase]
        ] or ["pass"]
        lines.extend("    " + line for line in body)
        lines.append("")
    return "\n".join(lines)


class NumpyKernel:
    """A fused, exec-compiled NumPy kernel over the live holder state."""

    backend = "numpy"

    def __init__(self, ir: KernelIR, n_lanes: int) -> None:
        self.ir = ir
        self.n_lanes = n_lanes
        printer = _Printer(ir)
        self.source = generate_numpy_source(ir, printer)
        namespace: Dict[str, object] = {
            "_where": np.where,
            "_minimum": np.minimum,
            "_abs": np.abs,
            "_stack": np.stack,
            "_popcount": _popcount_u64,
            "_lidx": np.arange(n_lanes),
        }
        for index, table in enumerate(ir.tables):
            namespace[f"_T{index}"] = table
        for holder, name in zip(printer.holders, printer.holder_names.values()):
            namespace[name] = holder
        for index, array in enumerate(ir.mem_arrays()):
            namespace[f"_g{index}"] = array
        namespace["__builtins__"] = {}
        exec(compile(self.source, "<lane-kernel:numpy>", "exec"), namespace)
        self._namespace = namespace
        self._holders = list(printer.holders)
        self._settle = namespace.get("_settle")
        self._clock_edge = namespace.get("_clock_edge")
        self._cycle = namespace.get("_cycle")
        #: worker threads fanning lane slices out (1 = the serial fast path)
        self.n_threads = 1
        self._pool: Optional[ThreadPoolExecutor] = None
        #: per-slice (slice, global lane index, local lane index) argument
        #: triples, built when threading is enabled
        self._slices: Optional[List[tuple]] = None
        self._settle_sl = None
        self._clock_edge_sl = None
        self._cycle_sl = None

    def rebind(self) -> None:
        """No-op: state is reached through live holder attributes."""

    # ---------------------------------------------------------- threading
    def set_threads(self, n_threads: int) -> None:
        """Set the worker count for subsequent kernel calls.

        Workers own contiguous, :data:`~repro.sim.kernels.native.BLOCK_LANES`-
        aligned lane slices — disjoint columns of every store row, state
        array and memory — so results are bit-identical for any count.
        Threaded calls execute the sliced in-place printing of the IR; the
        serial whole-store functions keep running at ``n_threads == 1``.
        """
        from repro.sim.kernels.native import BLOCK_LANES

        n_threads = max(1, int(n_threads))
        n_blocks = max(1, -(-self.n_lanes // BLOCK_LANES))
        n_threads = min(n_threads, n_blocks)
        if n_threads == self.n_threads:
            return
        self.n_threads = n_threads
        if n_threads == 1:
            self._slices = None
            return
        if self._cycle_sl is None:
            self._compile_sliced()
        per = -(-n_blocks // n_threads) * BLOCK_LANES
        bounds = [
            (start, min(start + per, self.n_lanes))
            for start in range(0, self.n_lanes, per)
        ]
        self._slices = [
            (slice(s, e), np.arange(s, e), np.arange(e - s)) for s, e in bounds
        ]
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._pool = ThreadPoolExecutor(
            max_workers=len(self._slices),
            thread_name_prefix="repro-numpy-kernel",
        )
        # the serial kernel commits state by *rebinding* holder attributes,
        # which can leave state/pending pairs aliased to one array; sliced
        # in-place writes need them split (the native kernel's precondition)
        for holder in self._holders:
            unalias = getattr(holder, "unalias", None)
            if unalias is not None:
                unalias()

    def _compile_sliced(self) -> None:
        """Exec the sliced in-place printing into the kernel namespace."""
        printer = _Printer(self.ir, state_slice="[_sl]", select_index="_lidx0")
        # holder names must line up with the serial printer's bindings
        source = generate_numpy_source(
            self.ir, printer, name_suffix="_sl", params="v, _sl, _lidx, _lidx0"
        )
        self.sliced_source = source
        exec(compile(source, "<lane-kernel:numpy-sliced>", "exec"), self._namespace)
        self._settle_sl = self._namespace.get("_settle_sl")
        self._clock_edge_sl = self._namespace.get("_clock_edge_sl")
        self._cycle_sl = self._namespace.get("_cycle_sl")

    def _run(self, fn, fn_sl, v: np.ndarray) -> None:
        if self._slices is None:
            fn(v)
            return
        futures = [
            self._pool.submit(fn_sl, v[:, sl], sl, lidx, lidx0)
            for sl, lidx, lidx0 in self._slices
        ]
        for future in futures:
            future.result()

    # ------------------------------------------------------------- phases
    def settle(self, v: np.ndarray) -> None:
        self._run(self._settle, self._settle_sl, v)

    def clock_edge(self, v: np.ndarray) -> None:
        self._run(self._clock_edge, self._clock_edge_sl, v)

    def cycle(self, v: np.ndarray) -> None:
        self._run(self._cycle, self._cycle_sl, v)
