"""Tests for the declarative stimulus subsystem (repro.stim).

Covers the spec layer (JSON round trips, validation, CLI shorthand, VCD
replay), the compiler (chunk invariance, per-seed lane independence), the
drivers (scalar vs lane bit-identity on every registry design, array driver
vs LaneView loop equality), the API/CLI wiring (RunSpec/SweepSpec stimulus,
seed ranges, duplicate rejection, the stim subcommand), plus the satellite
coverage: LaneView memory backdoors and the object-dtype lane store under
driven stimulus, and the deprecation note of the ``python -m repro.bench.fig3``
shim.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import RunSpec, SweepSpec, estimate, sweep
from repro.api.cli import main, parse_seed_list
from repro.designs.registry import all_designs, build_flat, get_design
from repro.netlist import NetlistBuilder, flatten
from repro.power import build_seed_library
from repro.power.lane_estimator import BatchRTLPowerEstimator
from repro.power.rtl_estimator import RTLPowerEstimator
from repro.sim import BatchSimulator, Simulator
from repro.stim import (
    BatchStimulusDriver,
    BurstSpec,
    CompiledStimulus,
    ConstantSpec,
    MarkovSpec,
    MixtureSpec,
    ReplaySpec,
    SpecTestbench,
    StimulusSpec,
    UniformSpec,
    parse_stimulus,
    replay_from_vcd,
)


def _compound_spec(n_cycles=32, seed=3) -> StimulusSpec:
    """One spec exercising every port-stream kind."""
    return StimulusSpec(
        n_cycles=n_cycles,
        seed=seed,
        ports={
            "a": BurstSpec(active=3, idle=5, hold=2, phase=1),
            "b": MarkovSpec(p01=0.3, p10=0.2, init=5),
            "c": MixtureSpec(
                components=((0.6, UniformSpec(hold=4)), (0.4, ConstantSpec(9))),
                hold=3,
            ),
            "d": ReplaySpec(values=(1, 2, 3), repeat=True),
        },
        default=UniformSpec(hold=2),
    )


# ---------------------------------------------------------------------------
# Spec layer
# ---------------------------------------------------------------------------


def test_stimulus_spec_json_round_trip():
    spec = _compound_spec()
    assert StimulusSpec.from_json(spec.to_json()) == spec
    # and through plain JSON text (tuples become lists and come back)
    assert StimulusSpec.from_dict(json.loads(spec.to_json())) == spec


def test_stimulus_spec_validation():
    with pytest.raises(ValueError, match="n_cycles"):
        StimulusSpec(n_cycles=0)
    with pytest.raises(ValueError, match="hold"):
        UniformSpec(hold=0)
    with pytest.raises(ValueError, match="active"):
        BurstSpec(active=0)
    with pytest.raises(ValueError, match="p01"):
        MarkovSpec(p01=1.5)
    with pytest.raises(ValueError, match="component"):
        MixtureSpec(components=())
    with pytest.raises(ValueError, match="value"):
        ReplaySpec(values=())


def test_stimulus_spec_duplicate_port_names_rejected():
    # tuple-of-pairs form with a name collision must hit the clear error,
    # not a TypeError from sorting unorderable PortSpec instances
    with pytest.raises(ValueError, match="duplicate port names"):
        StimulusSpec(
            n_cycles=4,
            ports=(("a", UniformSpec()), ("a", ConstantSpec(1))),
        )


def test_stimulus_spec_resolve_names_unknown_ports():
    spec = StimulusSpec(n_cycles=4, ports={"nope": ConstantSpec(1)})
    with pytest.raises(KeyError, match="nope"):
        spec.resolve({"a": 8})
    # default=None leaves unnamed ports undriven; no ports at all is an error
    empty = StimulusSpec(n_cycles=4, default=None)
    with pytest.raises(ValueError, match="drives no ports"):
        empty.resolve({"a": 8})


def test_parse_stimulus_forms(tmp_path):
    shorthand = parse_stimulus("burst:active=4,idle=12,cycles=96,seed=7")
    assert shorthand.n_cycles == 96 and shorthand.seed == 7
    assert shorthand.default == BurstSpec(active=4, idle=12)

    inline = parse_stimulus(_compound_spec().to_json())
    assert inline == _compound_spec()

    path = tmp_path / "scenario.json"
    path.write_text(_compound_spec().to_json())
    assert parse_stimulus(f"@{path}") == _compound_spec()

    with pytest.raises(ValueError, match="unknown stimulus shorthand"):
        parse_stimulus("gaussian")
    with pytest.raises(ValueError, match="key=value"):
        parse_stimulus("uniform:hold")


def test_replay_from_vcd():
    text = """$timescale 1 ns $end
$scope module top $end
$var wire 4 ! data $end
$var wire 1 @ valid $end
$upscope $end
$enddefinitions $end
#0 b0101 ! 1@
#2 b1111 !
#3 0@
"""
    spec = replay_from_vcd(text, ports={"data": "data", "valid": "valid"})
    assert spec.port_map()["data"].values == (5, 5, 15, 15)
    assert spec.port_map()["valid"].values == (1, 1, 1, 0)
    with pytest.raises(KeyError, match="missing"):
        replay_from_vcd(text, ports={"x": "missing"})


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


WIDTHS = {"a": 8, "b": 12, "c": 16, "d": 4, "e": 61, "f": 70}


def _as_ints(tensor):
    return [int(v) for v in tensor.flat]


def test_compiled_stimulus_chunk_invariance():
    spec = _compound_spec(n_cycles=50)
    tensors = [
        CompiledStimulus(spec, WIDTHS, [3, 11], chunk_cycles=c).tensor()
        for c in (1, 7, 64, 1000)
    ]
    for other in tensors[1:]:
        assert _as_ints(tensors[0]) == _as_ints(other)
    assert tensors[0].shape == (50, 6, 2)


def test_compiled_stimulus_per_seed_lane_independence():
    """Lane i of a multi-seed compile equals a single-seed compile of seeds[i]."""
    spec = _compound_spec(n_cycles=40)
    multi = CompiledStimulus(spec, WIDTHS, [3, 11, 200], chunk_cycles=16).tensor()
    for lane, seed in enumerate([3, 11, 200]):
        single = CompiledStimulus(spec, WIDTHS, [seed], chunk_cycles=9).tensor()
        assert _as_ints(single[:, :, 0]) == _as_ints(multi[:, :, lane])


def test_compiled_stimulus_values_widths_and_dtype():
    spec = _compound_spec(n_cycles=30)
    compiled = CompiledStimulus(spec, WIDTHS, [0])
    assert compiled.dtype is object  # 61/70-bit ports force exact ints
    tensor = compiled.tensor()
    for p, width in enumerate(compiled.port_widths):
        for value in tensor[:, p, :].flat:
            assert 0 <= int(value) < (1 << width)
    narrow = CompiledStimulus(spec, {k: WIDTHS[k] for k in "abcd"}, [0])
    assert narrow.dtype is np.int64


def test_compiled_stimulus_restarts():
    spec = _compound_spec(n_cycles=20)
    compiled = CompiledStimulus(spec, {k: WIDTHS[k] for k in "abcd"}, [0])
    first = compiled.tensor()
    again = compiled.tensor()  # a second pass rewinds the streams
    assert _as_ints(first) == _as_ints(again)
    assert [int(v) for v in compiled.values_at(0).flat] == _as_ints(first[0])


def test_burst_and_replay_stream_shapes():
    spec = StimulusSpec(
        n_cycles=16,
        ports={
            "p": BurstSpec(active=2, idle=2, idle_value=5),
            "q": ReplaySpec(values=(7, 8), hold_last=True),
            "r": ReplaySpec(values=(7, 8), repeat=False, hold_last=False),
        },
        default=None,
    )
    tensor = CompiledStimulus(spec, {"p": 8, "q": 8, "r": 8}, [0]).tensor()
    p = [int(v) for v in tensor[:, 0, 0]]
    assert all(value == 5 for value in p[2::4] + p[3::4])  # idle cycles
    q = [int(v) for v in tensor[:, 1, 0]]
    assert q[:2] == [7, 8] and all(v == 8 for v in q[2:])
    r = [int(v) for v in tensor[:, 2, 0]]
    assert r[:2] == [7, 8] and all(v == 0 for v in r[2:])


# ---------------------------------------------------------------------------
# Drivers: scalar vs lane bit-identity
# ---------------------------------------------------------------------------

_PARITY_SPEC = StimulusSpec(
    n_cycles=24,
    default=MixtureSpec(
        components=((0.7, UniformSpec(hold=2)), (0.3, BurstSpec(active=3, idle=3))),
    ),
)


@pytest.mark.parametrize("name", sorted(all_designs()))
def test_spec_scalar_vs_lane_parity_every_registry_design(name):
    """Spec-driven scalar and lane runs agree on every registry design.

    Driven input streams and functional state are bit-identical (same
    per-(seed, port) streams); accumulated energies agree to float
    round-off (the lane path sums coefficients as a vectorized dot product).
    """
    flat = build_flat(name)
    library = build_seed_library()
    seeds = [0, 1, 2]
    lane_reports = BatchRTLPowerEstimator(flat, library=library).estimate_all(
        [SpecTestbench(_PARITY_SPEC, seed=s) for s in seeds]
    )
    scalar = RTLPowerEstimator(flat, library=library)
    for seed, report in zip(seeds, lane_reports):
        reference = scalar.estimate(SpecTestbench(_PARITY_SPEC, seed=seed))
        assert report.cycles == reference.cycles
        assert report.notes["stimulus_driver"] == "array"
        assert report.total_energy_fj == pytest.approx(
            reference.total_energy_fj, rel=1e-12
        )
        for comp_name, comp in reference.components.items():
            assert report.components[comp_name].energy_fj == pytest.approx(
                comp.energy_fj, rel=1e-9, abs=1e-9
            )


def test_array_driver_equals_laneview_loop_exactly():
    """Same lane machinery, same streams: the two drive paths match exactly."""
    flat = build_flat("binary_search")
    library = build_seed_library()
    estimator = BatchRTLPowerEstimator(flat, library=library)
    spec = get_design("binary_search").make_stimulus_spec()
    testbenches = lambda: [SpecTestbench(spec, seed=s) for s in range(4)]  # noqa: E731
    via_array = estimator.estimate_all(testbenches(), use_array_driver=True)
    via_loop = estimator.estimate_all(testbenches(), use_array_driver=False)
    for a, b in zip(via_array, via_loop):
        assert a.total_energy_fj == b.total_energy_fj
        assert a.cycles == b.cycles
        assert a.notes["stimulus_driver"] == "array"
        assert b.notes["stimulus_driver"] == "lane-view"
    with pytest.raises(ValueError, match="use_array_driver"):
        estimator.estimate_all(
            [get_design("binary_search").make_testbench()], use_array_driver=True
        )


def test_array_driver_requires_equal_lane_budgets():
    """Retargeted per-lane max_cycles must fall back to the LaneView loop."""
    flat = build_flat("HVPeakF")
    spec = get_design("HVPeakF").make_stimulus_spec().replace(n_cycles=16)
    estimator = BatchRTLPowerEstimator(flat, library=build_seed_library())

    def testbenches():
        tbs = [SpecTestbench(spec, seed=s) for s in (0, 1)]
        tbs[1].max_cycles = 8  # one lane on a shorter budget
        return tbs

    auto = estimator.estimate_all(testbenches())
    loop = estimator.estimate_all(testbenches(), use_array_driver=False)
    assert [r.cycles for r in auto] == [r.cycles for r in loop] == [16, 8]
    assert all(r.notes["stimulus_driver"] == "lane-view" for r in auto)
    for a, b in zip(auto, loop):
        assert a.total_energy_fj == b.total_energy_fj
    with pytest.raises(ValueError, match="equal cycle budgets"):
        estimator.estimate_all(testbenches(), use_array_driver=True)


def test_spec_testbench_bind_is_lazy():
    """Binding alone must not compile: the lane path never reads per-lane
    streams, so eager per-testbench compilation would be pure waste."""
    flat = build_flat("HVPeakF")
    spec = get_design("HVPeakF").make_stimulus_spec().replace(n_cycles=8)
    testbenches = [SpecTestbench(spec, seed=s) for s in (0, 1)]
    BatchRTLPowerEstimator(flat, library=build_seed_library()).estimate_all(
        testbenches
    )
    assert all(tb._compiled is None for tb in testbenches)


def test_array_driver_respects_max_cycles():
    flat = build_flat("HVPeakF")
    spec = get_design("HVPeakF").make_stimulus_spec()
    estimator = BatchRTLPowerEstimator(flat, library=build_seed_library())
    reports = estimator.estimate_all(
        [SpecTestbench(spec, seed=s) for s in (0, 1)], max_cycles=10
    )
    assert [r.cycles for r in reports] == [10, 10]


def test_batch_stimulus_driver_functional_parity():
    """BatchStimulusDriver lanes equal scalar SpecTestbench simulations."""
    flat = build_flat("HVPeakF")
    spec = get_design("HVPeakF").make_stimulus_spec().replace(n_cycles=20)
    n_lanes = 3
    simulator = BatchSimulator(flat, n_lanes)
    driver = BatchStimulusDriver(simulator, spec, seeds=[5, 6, 7])
    outputs = []
    driver.run(on_cycle=lambda c, s: outputs.append(s.get_outputs()))
    for lane, seed in enumerate([5, 6, 7]):
        scalar = Simulator(flatten(get_design("HVPeakF").build()))
        testbench = SpecTestbench(spec, seed=seed)
        testbench.bind(scalar)
        for cycle in range(20):
            scalar.set_inputs(testbench.drive(cycle, scalar))
            scalar.settle()
            for port, lanes in outputs[cycle].items():
                assert int(lanes[lane]) == scalar.get_output(port)
            scalar.clock_edge()


def test_batch_stimulus_driver_seed_count_mismatch():
    simulator = BatchSimulator(build_flat("HVPeakF"), 2)
    spec = get_design("HVPeakF").make_stimulus_spec()
    with pytest.raises(ValueError, match="one seed per lane"):
        BatchStimulusDriver(simulator, spec, seeds=[0, 1, 2])


# ---------------------------------------------------------------------------
# Satellite: LaneView memory backdoors + object-dtype store under stimulus
# ---------------------------------------------------------------------------


def _memory_readback_module():
    """addr/we/wdata-driven memory with a registered read port."""
    builder = NetlistBuilder("membank")
    addr = builder.input("addr", 4)
    we = builder.input("we", 1)
    wdata = builder.input("wdata", 8)
    rdata = builder.memory("mem0", width=8, depth=16, we=we, addr=addr, wdata=wdata)
    builder.output("rdata", rdata)
    return flatten(builder.build())


def test_laneview_memory_backdoors_under_driven_stimulus():
    """Per-lane load/write_word/read_word stay isolated while lanes are driven."""
    module = _memory_readback_module()
    n_lanes = 3
    simulator = BatchSimulator(module, n_lanes)
    views = [simulator.lane_view(lane) for lane in range(n_lanes)]
    # distinct per-lane contents through the backdoor
    for lane, view in enumerate(views):
        view.module.components["mem0"].load([(lane + 1) * 10 + i for i in range(16)])
    spec = StimulusSpec(
        n_cycles=12,
        ports={"addr": UniformSpec(), "we": ConstantSpec(0)},
        default=ConstantSpec(0),
    )
    driver = BatchStimulusDriver(simulator, spec, seeds=[0, 1, 2])
    addr_slot = simulator._input_keys["addr"][0]
    seen = []
    driver.run(on_cycle=lambda c, s: seen.append(
        (s._v[addr_slot].copy(), s.get_output("rdata"))
    ))
    # registered read: rdata at cycle c+1 shows lane-private mem[addr at c]
    for (addrs, _), (_, rdata_next) in zip(seen, seen[1:]):
        for lane in range(n_lanes):
            expected = (lane + 1) * 10 + int(addrs[lane])
            assert int(rdata_next[lane]) == expected
    # word-level backdoors reroute to the same per-lane storage
    for lane, view in enumerate(views):
        proxy = view.module.components["mem0"]
        assert proxy.read_word(3) == (lane + 1) * 10 + 3
        proxy.write_word(3, 200 + lane)
        assert proxy.read_word(3) == 200 + lane
    assert views[0].module.components["mem0"].read_word(3) == 200


def test_limb_store_lanes_under_driven_stimulus():
    """61..240-bit modules (int64 limb store) run spec stimulus exactly.

    The stimulus tensor still carries exact object-dtype Python ints for the
    wide ports; the driver splits each column across the port's limb rows.
    """
    builder = NetlistBuilder("wide")
    x = builder.input("x", 70)
    y = builder.input("y", 70)
    builder.output("s", builder.add(x, y, name="sum70"))
    module = flatten(builder.build())

    spec = StimulusSpec(n_cycles=10, default=UniformSpec())
    n_lanes = 3
    simulator = BatchSimulator(module, n_lanes)
    assert simulator.program.dtype is np.int64
    driver = BatchStimulusDriver(simulator, spec, seeds=[0, 1, 2])
    assert driver.stimulus.dtype is object
    mask = (1 << 70) - 1

    def check(cycle, sim):
        xs = sim.get_net("x")
        ys = sim.get_net("y")
        outs = sim.get_output("s")
        for lane in range(n_lanes):
            a, b = int(xs[lane]), int(ys[lane])
            assert a >= 0 and b >= 0
            assert int(outs[lane]) == (a + b) & mask
        # at least one draw should actually exceed the int64 lane range
        check.widest = max(check.widest, *(int(v) for v in xs))

    check.widest = 0
    driver.run(on_cycle=check)
    assert check.widest > (1 << 63)

    # and the power path agrees with a scalar estimator on the same module
    library = build_seed_library()
    lane_reports = BatchRTLPowerEstimator(module, library=library).estimate_all(
        [SpecTestbench(spec, seed=s) for s in (0, 1)]
    )
    scalar = RTLPowerEstimator(module, library=library)
    for seed, report in zip((0, 1), lane_reports):
        reference = scalar.estimate(SpecTestbench(spec, seed=seed))
        assert report.total_energy_fj == pytest.approx(
            reference.total_energy_fj, rel=1e-12
        )


# ---------------------------------------------------------------------------
# API wiring: RunSpec / SweepSpec / estimate / sweep
# ---------------------------------------------------------------------------


def test_runspec_stimulus_round_trip_and_estimate():
    spec = RunSpec(
        design="HVPeakF",
        engine="rtl",
        seed=4,
        stimulus=get_design("HVPeakF").make_stimulus_spec().replace(n_cycles=16),
    )
    assert RunSpec.from_json(spec.to_json()) == spec
    result = estimate(spec)
    assert result.report.cycles == 16
    # same spec through the lane backend: identical to float round-off
    batch = estimate(spec.replace(backend="batch"))
    assert batch.backend == "batch[1]"
    assert batch.report.total_energy_fj == pytest.approx(
        result.report.total_energy_fj, rel=1e-12
    )


def test_runspec_rejects_bad_stimulus():
    with pytest.raises(ValueError, match="StimulusSpec"):
        RunSpec(design="DCT", stimulus="uniform")  # type: ignore[arg-type]


def test_sweep_spec_rejects_duplicate_seeds():
    with pytest.raises(ValueError, match="duplicate stimulus seeds"):
        SweepSpec(designs=("DCT",), seeds=(0, 1, 0))


def test_sweep_with_stimulus_runs_on_lanes():
    spec = SweepSpec(
        designs=("binary_search",),
        engines=("rtl",),
        seeds=(0, 1, 2),
        stimulus=get_design("binary_search").make_stimulus_spec().replace(n_cycles=48),
    )
    result = sweep(spec)
    assert len(result.results) == 3
    assert all(r.backend == "batch[3]" for r in result.results)
    assert all(r.report.notes["stimulus_driver"] == "array" for r in result.results)
    assert all(r.report.cycles == 48 for r in result.results)
    # round trip of the swept result keeps the stimulus attached
    payload = json.loads(json.dumps(result.to_dict()))
    for row in payload["results"]:
        assert row["spec"]["stimulus"]["n_cycles"] == 48


def test_registry_stimulus_declarations():
    assert get_design("HVPeakF").stimulus is not None
    testbench = get_design("HVPeakF").make_stimulus_testbench(seed=9)
    assert isinstance(testbench, SpecTestbench) and testbench.seed == 9
    with pytest.raises(ValueError, match="declares no stimulus"):
        get_design("DCT").make_stimulus_spec()


# ---------------------------------------------------------------------------
# CLI: seed ranges, --stimulus, stim subcommand
# ---------------------------------------------------------------------------


def test_parse_seed_list_ranges_and_duplicates():
    assert parse_seed_list(["0:4"]) == [0, 1, 2, 3]
    assert parse_seed_list(["0:8:2", "100"]) == [0, 2, 4, 6, 100]
    assert parse_seed_list(["-2:1"]) == [-2, -1, 0]
    # duplicate rejection lives in SweepSpec (the single validation point
    # for every construction path, CLI included)
    with pytest.raises(ValueError, match="duplicate stimulus seeds"):
        SweepSpec(designs=("DCT",), seeds=tuple(parse_seed_list(["0:4", "2"])))
    with pytest.raises(ValueError, match="empty"):
        parse_seed_list(["4:4"])
    with pytest.raises(ValueError, match="bad seed range"):
        parse_seed_list(["1:2:3:4"])
    with pytest.raises(ValueError, match="bad seed range"):
        parse_seed_list(["0:8:0"])  # zero step: crafted message, not range()'s
    with pytest.raises(ValueError, match="bad seed"):
        parse_seed_list(["two"])


def test_cli_sweep_seed_range_end_to_end(tmp_path, capsys):
    artifact = tmp_path / "sweep.json"
    code = main([
        "sweep", "--designs", "binary_search", "--seeds", "0:3",
        "--max-cycles", "8", "--json", str(artifact),
    ])
    assert code == 0
    payload = json.loads(artifact.read_text())
    assert [r["spec"]["seed"] for r in payload["results"]] == [0, 1, 2]


def test_cli_sweep_duplicate_seeds_rejected(capsys):
    code = main(["sweep", "--designs", "binary_search", "--seeds", "1", "1"])
    assert code == 2
    assert "duplicate stimulus seeds" in capsys.readouterr().err


def test_cli_stimulus_file_errors_are_clean(capsys):
    code = main(["run", "--design", "HVPeakF", "--stimulus", "@missing.json"])
    assert code == 2
    assert "cannot read stimulus file" in capsys.readouterr().err


def test_cli_run_with_stimulus(tmp_path, capsys):
    artifact = tmp_path / "run.json"
    code = main([
        "run", "--design", "HVPeakF", "--stimulus", "uniform:hold=2,cycles=12",
        "--json", str(artifact),
    ])
    assert code == 0
    payload = json.loads(artifact.read_text())
    assert payload["report"]["cycles"] == 12
    assert payload["spec"]["stimulus"]["default"]["kind"] == "uniform"


def test_cli_stim_subcommand(tmp_path, capsys):
    artifact = tmp_path / "stim.json"
    code = main([
        "stim", "--stimulus", "design", "--design", "binary_search",
        "--preview", "4", "--lanes", "2", "--json", str(artifact),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "toggles/bit/cyc" in out and "first 4 cycles" in out
    payload = json.loads(artifact.read_text())
    assert {row["port"] for row in payload["ports"]} == {"key", "start"}


def test_cli_stim_design_required_for_registry_scenario(capsys):
    code = main(["sweep", "--designs", "DCT", "HVPeakF", "--stimulus", "design",
                 "--seeds", "0"])
    assert code == 2
    assert "exactly one design" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Satellite: fig3 shim deprecation note
# ---------------------------------------------------------------------------


def test_fig3_shim_prints_deprecation_note():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    src = os.path.join(repo_root, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.bench.fig3", "--help"],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env=env,
        timeout=120,
    )
    assert completed.returncode == 0
    assert "deprecated" in completed.stderr
    assert "python -m repro fig3" in completed.stderr
    # the canonical entry must NOT carry the note
    canonical = subprocess.run(
        [sys.executable, "-m", "repro", "fig3", "--help"],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env=env,
        timeout=120,
    )
    assert canonical.returncode == 0
    assert "deprecated" not in canonical.stderr
