"""Shared infrastructure for the benchmark harnesses.

The Figure 3 study itself lives in the library (:mod:`repro.bench.fig3`) so
that benchmark harnesses, examples, the ``python -m repro.bench.fig3`` CLI and
process-pool shard workers all share one implementation.  This conftest wires
it into pytest: one session-scoped study whose results are shared by the
execution-time, speedup and intro harnesses, with optional sharding and
on-disk result caching controlled by environment variables:

* ``REPRO_FIG3_WORKERS=N``   — shard the study over N worker processes
  (default 0: serial in-process),
* ``REPRO_FIG3_CACHE=DIR``   — serve/persist per-design rows from an on-disk
  cache under DIR, keyed by (design, config, code fingerprint); a repeat
  benchmark run of unchanged code is then ~free (default: disabled, so the
  measured wall-clock numbers in the reproduced tables stay honest).
"""

from __future__ import annotations

import json
import os
import platform
import sys

import pytest

from repro.bench.cache import ResultCache
from repro.bench.fig3 import (  # noqa: F401  (re-exported for the harnesses)
    PAPER_MPEG4_NEC_S,
    PAPER_MPEG4_POWERTHEATER_S,
    Fig3Row,
    Fig3Study,
    StudyConfig,
)
from repro.power import build_seed_library

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_result(filename: str, text: str, metrics=None, bench_name=None) -> str:
    """Write a reproduced table under benchmarks/results/ (and echo it).

    Every table also lands as a machine-readable repo-root
    ``BENCH_<name>.json`` summary — the per-PR perf trajectory artifact —
    carrying the harness's headline ``metrics`` (when it passes any) plus the
    rendered table and the python/platform identity of the run.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print(text)
    name = bench_name or os.path.splitext(os.path.basename(filename))[0]
    summary_path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    with open(summary_path, "w") as handle:
        json.dump(
            {
                "benchmark": name,
                "metrics": dict(metrics or {}),
                "table": text.rstrip(),
                "python": sys.version.split()[0],
                "platform": platform.platform(),
            },
            handle,
            sort_keys=True,
            indent=2,
        )
    return path


@pytest.fixture(scope="session")
def fig3_study() -> Fig3Study:
    n_workers = int(os.environ.get("REPRO_FIG3_WORKERS", "0"))
    cache_dir = os.environ.get("REPRO_FIG3_CACHE", "")
    cache = ResultCache(cache_dir, namespace="fig3") if cache_dir else None
    return Fig3Study(cache=cache, n_workers=n_workers)


@pytest.fixture(scope="session")
def seed_library():
    return build_seed_library()
