"""Stimulus generation shared by the benchmark designs and their testbenches.

Includes the scaled integer DCT basis used by the DCT/IDCT engines, a simple
prefix (unary) code used by the VLD benchmark and the MPEG4 composite, and
random block/stream generators with fixed seeds for reproducibility.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

from repro.netlist.signals import from_signed, to_signed

#: scale factor of the integer DCT basis (coefficients are round(SCALE * basis))
DCT_SCALE = 256
#: number of fractional bits implied by :data:`DCT_SCALE`
DCT_SHIFT = 8


# ---------------------------------------------------------------------------
# DCT / IDCT reference math
# ---------------------------------------------------------------------------
def dct_basis_matrix() -> List[List[int]]:
    """8x8 integer DCT basis ``C[u][x] = round(SCALE * c(u)/2 * cos((2x+1)u*pi/16))``."""
    matrix: List[List[int]] = []
    for u in range(8):
        cu = math.sqrt(0.5) if u == 0 else 1.0
        row = [
            int(round(DCT_SCALE * 0.5 * cu * math.cos((2 * x + 1) * u * math.pi / 16.0)))
            for x in range(8)
        ]
        matrix.append(row)
    return matrix


def reference_dct2d(block: Sequence[int]) -> List[int]:
    """Floating-point 2-D DCT of a row-major 8x8 block (reference for tests)."""
    out = [[0.0] * 8 for _ in range(8)]
    for u in range(8):
        for v in range(8):
            cu = math.sqrt(0.5) if u == 0 else 1.0
            cv = math.sqrt(0.5) if v == 0 else 1.0
            total = 0.0
            for x in range(8):
                for y in range(8):
                    total += (
                        block[x * 8 + y]
                        * math.cos((2 * x + 1) * u * math.pi / 16.0)
                        * math.cos((2 * y + 1) * v * math.pi / 16.0)
                    )
            out[u][v] = 0.25 * cu * cv * total
    return [int(round(out[u][v])) for u in range(8) for v in range(8)]


def reference_idct2d(coefficients: Sequence[int]) -> List[int]:
    """Floating-point 2-D inverse DCT (reference for tests)."""
    out = [[0.0] * 8 for _ in range(8)]
    for x in range(8):
        for y in range(8):
            total = 0.0
            for u in range(8):
                for v in range(8):
                    cu = math.sqrt(0.5) if u == 0 else 1.0
                    cv = math.sqrt(0.5) if v == 0 else 1.0
                    total += (
                        cu * cv * coefficients[u * 8 + v]
                        * math.cos((2 * x + 1) * u * math.pi / 16.0)
                        * math.cos((2 * y + 1) * v * math.pi / 16.0)
                    )
            out[x][y] = 0.25 * total
    return [int(round(out[x][y])) for x in range(8) for y in range(8)]


def random_pixel_block(seed: int = 0, amplitude: int = 255) -> List[int]:
    """A smooth-ish random 8x8 pixel block (row-major, unsigned)."""
    rng = random.Random(seed)
    base = rng.randint(32, amplitude - 32)
    return [
        max(0, min(amplitude, base + rng.randint(-30, 30) + 3 * (x + y)))
        for x in range(8)
        for y in range(8)
    ]


def random_coefficient_block(seed: int = 0, magnitude: int = 200, density: float = 0.25) -> List[int]:
    """A sparse block of signed DCT-domain coefficients (row-major)."""
    rng = random.Random(seed)
    block = []
    for i in range(64):
        if i == 0:
            block.append(rng.randint(-magnitude, magnitude))
        elif rng.random() < density:
            block.append(rng.randint(-magnitude // 4, magnitude // 4))
        else:
            block.append(0)
    return block


# ---------------------------------------------------------------------------
# Prefix (unary) code used by the VLD benchmark
# ---------------------------------------------------------------------------
#: maximum symbol value representable by the unary code (also the EOB marker)
VLD_MAX_SYMBOL = 7
#: number of buffer bits inspected per decode step
VLD_LOOKUP_BITS = 8


def vld_encode_symbol(symbol: int) -> Tuple[int, int]:
    """Encode a symbol as (code bits, length): ``symbol`` zeros followed by a one.

    The all-zeros 8-bit pattern is the end-of-block marker.
    """
    if not 0 <= symbol <= VLD_MAX_SYMBOL:
        raise ValueError(f"symbol {symbol} out of range 0..{VLD_MAX_SYMBOL}")
    length = symbol + 1
    return 1, length  # 'symbol' zeros then a 1 => value 1 in 'length' bits


def vld_encode(symbols: Sequence[int], word_bits: int = 16) -> List[int]:
    """Encode a symbol sequence (terminated by EOB) into memory words, MSB first."""
    bits: List[int] = []
    for symbol in symbols:
        _, length = vld_encode_symbol(symbol)
        bits.extend([0] * (length - 1) + [1])
    bits.extend([0] * VLD_LOOKUP_BITS)  # end-of-block marker
    while len(bits) % word_bits:
        bits.append(0)
    words = []
    for i in range(0, len(bits), word_bits):
        word = 0
        for bit in bits[i:i + word_bits]:
            word = (word << 1) | bit
        words.append(word)
    return words


def vld_decode_table() -> List[int]:
    """ROM contents: for each 8-bit prefix, ``(length << 8) | symbol``.

    ``length == 0`` encodes the end-of-block marker.
    """
    table = []
    for prefix in range(1 << VLD_LOOKUP_BITS):
        leading_zeros = 0
        for bit_index in range(VLD_LOOKUP_BITS - 1, -1, -1):
            if (prefix >> bit_index) & 1:
                break
            leading_zeros += 1
        if leading_zeros >= VLD_LOOKUP_BITS:
            table.append(0)  # EOB
        else:
            symbol = leading_zeros
            length = leading_zeros + 1
            table.append((length << 8) | symbol)
    return table


def vld_reference_decode(words: Sequence[int], word_bits: int = 16) -> List[int]:
    """Software reference decoder for the unary code (for checking the RTL)."""
    bits: List[int] = []
    for word in words:
        bits.extend((word >> (word_bits - 1 - i)) & 1 for i in range(word_bits))
    symbols: List[int] = []
    index = 0
    while index + VLD_LOOKUP_BITS <= len(bits) + VLD_LOOKUP_BITS:
        window = bits[index:index + VLD_LOOKUP_BITS]
        window += [0] * (VLD_LOOKUP_BITS - len(window))
        if all(bit == 0 for bit in window):
            break
        zeros = 0
        for bit in window:
            if bit:
                break
            zeros += 1
        symbols.append(zeros)
        index += zeros + 1
    return symbols


# ---------------------------------------------------------------------------
# Generic streams
# ---------------------------------------------------------------------------
def random_pixels(n: int, seed: int = 0, width: int = 8) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(width) for _ in range(n)]


def random_sorted_array(n: int, seed: int = 0, width: int = 16) -> List[int]:
    rng = random.Random(seed)
    values = sorted(rng.sample(range(1 << width), n))
    return values


def random_array(n: int, seed: int = 0, width: int = 16) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(width) for _ in range(n)]


def signed_to_field(value: int, width: int) -> int:
    """Encode a signed integer into an unsigned memory field."""
    return from_signed(value, width)


def field_to_signed(value: int, width: int) -> int:
    return to_signed(value, width)
