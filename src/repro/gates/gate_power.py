"""Gate-level power computation.

Dynamic energy of one input-vector transition is the sum over toggled nets of
``1/2 * C_load * Vdd^2`` plus the internal energy of the driving cell; static
power is the sum of cell leakage.  The resulting energies are the reference
values that the macromodel characterization engine regresses against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.gates.cells import CB013_LIBRARY, StandardCellLibrary
from repro.gates.gate_netlist import GateNetlist
from repro.gates.gatesim import GateLevelSimulator


@dataclass
class GateTransitionEnergy:
    """Energy breakdown of one vector-to-vector transition."""

    switching_fj: float
    internal_fj: float
    n_toggled_nets: int

    @property
    def total_fj(self) -> float:
        return self.switching_fj + self.internal_fj


class GatePowerCalculator:
    """Computes dynamic energy and leakage for a gate netlist."""

    def __init__(
        self,
        netlist: GateNetlist,
        library: StandardCellLibrary = CB013_LIBRARY,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.loads_ff = netlist.load_capacitance_ff(library)
        self._driver_cell = {gate.output: gate.cell for gate in netlist.gates}
        self._physical_nets = [
            net
            for net in netlist.all_nets()
            if net not in netlist.aliases and net not in netlist.constants
        ]

    # -------------------------------------------------------------- dynamic
    def transition_energy(
        self,
        previous: Mapping[str, int],
        current: Mapping[str, int],
    ) -> GateTransitionEnergy:
        """Energy of moving the network from ``previous`` to ``current`` values."""
        switching = 0.0
        internal = 0.0
        toggled = 0
        for net in self._physical_nets:
            if previous.get(net, 0) == current.get(net, 0):
                continue
            toggled += 1
            switching += self.library.switching_energy_fj(self.loads_ff.get(net, 0.0))
            cell = self._driver_cell.get(net)
            if cell is not None:
                internal += cell.intrinsic_energy_fj
        return GateTransitionEnergy(switching, internal, toggled)

    def vector_pair_energy(
        self,
        simulator: GateLevelSimulator,
        first_ports: Mapping[str, int],
        second_ports: Mapping[str, int],
        port_widths: Mapping[str, int],
    ) -> GateTransitionEnergy:
        """Convenience: energy of applying ``first`` then ``second`` port vectors."""
        simulator.evaluate_ports(first_ports, port_widths)
        before = simulator.snapshot()
        simulator.evaluate_ports(second_ports, port_widths)
        after = simulator.snapshot()
        return self.transition_energy(before, after)

    def run_vector_sequence(
        self,
        vectors: Sequence[Mapping[str, int]],
        port_widths: Mapping[str, int],
        simulator: Optional[GateLevelSimulator] = None,
    ) -> List[GateTransitionEnergy]:
        """Apply a sequence of port vectors; return per-transition energies.

        The returned list has ``len(vectors) - 1`` entries (one per transition).
        """
        if simulator is None:
            simulator = GateLevelSimulator(self.netlist)
        simulator.reset()
        energies: List[GateTransitionEnergy] = []
        previous_snapshot: Optional[Dict[str, int]] = None
        for vector in vectors:
            simulator.evaluate_ports(vector, port_widths)
            snapshot = simulator.snapshot()
            if previous_snapshot is not None:
                energies.append(self.transition_energy(previous_snapshot, snapshot))
            previous_snapshot = snapshot
        return energies

    # --------------------------------------------------------------- static
    def leakage_power_nw(self) -> float:
        return self.netlist.total_leakage_nw()

    def area_um2(self) -> float:
        return self.netlist.total_area_um2()
