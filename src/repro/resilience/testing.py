"""Tiny picklable workers for exercising the resilient runner.

Pool workers must be module-level functions importable from worker processes
(the ``forkserver`` context pickles them by reference), so the test suite's
fault-path tests use these rather than locals defined in test modules.  All
failure behaviour is injected via the fault plan
(:mod:`repro.resilience.faults`) — the workers themselves are deliberately
boring.
"""

from __future__ import annotations

import time


def echo_task(payload):
    """Return the payload unchanged."""
    return payload


def double_task(value):
    """Return twice the numeric payload."""
    return 2 * value


def sleep_task(seconds):
    """Sleep ``seconds`` then return it (worker wall-time tests)."""
    time.sleep(float(seconds))
    return seconds


def failing_task(payload):
    """Raise ValueError when the payload is the string ``"bad"``."""
    if payload == "bad":
        raise ValueError(f"refusing payload {payload!r}")
    return payload
