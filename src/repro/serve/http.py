"""Thin HTTP and stdio front ends over :class:`~repro.serve.server.PowerServer`.

Hand-rolled on ``asyncio`` streams — no web framework, no dependencies.  The
HTTP surface is deliberately tiny:

* ``POST /jobs`` — body is a :class:`~repro.api.spec.RunSpec` JSON payload;
  responds ``202 {"job_id": ...}`` immediately (the job queues/coalesces).
* ``GET /jobs`` — every known job, one summary line each.
* ``GET /jobs/<id>`` — the full job record (state, events, error).
* ``GET /jobs/<id>/result`` — blocks until the job finishes, then the
  :class:`~repro.api.spec.EstimateResult` payload (``409`` + the structured
  error when the job failed).
* ``GET /jobs/<id>/profile`` — blocks until the job finishes, then the
  :class:`~repro.power.profile.PowerProfile` payload (``404`` when the job
  was not submitted with ``power_profile``; ``409`` on failure).
* ``GET /jobs/<id>/events`` — live NDJSON stream of progress events, one
  JSON object per line, closing after the terminal event; a finished
  profiled job's ``done`` event carries a downsampled windowed-power
  summary.
* ``GET /stats`` — server + cache statistics (including the process-wide
  compile counters that prove coalescing).
* ``GET /metrics`` — the process-wide :mod:`repro.obs` metrics registry in
  Prometheus text exposition format (scrape-ready).

The stdio front end (:func:`run_stdio`) speaks the same operations as JSON
lines on stdin/stdout — for supervisors that prefer pipes over sockets:
``{"op": "submit", "spec": {...}}`` → ``{"ok": true, "job_id": ...}``, plus
``status``, ``result`` (waits), ``events`` (streams), ``stats`` and
``shutdown``.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Dict, Optional, TextIO, Tuple

from repro import obs
from repro.serve.server import JobFailed, PowerServer

#: maximum accepted request-body size (a RunSpec payload is tiny)
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


def _response(status: int, payload: Dict[str, object]) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode()
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + body


def _text_response(status: int, text: str, content_type: str) -> bytes:
    body = text.encode()
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + body


class HttpFrontend:
    """Minimal HTTP/1.1 server bridging sockets to a :class:`PowerServer`."""

    def __init__(
        self, server: PowerServer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._listener: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._listener = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # resolve the kernel-assigned port when asked for an ephemeral one
        self.port = self._listener.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- connection
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, body = await self._read_request(reader)
            if method is not None:
                await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # a broken handler must not kill the loop
            try:
                writer.write(
                    _response(500, {"error": f"{type(exc).__name__}: {exc}"})
                )
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[Optional[str], str, bytes]:
        request_line = await reader.readline()
        if not request_line:
            return None, "", b""
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None, "", b""
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = min(int(value.strip()), MAX_BODY_BYTES)
                except ValueError:
                    content_length = 0
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        return method, path, body

    # ---------------------------------------------------------------- routing
    async def _route(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        server = self.server
        if method == "POST" and path == "/jobs":
            try:
                spec = json.loads(body.decode() or "{}")
                job_id = await server.submit(spec)
            except (ValueError, KeyError, TypeError) as exc:
                writer.write(_response(400, {"error": str(exc)}))
                return
            writer.write(_response(202, {"job_id": job_id}))
            return
        if method != "GET":
            writer.write(_response(405, {"error": f"no route {method} {path}"}))
            return
        if path == "/stats":
            writer.write(_response(200, server.stats()))
            return
        if path == "/metrics":
            writer.write(
                _text_response(
                    200,
                    obs.render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            )
            return
        if path == "/jobs":
            writer.write(
                _response(
                    200,
                    {
                        "jobs": [
                            {
                                "job_id": r.job_id,
                                "state": r.state,
                                "design": r.spec.design,
                                "engine": r.spec.engine,
                                "seed": r.spec.seed,
                                "cached": r.cached,
                                "group_size": r.group_size,
                            }
                            for r in server.store.jobs()
                        ]
                    },
                )
            )
            return
        if path.startswith("/jobs/"):
            segments = path[len("/jobs/"):].split("/")
            job_id, tail = segments[0], segments[1:]
            try:
                record = server.status(job_id)
            except KeyError:
                writer.write(_response(404, {"error": f"unknown job {job_id}"}))
                return
            if not tail:
                writer.write(_response(200, record.to_dict()))
                return
            if tail == ["result"]:
                try:
                    result = await server.result(job_id)
                except JobFailed as failed:
                    writer.write(
                        _response(
                            409,
                            {
                                "state": failed.record.state,
                                "error": failed.record.error,
                            },
                        )
                    )
                    return
                writer.write(_response(200, result.to_dict()))
                return
            if tail == ["profile"]:
                try:
                    result = await server.result(job_id)
                except JobFailed as failed:
                    writer.write(
                        _response(
                            409,
                            {
                                "state": failed.record.state,
                                "error": failed.record.error,
                            },
                        )
                    )
                    return
                if result.profile is None:
                    writer.write(
                        _response(
                            404,
                            {
                                "error": f"job {job_id} has no power profile "
                                         f"(submit with power_profile=true)",
                            },
                        )
                    )
                    return
                writer.write(_response(200, result.profile.to_dict()))
                return
            if tail == ["events"]:
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/x-ndjson\r\n"
                    b"Connection: close\r\n\r\n"
                )
                async for event in server.events(job_id):
                    writer.write(
                        json.dumps(event.to_dict(), sort_keys=True).encode()
                        + b"\n"
                    )
                    await writer.drain()
                return
        writer.write(_response(404, {"error": f"no route {method} {path}"}))


# ------------------------------------------------------------------- stdio
async def run_stdio(
    server: PowerServer,
    input_stream: Optional[TextIO] = None,
    output_stream: Optional[TextIO] = None,
) -> None:
    """Serve JSON-line operations over stdin/stdout until EOF/``shutdown``."""
    stdin = input_stream if input_stream is not None else sys.stdin
    stdout = output_stream if output_stream is not None else sys.stdout
    loop = asyncio.get_running_loop()

    def reply(payload: Dict[str, object]) -> None:
        stdout.write(json.dumps(payload, sort_keys=True) + "\n")
        stdout.flush()

    while True:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            return
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            op = request.get("op")
            if op == "shutdown":
                reply({"ok": True, "op": "shutdown"})
                return
            if op == "submit":
                job_id = await server.submit(request["spec"])
                reply({"ok": True, "job_id": job_id})
            elif op == "status":
                record = server.status(request["job_id"])
                reply({"ok": True, "job": record.to_dict()})
            elif op == "result":
                try:
                    result = await server.result(request["job_id"])
                    reply({"ok": True, "result": result.to_dict()})
                except JobFailed as failed:
                    reply(
                        {
                            "ok": False,
                            "state": failed.record.state,
                            "error": failed.record.error,
                        }
                    )
            elif op == "events":
                async for event in server.events(request["job_id"]):
                    reply({"ok": True, "event": event.to_dict()})
            elif op == "stats":
                reply({"ok": True, "stats": server.stats()})
            else:
                reply({"ok": False, "error": f"unknown op {op!r}"})
        except (ValueError, KeyError, TypeError) as exc:
            reply({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
