"""The asyncio power-estimation job server.

:class:`PowerServer` accepts :class:`~repro.api.spec.RunSpec` jobs, coalesces
compatible ones into shared lane blocks (:mod:`repro.serve.coalesce`), runs
each group in a worker thread through the very same
:meth:`~repro.api.estimators.RTLEstimatorAdapter.estimate_many` path the
sweep runner uses — so served results are bit-identical to standalone
``repro.api`` estimates — and streams per-job progress events
(``queued → coalesced → compiling → simulating → done``).

Design points:

* **One event loop, one worker thread at a time.**  Submissions, state
  transitions and event streaming all happen on the loop; group execution
  runs in ``asyncio.to_thread``.  Groups execute sequentially because lane
  programs cache per flat module — two simultaneous simulations of one
  design would fight over shared per-module state.  Throughput comes from
  coalescing, not from racing groups.
* **Coalescing window.**  The dispatcher sleeps ``coalesce_window_s`` after
  the first pending submission before draining, so a burst of concurrent
  clients lands in one shared lane block instead of N singleton runs.
* **Warm process caches.**  Adapters (and their power-model library), flat
  modules, lane programs and compiled kernels all persist for the process
  lifetime, so repeat jobs only pay simulation.  ``stats()`` exposes the
  process-wide :data:`~repro.sim.batch.PROGRAM_BUILD_COUNT` /
  :data:`~repro.sim.kernels.KERNEL_BUILD_COUNT` counters that prove
  coalesced jobs shared one build.
* **Per-job error isolation.**  When a shared group raises, every member is
  re-run alone: healthy siblings still produce results and exactly the
  poisoned job fails, carrying a structured
  :class:`~repro.resilience.failures.TaskFailure` payload
  (``repro.resilience`` style) in its record.
* **Durable job store.**  With a ``cache_dir``, job records persist across
  restarts and results land in the sweep-compatible ``estimate`` namespace —
  a spec already swept (or served) is answered from cache without
  simulating.  Stopping the server marks unfinished jobs ``interrupted`` and
  flushes them, so Ctrl-C leaves a consistent ledger.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from typing import AsyncIterator, Dict, List, Optional, Union

from repro import obs
from repro.api.estimators import estimator_for
from repro.api.spec import (
    EstimateResult,
    RunSpec,
    coalesce_key,
    is_coalescable,
)
from repro.resilience.failures import TaskFailure
from repro.serve.coalesce import CoalescingQueue, JobGroup
from repro.serve.protocol import JobRecord, ProgressEvent
from repro.serve.store import JobStore


def build_counts() -> Dict[str, int]:
    """Process-lifetime lane-program / kernel compile counters."""
    from repro.sim import batch, kernels

    return {
        "program_builds": batch.PROGRAM_BUILD_COUNT,
        "kernel_builds": kernels.KERNEL_BUILD_COUNT,
    }


_JOBS_SUBMITTED = obs.counter(
    "repro_serve_jobs_submitted_total", "Jobs accepted by the server"
)
_JOBS_TERMINAL = obs.counter(
    "repro_serve_jobs_total", "Jobs that reached a terminal state, by state"
)
_SERVE_CACHE_HITS = obs.counter(
    "repro_serve_cache_hits_total",
    "Jobs answered straight from the persistent result cache",
)
_GROUPS = obs.counter(
    "repro_serve_groups_total",
    "Execution groups drained (shared lane blocks and singletons)",
)
_COALESCED_JOBS = obs.counter(
    "repro_serve_coalesced_jobs_total",
    "Jobs that ran as lanes of a shared (size > 1) group",
)
_QUEUE_DEPTH = obs.gauge(
    "repro_serve_queue_depth", "Jobs waiting in the coalescing queue"
)
_GROUP_SIZE = obs.histogram(
    "repro_serve_group_size",
    "Drained group sizes (lanes per shared block)",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
)
_JOB_LATENCY = obs.histogram(
    "repro_serve_job_latency_seconds", "Submit-to-terminal wall time per job"
)


class JobFailed(RuntimeError):
    """Awaited job ended ``failed``/``interrupted``; carries the record."""

    def __init__(self, record: JobRecord) -> None:
        error = record.error or {}
        super().__init__(
            f"job {record.job_id} {record.state}: "
            f"{error.get('error_type', '')}: {error.get('message', '')}"
        )
        self.record = record


class PowerServer:
    """Coalescing power-estimation job server (one asyncio loop)."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        coalesce_window_s: float = 0.05,
        cache_max_bytes: Optional[int] = None,
    ) -> None:
        self.store = JobStore(cache_dir, max_bytes=cache_max_bytes)
        self.queue = CoalescingQueue()
        self.coalesce_window_s = coalesce_window_s
        self.started_at: Optional[float] = None
        #: jobs submitted to this server instance
        self.n_submitted = 0
        #: jobs answered straight from the persistent result cache
        self.n_cache_hits = 0
        #: execution groups drained (shared lane blocks + singletons)
        self.n_groups = 0
        #: jobs that ran as lanes of a shared (size > 1) group
        self.n_coalesced_jobs = 0
        self._adapters: Dict[str, object] = {}
        #: live per-job phase span (job_id -> span of the job's current state);
        #: ended — and its duration attached to the next event — on transition
        self._phase_spans: Dict[str, obs.Span] = {}
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._kick: Optional[asyncio.Event] = None
        self._cond: Optional[asyncio.Condition] = None

    # --------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._kick = asyncio.Event()
        self._cond = asyncio.Condition()
        self.started_at = time.time()
        self.store.load_persisted()
        self._dispatcher = asyncio.create_task(
            self._dispatch(), name="repro-serve-dispatch"
        )

    async def stop(self) -> None:
        """Stop dispatching and mark every unfinished job ``interrupted``.

        Completed results were persisted as they landed; this flushes the
        final state of queued/running jobs so the on-disk job store is
        consistent after Ctrl-C or shutdown.
        """
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for record in self.store.jobs():
            if not record.terminal:
                await self._transition(
                    record, "interrupted", {"reason": "server stopped"}
                )

    async def __aenter__(self) -> "PowerServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -------------------------------------------------------------- submission
    async def submit(
        self, spec: Union[RunSpec, Dict[str, object]]
    ) -> str:
        """Queue one run; returns its job id immediately.

        Specs whose result already exists in the shared cache complete
        instantly (state ``done``, ``cached`` flag set) without simulating.
        """
        if isinstance(spec, dict):
            spec = RunSpec.from_dict(spec)
        from repro.designs.registry import get as _get_design

        _get_design(spec.design)  # reject unknown designs at the door
        record = self.store.create(spec)
        self.n_submitted += 1
        _JOBS_SUBMITTED.inc()
        await self._transition(
            record,
            "queued",
            {
                "coalesce_key": (
                    coalesce_key(spec) if is_coalescable(spec) else None
                )
            },
        )
        cached = self.store.cached_result(spec)
        if cached is not None:
            key, payload = cached
            self.n_cache_hits += 1
            _SERVE_CACHE_HITS.inc()
            record.cached = True
            record.result_key = key
            report = payload.get("report") or {}
            await self._transition(
                record,
                "done",
                {
                    "cached": True,
                    "cycles": report.get("cycles"),
                    "average_power_mw": report.get("average_power_mw"),
                },
            )
            return record.job_id
        self.queue.push(record)
        _QUEUE_DEPTH.set(len(self.queue))
        self._kick.set()
        return record.job_id

    # ----------------------------------------------------------------- queries
    def status(self, job_id: str) -> JobRecord:
        return self.store.get(job_id)

    async def wait(self, job_id: str) -> JobRecord:
        """Block until the job reaches a terminal state."""
        record = self.store.get(job_id)
        async with self._cond:
            await self._cond.wait_for(lambda: record.terminal)
        return record

    async def result(self, job_id: str) -> EstimateResult:
        """The job's result, awaiting completion; raises :class:`JobFailed`."""
        record = await self.wait(job_id)
        if record.state != "done":
            raise JobFailed(record)
        result = self.store.get_result(record)
        if result is None:
            raise JobFailed(record)
        return result

    async def events(self, job_id: str) -> AsyncIterator[ProgressEvent]:
        """Stream the job's progress events, live, until a terminal one."""
        record = self.store.get(job_id)
        emitted = 0
        while True:
            while emitted < len(record.events):
                yield record.events[emitted]
                emitted += 1
            if record.terminal:
                return
            async with self._cond:
                # wait_for re-checks before sleeping: no missed notifications
                await self._cond.wait_for(
                    lambda: record.terminal or emitted < len(record.events)
                )

    def stats(self) -> Dict[str, object]:
        by_state: Dict[str, int] = {}
        for record in self.store.jobs():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        stats = {
            "started_at": self.started_at,
            "jobs_submitted": self.n_submitted,
            "jobs_by_state": by_state,
            "pending": len(self.queue),
            "groups": self.n_groups,
            "coalesced_jobs": self.n_coalesced_jobs,
            "cache_hits": self.n_cache_hits,
            "cache": self.store.stats(),
        }
        stats.update(build_counts())
        return stats

    # -------------------------------------------------------------- dispatching
    async def _dispatch(self) -> None:
        while True:
            await self._kick.wait()
            if self.coalesce_window_s > 0:
                # let concurrently-submitting clients land in this drain
                await asyncio.sleep(self.coalesce_window_s)
            self._kick.clear()
            groups = self.queue.drain()
            _QUEUE_DEPTH.set(len(self.queue))
            for group in groups:
                self.n_groups += 1
                _GROUPS.inc()
                _GROUP_SIZE.observe(len(group))
                if len(group) > 1:
                    self.n_coalesced_jobs += len(group)
                    _COALESCED_JOBS.inc(len(group))
                for lane, record in enumerate(group.jobs):
                    record.group_size = len(group)
                    await self._transition(
                        record,
                        "coalesced",
                        {
                            "group_size": len(group),
                            "lane": lane,
                            "coalesce_key": group.key,
                        },
                    )
                await asyncio.to_thread(self._run_group, group)

    # ------------------------------------------------------- state transitions
    async def _transition(
        self,
        record: JobRecord,
        state: str,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        detail = dict(detail or {})
        # End the span of the state the job is leaving; the measured duration
        # rides along on the *new* event, so streaming clients see how long
        # each phase took without diffing timestamps themselves.
        previous = self._phase_spans.pop(record.job_id, None)
        if previous is not None:
            detail["phase_s"] = round(previous.end(), 6)
        record.state = state
        if record.terminal:
            record.finished_at = time.time()
            _JOBS_TERMINAL.inc(state=state)
            if record.submitted_at:
                latency = record.finished_at - record.submitted_at
                _JOB_LATENCY.observe(latency)
                detail["total_s"] = round(latency, 6)
        else:
            self._phase_spans[record.job_id] = obs.start_span(
                f"serve.job.{state}",
                job_id=record.job_id,
                design=record.spec.design,
            )
        record.events.append(
            ProgressEvent(
                job_id=record.job_id,
                state=state,
                seq=len(record.events),
                at_s=time.time(),
                detail=detail,
            )
        )
        self.store.save(record)
        async with self._cond:
            self._cond.notify_all()

    def _transition_sync(
        self,
        record: JobRecord,
        state: str,
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        """Worker-thread transition: runs on the loop, waits for delivery."""
        asyncio.run_coroutine_threadsafe(
            self._transition(record, state, detail), self._loop
        ).result()

    # --------------------------------------------------------------- execution
    def _adapter(self, engine: str):
        adapter = self._adapters.get(engine)
        if adapter is None:
            adapter = self._adapters[engine] = estimator_for(engine)
        return adapter

    def _run_group(self, group: JobGroup) -> None:
        """Execute one drained group in this worker thread."""
        specs = group.specs
        first = specs[0]
        try:
            before = build_counts()
            for record in group.jobs:
                self._transition_sync(record, "compiling", dict(before))
            if group.key is not None:
                adapter = self._adapter("rtl")
                warm = adapter.warm(first, n_lanes=len(specs))
                built = {
                    k: build_counts()[k] - before[k] for k in before
                }
                for record in group.jobs:
                    self._transition_sync(
                        record, "simulating", {**warm, **built}
                    )
                results = adapter.estimate_many(specs)
            else:
                adapter = self._adapter(first.engine)
                for record in group.jobs:
                    self._transition_sync(record, "simulating", {})
                results = [adapter.estimate(spec) for spec in specs]
        except Exception:
            self._run_solo_fallback(group)
            return
        for record, result in zip(group.jobs, results):
            self._finish_job(record, result)

    def _run_solo_fallback(self, group: JobGroup) -> None:
        """Re-run each member alone after a group failure: exact blame.

        A poisoned member (bad seed, injected fault, unresolvable stimulus)
        fails by itself with a structured error; its lane-mates still
        produce results — one job can never take its siblings down.
        """
        for record in group.jobs:
            spec = record.spec
            try:
                result = self._adapter(spec.engine).estimate(spec)
            except Exception as exc:
                failure = TaskFailure(
                    task_index=0,
                    label=f"{spec.design}[{spec.engine}] job {record.job_id}",
                    kind="exception",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback=traceback.format_exc(),
                    attempts=2 if len(group) > 1 else 1,
                )
                record.error = failure.to_dict()
                self._transition_sync(
                    record,
                    "failed",
                    {
                        "error_type": failure.error_type,
                        "message": failure.message,
                        "attempts": failure.attempts,
                    },
                )
            else:
                self._finish_job(record, result, solo_fallback=len(group) > 1)

    def _finish_job(
        self,
        record: JobRecord,
        result: EstimateResult,
        solo_fallback: bool = False,
    ) -> None:
        result.metadata["job_id"] = record.job_id
        result.metadata["group_size"] = max(record.group_size, 1)
        record.result_key = self.store.put_result(record.spec, result.to_dict())
        detail = {
            "cycles": result.report.cycles,
            "average_power_mw": result.report.average_power_mw,
            "peak_power_mw": result.report.peak_power_mw,
            "backend": result.backend,
        }
        if result.profile is not None:
            # streamed windowed power: enough for a live client to draw the
            # power-over-time curve without fetching the full profile (which
            # stays one GET /jobs/<id>/profile away); long runs downsample
            # to <= 32 points by striding
            power = result.profile.window_power_mw()
            stride = max(1, -(-len(power) // 32))
            detail["profile"] = {
                "n_windows": result.profile.n_windows,
                "window_cycles": result.profile.window_cycles,
                "peak_power_mw": result.profile.peak_power_mw(),
                "window_power_mw": [
                    round(float(value), 6) for value in power[::stride]
                ],
            }
        if solo_fallback:
            detail["solo_fallback"] = True
        self._transition_sync(record, "done", detail)
