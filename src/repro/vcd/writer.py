"""VCD (IEEE 1364 Value Change Dump) writer.

Writes the waveforms captured by
:class:`repro.sim.waveform.WaveformRecorder` in the standard four-state VCD
text format (only 0/1 values are ever produced by the two-valued simulator).
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, Mapping, Optional, TextIO

from repro.sim.waveform import Waveform

#: printable identifier characters per the VCD grammar
_ID_CHARS = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Generate the compact VCD identifier code for the ``index``-th signal."""
    if index < 0:
        raise ValueError("index must be non-negative")
    base = len(_ID_CHARS)
    chars = []
    index += 1
    while index > 0:
        index -= 1
        chars.append(_ID_CHARS[index % base])
        index //= base
    return "".join(reversed(chars))


def _format_value(value: int, width: int) -> str:
    if width == 1:
        return f"{value & 1}"
    return "b" + format(value, "b").zfill(1)


def write_vcd(
    waveforms: Mapping[str, Waveform],
    stream: TextIO,
    *,
    module_name: str = "top",
    timescale: str = "1 ns",
    clock_period_ns: int = 10,
    date: str = "reproduction run",
    end_cycle: Optional[int] = None,
) -> None:
    """Write waveforms to ``stream`` as VCD.

    Each simulation cycle maps to ``clock_period_ns`` VCD time units.
    """
    names = sorted(waveforms)
    codes: Dict[str, str] = {name: _identifier(i) for i, name in enumerate(names)}

    stream.write(f"$date {date} $end\n")
    stream.write("$version repro power-emulation VCD writer $end\n")
    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {module_name} $end\n")
    for name in names:
        wf = waveforms[name]
        stream.write(f"$var wire {wf.width} {codes[name]} {name} $end\n")
    stream.write("$upscope $end\n")
    stream.write("$enddefinitions $end\n")

    # initial values
    stream.write("$dumpvars\n")
    for name in names:
        wf = waveforms[name]
        initial = wf.changes[0][1] if wf.changes and wf.changes[0][0] == 0 else 0
        stream.write(_emit(initial, wf.width, codes[name]))
    stream.write("$end\n")

    # gather events per cycle
    events: Dict[int, list] = {}
    last = 0
    for name in names:
        wf = waveforms[name]
        for cycle, value in wf.changes:
            if cycle == 0:
                continue
            events.setdefault(cycle, []).append((name, value))
            last = max(last, cycle)
    if end_cycle is not None:
        last = max(last, end_cycle)

    for cycle in sorted(events):
        stream.write(f"#{cycle * clock_period_ns}\n")
        for name, value in events[cycle]:
            stream.write(_emit(value, waveforms[name].width, codes[name]))
    stream.write(f"#{(last + 1) * clock_period_ns}\n")


def _emit(value: int, width: int, code: str) -> str:
    if width == 1:
        return f"{value & 1}{code}\n"
    return f"b{format(value, 'b')} {code}\n"


def vcd_string(waveforms: Mapping[str, Waveform], **kwargs) -> str:
    """Convenience wrapper returning the VCD text as a string."""
    buffer = io.StringIO()
    write_vcd(waveforms, buffer, **kwargs)
    return buffer.getvalue()
