"""The cycle-accurate simulation engine.

Two backends execute the same levelized schedule with identical observable
behaviour:

* ``"compiled"`` (default) — the Verilator-style fast path: every net gets a
  dense integer slot in a flat value list and the whole schedule is
  code-generated once per module into straight-line, allocation-free Python
  (:mod:`repro.sim.compiled`).  Simple components are fused into masked
  integer expressions; complex ones fall back to pre-bound
  ``evaluate``/``capture`` calls.  If code generation fails for any reason
  the simulator silently falls back to the interpreter.
* ``"interp"`` — the original reference interpreter: per component and per
  cycle, a ``{port_name: value}`` dict is built and the virtual
  ``Component.evaluate`` is invoked.  It is kept both as the correctness
  oracle for the compiled backend (see the cross-backend parity tests) and as
  the baseline for the throughput benchmarks.

The public API is backend-agnostic: ``set_input``/``get_output``/``get_net``,
``component_io_values`` and ``Simulator.values`` (a Net-keyed mapping) work
identically on both, so instrumentation observers, power estimators, traces
and the emulation platform run unchanged — just faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.netlist.module import Module
from repro.netlist.nets import Net
from repro.netlist.signals import mask_value
from repro.sim.compiled import SlotValues, try_compile
from repro.sim.scheduler import Schedule, schedule_for


class SimulationObserver:
    """Hook interface invoked by the simulator.

    ``on_cycle`` runs after the combinational settle of every cycle (i.e. with
    all values for the current cycle stable, just before the clock edge) —
    the same sampling instant as the paper's power strobe.
    """

    def on_reset(self, simulator: "Simulator") -> None:  # pragma: no cover - default no-op
        return None

    def on_cycle(self, simulator: "Simulator", cycle: int) -> None:
        raise NotImplementedError

    def on_finish(self, simulator: "Simulator") -> None:  # pragma: no cover - default no-op
        return None


@dataclass
class SimulationResult:
    """Summary of a testbench run."""

    design: str
    cycles: int
    wall_time_s: float
    #: values of module output ports at the final settled cycle
    final_outputs: Dict[str, int] = field(default_factory=dict)
    #: optional per-testbench payload (captured outputs, check counts, ...)
    captured: Dict[str, object] = field(default_factory=dict)

    @property
    def cycles_per_second(self) -> float:
        """Simulation throughput (simulated cycles per wall-clock second)."""
        if self.cycles == 0:
            return 0.0
        if self.wall_time_s <= 0:
            return float("inf")
        return self.cycles / self.wall_time_s


class Simulator:
    """Cycle-accurate simulator for a flat RTL module.

    Typical use::

        sim = Simulator(flatten(design))
        sim.run(testbench)

    or, for manual control::

        sim.set_input("start", 1)
        sim.step()
        value = sim.get_output("done")

    ``backend`` selects the execution strategy (see the module docstring);
    the resolved choice is recorded in ``Simulator.backend``.
    """

    def __init__(
        self,
        module: Module,
        schedule: Optional[Schedule] = None,
        backend: str = "compiled",
    ) -> None:
        if backend not in ("compiled", "interp"):
            raise ValueError(
                f"unknown backend {backend!r}; expected 'compiled' or 'interp'"
            )
        self.module = module
        self.schedule = schedule if schedule is not None else schedule_for(module)
        self.cycle = 0
        self.observers: List[SimulationObserver] = []

        program = try_compile(module, self.schedule) if backend == "compiled" else None
        if program is not None:
            self.backend = "compiled"
            self._program = program
            self._v: Optional[List[int]] = [0] * program.n_slots
            #: Net-keyed mapping over the slot list (same API as the dict)
            self.values = SlotValues(program.slot_of, self._v)
            slot_of = program.slot_of
            key = slot_of.__getitem__
        else:
            self.backend = "interp"
            self._program = None
            self._v = None
            self.values = {net: 0 for net in module.nets.values()}

            def key(net: Net) -> Net:
                return net

        #: slot list (compiled) or the Net-keyed dict (interp) — both support
        #: subscripting by the keys stored in the precomputed bindings below,
        #: which is all the hot accessors need.
        self._store = self._v if program is not None else self.values
        # Precompute port->key bindings once; evaluation is the hot loop.
        self._io_bindings = {}
        for component in module.components.values():
            in_binding = [(p.name, key(p.net)) for p in component.input_ports if p.net is not None]
            out_binding = [(p.name, key(p.net)) for p in component.output_ports if p.net is not None]
            self._io_bindings[component] = (in_binding, out_binding)
        self._input_keys = {
            name: (key(port.net), port.net.width)
            for name, port in module.ports.items()
            if port.is_input
        }
        self._output_keys = {
            name: key(port.net) for name, port in module.ports.items() if port.is_output
        }
        self.reset()

    # -------------------------------------------------------------- control
    def add_observer(self, observer: SimulationObserver) -> SimulationObserver:
        self.observers.append(observer)
        return observer

    def remove_observer(self, observer: SimulationObserver) -> None:
        self.observers.remove(observer)

    def reset(self) -> None:
        """Reset all sequential state and zero all nets, then settle."""
        for component in self.schedule.sequential:
            component.reset()
        if self._v is not None:
            self._v[:] = [0] * len(self._v)
        else:
            for net in self.values:
                self.values[net] = 0
        self.cycle = 0
        for observer in self.observers:
            observer.on_reset(self)
        self.settle()

    # ------------------------------------------------------------------ I/O
    def set_input(self, name: str, value: int) -> None:
        """Drive a module input port (takes effect at the next settle)."""
        try:
            key, width = self._input_keys[name]
        except KeyError:
            valid = ", ".join(sorted(self._input_keys)) or "<none>"
            raise KeyError(
                f"module {self.module.name!r} has no input port {name!r}; "
                f"valid input ports: {valid}"
            ) from None
        self._store[key] = mask_value(value, width)

    def set_inputs(self, inputs: Mapping[str, int]) -> None:
        for name, value in inputs.items():
            self.set_input(name, value)

    def get_output(self, name: str) -> int:
        """Read a module output port (value as of the last settle)."""
        try:
            key = self._output_keys[name]
        except KeyError:
            valid = ", ".join(sorted(self._output_keys)) or "<none>"
            raise KeyError(
                f"module {self.module.name!r} has no output port {name!r}; "
                f"valid output ports: {valid}"
            ) from None
        return self._store[key]

    def get_outputs(self) -> Dict[str, int]:
        store = self._store
        return {name: store[key] for name, key in self._output_keys.items()}

    def get_net(self, net: Net | str) -> int:
        """Read any net by object or name."""
        if isinstance(net, str):
            net = self.module.nets[net]
        return self.values[net]

    def component_io_values(self, component) -> Dict[str, int]:
        """Snapshot of a component's port values at the current settle.

        This is what a power macromodel (software or emulated) observes.
        """
        in_binding, out_binding = self._io_bindings[component]
        store = self._store
        snapshot = {name: store[key] for name, key in in_binding}
        snapshot.update({name: store[key] for name, key in out_binding})
        return snapshot

    # ------------------------------------------------------------ execution
    def settle(self) -> None:
        """Propagate combinational logic with the current inputs and state."""
        program = self._program
        if program is not None:
            program.settle(self._v)
            return
        values = self.values
        bindings = self._io_bindings
        for component in self.schedule.state_sources:
            _, out_binding = bindings[component]
            outputs = component.evaluate({})
            for name, net in out_binding:
                values[net] = outputs[name]
        for component in self.schedule.ordered:
            in_binding, out_binding = bindings[component]
            inputs = {name: values[net] for name, net in in_binding}
            outputs = component.evaluate(inputs)
            for name, net in out_binding:
                values[net] = outputs[name]

    def clock_edge(self) -> None:
        """Capture and commit the next state of every sequential component."""
        program = self._program
        if program is not None:
            program.clock_edge(self._v)
            return
        values = self.values
        bindings = self._io_bindings
        for component in self.schedule.sequential:
            in_binding, _ = bindings[component]
            inputs = {name: values[net] for name, net in in_binding}
            component.capture(inputs)
        for component in self.schedule.sequential:
            component.commit()

    def step(self, inputs: Optional[Mapping[str, int]] = None, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` clock cycles.

        Per cycle: apply inputs, settle combinational logic, notify observers,
        then take the clock edge.
        """
        for _ in range(cycles):
            if inputs:
                self.set_inputs(inputs)
            self.settle()
            if self.observers:
                for observer in self.observers:
                    observer.on_cycle(self, self.cycle)
            self.clock_edge()
            self.cycle += 1

    def run(self, testbench, max_cycles: Optional[int] = None) -> SimulationResult:
        """Execute a testbench until it reports completion (or ``max_cycles``)."""
        start = time.perf_counter()
        testbench.bind(self)
        limit = max_cycles if max_cycles is not None else testbench.max_cycles
        while True:
            if limit is not None and self.cycle >= limit:
                break
            stimulus = testbench.drive(self.cycle, self)
            if stimulus:
                self.set_inputs(stimulus)
            self.settle()
            if self.observers:
                for observer in self.observers:
                    observer.on_cycle(self, self.cycle)
            testbench.check(self.cycle, self)
            finished = testbench.finished(self.cycle, self)
            self.clock_edge()
            self.cycle += 1
            if finished:
                break
        self.settle()
        for observer in self.observers:
            observer.on_finish(self)
        wall = time.perf_counter() - start
        result = SimulationResult(
            design=self.module.name,
            cycles=self.cycle,
            wall_time_s=wall,
            final_outputs=self.get_outputs(),
            captured=testbench.captured(),
        )
        return result
