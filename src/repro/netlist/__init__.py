"""Register-transfer level netlist intermediate representation.

This package provides the structural RTL IR on which everything else in
:mod:`repro` is built: bit-vector value helpers, nets and ports, a library of
RTL components (functional units, steering logic, storage elements and FSM
controllers), hierarchical modules with elaboration/flattening, a fluent
:class:`~repro.netlist.builder.NetlistBuilder`, structural validation and
netlist statistics.

The IR deliberately mirrors the level of abstraction at which the DATE'05
power-emulation paper operates: a design is a set of RTL components connected
by multi-bit nets, each of which can be monitored by a power macromodel and
each of which can be technology-mapped to gates for characterization.
"""

from repro.netlist.signals import (
    mask_value,
    to_signed,
    from_signed,
    sign_extend,
    popcount,
    hamming_distance,
    bits_of,
    value_from_bits,
)
from repro.netlist.nets import Net
from repro.netlist.ports import Port, PortDirection
from repro.netlist.components import (
    Component,
    Adder,
    Subtractor,
    AddSub,
    Multiplier,
    Comparator,
    ShifterConst,
    ShifterVar,
    Mux,
    LogicOp,
    NotOp,
    ReduceOp,
    Concat,
    Slice,
    Extend,
    Constant,
    Decoder,
    Saturator,
    AbsoluteValue,
)
from repro.netlist.sequential import (
    SequentialComponent,
    Register,
    Counter,
    Accumulator,
    RegisterFile,
    Memory,
    ROM,
)
from repro.netlist.fsm import FSMController, Transition, Guard
from repro.netlist.module import Module, Instance, ModulePort
from repro.netlist.builder import NetlistBuilder
from repro.netlist.flatten import flatten
from repro.netlist.validate import validate_module, ValidationError
from repro.netlist.stats import ModuleStats, module_stats

__all__ = [
    "mask_value",
    "to_signed",
    "from_signed",
    "sign_extend",
    "popcount",
    "hamming_distance",
    "bits_of",
    "value_from_bits",
    "Net",
    "Port",
    "PortDirection",
    "Component",
    "Adder",
    "Subtractor",
    "AddSub",
    "Multiplier",
    "Comparator",
    "ShifterConst",
    "ShifterVar",
    "Mux",
    "LogicOp",
    "NotOp",
    "ReduceOp",
    "Concat",
    "Slice",
    "Extend",
    "Constant",
    "Decoder",
    "Saturator",
    "AbsoluteValue",
    "SequentialComponent",
    "Register",
    "Counter",
    "Accumulator",
    "RegisterFile",
    "Memory",
    "ROM",
    "FSMController",
    "Transition",
    "Guard",
    "Module",
    "Instance",
    "ModulePort",
    "NetlistBuilder",
    "flatten",
    "validate_module",
    "ValidationError",
    "ModuleStats",
    "module_stats",
]
