"""Observability overhead: the obs layer must be ~free on the hot path.

The instrumentation contract of :mod:`repro.obs` is that nothing is ever
recorded per simulated cycle: counters and spans fire per *build*, per
*estimate*, per *job* — the ``BatchSimulator`` lane loop itself carries no
obs calls.  This harness verifies the contract empirically:

* steps a ``REPRO_OBS_BENCH_LANES``-lane :class:`~repro.sim.BatchSimulator`
  for ``REPRO_OBS_BENCH_CYCLES`` cycles with observability in its default
  state (metrics on) and fully ``disable()``d, interleaved best-of-N, and
  **asserts the enabled/disabled delta stays under 2%** — the issue's
  acceptance ceiling (a hard test failure, deliberately stronger than the
  ratio-based perf gate, which skips near-zero percentages as noise);
* measures the primitive disabled-path costs — a counter ``inc()`` with the
  registry disabled and a ``span()`` with tracing off — in ns/op, to show
  even a hypothetical per-cycle call site would cost ~nothing.

The perf gate tracks this bench through its throughput metric
(``lane_cycles_per_s_enabled``); the percentages ride along as context.
Writes ``benchmarks/results/obs_overhead.txt`` and the repo-root
``BENCH_obs_overhead.json`` trajectory artifact.
"""

from __future__ import annotations

import os
import time

from conftest import write_result
from repro import obs
from repro.designs.registry import build_flat
from repro.sim import BatchSimulator

N_LANES = int(os.environ.get("REPRO_OBS_BENCH_LANES", "1024"))
N_CYCLES = int(os.environ.get("REPRO_OBS_BENCH_CYCLES", "192"))
REPEATS = int(os.environ.get("REPRO_OBS_BENCH_REPEATS", "5"))
DESIGN = os.environ.get("REPRO_OBS_BENCH_DESIGN", "HVPeakF")

#: the issue's acceptance ceiling for enabled-vs-disabled hot-path delta
MAX_OVERHEAD_PCT = 2.0


def _step_seconds(simulator: BatchSimulator) -> float:
    simulator.reset()
    start = time.perf_counter()
    simulator.step(cycles=N_CYCLES)
    return time.perf_counter() - start


def _measure_hot_path() -> dict:
    module = build_flat(DESIGN)
    simulator = BatchSimulator(module, N_LANES, kernel_backend="numpy")
    simulator.step(cycles=8)  # warm kernel + program caches
    best = {"enabled": float("inf"), "disabled": float("inf")}
    try:
        # interleave the two configurations so drift (thermal, page cache)
        # hits both equally; keep each configuration's best time
        for _ in range(REPEATS):
            obs.enable(tracing=False)  # the default: metrics on, tracing off
            best["enabled"] = min(best["enabled"], _step_seconds(simulator))
            obs.disable()
            best["disabled"] = min(best["disabled"], _step_seconds(simulator))
    finally:
        obs.disable()
        obs.enable(tracing=False)  # restore the process default
    return best


def _ns_per_op(fn, n: int = 200_000) -> float:
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - start) / n * 1e9


def _measure_primitives() -> dict:
    counter = obs.REGISTRY.counter("repro_obs_bench_scratch_total", "")
    try:
        obs.disable()
        disabled_inc_ns = _ns_per_op(counter.inc)
        noop_span_ns = _ns_per_op(lambda: obs.span("bench.noop").end())
    finally:
        obs.enable(tracing=False)
    return {"disabled_inc_ns": disabled_inc_ns, "noop_span_ns": noop_span_ns}


def test_obs_overhead_under_budget():
    best = _measure_hot_path()
    primitives = _measure_primitives()
    overhead_pct = (best["enabled"] - best["disabled"]) / best["disabled"] * 100.0
    lane_cycles = N_LANES * N_CYCLES
    metrics = {
        "n_lanes": N_LANES,
        "n_cycles": N_CYCLES,
        "lane_cycles_per_s_enabled": round(lane_cycles / best["enabled"], 1),
        "lane_cycles_per_s_disabled": round(lane_cycles / best["disabled"], 1),
        "obs_overhead_pct": round(overhead_pct, 3),
        "disabled_counter_inc_ns": round(primitives["disabled_inc_ns"], 1),
        "noop_span_ns": round(primitives["noop_span_ns"], 1),
    }
    table = "\n".join([
        "Observability overhead — obs enabled (default) vs disable()d",
        f"({DESIGN}: {N_LANES} lanes x {N_CYCLES} cycles, best of {REPEATS})",
        "",
        f"enabled   {best['enabled'] * 1e3:10.2f} ms "
        f"({metrics['lane_cycles_per_s_enabled']:,.0f} lane-cycles/s)",
        f"disabled  {best['disabled'] * 1e3:10.2f} ms "
        f"({metrics['lane_cycles_per_s_disabled']:,.0f} lane-cycles/s)",
        f"overhead  {overhead_pct:+10.3f} %   (budget < {MAX_OVERHEAD_PCT}%)",
        "",
        f"disabled counter.inc()  {primitives['disabled_inc_ns']:8.1f} ns/op",
        f"no-op span()            {primitives['noop_span_ns']:8.1f} ns/op",
    ])
    write_result("obs_overhead.txt", table, metrics=metrics)
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"obs-enabled hot path is {overhead_pct:.2f}% slower than disabled "
        f"(budget {MAX_OVERHEAD_PCT}%)"
    )
