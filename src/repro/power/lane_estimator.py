"""Multi-stimulus RTL power estimation over :class:`BatchSimulator` lanes.

The ROADMAP's named next workload: multi-seed RTL power sweeps.  A Monte-Carlo
style sweep runs the *same* flat module under N independent stimulus seeds; the
scalar :class:`~repro.power.rtl_estimator.RTLPowerEstimator` would simulate the
design N times.  This estimator instead lowers the design once into lane form
(:mod:`repro.sim.batch`) and advances all N testbenches together — one settle
per cycle for every lane — evaluating each component's power macromodel with
one vectorized pass over ``(n_lanes,)`` port-value arrays per cycle
(:meth:`~repro.power.macromodel.PowerMacromodel.evaluate_lanes`).

Interactive testbenches drive their lane through a
:class:`~repro.sim.batch.LaneView`: stimulus is collected per lane and applied
as per-lane slot writes, output checks read single lane values, and memory
backdoor loads land in that lane's private state.  Lanes that finish early are
masked out of the energy accumulation (and stop being driven/checked), so each
lane's report is identical to what a scalar run of the same testbench would
produce — lane count changes speed, never results.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netlist.module import Module
from repro.power.library import PowerModelLibrary
from repro.power.report import ComponentPower, PowerReport
from repro.power.rtl_estimator import RTLPowerEstimator
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.batch import BatchSimulator
from repro.sim.testbench import Testbench


class BatchRTLPowerEstimator:
    """Lane-vectorized counterpart of :class:`RTLPowerEstimator`.

    ``estimate_all`` runs one testbench per lane and returns one
    :class:`PowerReport` per testbench, each equal (up to wall-clock fields)
    to the report a scalar estimator would produce for that testbench alone.
    Raises :class:`~repro.sim.batch.BatchCompilationError` or
    :class:`~repro.sim.batch.LaneStateError` when the module or a testbench
    cannot run on the lane path — callers fall back to per-seed scalar runs.
    """

    #: reports carry the scalar estimator's name: same algorithm, same results
    name = RTLPowerEstimator.name

    def __init__(
        self,
        module: Module,
        library: Optional[PowerModelLibrary] = None,
        technology: Technology = CB130M_TECHNOLOGY,
    ) -> None:
        # shares the monitored-component/model association (and the
        # hierarchical-module guard) with the scalar estimator
        self._scalar = RTLPowerEstimator(module, library=library, technology=technology)
        self.module = module
        self.technology = self._scalar.technology
        self.library = self._scalar.library
        self.monitored = self._scalar.monitored

    # ------------------------------------------------------------------ API
    def estimate_all(
        self,
        testbenches: Sequence[Testbench],
        max_cycles: Optional[int] = None,
        keep_cycle_trace: bool = True,
    ) -> List[PowerReport]:
        """Run every testbench in its own lane and report power per lane."""
        n_lanes = len(testbenches)
        if n_lanes == 0:
            return []
        start = time.perf_counter()
        simulator = BatchSimulator(self.module, n_lanes)
        views = [simulator.lane_view(lane) for lane in range(n_lanes)]
        for testbench, view in zip(testbenches, views):
            testbench.bind(view)

        slot_of = simulator.program.slot_of
        # (component, model, [(port, slot)]) in the scalar snapshot order
        monitored = []
        for component, model in self.monitored:
            binding = [
                (p.name, slot_of[p.net])
                for p in list(component.input_ports) + list(component.output_ports)
                if p.net is not None
            ]
            monitored.append((component, model, binding))

        limits = [
            max_cycles if max_cycles is not None else tb.max_cycles
            for tb in testbenches
        ]
        input_keys = simulator._input_keys
        v = simulator._v
        is_object = simulator.program.dtype is object

        active = np.ones(n_lanes, dtype=bool)
        lane_cycles = [0] * n_lanes
        energy_by_component = {
            component.name: np.zeros(n_lanes, dtype=np.float64)
            for component, _, _ in monitored
        }
        cycle_energy: List[np.ndarray] = []
        #: settled value store of the previous observed cycle (one snapshot
        #: per cycle instead of per-component port copies)
        prev_store: Optional[np.ndarray] = None

        while active.any():
            cycle = simulator.cycle
            # per-lane cycle budget (mirrors the scalar run loop's limit check)
            for lane in np.flatnonzero(active):
                limit = limits[lane]
                if limit is not None and cycle >= limit:
                    active[lane] = False
                    lane_cycles[lane] = cycle
            if not active.any():
                break

            # drive: collect each active lane's stimulus into per-lane writes
            for lane in np.flatnonzero(active):
                stimulus = testbenches[lane].drive(cycle, views[lane])
                if not stimulus:
                    continue
                for name, value in stimulus.items():
                    try:
                        slot, width = input_keys[name]
                    except KeyError:
                        valid = ", ".join(sorted(input_keys)) or "<none>"
                        raise KeyError(
                            f"module {self.module.name!r} has no input port "
                            f"{name!r}; valid input ports: {valid}"
                        ) from None
                    masked = int(value) & ((1 << width) - 1)
                    v[slot, lane] = masked if is_object else np.int64(masked)

            simulator.settle()

            # observe: one vectorized macromodel evaluation per component
            if prev_store is None:
                prev_store = v.copy()  # first cycle: previous == current
            active_f = active.astype(np.float64)
            total_this_cycle = np.zeros(n_lanes, dtype=np.float64)
            for component, model, binding in monitored:
                current = {name: v[slot] for name, slot in binding}
                prev = {name: prev_store[slot] for name, slot in binding}
                energies = model.evaluate_lanes(prev, current) * active_f
                energy_by_component[component.name] += energies
                total_this_cycle += energies
            np.copyto(prev_store, v, casting="unsafe")
            cycle_energy.append(total_this_cycle)

            # check/finish each active lane, then take the shared clock edge
            finishing = []
            for lane in np.flatnonzero(active):
                testbenches[lane].check(cycle, views[lane])
                if testbenches[lane].finished(cycle, views[lane]):
                    finishing.append(lane)
                    lane_cycles[lane] = cycle + 1
            simulator.clock_edge()
            simulator.cycle += 1
            for lane in finishing:
                active[lane] = False

        simulator.settle()
        elapsed = time.perf_counter() - start
        trace = (
            np.stack(cycle_energy, axis=0)
            if cycle_energy
            else np.zeros((0, n_lanes), dtype=np.float64)
        )
        return [
            self._build_lane_report(
                lane, lane_cycles[lane], energy_by_component, trace,
                elapsed / n_lanes, n_lanes, keep_cycle_trace,
            )
            for lane in range(n_lanes)
        ]

    # -------------------------------------------------------------- helpers
    def _build_lane_report(
        self,
        lane: int,
        cycles: int,
        energy_by_component: Dict[str, np.ndarray],
        trace: np.ndarray,
        elapsed_s: float,
        n_lanes: int,
        keep_cycle_trace: bool,
    ) -> PowerReport:
        technology = self.technology
        components: Dict[str, ComponentPower] = {}
        total_energy = 0.0
        for component, _ in self.monitored:
            energy = float(energy_by_component[component.name][lane])
            total_energy += energy
            components[component.name] = ComponentPower(
                name=component.name,
                component_type=component.type_name,
                energy_fj=energy,
                average_power_mw=technology.energy_to_power_mw(
                    energy / cycles if cycles else 0.0
                ),
            )
        lane_trace = trace[:cycles, lane] if cycles else trace[:0, lane]
        return PowerReport(
            design=self.module.name,
            estimator=self.name,
            cycles=cycles,
            clock_mhz=technology.clock_mhz,
            total_energy_fj=total_energy,
            average_power_mw=technology.energy_to_power_mw(
                total_energy / cycles if cycles else 0.0
            ),
            peak_power_mw=(
                technology.energy_to_power_mw(float(lane_trace.max()))
                if lane_trace.size
                else 0.0
            ),
            components=components,
            cycle_energy_fj=[float(e) for e in lane_trace] if keep_cycle_trace else [],
            estimation_time_s=elapsed_s,
            notes={
                "n_monitored_components": len(self.monitored),
                "batch_lanes": n_lanes,
            },
        )
