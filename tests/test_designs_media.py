"""Tests for the media designs (DCT, IDCT, Ispq, MPEG4) and the design registry."""

from __future__ import annotations

import pytest

from repro.designs import dct, idct, ispq, mpeg4, stimuli, transform
from repro.designs.registry import FIGURE3_ORDER, all_designs, figure3_designs, get_design
from repro.netlist import flatten, module_stats, validate_module
from repro.sim import Simulator


# -------------------------------------------------------------- transform math
def test_integer_dct_tracks_floating_point_reference():
    block = [p - 128 for p in stimuli.random_pixel_block(seed=7)]
    fixed = transform.reference_transform(block, forward=True)
    exact = stimuli.reference_dct2d(block)
    for fx, ex in zip(fixed, exact):
        assert abs(fx - ex) <= max(4, abs(ex) * 0.05)


def test_integer_idct_tracks_floating_point_reference():
    coefficients = stimuli.random_coefficient_block(seed=3)
    fixed = transform.reference_transform(coefficients, forward=False)
    exact = stimuli.reference_idct2d(coefficients)
    for fx, ex in zip(fixed, exact):
        assert abs(fx - ex) <= max(4, abs(ex) * 0.05)


def test_dct_idct_round_trip_recovers_block():
    block = [p - 128 for p in stimuli.random_pixel_block(seed=11)]
    forward = transform.reference_transform(block, forward=True)
    recovered = transform.reference_transform(forward, forward=False)
    for original, back in zip(block, recovered):
        assert abs(original - back) <= 8  # two fixed-point passes of rounding


# ------------------------------------------------------------------ DCT / IDCT
def test_dct_engine_matches_reference():
    module = dct.build()
    assert validate_module(module, raise_on_error=False).ok
    sim = Simulator(flatten(module))
    result = sim.run(dct.testbench(n_blocks=1, seed=1))
    assert result.captured["blocks_checked"] == 1


def test_idct_engine_matches_reference():
    module = idct.build()
    sim = Simulator(flatten(module))
    result = sim.run(idct.testbench(n_blocks=1, seed=5))
    assert result.captured["blocks_checked"] == 1


def test_transform_engine_multiple_blocks():
    module = dct.build()
    sim = Simulator(flatten(module))
    result = sim.run(dct.testbench(n_blocks=2, seed=3))
    assert result.captured["blocks_checked"] == 2
    assert result.cycles > transform.cycles_per_block()


def test_transform_zero_block_gives_zero_output():
    module = idct.build()
    sim = Simulator(flatten(module))
    tb = transform.TransformTestbench([[0] * 64], forward=False)
    result = sim.run(tb)
    assert result.captured["blocks_checked"] == 1
    assert transform.reference_transform([0] * 64, forward=False) == [0] * 64


# ----------------------------------------------------------------------- Ispq
def test_ispq_engine_matches_reference():
    module = ispq.build()
    assert validate_module(module, raise_on_error=False).ok
    sim = Simulator(flatten(module))
    result = sim.run(ispq.testbench(n_blocks=2, seed=4, qp=10))
    assert result.captured["blocks_checked"] == 2


def test_ispq_reference_properties():
    assert ispq.reference_dequant([0] * 64, 12) == [0] * 64
    out = ispq.reference_dequant([5, -5, 1, -1], 10)
    assert out[0] == -out[1] and out[2] == -out[3]
    # saturation at +/-2047
    assert ispq.reference_dequant([2000], 31) == [2047]
    assert ispq.reference_dequant([-2000], 31) == [-2047]


def test_ispq_zero_qp():
    module = ispq.build()
    sim = Simulator(flatten(module))
    blocks = [stimuli.random_coefficient_block(seed=1)]
    result = sim.run(ispq.IspqTestbench(blocks, qp=0))
    assert result.captured["blocks_checked"] == 1


# ---------------------------------------------------------------------- MPEG4
def test_mpeg4_decodes_block_against_reference():
    module = mpeg4.build()
    assert validate_module(module, raise_on_error=False).ok
    sim = Simulator(flatten(module))
    result = sim.run(mpeg4.testbench(n_blocks=1, seed=1))
    assert result.captured["blocks_checked"] == 1


def test_mpeg4_reference_pipeline_stages_compose():
    symbols = [3] * 64          # all-zero levels
    prediction = list(range(64))
    decoded = mpeg4.reference_decode_block(symbols, prediction, qp=8)
    assert decoded == [max(0, min(255, p)) for p in prediction]


def test_mpeg4_testbench_validation():
    with pytest.raises(ValueError):
        mpeg4.Mpeg4Testbench([[3] * 64], [], qp=8)
    with pytest.raises(ValueError):
        mpeg4.Mpeg4Testbench([[3] * 64] * 7, [[0] * 64] * 7, qp=8)


def test_mpeg4_is_the_largest_design():
    sizes = {}
    for name in ("Ispq", "Vld", "MPEG4"):
        design = get_design(name)
        sizes[name] = module_stats(design.build()).monitored_bits
    assert sizes["MPEG4"] > sizes["Ispq"]
    assert sizes["MPEG4"] > sizes["Vld"]


# -------------------------------------------------------------------- registry
def test_registry_contains_figure3_designs():
    designs = all_designs()
    assert set(FIGURE3_ORDER) <= set(designs)
    assert "binary_search" in designs
    ordered = figure3_designs()
    assert [d.name for d in ordered] == FIGURE3_ORDER
    for design in ordered:
        assert design.nominal_cycles > design.scaled_cycles > 0
        assert design.in_figure3


def test_registry_unknown_design():
    with pytest.raises(KeyError, match="unknown design"):
        get_design("NotADesign")


def test_registry_builds_and_validates_every_design():
    for design in all_designs().values():
        module = design.build()
        report = validate_module(module, raise_on_error=False)
        assert report.ok, f"{design.name}: {report.errors[:3]}"


def test_registry_mpeg4_has_largest_nominal_workload_cost():
    """Cost (monitored bits x nominal cycles) must increase towards MPEG4."""
    costs = {}
    for design in figure3_designs():
        bits = module_stats(design.build()).monitored_bits
        costs[design.name] = bits * design.nominal_cycles
    assert max(costs, key=costs.get) == "MPEG4"
    assert costs["MPEG4"] > 5 * costs["Bubble_Sort"]
