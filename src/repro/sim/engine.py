"""The cycle-accurate simulation engine."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.netlist.module import Module
from repro.netlist.nets import Net
from repro.netlist.signals import mask_value
from repro.sim.scheduler import Schedule, levelize


class SimulationObserver:
    """Hook interface invoked by the simulator.

    ``on_cycle`` runs after the combinational settle of every cycle (i.e. with
    all values for the current cycle stable, just before the clock edge) —
    the same sampling instant as the paper's power strobe.
    """

    def on_reset(self, simulator: "Simulator") -> None:  # pragma: no cover - default no-op
        return None

    def on_cycle(self, simulator: "Simulator", cycle: int) -> None:
        raise NotImplementedError

    def on_finish(self, simulator: "Simulator") -> None:  # pragma: no cover - default no-op
        return None


@dataclass
class SimulationResult:
    """Summary of a testbench run."""

    design: str
    cycles: int
    wall_time_s: float
    #: values of module output ports at the final settled cycle
    final_outputs: Dict[str, int] = field(default_factory=dict)
    #: optional per-testbench payload (captured outputs, check counts, ...)
    captured: Dict[str, object] = field(default_factory=dict)

    @property
    def cycles_per_second(self) -> float:
        """Simulation throughput (simulated cycles per wall-clock second)."""
        if self.wall_time_s <= 0:
            return float("inf")
        return self.cycles / self.wall_time_s


class Simulator:
    """Cycle-accurate simulator for a flat RTL module.

    Typical use::

        sim = Simulator(flatten(design))
        sim.run(testbench)

    or, for manual control::

        sim.set_input("start", 1)
        sim.step()
        value = sim.get_output("done")
    """

    def __init__(self, module: Module, schedule: Optional[Schedule] = None) -> None:
        self.module = module
        self.schedule = schedule if schedule is not None else levelize(module)
        self.values: Dict[Net, int] = {net: 0 for net in module.nets.values()}
        self.cycle = 0
        self.observers: List[SimulationObserver] = []
        # Precompute port→net bindings once; evaluation is the hot loop.
        self._io_bindings = {}
        for component in module.components.values():
            in_binding = [(p.name, p.net) for p in component.input_ports if p.net is not None]
            out_binding = [(p.name, p.net) for p in component.output_ports if p.net is not None]
            self._io_bindings[component] = (in_binding, out_binding)
        self._input_nets = {name: port.net for name, port in module.ports.items() if port.is_input}
        self._output_nets = {name: port.net for name, port in module.ports.items() if port.is_output}
        self.reset()

    # -------------------------------------------------------------- control
    def add_observer(self, observer: SimulationObserver) -> SimulationObserver:
        self.observers.append(observer)
        return observer

    def remove_observer(self, observer: SimulationObserver) -> None:
        self.observers.remove(observer)

    def reset(self) -> None:
        """Reset all sequential state and zero all nets, then settle."""
        for component in self.schedule.sequential:
            component.reset()
        for net in self.values:
            self.values[net] = 0
        self.cycle = 0
        for observer in self.observers:
            observer.on_reset(self)
        self.settle()

    # ------------------------------------------------------------------ I/O
    def set_input(self, name: str, value: int) -> None:
        """Drive a module input port (takes effect at the next settle)."""
        net = self._input_nets[name]
        self.values[net] = mask_value(value, net.width)

    def set_inputs(self, inputs: Mapping[str, int]) -> None:
        for name, value in inputs.items():
            self.set_input(name, value)

    def get_output(self, name: str) -> int:
        """Read a module output port (value as of the last settle)."""
        return self.values[self._output_nets[name]]

    def get_outputs(self) -> Dict[str, int]:
        return {name: self.values[net] for name, net in self._output_nets.items()}

    def get_net(self, net: Net | str) -> int:
        """Read any net by object or name."""
        if isinstance(net, str):
            net = self.module.nets[net]
        return self.values[net]

    def component_io_values(self, component) -> Dict[str, int]:
        """Snapshot of a component's port values at the current settle.

        This is what a power macromodel (software or emulated) observes.
        """
        in_binding, out_binding = self._io_bindings[component]
        snapshot = {name: self.values[net] for name, net in in_binding}
        snapshot.update({name: self.values[net] for name, net in out_binding})
        return snapshot

    # ------------------------------------------------------------ execution
    def settle(self) -> None:
        """Propagate combinational logic with the current inputs and state."""
        values = self.values
        bindings = self._io_bindings
        for component in self.schedule.state_sources:
            _, out_binding = bindings[component]
            outputs = component.evaluate({})
            for name, net in out_binding:
                values[net] = outputs[name]
        for component in self.schedule.ordered:
            in_binding, out_binding = bindings[component]
            inputs = {name: values[net] for name, net in in_binding}
            outputs = component.evaluate(inputs)
            for name, net in out_binding:
                values[net] = outputs[name]

    def clock_edge(self) -> None:
        """Capture and commit the next state of every sequential component."""
        values = self.values
        bindings = self._io_bindings
        for component in self.schedule.sequential:
            in_binding, _ = bindings[component]
            inputs = {name: values[net] for name, net in in_binding}
            component.capture(inputs)
        for component in self.schedule.sequential:
            component.commit()

    def step(self, inputs: Optional[Mapping[str, int]] = None, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` clock cycles.

        Per cycle: apply inputs, settle combinational logic, notify observers,
        then take the clock edge.
        """
        for _ in range(cycles):
            if inputs:
                self.set_inputs(inputs)
            self.settle()
            for observer in self.observers:
                observer.on_cycle(self, self.cycle)
            self.clock_edge()
            self.cycle += 1

    def run(self, testbench, max_cycles: Optional[int] = None) -> SimulationResult:
        """Execute a testbench until it reports completion (or ``max_cycles``)."""
        start = time.perf_counter()
        testbench.bind(self)
        limit = max_cycles if max_cycles is not None else testbench.max_cycles
        while True:
            if limit is not None and self.cycle >= limit:
                break
            stimulus = testbench.drive(self.cycle, self)
            if stimulus:
                self.set_inputs(stimulus)
            self.settle()
            for observer in self.observers:
                observer.on_cycle(self, self.cycle)
            testbench.check(self.cycle, self)
            finished = testbench.finished(self.cycle, self)
            self.clock_edge()
            self.cycle += 1
            if finished:
                break
        self.settle()
        for observer in self.observers:
            observer.on_finish(self)
        wall = time.perf_counter() - start
        result = SimulationResult(
            design=self.module.name,
            cycles=self.cycle,
            wall_time_s=wall,
            final_outputs=self.get_outputs(),
            captured=testbench.captured(),
        )
        return result
