"""Cycle-accurate RTL simulation.

The simulator executes flat :class:`~repro.netlist.module.Module` objects one
clock cycle at a time: combinational logic is levelized once and evaluated in
topological order, then all sequential components capture and commit their
next state.  Two backends execute that schedule — the default ``"compiled"``
backend code-generates it into slot-indexed straight-line Python once per
module (:mod:`repro.sim.compiled`), while ``"interp"`` is the reference
interpreter kept as the correctness oracle and benchmark baseline.  Observers (signal traces, power estimators, the emulated power
aggregator readback) hook into the end of the combinational settle phase of
every cycle — exactly the instant at which the paper's power strobe samples
component inputs/outputs.
"""

from repro.sim.scheduler import levelize, schedule_for, SchedulingError
from repro.sim.compiled import CompiledProgram, compile_module
from repro.sim.batch import (
    BatchCompilationError,
    BatchProgram,
    BatchSimulator,
    LaneStateError,
    LaneView,
    compile_module_batch,
)
from repro.sim.kernels import (
    KERNEL_BACKENDS,
    KernelUnsupportedError,
    resolve_kernel_backend,
)
from repro.sim.engine import Simulator, SimulationResult, SimulationObserver
from repro.sim.testbench import (
    Testbench,
    VectorTestbench,
    CallbackTestbench,
    RandomTestbench,
)
from repro.sim.trace import SignalTrace, NetStatistics, ComponentActivityTrace
from repro.sim.waveform import Waveform, WaveformRecorder

__all__ = [
    "levelize",
    "schedule_for",
    "SchedulingError",
    "CompiledProgram",
    "compile_module",
    "BatchCompilationError",
    "BatchProgram",
    "BatchSimulator",
    "KERNEL_BACKENDS",
    "KernelUnsupportedError",
    "LaneStateError",
    "LaneView",
    "compile_module_batch",
    "resolve_kernel_backend",
    "Simulator",
    "SimulationResult",
    "SimulationObserver",
    "Testbench",
    "VectorTestbench",
    "CallbackTestbench",
    "RandomTestbench",
    "SignalTrace",
    "NetStatistics",
    "ComponentActivityTrace",
    "Waveform",
    "WaveformRecorder",
]
