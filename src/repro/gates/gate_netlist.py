"""Flat gate-level (bit-level) netlists.

A gate netlist is produced by technology-mapping one RTL component (or a whole
module) and is purely combinational: sequential elements are handled at the
RTL level with analytic power models, which keeps characterization simulation
cheap while still exercising the dominant datapath power.

Net naming convention: the bit ``i`` of an RTL port named ``p`` becomes the
gate-level net ``"p[i]"``; internal nets are free-form unique strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.gates.cells import CellType, StandardCellLibrary


def bit_net(port: str, index: int) -> str:
    """Canonical name of bit ``index`` of RTL port ``port``."""
    return f"{port}[{index}]"


@dataclass(eq=False)
class GateInstance:
    """One standard-cell instance (identity-hashed so it can key scheduling maps)."""

    name: str
    cell: CellType
    inputs: List[str]
    output: str


class GateNetlist:
    """A flat, combinational gate-level netlist."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.gates: List[GateInstance] = []
        #: primary input bit-net names, in declaration order
        self.primary_inputs: List[str] = []
        #: primary output bit-net names, in declaration order
        self.primary_outputs: List[str] = []
        #: nets tied to constant 0/1 (e.g. unused carry inputs)
        self.constants: Dict[str, int] = {}
        #: alias map: output net name -> source net it is directly wired to
        #: (used for zero-gate mappings such as slices, shifts by constants)
        self.aliases: Dict[str, str] = {}
        self._gate_counter = 0

    # ------------------------------------------------------------- building
    def add_input(self, net: str) -> str:
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)
        return net

    def add_constant(self, net: str, value: int) -> str:
        self.constants[net] = value & 1
        return net

    def add_alias(self, output_net: str, source_net: str) -> str:
        """Declare that ``output_net`` is the same wire as ``source_net``."""
        self.aliases[output_net] = source_net
        return output_net

    def add_gate(self, cell: CellType, inputs: Sequence[str], output: Optional[str] = None,
                 name: Optional[str] = None) -> str:
        """Instantiate ``cell``; returns the output net name."""
        if output is None:
            output = f"{self.name}_w{self._gate_counter}"
        gate_name = name if name is not None else f"{self.name}_g{self._gate_counter}"
        self._gate_counter += 1
        self.gates.append(GateInstance(gate_name, cell, list(inputs), output))
        return output

    def merge(self, other: "GateNetlist", keep_io: bool = False) -> None:
        """Absorb another netlist's gates/constants/aliases (for composed mappings)."""
        self.gates.extend(other.gates)
        self.constants.update(other.constants)
        self.aliases.update(other.aliases)
        if keep_io:
            for net in other.primary_inputs:
                self.add_input(net)
            for net in other.primary_outputs:
                self.add_output(net)
        self._gate_counter = max(self._gate_counter, other._gate_counter) + len(other.gates)

    # -------------------------------------------------------------- queries
    @property
    def n_gates(self) -> int:
        return len(self.gates)

    def all_nets(self) -> List[str]:
        nets = set(self.primary_inputs) | set(self.primary_outputs) | set(self.constants)
        nets.update(self.aliases)
        nets.update(self.aliases.values())
        for gate in self.gates:
            nets.update(gate.inputs)
            nets.add(gate.output)
        return sorted(nets)

    def total_area_um2(self) -> float:
        return sum(gate.cell.area_um2 for gate in self.gates)

    def total_leakage_nw(self) -> float:
        return sum(gate.cell.leakage_nw for gate in self.gates)

    def fanout(self) -> Dict[str, int]:
        """Number of gate inputs (plus aliases) each net drives."""
        counts: Dict[str, int] = {net: 0 for net in self.all_nets()}
        for gate in self.gates:
            for net in gate.inputs:
                counts[net] = counts.get(net, 0) + 1
        for source in self.aliases.values():
            counts[source] = counts.get(source, 0) + 1
        return counts

    def load_capacitance_ff(self, library: StandardCellLibrary) -> Dict[str, float]:
        """Capacitive load on each net: receiver input caps + wire estimate."""
        loads: Dict[str, float] = {net: 0.0 for net in self.all_nets()}
        for gate in self.gates:
            for net in gate.inputs:
                loads[net] = loads.get(net, 0.0) + gate.cell.input_cap_ff + library.wire_cap_per_fanout_ff
        # primary outputs see a default external load
        for net in self.primary_outputs:
            loads[net] = loads.get(net, 0.0) + 2.0 * library.wire_cap_per_fanout_ff
        return loads

    def gate_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.cell.name] = histogram.get(gate.cell.name, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GateNetlist({self.name!r}, {self.n_gates} gates)"
