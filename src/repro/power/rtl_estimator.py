"""Software RTL power estimation.

This is the baseline algorithm power emulation accelerates: simulate the
design cycle by cycle, observe every RTL component's input/output values, and
evaluate its power macromodel in software each cycle, accumulating energy per
component.  Commercial tools such as PowerTheater and NEC's internal RTL power
estimator implement exactly this loop (plus I/O and reporting); their absolute
runtimes are modelled separately in :mod:`repro.power.commercial`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.netlist.components import Component
from repro.netlist.module import Module
from repro.power.library import PowerModelLibrary, build_seed_library
from repro.power.macromodel import PowerMacromodel
from repro.power.profile import PowerProfile, ProfileConfig, WindowedEnergyCollector
from repro.power.report import ComponentPower, PowerReport
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.engine import SimulationObserver, Simulator
from repro.sim.testbench import Testbench


class _MacromodelObserver(SimulationObserver):
    """Simulator observer that evaluates macromodels every cycle.

    Always tracks per-component totals and the running peak cycle energy;
    the full per-cycle list is kept only when ``keep_cycle_trace`` so long
    runs stay bounded in memory.  An optional
    :class:`~repro.power.profile.WindowedEnergyCollector` receives each
    component's energy every cycle for the windowed profile.
    """

    def __init__(
        self,
        estimator: "RTLPowerEstimator",
        keep_cycle_trace: bool = True,
        collector: Optional[WindowedEnergyCollector] = None,
    ) -> None:
        self.estimator = estimator
        self.keep_cycle_trace = keep_cycle_trace
        self.collector = collector
        self.energy_by_component: Dict[str, float] = {}
        self.cycle_energy: List[float] = []
        self.peak_cycle_energy_fj = 0.0
        self._previous_io: Dict[Component, Dict[str, int]] = {}

    def on_reset(self, simulator: Simulator) -> None:
        self.energy_by_component = {c.name: 0.0 for c, _ in self.estimator.monitored}
        self.cycle_energy = []
        self.peak_cycle_energy_fj = 0.0
        self._previous_io = {}

    def on_cycle(self, simulator: Simulator, cycle: int) -> None:
        collector = self.collector
        total_this_cycle = 0.0
        for row, (component, model) in enumerate(self.estimator.monitored):
            current = simulator.component_io_values(component)
            previous = self._previous_io.get(component, current)
            energy = model.evaluate(previous, current)
            self._previous_io[component] = current
            self.energy_by_component[component.name] += energy
            total_this_cycle += energy
            if collector is not None:
                collector.add(row, energy)
        if total_this_cycle > self.peak_cycle_energy_fj:
            self.peak_cycle_energy_fj = total_this_cycle
        if self.keep_cycle_trace:
            self.cycle_energy.append(total_this_cycle)
        if collector is not None:
            collector.end_cycle()


class RTLPowerEstimator:
    """Macromodel-based RTL power estimator (the software baseline)."""

    name = "rtl-macromodel"

    def __init__(
        self,
        module: Module,
        library: Optional[PowerModelLibrary] = None,
        technology: Technology = CB130M_TECHNOLOGY,
        backend: str = "compiled",
    ) -> None:
        if module.is_hierarchical:
            raise ValueError(
                f"module {module.name!r} is hierarchical and cannot be estimated "
                f"directly: call repro.netlist.flatten(module) first, or go "
                f"through repro.api (its estimator adapters auto-flatten)"
            )
        #: simulation backend used by :meth:`estimate` ("compiled" or "interp")
        self.backend = backend
        self.module = module
        self.technology = technology
        self.library = library if library is not None else build_seed_library(technology)
        #: (component, model) pairs for every component carrying a power model
        self.monitored: List[tuple] = []
        for component in module.components.values():
            if not component.monitored_ports():
                continue
            self.monitored.append((component, self.library.lookup(component)))
        #: windowed profile from the most recent profiled :meth:`estimate`
        self.last_profile: Optional[PowerProfile] = None

    # ------------------------------------------------------------------ API
    def estimate(
        self,
        testbench: Testbench,
        max_cycles: Optional[int] = None,
        keep_cycle_trace: bool = True,
        profile: Optional[ProfileConfig] = None,
    ) -> PowerReport:
        """Run the testbench and return the power report.

        When ``profile`` is given, a windowed per-component energy profile
        is collected alongside the report and left on
        :attr:`last_profile`.
        """
        start = time.perf_counter()
        simulator = Simulator(self.module, backend=self.backend)
        collector = self._make_collector(profile)
        observer = _MacromodelObserver(
            self, keep_cycle_trace=keep_cycle_trace, collector=collector
        )
        observer.on_reset(simulator)
        simulator.add_observer(observer)
        simulation = simulator.run(testbench, max_cycles=max_cycles)
        elapsed = time.perf_counter() - start
        self.last_profile = (
            collector.profile(
                design=self.module.name,
                estimator=self.name,
                clock_mhz=self.technology.clock_mhz,
                cycles=simulation.cycles,
            )
            if collector is not None
            else None
        )
        return self._build_report(observer, simulation.cycles, elapsed, keep_cycle_trace)

    def _make_collector(
        self,
        profile: Optional[ProfileConfig],
        n_lanes: Optional[int] = None,
        default_window: int = 1,
    ) -> Optional[WindowedEnergyCollector]:
        if profile is None:
            return None
        return WindowedEnergyCollector(
            names=[c.name for c, _ in self.monitored],
            types=[c.type_name for c, _ in self.monitored],
            window_cycles=profile.resolved_window(default=default_window),
            max_windows=profile.max_windows,
            n_lanes=n_lanes,
        )

    def model_for(self, component_name: str) -> PowerMacromodel:
        """The macromodel assigned to a named component (for inspection/tests)."""
        for component, model in self.monitored:
            if component.name == component_name:
                return model
        raise KeyError(f"component {component_name!r} is not monitored")

    # -------------------------------------------------------------- helpers
    def _build_report(
        self,
        observer: _MacromodelObserver,
        cycles: int,
        elapsed_s: float,
        keep_cycle_trace: bool,
    ) -> PowerReport:
        technology = self.technology
        components: Dict[str, ComponentPower] = {}
        total_energy = 0.0
        for component, _ in self.monitored:
            energy = observer.energy_by_component.get(component.name, 0.0)
            total_energy += energy
            components[component.name] = ComponentPower(
                name=component.name,
                component_type=component.type_name,
                energy_fj=energy,
                average_power_mw=technology.energy_to_power_mw(
                    energy / cycles if cycles else 0.0
                ),
            )
        average_power = technology.energy_to_power_mw(total_energy / cycles if cycles else 0.0)
        peak_power = (
            technology.energy_to_power_mw(observer.peak_cycle_energy_fj)
            if cycles
            else 0.0
        )
        return PowerReport(
            design=self.module.name,
            estimator=self.name,
            cycles=cycles,
            clock_mhz=technology.clock_mhz,
            total_energy_fj=total_energy,
            average_power_mw=average_power,
            peak_power_mw=peak_power,
            components=components,
            cycle_energy_fj=list(observer.cycle_energy) if keep_cycle_trace else [],
            estimation_time_s=elapsed_s,
            notes={"n_monitored_components": len(self.monitored)},
        )
