"""Tests for repro.obs — the unified tracing + metrics layer.

Covers the observability issue's acceptance surface: registry semantics
(labels, kinds, essential counters under ``disable()``), Prometheus text
rendering that a scraper can parse, Chrome-trace round trips (write →
load → summarize, span nesting, error annotation), cross-process span and
counter-delta merging through a real 2-worker sweep, the re-homed
``PROGRAM_BUILD_COUNT``/``KERNEL_BUILD_COUNT`` module aliases, per-phase
timings in ``EstimateResult.metadata``, phase durations on serve progress
events, the ``GET /metrics`` endpoint, and the ``repro obs`` CLI.
"""

from __future__ import annotations

import asyncio
import json
import urllib.request

import pytest

from repro import obs
from repro.api import RunSpec, estimate
from repro.api.cli import main as cli_main
from repro.api.sweep import SweepSpec, sweep
from repro.bench.cache import ResultCache
from repro.obs.metrics import MetricError, MetricsRegistry
from repro.serve import HttpFrontend, PowerServer
from repro.sim import batch, kernels

DESIGN = "binary_search"
MAX_CYCLES = 64


def _spec(seed=0, **overrides):
    overrides.setdefault("design", DESIGN)
    overrides.setdefault("max_cycles", MAX_CYCLES)
    overrides.setdefault("kernel_backend", "numpy")
    return RunSpec(seed=seed, **overrides)


@pytest.fixture
def tracing():
    """Span tracing on for the test, restored to defaults afterwards."""
    obs.drain_spans()
    obs.enable(tracing=True)
    yield
    obs.disable()
    obs.enable(tracing=False)  # metrics back on (the default), tracing off
    obs.drain_spans()


# ----------------------------------------------------------------- registry
def test_counter_labels_and_total():
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total", "jobs")
    counter.inc()
    counter.inc(2, state="done")
    counter.inc(state="failed")
    assert counter.value() == 1
    assert counter.value(state="done") == 2
    assert counter.total() == 4
    with pytest.raises(MetricError):
        counter.inc(-1)


def test_gauge_and_histogram():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "queue depth")
    gauge.set(5)
    gauge.dec(2)
    assert gauge.value() == 3
    histogram = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    assert histogram.count() == 3
    assert histogram.sum() == pytest.approx(5.55)


def test_kind_clash_and_name_validation():
    registry = MetricsRegistry()
    registry.counter("x_total", "")
    with pytest.raises(MetricError):
        registry.gauge("x_total", "")
    with pytest.raises(MetricError):
        registry.counter("bad name!", "")


def test_essential_counters_survive_disable():
    registry = MetricsRegistry()
    essential = registry.counter("builds_total", "", essential=True)
    plain = registry.counter("extras_total", "")
    registry.set_enabled(False)
    essential.inc()
    plain.inc()
    assert essential.total() == 1
    assert plain.total() == 0
    registry.set_enabled(True)


def test_prometheus_render_parses():
    registry = MetricsRegistry()
    registry.counter("runs_total", "completed runs").inc(3, engine="rtl")
    registry.gauge("depth", "queue depth").set(2)
    registry.histogram("lat_seconds", "latency", buckets=(1.0,)).observe(0.5)
    text = registry.render_prometheus()
    lines = text.splitlines()
    assert '# TYPE runs_total counter' in lines
    assert 'runs_total{engine="rtl"} 3' in lines
    assert "depth 2" in lines
    assert 'lat_seconds_bucket{le="1"} 1' in lines
    assert 'lat_seconds_bucket{le="+Inf"} 1' in lines
    assert "lat_seconds_count 1" in lines
    # every sample line is "name{labels} value" with a float-parseable value
    for line in lines:
        if line and not line.startswith("#"):
            float(line.rsplit(" ", 1)[1])


def test_counter_delta_merge_roundtrip():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "")
    counter.inc(2, kind="a")
    baseline = registry.counters_snapshot()
    counter.inc(3, kind="a")
    counter.inc(1, kind="b")
    deltas = registry.counter_deltas(baseline)
    target = MetricsRegistry()
    target.counter("c_total", "").inc(10, kind="a")
    target.merge_counter_deltas(deltas)
    assert target.counter("c_total", "").value(kind="a") == 13
    assert target.counter("c_total", "").value(kind="b") == 1


# -------------------------------------------------------------------- spans
def test_trace_roundtrip_and_summary(tracing, tmp_path):
    with obs.span("outer", design=DESIGN):
        with obs.span("inner") as inner:
            inner.set(n_items=3)
    with pytest.raises(RuntimeError):
        with obs.span("broken"):
            raise RuntimeError("boom")
    path = tmp_path / "trace.json"
    n_spans = obs.write_chrome_trace(str(path))
    assert n_spans == 3
    trace = obs.load_trace(str(path))
    events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    by_name = {e["name"]: e for e in events}
    assert set(by_name) == {"outer", "inner", "broken"}
    assert by_name["inner"]["args"]["n_items"] == 3
    assert by_name["broken"]["args"]["error"] == "RuntimeError"
    assert all(e["dur"] >= 1 for e in events)
    summary = obs.summarize_trace(str(path))
    assert summary["n_spans"] == 3
    assert summary["n_processes"] == 1
    assert summary["by_name"]["outer"]["count"] == 1


def test_span_noop_when_tracing_off(tmp_path):
    assert not obs.tracing_enabled()
    with obs.span("invisible"):
        pass
    assert obs.drain_spans() == []
    # start_span still measures a duration even with tracing off
    span = obs.start_span("measured")
    assert span.end() >= 0.0


def test_build_count_aliases_still_increment():
    before = batch.PROGRAM_BUILD_COUNT, kernels.KERNEL_BUILD_COUNT
    batch._BATCH_CACHE.clear()
    estimate(_spec(seed=0, backend="batch"))
    assert batch.PROGRAM_BUILD_COUNT == before[0] + 1
    assert kernels.KERNEL_BUILD_COUNT == before[1] + 1


def test_estimate_metadata_has_phase_timings():
    result = estimate(_spec(seed=1))
    phases = result.metadata["phase_s"]
    assert phases["total_s"] > 0
    assert "setup_s" in phases
    assert "simulate_s" in phases or "lane_build_s" in phases


def test_cache_counters_register_hits_and_misses(tmp_path):
    hits = obs.REGISTRY.counter("repro_cache_hits_total", "")
    misses = obs.REGISTRY.counter("repro_cache_misses_total", "")
    namespace = "obs-test"
    cache = ResultCache(str(tmp_path), namespace=namespace)
    h0, m0 = hits.value(namespace=namespace), misses.value(namespace=namespace)
    assert cache.get("k") is None
    cache.put("k", {"v": 1})
    assert cache.get("k") == {"v": 1}
    assert misses.value(namespace=namespace) == m0 + 1
    assert hits.value(namespace=namespace) == h0 + 1


# ---------------------------------------------------- cross-process merging
def test_sweep_trace_merges_worker_pids(tracing, tmp_path):
    spec = SweepSpec(
        designs=(DESIGN, "DCT"),
        engines=("rtl",),
        seeds=(0, 1),
        max_cycles=MAX_CYCLES,
        kernel_backend="numpy",
        n_workers=2,
    )
    result = sweep(spec)
    assert len(result.results) == 4
    path = tmp_path / "sweep_trace.json"
    obs.write_chrome_trace(str(path))
    summary = obs.summarize_trace(str(path))
    # the two shard workers' spans landed on the parent timeline
    assert summary["n_processes"] >= 2
    names = set(summary["by_name"])
    assert {"sweep", "task.run", "program.build", "kernel.compile"} <= names
    worker_pids = set(summary["by_name"]["task.run"]["pids"])
    parent_pids = set(summary["by_name"]["sweep"]["pids"])
    assert worker_pids - parent_pids  # real subprocess spans, not re-labels


def test_worker_counter_deltas_merge_into_parent():
    counter = obs.REGISTRY.counter("repro_program_builds_total", "")
    before = counter.total()
    batch._BATCH_CACHE.clear()
    spec = SweepSpec(
        designs=(DESIGN,),
        engines=("rtl",),
        seeds=(0, 1),
        max_cycles=MAX_CYCLES,
        kernel_backend="numpy",
        n_workers=2,
    )
    sweep(spec)
    # the lane-batch task compiled its program (in a worker when the pool
    # sharded, locally when it short-circuited) — either way the registry
    # reflects the build
    assert counter.total() >= before + 1


# ------------------------------------------------------------------- serve
def test_serve_events_carry_phase_durations_and_metrics_endpoint():
    async def go():
        async with PowerServer(coalesce_window_s=0.02) as server:
            http = HttpFrontend(server, port=0)
            await http.start()
            try:
                job_ids = [await server.submit(_spec(seed=s)) for s in (0, 1)]
                for job_id in job_ids:
                    await server.wait(job_id)
                record = server.status(job_ids[0])
                states = [event.state for event in record.events]
                assert states == [
                    "queued", "coalesced", "compiling", "simulating", "done",
                ]
                # every event after the first carries the previous phase's
                # wall-clock duration, measured by the span layer
                for event in record.events[1:]:
                    assert event.detail["phase_s"] >= 0.0
                assert record.events[-1].detail["total_s"] > 0.0

                def scrape():
                    with urllib.request.urlopen(
                        http.url + "/metrics", timeout=120
                    ) as response:
                        assert response.status == 200
                        kind = response.headers["Content-Type"]
                        assert kind.startswith("text/plain")
                        return response.read().decode()

                return await asyncio.to_thread(scrape)
            finally:
                await http.stop()

    text = asyncio.run(go())

    samples = {}
    for line in text.splitlines():
        if line and not line.startswith("#"):
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
    assert samples["repro_serve_jobs_submitted_total"] >= 2
    assert samples['repro_serve_jobs_total{state="done"}'] >= 2
    assert samples["repro_serve_groups_total"] >= 1
    assert samples["repro_serve_coalesced_jobs_total"] >= 2
    assert samples["repro_serve_job_latency_seconds_count"] >= 2
    assert any(name.startswith("repro_kernel_builds_total") for name in samples)
    assert "repro_program_builds_total" in samples


# --------------------------------------------------------------------- CLI
def test_obs_cli_dump_reset_summarize(tmp_path, capsys, tracing):
    with obs.span("cli.smoke"):
        pass
    trace_path = tmp_path / "t.json"
    obs.write_chrome_trace(str(trace_path))

    assert cli_main(["obs", "dump"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE" in out and "repro_program_builds_total" in out

    json_path = tmp_path / "summary.json"
    assert cli_main(
        ["obs", "summarize", str(trace_path), "--json", str(json_path)]
    ) == 0
    summary = json.loads(json_path.read_text())
    assert "cli.smoke" in summary["by_name"]
    capsys.readouterr()

    assert cli_main(["obs", "summarize", str(tmp_path / "missing.json")]) == 2

    assert cli_main(["obs", "reset"]) == 0
    assert "reset" in capsys.readouterr().out
    assert obs.REGISTRY.counter("repro_program_builds_total", "").total() == 0


def test_run_cli_trace_flag(tmp_path, capsys):
    trace_path = tmp_path / "run.json"
    code = cli_main([
        "run", "--design", DESIGN, "--max-cycles", str(MAX_CYCLES),
        "--kernel-backend", "numpy", "--trace", str(trace_path),
    ])
    # the flag must not leave tracing on for later tests
    obs.disable()
    obs.enable(tracing=False)
    obs.drain_spans()
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    summary = obs.summarize_trace(str(trace_path))
    assert "estimate" in summary["by_name"]
    assert summary["n_spans"] >= 3
