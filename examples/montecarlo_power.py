"""Monte-Carlo power sweep from declarative burst/Markov stimulus specs.

1024 independent stimulus lanes through one lane-vectorized simulation of the
HVPeakF sharpening filter: every lane re-seeds the same declarative
scenario — a pixel stream that mixes duty-cycled bursts of fresh pixels with
Markov-correlated (bursty per-bit) activity — and the multi-seed RTL power
estimator advances all 1024 lanes together, feeding the compiled stimulus
tensors straight into the lane store (no per-lane Python drive loop).

The result is a power *distribution*, not a point estimate: the spread the
paper's single-workload numbers hide.

At 8192+ lanes the dominant cost becomes NumPy per-op dispatch inside the
batch simulator; the fused lane kernels (``repro.sim.kernels``) lift it —
pass ``--kernel-backend native`` (or set ``REPRO_KERNEL_BACKEND=native``) to
compile the whole settle/clock-edge into one C kernel via cffi, 3-5x the
per-op path on this design.  Hosts without a C compiler transparently get
the fused-NumPy kernel instead; results are bit-identical on every backend.

Run from the repository root:

    PYTHONPATH=src python examples/montecarlo_power.py
    PYTHONPATH=src python examples/montecarlo_power.py --lanes 8192 \
        --kernel-backend native
"""

from __future__ import annotations

import argparse
import time

from repro.designs.registry import build_flat
from repro.power import build_seed_library
from repro.power.lane_estimator import BatchRTLPowerEstimator
from repro.stim import (
    BurstSpec,
    ConstantSpec,
    MarkovSpec,
    MixtureSpec,
    SpecTestbench,
    StimulusSpec,
)

DEFAULT_LANES = 1024
N_CYCLES = 160

# The scenario: pixels arrive 70% of the time as duty-cycled random bursts
# (8 active, 8 idle — a blanking interval), 30% as Markov-correlated streams
# whose bits toggle in runs (stationary activity ~2/3, like natural video
# gradients); the valid strobe is held high throughout.
SCENARIO = StimulusSpec(
    n_cycles=N_CYCLES,
    ports={
        "pixel": MixtureSpec(
            components=(
                (0.7, BurstSpec(active=8, idle=8)),
                (0.3, MarkovSpec(p01=0.4, p10=0.2)),
            ),
            hold=16,
        ),
        "valid": ConstantSpec(1),
    },
    default=None,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lanes", type=int, default=DEFAULT_LANES,
                        help="independent stimulus seeds (one lane each)")
    parser.add_argument("--kernel-backend", default="auto",
                        choices=("auto", "native", "numpy", "off"),
                        help="fused lane-kernel backend; 'native' compiles "
                             "the cycle into C (recommended at 8192+ lanes)")
    parser.add_argument("--kernel-threads", default=None,
                        help="native-kernel worker threads per settle/edge "
                             "('auto' = scale with cores and lanes; results "
                             "are bit-identical at any count)")
    args = parser.parse_args()
    n_lanes = args.lanes

    print(SCENARIO.describe())
    print()
    estimator = BatchRTLPowerEstimator(build_flat("HVPeakF"),
                                       library=build_seed_library(),
                                       kernel_backend=args.kernel_backend,
                                       kernel_threads=args.kernel_threads)
    testbenches = [SpecTestbench(SCENARIO, seed=seed) for seed in range(n_lanes)]

    start = time.perf_counter()
    reports = estimator.estimate_all(testbenches, keep_cycle_trace=False)
    elapsed = time.perf_counter() - start

    powers = sorted(report.average_power_mw for report in reports)
    mean = sum(powers) / len(powers)
    std = (sum((p - mean) ** 2 for p in powers) / len(powers)) ** 0.5

    def quantile(q: float) -> float:
        return powers[min(len(powers) - 1, int(q * len(powers)))]

    print(f"{n_lanes} lanes x {N_CYCLES} cycles in {elapsed:.2f} s "
          f"({n_lanes * N_CYCLES / elapsed:,.0f} lane-cycles/s, "
          f"stimulus driver: {reports[0].notes['stimulus_driver']}, "
          f"kernel backend: {estimator.last_kernel_backend}, "
          f"threads: {estimator.last_kernel_threads})")
    print()
    print(f"average power over {n_lanes} seeds (mW):")
    print(f"  mean {mean:.4f}  std {std:.4f}  "
          f"min {powers[0]:.4f}  max {powers[-1]:.4f}")
    print(f"  p5 {quantile(0.05):.4f}  p50 {quantile(0.50):.4f}  "
          f"p95 {quantile(0.95):.4f}")

    # a coarse text histogram of the distribution
    n_bins = 10
    lo, hi = powers[0], powers[-1]
    width = (hi - lo) / n_bins or 1.0
    bins = [0] * n_bins
    for p in powers:
        bins[min(n_bins - 1, int((p - lo) / width))] += 1
    print()
    for i, count in enumerate(bins):
        bar = "#" * max(1, round(40 * count / max(bins))) if count else ""
        print(f"  {lo + i * width:.4f}-{lo + (i + 1) * width:.4f} "
              f"{count:5d} {bar}")


if __name__ == "__main__":
    main()
