"""Nets: named multi-bit wires connecting component ports."""

from __future__ import annotations

import itertools
from typing import Optional


class Net:
    """A multi-bit wire in an RTL netlist.

    A net has exactly one driver (a component output port or a module input
    port) and any number of sinks.  Signal values are not stored on the net;
    the simulator keeps its own value map keyed by net so that the netlist
    itself stays immutable during simulation.
    """

    _ids = itertools.count()

    __slots__ = ("name", "width", "uid", "driver", "sinks")

    def __init__(self, name: str, width: int) -> None:
        if width <= 0:
            raise ValueError(f"net {name!r}: width must be positive, got {width}")
        self.name = name
        self.width = int(width)
        self.uid = next(Net._ids)
        #: the (component, port_name) pair or ("module", port_name) driving this net
        self.driver: Optional[tuple] = None
        #: list of (component, port_name) pairs reading this net
        self.sinks: list = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name!r}, width={self.width})"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __deepcopy__(self, memo: dict) -> "Net":
        # Nets are identity objects shared between a module and its components;
        # cloning passes (flatten, instrumentation) rebuild connectivity
        # explicitly, so deep copies of referencing objects keep pointing here.
        return self
