"""Quickstart: every estimation engine through the unified API.

The paper's argument is a *comparison between estimation engines* — software
RTL estimation, a gate-level baseline, and power emulation — over the same
designs and workloads.  ``repro.api`` makes that comparison declarative: one
:class:`~repro.api.RunSpec` names the design (by registry name), the engine,
the stimulus seed and the cycle budget, and every engine returns the same
:class:`~repro.api.EstimateResult`.

This script runs the paper's Fig. 1 binary-search circuit through all three
engines, then a multi-seed RTL power sweep over BatchSimulator lanes.

Run:  PYTHONPATH=src python examples/quickstart.py
(or the equivalent CLI:  python -m repro run --design binary_search)
"""

from __future__ import annotations

from repro.api import RunSpec, SweepSpec, estimate, sweep


def main() -> None:
    # ---------------------------------------- one spec shape, three engines
    print("=== the three estimation engines on one spec ===")
    for engine in ("rtl", "gate", "emulation"):
        spec = RunSpec(
            design="binary_search",
            engine=engine,
            seed=3,
            max_cycles=192,
            compare_to_rtl=(engine != "rtl"),
        )
        result = estimate(spec)
        print(result.summary())
    print()

    # ------------------------------------------------- a closer look at one
    result = estimate(RunSpec(design="binary_search", engine="emulation",
                              seed=3, max_cycles=192,
                              workload_cycles=1_000_000 * 24))
    print("=== emulation engine detail (modeled Fig. 2 flow) ===")
    print(result.report.table(n=8))
    print(f"  device {result.metadata['device']} "
          f"@ {result.metadata['emulation_clock_mhz']:.1f} MHz; "
          f"modeled emulation time {result.timing['modeled_total_s']:.3f} s "
          f"for a {result.metadata['workload_cycles']}-cycle nominal workload")
    print()

    # --------------------------- multi-seed RTL power sweep on batch lanes
    print("=== multi-seed RTL power distribution (8 seeds, one lane each) ===")
    swept = sweep(SweepSpec(designs=("binary_search",), engines=("rtl",),
                            seeds=tuple(range(8))))
    print(swept.summary())
    print(f"  (executed as {swept.results[0].backend}: all seeds advanced by "
          f"one lane-vectorized settle per cycle)")

    # every result is JSON-round-trippable for caching and artifacts
    payload = swept.results[0].to_json()
    print(f"  first result serializes to {len(payload)} bytes of JSON")


if __name__ == "__main__":
    main()
