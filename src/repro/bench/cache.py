"""On-disk result cache for benchmark studies.

Entries are small JSON files in a cache directory, named by the SHA-256 of a
canonical key.  Every key embeds a *code fingerprint* — a hash over the
``repro`` package sources — so results computed by an older version of the
code can never be served for the current one: editing any ``.py`` file under
``repro/`` silently invalidates the whole cache, while repeat runs of
unchanged code hit disk instead of recomputing.

Robustness: an entry that exists but cannot be parsed (truncated write on a
full disk, bit rot, a concurrent writer from an older interpreter) is
*quarantined* — renamed to ``<entry>.corrupt`` so the next lookup is an
honest miss instead of re-reading (and re-reporting) the same corruption
forever; ``corruption_count`` on the cache object surfaces how many entries
were quarantined.  Cache reads and writes are also a named fault-injection
site (``cache``) of :mod:`repro.resilience.faults`.

Size management: long-lived processes (notably the :mod:`repro.serve` job
server) write results forever, so the cache supports a byte budget —
``max_bytes=`` or the ``REPRO_CACHE_MAX_MB`` environment variable.  Every
``put`` that pushes the directory past the budget evicts least-recently-used
entries (hits touch the entry's mtime) across *all* namespaces until it fits;
manifests and other non-entry files are never touched.  ``stats()`` reports
entries/bytes on disk plus this object's hit/miss/eviction/corruption
counters, and ``python -m repro cache stats|clear`` surfaces both.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.resilience.faults import maybe_inject

#: environment variable holding the cache byte budget, in MiB ("" = unbounded)
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

# Process-wide cache counters, labelled by namespace; the per-object
# ``hit_count``/... attributes below stay authoritative for a single cache's
# lifetime, the registry aggregates across every ResultCache in the process
# (sweep + serve + job store share one registry).  Essential so `repro cache
# stats` and the serve /metrics endpoint see them even with metrics disabled.
_CACHE_HITS = obs.counter(
    "repro_cache_hits_total", "ResultCache lookups served from disk",
    essential=True)
_CACHE_MISSES = obs.counter(
    "repro_cache_misses_total", "ResultCache lookups that missed",
    essential=True)
_CACHE_EVICTIONS = obs.counter(
    "repro_cache_evictions_total",
    "ResultCache entries evicted to stay under the byte budget",
    essential=True)
_CACHE_CORRUPTIONS = obs.counter(
    "repro_cache_corruptions_total",
    "ResultCache entries quarantined as corrupt", essential=True)

#: cache entry files: ``<namespace>-<sha256 hex>.json`` (manifests and other
#: bookkeeping files in the same directory never match)
_ENTRY_NAME = re.compile(r"^(?P<namespace>.+)-(?P<key>[0-9a-f]{64})\.json$")

_CODE_FINGERPRINT: Optional[str] = None


def resolve_max_bytes(max_bytes: Optional[int] = None) -> Optional[int]:
    """The effective cache byte budget (None = unbounded).

    An explicit ``max_bytes`` wins; ``None`` reads ``REPRO_CACHE_MAX_MB``
    (fractional MiB accepted).  A zero/negative budget means "evict
    everything but the newest entry" rather than "unbounded" — disabling the
    budget is done by leaving both unset.
    """
    if max_bytes is not None:
        return max_bytes
    raw = os.environ.get(CACHE_MAX_MB_ENV, "").strip()
    if not raw:
        return None
    try:
        return int(float(raw) * 1024 * 1024)
    except ValueError:
        raise ValueError(
            f"{CACHE_MAX_MB_ENV} must be a number of MiB, got {raw!r}"
        ) from None


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    Computed once per process (a few milliseconds); cache keys embed it so
    results are keyed to the exact code that produced them.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


class ResultCache:
    """JSON file cache keyed by hashed, code-fingerprinted key dicts."""

    def __init__(
        self,
        directory: str,
        namespace: str = "bench",
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = os.path.abspath(directory)
        self.namespace = namespace
        #: byte budget enforced by LRU eviction on put (None = unbounded)
        self.max_bytes = resolve_max_bytes(max_bytes)
        #: unreadable entries quarantined (renamed to ``*.corrupt``) so far
        self.corruption_count = 0
        #: lookups served from disk by this object
        self.hit_count = 0
        #: lookups that missed (including quarantined corrupt entries)
        self.miss_count = 0
        #: entries evicted by this object to stay under the byte budget
        self.eviction_count = 0

    # ------------------------------------------------------------------ keys
    def key(self, **parts) -> str:
        """Hash a key from JSON-serializable parts (+ the code fingerprint)."""
        payload = dict(parts)
        payload["__code__"] = code_fingerprint()
        payload["__namespace__"] = self.namespace
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{self.namespace}-{key}.json")

    # ------------------------------------------------------------------- I/O
    def get(self, key: str) -> Optional[Dict]:
        """The cached value for ``key``, or None on miss.

        A present-but-unparsable entry is quarantined (renamed to
        ``*.corrupt``, counted in ``corruption_count``) and reported as a
        miss, so corruption costs one recompute instead of one per lookup.
        """
        maybe_inject("cache")
        path = self._path(key)
        try:
            with open(path) as handle:
                value = json.load(handle)
        except OSError:
            self.miss_count += 1
            _CACHE_MISSES.inc(namespace=self.namespace)
            return None
        except ValueError:
            self._quarantine(path)
            self.miss_count += 1
            _CACHE_MISSES.inc(namespace=self.namespace)
            return None
        self.hit_count += 1
        _CACHE_HITS.inc(namespace=self.namespace)
        try:
            # a hit is a *use*: bump the mtime so LRU eviction spares it
            os.utime(path)
        except OSError:  # pragma: no cover - raced eviction or read-only dir
            pass
        return value

    def _quarantine(self, path: str) -> None:
        self.corruption_count += 1
        _CACHE_CORRUPTIONS.inc(namespace=self.namespace)
        try:
            os.replace(path, path + ".corrupt")
        except OSError:  # pragma: no cover - raced or read-only directory
            pass

    def put(self, key: str, value: Dict) -> None:
        """Atomically persist ``value`` (a JSON-serializable dict).

        When a byte budget is configured, least-recently-used entries (any
        namespace) are evicted afterwards until the directory fits — the
        entry just written is always spared.
        """
        maybe_inject("cache")
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(value, handle, sort_keys=True)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._evict_to_budget(spare=self._path(key))

    # ------------------------------------------------------ size management
    def _entries(self) -> List[Tuple[str, int, float]]:
        """Every cache entry in the directory: (path, bytes, mtime)."""
        entries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return entries
        for name in names:
            if not _ENTRY_NAME.match(name):
                continue
            path = os.path.join(self.directory, name)
            try:
                status = os.stat(path)
            except OSError:  # raced with a concurrent eviction
                continue
            entries.append((path, status.st_size, status.st_mtime))
        return entries

    def _evict_to_budget(self, spare: Optional[str] = None) -> int:
        """Evict oldest entries until the directory fits; returns how many."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for path, size, _ in sorted(entries, key=lambda e: e[2]):
            if total <= self.max_bytes:
                break
            if path == spare:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        self.eviction_count += evicted
        if evicted:
            _CACHE_EVICTIONS.inc(evicted, namespace=self.namespace)
        return evicted

    def stats(self) -> Dict[str, object]:
        """Entries/bytes on disk plus this object's lookup counters.

        Disk numbers cover the whole directory (all namespaces — the byte
        budget is a per-directory property); ``namespace_entries`` counts
        just this namespace.  ``corrupt_quarantined`` counts the ``*.corrupt``
        files present, i.e. quarantines across the directory's lifetime, not
        just this process.
        """
        entries = self._entries()
        prefix = f"{self.namespace}-"
        corrupt = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            if name.endswith(".corrupt"):
                corrupt += 1
        return {
            "directory": self.directory,
            "namespace": self.namespace,
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "namespace_entries": sum(
                1 for path, _, _ in entries
                if os.path.basename(path).startswith(prefix)
            ),
            "max_bytes": self.max_bytes,
            "hits": self.hit_count,
            "misses": self.miss_count,
            "evictions": self.eviction_count,
            "corrupt_quarantined": corrupt,
        }

    def clear(self, all_namespaces: bool = False) -> int:
        """Delete cache entries; returns the number removed.

        Default scope is this namespace; ``all_namespaces=True`` removes
        every entry file in the directory (manifests and ``*.corrupt``
        quarantine files are left alone either way).
        """
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        prefix = f"{self.namespace}-"
        for name in os.listdir(self.directory):
            match = _ENTRY_NAME.match(name)
            if match is None:
                continue
            if not all_namespaces and not name.startswith(prefix):
                continue
            try:
                os.unlink(os.path.join(self.directory, name))
                removed += 1
            except OSError:
                pass
        return removed
