"""The power macromodel library.

The paper's methodology assumes a "power macromodel library for a universal
set of RTL components ... created by characterizing their gate- or
transistor-level implementations".  Two ways of populating the library are
provided:

* :class:`SeedModelBuilder` — analytic per-type coefficient heuristics derived
  from the synthetic cell library's energies.  Instant, deterministic, and
  good enough for every flow-level experiment (all estimators share the same
  library, so relative comparisons are unaffected).
* :class:`repro.power.characterize.CharacterizationEngine` — regression
  fitting against gate-level reference simulations, used where model fidelity
  itself is being evaluated.

Models are keyed by :meth:`repro.netlist.components.Component.macromodel_key`
(type plus port shape), so all instances of, say, a 16-bit adder share one
model — exactly how a characterized library is reused across designs.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.netlist.components import Component
from repro.power.macromodel import LinearTransitionModel, PowerMacromodel
from repro.power.technology import CB130M_TECHNOLOGY, Technology


class SeedModelBuilder:
    """Builds analytic linear-transition models for any RTL component type.

    Coefficients are expressed in fJ per bit toggle and scale with the
    component shape the same way gate implementations do (e.g. a multiplier
    input-bit toggle disturbs an entire partial-product row, so its
    coefficient grows with the other operand's width).
    """

    def __init__(self, technology: Technology = CB130M_TECHNOLOGY) -> None:
        self.technology = technology

    # ------------------------------------------------------------------ API
    def build(self, component: Component) -> LinearTransitionModel:
        port_widths = {p.name: p.width for p in component.monitored_ports()}
        handler = getattr(self, f"_build_{component.type_name}", None)
        if handler is not None:
            coefficients, base = handler(component)
        else:
            coefficients, base = self._build_generic(component)
        return LinearTransitionModel(
            component.type_name, port_widths, coefficients, base_energy_fj=base
        )

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _uniform(component: Component, per_port: Mapping[str, float]) -> Dict[str, list]:
        coefficients = {}
        for port in component.monitored_ports():
            value = per_port.get(port.name, per_port.get("*", 0.5))
            coefficients[port.name] = [value] * port.width
        return coefficients

    def _build_generic(self, component: Component):
        return self._uniform(component, {"*": 1.0}), 0.5

    # ---------------------------------------------------- functional units
    def _build_adder(self, component: Component):
        coeffs = self._uniform(component, {"a": 6.0, "b": 6.0, "cin": 4.0,
                                            "y": 4.0, "cout": 3.0})
        return coeffs, 0.8

    def _build_subtractor(self, component: Component):
        coeffs = self._uniform(component, {"a": 6.5, "b": 7.0, "y": 4.2, "borrow": 3.0})
        return coeffs, 1.0

    def _build_addsub(self, component: Component):
        width = component.params.get("width", 8)
        coeffs = self._uniform(component, {"a": 6.5, "b": 7.0, "y": 4.2})
        coeffs["sub"] = [2.0 * width]
        return coeffs, 1.0

    def _build_multiplier(self, component: Component):
        width_a = int(component.params["width_a"])
        width_b = int(component.params["width_b"])
        coeffs = self._uniform(
            component,
            {"a": 1.6 * width_b, "b": 1.6 * width_a, "y": 2.5},
        )
        return coeffs, 2.0 + 0.15 * width_a * width_b

    def _build_comparator(self, component: Component):
        coeffs = self._uniform(component, {"a": 3.2, "b": 3.2, "lt": 1.0, "eq": 1.0, "gt": 1.0})
        return coeffs, 0.6

    def _build_absval(self, component: Component):
        return self._uniform(component, {"a": 4.5, "y": 3.0}), 0.8

    def _build_saturator(self, component: Component):
        return self._uniform(component, {"a": 2.2, "y": 1.5}), 0.5

    def _build_shifter_const(self, component: Component):
        return self._uniform(component, {"a": 0.25, "y": 0.25}), 0.1

    def _build_shifter_var(self, component: Component):
        width = int(component.params["width"])
        amount_width = int(component.params["amount_width"])
        coeffs = self._uniform(component, {"a": 1.1 * amount_width, "y": 1.0})
        coeffs["amount"] = [1.4 * width] * amount_width
        return coeffs, 0.8

    def _build_mux(self, component: Component):
        width = int(component.params["width"])
        n_inputs = int(component.params["n_inputs"])
        coeffs = {}
        for port in component.monitored_ports():
            if port.name == "sel":
                coeffs[port.name] = [0.9 * width * max(1, n_inputs // 2)] * port.width
            elif port.name == "y":
                coeffs[port.name] = [1.1] * port.width
            else:
                coeffs[port.name] = [0.9] * port.width
        return coeffs, 0.3

    def _build_logic(self, component: Component):
        per_bit = 2.2 if component.params.get("op") in ("xor", "xnor") else 1.2
        return self._uniform(component, {"a": per_bit, "b": per_bit, "y": 0.8}), 0.2

    def _build_not(self, component: Component):
        return self._uniform(component, {"a": 0.6, "y": 0.6}), 0.1

    def _build_reduce(self, component: Component):
        return self._uniform(component, {"a": 1.6, "y": 0.8}), 0.2

    def _build_concat(self, component: Component):
        return self._uniform(component, {"*": 0.15}), 0.05

    def _build_slice(self, component: Component):
        return self._uniform(component, {"*": 0.15}), 0.05

    def _build_extend(self, component: Component):
        return self._uniform(component, {"*": 0.15}), 0.05

    def _build_decoder(self, component: Component):
        width_out = int(component.params.get("sel_width", 3))
        return self._uniform(component, {"a": 1.0 * (1 << width_out) / 4.0, "y": 0.5}), 0.3

    # ------------------------------------------------------------- storage
    def _build_register(self, component: Component):
        tech = self.technology
        width = int(component.params["width"])
        coeffs = self._uniform(
            component,
            {"d": tech.register_data_energy_fj, "q": 1.0, "en": 0.6, "clear": 0.6},
        )
        # the clock network toggles every cycle regardless of data activity
        base = tech.register_clock_energy_fj * width
        return coeffs, base

    def _build_counter(self, component: Component):
        tech = self.technology
        width = int(component.params["width"])
        coeffs = self._uniform(
            component, {"d": tech.register_data_energy_fj, "q": 4.5, "en": 1.0, "load": 1.0}
        )
        base = tech.register_clock_energy_fj * width + 1.5
        return coeffs, base

    def _build_accumulator(self, component: Component):
        tech = self.technology
        width = int(component.params["width"])
        coeffs = self._uniform(
            component, {"d": 6.5, "q": 4.5, "en": 1.0, "clear": 1.0}
        )
        base = tech.register_clock_energy_fj * width + 1.5
        return coeffs, base

    def _build_memory(self, component: Component):
        tech = self.technology
        width = int(component.params["width"])
        depth = int(component.params["depth"])
        coeffs = self._uniform(
            component,
            {
                "addr": 4.0 + 0.02 * depth,
                "wdata": tech.memory_write_energy_fj_per_bit,
                "rdata": tech.memory_read_energy_fj_per_bit,
                "we": 8.0 + 0.05 * width,
            },
        )
        base = tech.memory_leakage_fj_per_bit_cycle * width * depth + 2.0
        return coeffs, base

    def _build_regfile(self, component: Component):
        tech = self.technology
        width = int(component.params["width"])
        depth = int(component.params["depth"])
        per_port = {"waddr": 3.0, "wdata": tech.memory_write_energy_fj_per_bit * 0.7,
                    "we": 6.0}
        coeffs = {}
        for port in component.monitored_ports():
            if port.name.startswith("raddr"):
                value = 3.0
            elif port.name.startswith("rdata"):
                value = tech.memory_read_energy_fj_per_bit * 0.7
            else:
                value = per_port.get(port.name, 1.0)
            coeffs[port.name] = [value] * port.width
        base = tech.memory_leakage_fj_per_bit_cycle * width * depth + 1.0
        return coeffs, base

    def _build_rom(self, component: Component):
        depth = int(component.params["depth"])
        coeffs = self._uniform(component, {"addr": 2.5 + 0.01 * depth, "rdata": 3.0})
        return coeffs, 0.5

    def _build_fsm(self, component: Component):
        n_states = int(component.params.get("n_states", 2))
        n_transitions = int(component.params.get("n_transitions", n_states))
        coeffs = self._uniform(component, {"*": 1.5})
        base = 2.0 + 0.4 * n_states + 0.15 * n_transitions
        return coeffs, base

    def _build_constant(self, component: Component):
        return {}, 0.0


class PowerModelLibrary:
    """Macromodel library keyed by component type/shape."""

    def __init__(
        self,
        technology: Technology = CB130M_TECHNOLOGY,
        provider: Optional[Callable[[Component], PowerMacromodel]] = None,
        name: str = "library",
    ) -> None:
        self.technology = technology
        self.provider = provider
        self.name = name
        self.models: Dict[tuple, PowerMacromodel] = {}
        #: number of lookups answered from the cache vs. built on demand
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ API
    def add(self, component: Component, model: PowerMacromodel) -> PowerMacromodel:
        self.models[component.macromodel_key()] = model
        return model

    def add_by_key(self, key: tuple, model: PowerMacromodel) -> PowerMacromodel:
        self.models[key] = model
        return model

    def has(self, component: Component) -> bool:
        return component.macromodel_key() in self.models

    def lookup(self, component: Component) -> PowerMacromodel:
        """Return the model for ``component``, building it on demand if possible."""
        key = component.macromodel_key()
        model = self.models.get(key)
        if model is not None:
            self.hits += 1
            return model
        if self.provider is None:
            raise KeyError(
                f"no power model for {component.type_name!r} with shape {key[1]} "
                f"and library {self.name!r} has no provider"
            )
        self.misses += 1
        model = self.provider(component)
        self.models[key] = model
        return model

    def __len__(self) -> int:
        return len(self.models)

    def summary(self) -> str:
        lines = [f"power model library {self.name!r}: {len(self.models)} models"]
        for key, model in sorted(self.models.items(), key=lambda kv: str(kv[0])):
            metrics = f" [{model.metrics.summary()}]" if model.metrics else ""
            lines.append(f"  {key[0]:14s} bits={model.total_bits:4d} kind={model.kind}{metrics}")
        return "\n".join(lines)


def build_seed_library(technology: Technology = CB130M_TECHNOLOGY) -> PowerModelLibrary:
    """A library that synthesizes analytic models for any component on demand."""
    builder = SeedModelBuilder(technology)
    return PowerModelLibrary(technology, provider=builder.build, name="seed")
