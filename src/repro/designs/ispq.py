"""Ispq benchmark: MPEG-style inverse quantization of an 8x8 coefficient block.

For each quantized coefficient ``Q`` and quantizer scale ``QP`` the block
reconstructs

    F = 0                                                   if Q == 0
    F = sign(Q) * min( ((2*|Q| + 1) * QP) >> 1, 2047 )      otherwise

(the "method 2" style reconstruction without the mismatch-control term).  The
engine streams the 64 coefficients of a block out of an input memory, runs
them through an absolute-value unit, a shift/increment stage, a multiplier, a
sign-reapplication adder/subtractor and a saturator, and writes the results to
an output memory.

Interface: ``start``, ``qp`` (5 bits); ``done``.  The testbench loads
``in_mem`` and reads ``out_mem`` through the backdoor.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.netlist.signals import from_signed, to_signed
from repro.sim.testbench import Testbench
from repro.designs import stimuli

COEFF_WIDTH = 12
QP_WIDTH = 5
WORK_WIDTH = 20
#: cycles per 8x8 block (3-state loop per coefficient plus control overhead)
CYCLES_PER_BLOCK = 64 * 3 + 8


def reference_dequant(coefficients: Sequence[int], qp: int) -> List[int]:
    """Bit-accurate software model of the engine."""
    out = []
    for q in coefficients:
        if q == 0:
            out.append(0)
            continue
        magnitude = min(((2 * abs(q) + 1) * qp) >> 1, 2047)
        out.append(magnitude if q > 0 else -magnitude)
    return out


def build() -> Module:
    """Build the inverse-quantizer engine."""
    b = NetlistBuilder("Ispq")
    start = b.input("start", 1)
    qp = b.input("qp", QP_WIDTH)

    # ---------------------------------------------------------------- state
    idx_q = b.register("reg_idx", 6, has_enable=True, has_clear=True)
    coeff_q = b.register("reg_coeff", COEFF_WIDTH, has_enable=True)
    result_q = b.register("reg_result", COEFF_WIDTH, has_enable=True)

    one6 = b.const(1, 6, name="const_one6")
    idx_next = b.add(idx_q, one6, name="idx_inc")
    idx_last = b.eq(idx_q, b.const(63, 6, name="const_63"), name="idx_last")

    # ----------------------------------------------------------- controller
    fsm, ctrl = b.fsm(
        "ctrl",
        states=["IDLE", "CLEAR", "READ", "EXEC", "WRITE", "FINISH"],
        inputs={"start": start, "idx_last": idx_last},
        outputs={"idx_en": 1, "idx_clear": 1, "coeff_en": 1, "result_en": 1,
                 "we": 1, "done": 1},
        moore_outputs={
            "CLEAR": {"idx_clear": 1, "idx_en": 1},
            "READ": {},
            "EXEC": {"coeff_en": 1},
            "WRITE": {"result_en": 1, "we": 1, "idx_en": 1},
            "FINISH": {"done": 1},
        },
    )
    fsm.when("IDLE", "CLEAR", start=1)
    fsm.otherwise("CLEAR", "READ")
    fsm.otherwise("READ", "EXEC")
    fsm.otherwise("EXEC", "WRITE")
    fsm.when("WRITE", "FINISH", idx_last=1)
    fsm.otherwise("WRITE", "READ")
    fsm.otherwise("FINISH", "IDLE")

    # --------------------------------------------------------------- memory
    zero1 = b.const(0, 1, name="const_zero1")
    zero_c = b.const(0, COEFF_WIDTH, name="const_zero_c")
    in_rdata = b.memory("in_mem", COEFF_WIDTH, 64, we=zero1, addr=idx_q,
                        wdata=zero_c, sync_read=True)

    # ------------------------------------------------------------- datapath
    # |Q|, zero detection
    magnitude = b.absval(coeff_q, name="abs_q")
    is_zero = b.eq(coeff_q, zero_c, name="q_zero")
    sign = b.bit(coeff_q, COEFF_WIDTH - 1, name="q_sign")

    # (2*|Q| + 1) * QP >> 1
    doubled = b.shl(b.zext(magnitude, WORK_WIDTH, name="mag_ext"), 1, name="double")
    incremented = b.add(doubled, b.const(1, WORK_WIDTH, name="const_one_w"), name="plus1")
    scaled = b.mul(incremented, b.zext(qp, WORK_WIDTH, name="qp_ext"),
                   width_y=WORK_WIDTH + QP_WIDTH, signed=False, name="quant_mult")
    halved = b.shr(scaled, 1, name="halve")

    # clamp magnitude to 2047, re-apply the sign, force zero for Q == 0
    sat_width = COEFF_WIDTH - 1
    too_big = b.reduce("or", b.slice(halved, WORK_WIDTH + QP_WIDTH - 1, sat_width,
                                     name="over_bits"), name="too_big")
    clipped = b.mux(too_big, b.slice(halved, sat_width - 1, 0, name="low_bits"),
                    b.const(2047, sat_width, name="const_2047"), name="clip_mux")
    positive = b.zext(clipped, COEFF_WIDTH, name="pos_val")
    negative = b.sub(b.const(0, COEFF_WIDTH, name="const_zero_neg"), positive, name="negate")
    signed_value = b.mux(sign, positive, negative, name="sign_mux")
    final = b.mux(is_zero, signed_value, zero_c, name="zero_mux")

    b.drive("reg_coeff", d=in_rdata, en=ctrl["coeff_en"])
    b.drive("reg_result", d=final, en=ctrl["result_en"])
    b.drive("reg_idx", d=idx_next, en=ctrl["idx_en"], clear=ctrl["idx_clear"])

    # output memory: written during WRITE at the current index
    b.memory("out_mem", COEFF_WIDTH, 64, we=ctrl["we"], addr=idx_q, wdata=final,
             sync_read=True)

    b.output("done", ctrl["done"])

    module = b.build()
    module.attributes["in_memory"] = "in_mem"
    module.attributes["out_memory"] = "out_mem"
    module.attributes["description"] = "MPEG-style inverse quantizer"
    return module


class IspqTestbench(Testbench):
    """Dequantizes blocks and compares against the software reference."""

    def __init__(self, blocks: Sequence[Sequence[int]], qp: int = 12,
                 name: str = "ispq_tb") -> None:
        super().__init__(name)
        self.blocks = [list(block) for block in blocks]
        self.qp = qp
        self.expected = [reference_dequant(block, qp) for block in self.blocks]
        self._block_index = 0
        self._started = False
        self._checked = 0
        self.max_cycles = (CYCLES_PER_BLOCK + 30) * max(1, len(self.blocks))

    def _memory(self, simulator, suffix: str):
        for name, component in simulator.module.components.items():
            if component.type_name == "memory" and name.endswith(suffix):
                return component
        raise KeyError(f"memory {suffix!r} not found")

    def _load_block(self, simulator) -> None:
        block = self.blocks[self._block_index]
        self._memory(simulator, "in_mem").load(
            [from_signed(v, COEFF_WIDTH) for v in block]
        )

    def bind(self, simulator) -> None:
        self._block_index = 0
        self._started = False
        self._checked = 0
        self._load_block(simulator)

    def drive(self, cycle: int, simulator):
        if self._block_index >= len(self.blocks):
            return {"start": 0, "qp": self.qp}
        if not self._started:
            self._started = True
            return {"start": 1, "qp": self.qp}
        return {"start": 0, "qp": self.qp}

    def check(self, cycle: int, simulator) -> None:
        if self._started and simulator.get_output("done"):
            out_mem = self._memory(simulator, "out_mem")
            actual = [to_signed(out_mem.read_word(i), COEFF_WIDTH) for i in range(64)]
            expected = self.expected[self._block_index]
            assert actual == expected, f"block {self._block_index}: dequant mismatch"
            self._checked += 1
            self._block_index += 1
            self._started = False
            if self._block_index < len(self.blocks):
                self._load_block(simulator)

    def finished(self, cycle: int, simulator) -> bool:
        return self._block_index >= len(self.blocks)

    def captured(self):
        return {"blocks_checked": self._checked}


def testbench(n_blocks: int = 3, seed: int = 6, qp: int = 12) -> IspqTestbench:
    """Standard stimulus: sparse quantized coefficient blocks."""
    blocks = [stimuli.random_coefficient_block(seed=seed + i, magnitude=900)
              for i in range(n_blocks)]
    return IspqTestbench(blocks, qp=qp)
