"""Vectorized lane drivers: stimulus tensors straight into the lane store.

:class:`BatchStimulusDriver` couples a :class:`~repro.stim.compile.CompiledStimulus`
to a :class:`~repro.sim.batch.BatchSimulator`: each cycle it writes one
``(n_lanes,)`` row per driven port directly into the simulator's value store —
a handful of NumPy assignments — instead of the per-lane
:class:`~repro.sim.batch.LaneView` Python drive loop (one ``drive()`` dict,
one port iteration and one masked int write *per lane* per cycle).  This is
the piece ROADMAP.md called out as bounding lane-sweep speedup at low lane
counts; the multi-seed power estimator
(:class:`~repro.power.lane_estimator.BatchRTLPowerEstimator`) uses exactly
this write path whenever its testbenches are spec-backed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.batch import LIMB_BITS, _LIMB_MASK, BatchSimulator
from repro.stim.compile import CHUNK_CYCLES, CompiledStimulus
from repro.stim.spec import StimulusSpec


class BatchStimulusDriver:
    """Drive every lane of a :class:`BatchSimulator` from one stimulus spec.

    Lane ``i`` is driven with the spec re-seeded to ``seeds[i]`` (default:
    ``spec.seed + i``), so the driver is bit-identical to running ``n_lanes``
    scalar :class:`~repro.stim.testbench.SpecTestbench` simulations — only the
    per-cycle drive cost drops from ``O(n_lanes × n_ports)`` Python to
    ``O(n_ports)`` NumPy row writes.  The driver assumes a freshly-reset
    simulator (stimulus cycles count from 0).
    """

    def __init__(
        self,
        simulator: BatchSimulator,
        spec: StimulusSpec,
        seeds: Optional[Sequence[int]] = None,
        chunk_cycles: int = CHUNK_CYCLES,
    ) -> None:
        if seeds is None:
            seeds = [spec.seed + lane for lane in range(simulator.n_lanes)]
        seeds = list(seeds)
        if len(seeds) != simulator.n_lanes:
            raise ValueError(
                f"need one seed per lane: got {len(seeds)} seeds for "
                f"{simulator.n_lanes} lanes"
            )
        self.simulator = simulator
        self.spec = spec
        widths = {name: width for name, (_, width) in simulator._input_keys.items()}
        self.stimulus = CompiledStimulus(
            spec, widths, seeds, dtype=simulator.program.dtype,
            chunk_cycles=chunk_cycles,
        )
        input_keys = simulator._input_keys
        port_limbs = getattr(simulator, "_port_limbs", {})
        #: (port index in the stimulus tensor, base value-store slot, limb count)
        #: — limb-store ports (61..240 bits) arrive as object columns of exact
        #: Python ints and are split across their limb rows at apply time
        self.rows: List[Tuple[int, int, int]] = [
            (index, input_keys[name][0], port_limbs.get(name, 1))
            for index, name in enumerate(self.stimulus.port_names)
        ]

    @property
    def n_cycles(self) -> int:
        return self.stimulus.n_cycles

    def apply(self, cycle: int) -> None:
        """Write cycle ``cycle``'s stimulus rows into the lane store."""
        values = self.stimulus.values_at(cycle)
        v = self.simulator._v
        for index, slot, n_limbs in self.rows:
            if n_limbs == 1:
                v[slot] = values[index]
            else:
                column = values[index]
                for k in range(n_limbs):
                    v[slot + k] = (column >> (LIMB_BITS * k)) & _LIMB_MASK

    def run(
        self,
        n_cycles: Optional[int] = None,
        on_cycle: Optional[Callable[[int, BatchSimulator], None]] = None,
    ) -> int:
        """Drive, settle and clock the whole run; returns the cycle count.

        ``on_cycle(cycle, simulator)`` fires after each settle — the same
        observation point scalar simulation observers use.
        """
        simulator = self.simulator
        total = self.n_cycles if n_cycles is None else min(n_cycles, self.n_cycles)
        for cycle in range(total):
            self.apply(cycle)
            simulator.settle()
            if on_cycle is not None:
                on_cycle(cycle, simulator)
            simulator.clock_edge()
            simulator.cycle += 1
        simulator.settle()
        return total
