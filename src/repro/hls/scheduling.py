"""Operation scheduling: ASAP, ALAP and resource-constrained list scheduling.

Control steps are clock cycles of the generated datapath.  All operations have
unit latency by default (results are registered at the end of their step and
available from the next step on); per-class latencies can be overridden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.hls.dfg import DataflowGraph, DFGNode

#: mapping of DFG operations to shareable functional-unit classes
OP_CLASSES: Dict[str, str] = {
    "add": "alu",
    "sub": "alu",
    "neg": "alu",
    "mul": "multiplier",
    "and": "logic",
    "or": "logic",
    "xor": "logic",
    "shl": "shift",
    "shr": "shift",
    "asr": "shift",
}


@dataclass
class Schedule:
    """Assignment of operations to control steps."""

    graph: DataflowGraph
    start_step: Dict[str, int] = field(default_factory=dict)
    latencies: Dict[str, int] = field(default_factory=dict)

    @property
    def n_steps(self) -> int:
        if not self.start_step:
            return 0
        return max(
            self.start_step[name] + self.latency(name) for name in self.start_step
        )

    def latency(self, node_name: str) -> int:
        node = self.graph.nodes[node_name]
        return self.latencies.get(OP_CLASSES.get(node.op, "alu"), 1)

    def operations_in_step(self, step: int) -> List[DFGNode]:
        return [
            self.graph.nodes[name]
            for name, start in self.start_step.items()
            if start == step
        ]

    def concurrency(self) -> Dict[str, Dict[int, int]]:
        """Per functional-unit class, the number of operations active per step."""
        usage: Dict[str, Dict[int, int]] = {}
        for name, start in self.start_step.items():
            op_class = OP_CLASSES[self.graph.nodes[name].op]
            for step in range(start, start + self.latency(name)):
                usage.setdefault(op_class, {}).setdefault(step, 0)
                usage[op_class][step] += 1
        return usage

    def max_concurrency(self) -> Dict[str, int]:
        return {
            op_class: max(per_step.values())
            for op_class, per_step in self.concurrency().items()
        }

    def verify_dependencies(self) -> None:
        """Check that every operation starts after all its operands finish."""
        for name, start in self.start_step.items():
            node = self.graph.nodes[name]
            for operand in node.operands:
                producer = self.graph.nodes[operand]
                if producer.is_source:
                    continue
                finish = self.start_step[operand] + self.latency(operand)
                if start < finish:
                    raise ValueError(
                        f"operation {name!r} starts at step {start} before its operand "
                        f"{operand!r} finishes at step {finish}"
                    )


def _ready_order(graph: DataflowGraph) -> List[DFGNode]:
    """Operations in a topological order (operands are created before users)."""
    return list(graph.operations)


def asap_schedule(
    graph: DataflowGraph, latencies: Optional[Mapping[str, int]] = None
) -> Schedule:
    """As-soon-as-possible schedule (unlimited resources)."""
    graph.validate()
    schedule = Schedule(graph, latencies=dict(latencies or {}))
    for node in _ready_order(graph):
        earliest = 0
        for operand in node.operands:
            producer = graph.nodes[operand]
            if producer.is_source:
                continue
            earliest = max(
                earliest, schedule.start_step[operand] + schedule.latency(operand)
            )
        schedule.start_step[node.name] = earliest
    return schedule


def alap_schedule(
    graph: DataflowGraph,
    latency_bound: Optional[int] = None,
    latencies: Optional[Mapping[str, int]] = None,
) -> Schedule:
    """As-late-as-possible schedule within ``latency_bound`` steps."""
    asap = asap_schedule(graph, latencies)
    bound = latency_bound if latency_bound is not None else asap.n_steps
    if bound < asap.n_steps:
        raise ValueError(
            f"latency bound {bound} is below the critical path length {asap.n_steps}"
        )
    schedule = Schedule(graph, latencies=dict(latencies or {}))
    for node in reversed(_ready_order(graph)):
        latest = bound - schedule.latency(node.name)
        for consumer in graph.consumers(node.name):
            if consumer.is_source:
                continue
            latest = min(latest, schedule.start_step[consumer.name] - schedule.latency(node.name))
        schedule.start_step[node.name] = latest
    return schedule


def list_schedule(
    graph: DataflowGraph,
    resource_constraints: Mapping[str, int],
    latencies: Optional[Mapping[str, int]] = None,
) -> Schedule:
    """Resource-constrained list scheduling with ALAP-mobility priority.

    ``resource_constraints`` maps functional-unit classes (see
    :data:`OP_CLASSES`) to the number of available units; unlisted classes are
    unconstrained.
    """
    graph.validate()
    asap = asap_schedule(graph, latencies)
    alap = alap_schedule(graph, None, latencies)
    schedule = Schedule(graph, latencies=dict(latencies or {}))
    unscheduled = {node.name for node in graph.operations}
    step = 0
    # usage[op_class][step] counts operations occupying a unit in that step
    usage: Dict[str, Dict[int, int]] = {}
    guard = 0
    while unscheduled:
        ready = []
        for name in unscheduled:
            node = graph.nodes[name]
            operands_done = all(
                graph.nodes[op].is_source
                or (
                    op in schedule.start_step
                    and schedule.start_step[op] + schedule.latency(op) <= step
                )
                for op in node.operands
            )
            if operands_done:
                ready.append(name)
        # lower mobility (slack) first: critical operations get units first
        ready.sort(key=lambda n: (alap.start_step[n] - asap.start_step[n], n))
        for name in ready:
            node = graph.nodes[name]
            op_class = OP_CLASSES[node.op]
            limit = resource_constraints.get(op_class)
            occupied = usage.get(op_class, {}).get(step, 0)
            if limit is not None and occupied >= limit:
                continue
            schedule.start_step[name] = step
            for s in range(step, step + schedule.latency(name)):
                usage.setdefault(op_class, {}).setdefault(s, 0)
                usage[op_class][s] += 1
            unscheduled.discard(name)
        step += 1
        guard += 1
        if guard > 10_000:
            raise RuntimeError("list scheduling did not converge (check constraints)")
    return schedule
