"""Functional-equivalence tests: gate mappings must match RTL component semantics."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gates import GateLevelSimulator, TechmapError, TechnologyMapper
from repro.netlist.components import (
    AbsoluteValue,
    Adder,
    AddSub,
    Comparator,
    Concat,
    Decoder,
    Extend,
    LogicOp,
    Multiplier,
    Mux,
    NotOp,
    ReduceOp,
    Saturator,
    ShifterConst,
    ShifterVar,
    Slice,
    Subtractor,
)
from repro.netlist.sequential import Register

MAPPER = TechnologyMapper()


def check_equivalence(component, n_vectors=40, seed=0):
    """Drive random vectors through both the RTL model and its gate mapping."""
    rng = random.Random(seed)
    netlist = MAPPER.map_component(component)
    simulator = GateLevelSimulator(netlist)
    port_widths = {p.name: p.width for p in component.ports.values()}
    input_ports = [p for p in component.input_ports]
    for _ in range(n_vectors):
        vector = {p.name: rng.getrandbits(p.width) for p in input_ports}
        expected = component.evaluate(vector)
        actual = simulator.evaluate_ports(vector, port_widths)
        for port, value in expected.items():
            assert actual.get(port, 0) == value, (
                f"{component.type_name} mismatch on {port}: {vector} -> "
                f"expected {value}, got {actual.get(port, 0)}"
            )
    return netlist


def test_adder_mapping_equivalent():
    netlist = check_equivalence(Adder("a", 8, with_carry_in=True, with_carry_out=True))
    assert netlist.n_gates > 0


def test_subtractor_mapping_equivalent():
    check_equivalence(Subtractor("s", 8, with_borrow_out=True))


def test_addsub_mapping_equivalent():
    check_equivalence(AddSub("as", 8))


def test_multiplier_unsigned_mapping_equivalent():
    check_equivalence(Multiplier("m", 6), n_vectors=30)


def test_multiplier_signed_mapping_equivalent():
    check_equivalence(Multiplier("ms", 6, signed=True), n_vectors=30)


def test_multiplier_truncated_output_mapping():
    check_equivalence(Multiplier("mt", 8, width_y=8), n_vectors=30)


def test_comparator_mapping_equivalent():
    check_equivalence(Comparator("c", 8))
    check_equivalence(Comparator("cs", 8, signed=True))


def test_absval_and_saturator_mapping():
    check_equivalence(AbsoluteValue("abs", 8))
    check_equivalence(Saturator("sat", 12, 8, signed=True))
    check_equivalence(Saturator("satu", 12, 8, signed=False))


def test_shifter_mappings():
    check_equivalence(ShifterConst("shl", 8, 3, "left"))
    check_equivalence(ShifterConst("shr", 8, 2, "right"))
    check_equivalence(ShifterConst("sra", 8, 2, "right", arithmetic=True))
    check_equivalence(ShifterVar("bl", 8, 3, "left"))
    check_equivalence(ShifterVar("br", 8, 3, "right"))
    check_equivalence(ShifterVar("bra", 8, 3, "right", arithmetic=True))


def test_mux_mappings_various_sizes():
    for n in (2, 3, 4, 5):
        check_equivalence(Mux(f"mux{n}", 8, n))


def test_logic_not_reduce_mappings():
    for op in ("and", "or", "xor", "nand", "nor", "xnor"):
        check_equivalence(LogicOp(f"l_{op}", op, 8))
    check_equivalence(NotOp("n", 8))
    for op in ("and", "or", "xor"):
        check_equivalence(ReduceOp(f"r_{op}", op, 8))


def test_plumbing_mappings():
    check_equivalence(Concat("cat", [4, 8, 4]))
    check_equivalence(Slice("sl", 16, 11, 4))
    check_equivalence(Extend("ze", 4, 12, signed=False))
    check_equivalence(Extend("se", 4, 12, signed=True))
    check_equivalence(Decoder("dec", 4))


def test_unmappable_component_raises():
    with pytest.raises(TechmapError):
        MAPPER.map_component(Register("r", 8))
    assert not MAPPER.can_map(Register("r2", 8))
    assert MAPPER.can_map(Adder("a", 8))


def test_gate_netlist_statistics():
    netlist = MAPPER.map_component(Multiplier("m", 8))
    assert netlist.n_gates > 100
    assert netlist.total_area_um2() > 0
    assert netlist.total_leakage_nw() > 0
    histogram = netlist.gate_histogram()
    assert histogram.get("AND2", 0) > 0
    assert set(netlist.primary_inputs) >= {"a[0]", "b[7]"}
    loads = netlist.load_capacitance_ff(MAPPER.library)
    assert all(value >= 0 for value in loads.values())


def test_adder_gate_count_scales_with_width():
    small = MAPPER.map_component(Adder("a8", 8)).n_gates
    large = MAPPER.map_component(Adder("a16", 16)).n_gates
    assert large == pytest.approx(2 * small, rel=0.2)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1))
def test_adder10_equivalence_property(a, b):
    component = Adder("prop", 10)
    netlist = MAPPER.map_component(component)
    sim = GateLevelSimulator(netlist)
    widths = {"a": 10, "b": 10, "y": 10}
    assert sim.evaluate_ports({"a": a, "b": b}, widths)["y"] == (a + b) & 0x3FF


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255))
def test_comparator_equivalence_property(a, b):
    component = Comparator("prop", 8)
    netlist = MAPPER.map_component(component)
    sim = GateLevelSimulator(netlist)
    widths = {"a": 8, "b": 8, "lt": 1, "eq": 1, "gt": 1}
    out = sim.evaluate_ports({"a": a, "b": b}, widths)
    assert out["lt"] == int(a < b)
    assert out["eq"] == int(a == b)
    assert out["gt"] == int(a > b)
