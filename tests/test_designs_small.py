"""Tests for the smaller benchmark designs (binary search, bubble sort, filter, VLD)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs import binary_search, bubble_sort, hvpeakf, stimuli, vld
from repro.netlist import flatten, module_stats, validate_module
from repro.sim import Simulator


# -------------------------------------------------------------- binary search
def test_binary_search_builds_valid_rtl():
    module = binary_search.build()
    assert validate_module(module, raise_on_error=False).ok
    stats = module_stats(module)
    assert stats.by_type.get("fsm") == 1
    assert stats.by_type.get("rom") == 1


def test_binary_search_testbench_passes():
    module = binary_search.build()
    sim = Simulator(flatten(module))
    result = sim.run(binary_search.testbench(n_searches=6, module=module))
    assert result.captured["searches_checked"] == 6


def test_binary_search_finds_every_table_entry():
    table = stimuli.random_sorted_array(32, seed=9)
    module = binary_search.build(depth=32, table=table)
    sim = Simulator(flatten(module))
    keys = table[::4] + [table[0], table[-1]]
    tb = binary_search.BinarySearchTestbench(module, keys)
    result = sim.run(tb)
    assert result.captured["searches_checked"] == len(keys)


def test_binary_search_rejects_bad_table():
    with pytest.raises(ValueError):
        binary_search.build(depth=8, table=[1, 2, 3])


# ---------------------------------------------------------------- bubble sort
def test_bubble_sort_sorts_random_data():
    module = bubble_sort.build(depth=16)
    sim = Simulator(flatten(module))
    result = sim.run(bubble_sort.testbench(depth=16, seed=3))
    assert result.captured["sorted"] == sorted(result.captured["sorted"])
    assert result.captured["swaps"] > 0


def test_bubble_sort_already_sorted_makes_no_swaps():
    module = bubble_sort.build(depth=8)
    sim = Simulator(flatten(module))
    data = list(range(8))
    result = sim.run(bubble_sort.BubbleSortTestbench(data))
    assert result.captured["sorted"] == data
    assert result.captured["swaps"] == 0


def test_bubble_sort_reverse_sorted_worst_case():
    module = bubble_sort.build(depth=8)
    sim = Simulator(flatten(module))
    data = list(range(8))[::-1]
    result = sim.run(bubble_sort.BubbleSortTestbench(data))
    assert result.captured["sorted"] == sorted(data)
    assert result.captured["swaps"] == 8 * 7 // 2


def test_bubble_sort_cycle_model_is_conservative():
    module = bubble_sort.build(depth=12)
    sim = Simulator(flatten(module))
    data = stimuli.random_array(12, seed=1)
    result = sim.run(bubble_sort.BubbleSortTestbench(data))
    assert result.cycles <= bubble_sort.cycles_per_sort(12)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 0xFFFF), min_size=8, max_size=8))
def test_bubble_sort_property(data):
    module = bubble_sort.build(depth=8)
    sim = Simulator(flatten(module))
    result = sim.run(bubble_sort.BubbleSortTestbench(data))
    assert result.captured["sorted"] == sorted(data)


# -------------------------------------------------------------- peaking filter
def test_hvpeakf_matches_reference():
    module = hvpeakf.build()
    sim = Simulator(flatten(module))
    result = sim.run(hvpeakf.testbench(n_pixels=200, seed=1))
    assert result.captured["pixels_checked"] == 200


def test_hvpeakf_flat_input_passes_through():
    """A constant image has no high-frequency content: output equals input."""
    pixels = [100] * 50
    expected = hvpeakf.reference_filter(pixels)
    assert expected[5:] == [100] * 45
    module = hvpeakf.build()
    sim = Simulator(flatten(module))
    result = sim.run(hvpeakf.PeakingFilterTestbench(pixels))
    assert result.captured["pixels_checked"] == 50


def test_hvpeakf_reference_sharpens_edges():
    pixels = [50] * 10 + [200] * 10
    out = hvpeakf.reference_filter(pixels)
    # overshoot just after the edge, undershoot just before it
    assert max(out) > 200
    assert min(out[5:]) < 50


def test_hvpeakf_reference_clamps():
    assert all(0 <= y <= 255 for y in hvpeakf.reference_filter([0, 255] * 20))


# ------------------------------------------------------------------------ VLD
def test_vld_code_table_is_consistent():
    table = stimuli.vld_decode_table()
    assert len(table) == 256
    # prefix 1xxxxxxx -> symbol 0, length 1
    assert table[0b10000000] == (1 << 8) | 0
    # prefix 01xxxxxx -> symbol 1, length 2
    assert table[0b01000000] == (2 << 8) | 1
    # all-zero prefix is the EOB marker
    assert table[0] == 0


def test_vld_encode_reference_roundtrip():
    symbols = [0, 3, 7, 1, 2, 2, 5]
    words = stimuli.vld_encode(symbols)
    assert stimuli.vld_reference_decode(words) == symbols


def test_vld_hardware_decodes_stream():
    module = vld.build()
    sim = Simulator(flatten(module))
    result = sim.run(vld.testbench(n_symbols=60, seed=2))
    assert result.captured["decoded"] is not None


def test_vld_empty_stream_terminates_immediately():
    module = vld.build()
    sim = Simulator(flatten(module))
    tb = vld.VldTestbench([])
    result = sim.run(tb)
    assert result.final_outputs["count"] == 0


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, stimuli.VLD_MAX_SYMBOL), min_size=1, max_size=40))
def test_vld_encode_decode_property(symbols):
    words = stimuli.vld_encode(symbols)
    assert stimuli.vld_reference_decode(words) == symbols


def test_vld_symbol_out_of_range_rejected():
    with pytest.raises(ValueError):
        stimuli.vld_encode_symbol(stimuli.VLD_MAX_SYMBOL + 1)
