"""Process-pool sharding for per-design benchmark studies and sweeps.

The Figure 3 study — and the unified API's (design × engine × seed) sweeps —
are embarrassingly parallel: every task's result is computed independently.
:func:`run_payload_tasks` is the generic fan-out primitive: it runs one
picklable worker function per payload across a process pool, degrading to
in-process serial execution for one worker or one task (same results, no
pool overhead).  Since PR 7 it is a thin wrapper over the fault-tolerant
scheduler in :mod:`repro.resilience.runner` — callers get retries, per-task
timeouts and crash-proof pools (a dead worker respawns the pool instead of
poisoning it) by passing a :class:`~repro.resilience.policy.RetryPolicy`,
and the historical raise-on-first-failure contract is preserved by default.
:func:`run_sharded`/:func:`run_study_tasks` specialize it for the Fig. 3
study, with each worker process holding a lazily constructed study of its
own — the seed library and tool calibration are built once per worker, then
amortized over every design that worker computes.

Completed rows are written to the shared on-disk cache (when one is
configured) from the parent process as they land, so partial progress
survives a later failure and a repeat run — even a serial one — is served
from disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.bench.cache import ResultCache
from repro.bench.fig3 import Fig3Row, StudyConfig
from repro.resilience.policy import RetryPolicy
from repro.resilience.runner import _pool_context, run_resilient_tasks

__all__ = [
    "ShardOutcome",
    "run_payload_tasks",
    "run_sharded",
    "run_study_tasks",
]

_P = TypeVar("_P")
_R = TypeVar("_R")


def run_payload_tasks(
    payloads: Sequence[_P],
    worker: Callable[[_P], _R],
    n_workers: int = 2,
    on_result: Optional[Callable[[int, _R], None]] = None,
    policy: Optional[RetryPolicy] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[_R]:
    """Fan ``worker(payload)`` out over a process pool, preserving order.

    ``worker`` must be a module-level (picklable) function and each payload
    picklable.  ``n_workers <= 1`` or a single payload runs in-process —
    results are identical either way.  ``on_result(index, result)`` fires in
    the parent as each task *succeeds* (completion order), so callers can
    persist completed work before later tasks finish.

    ``policy`` adds retries/timeouts/backoff (default: one attempt, no
    deadline, honouring the ``REPRO_TASK_TIMEOUT_S``/``REPRO_TASK_RETRIES``
    environment).  When a task still fails after its retries, scheduling
    stops and the task's exception is re-raised (the original object when it
    survived pickling, else a :class:`~repro.resilience.failures.TaskError`
    carrying the structured failure) — callers that want partial results
    instead of an exception use :func:`~repro.resilience.runner
    .run_resilient_tasks` directly, as the sweep runner does.
    """
    outcome = run_resilient_tasks(
        payloads,
        worker,
        n_workers=n_workers,
        policy=policy,
        labels=labels,
        on_outcome=(
            None
            if on_result is None
            else lambda task: on_result(task.index, task.value) if task.ok else None
        ),
        stop_on_failure=True,
    )
    if outcome.interrupted:
        raise KeyboardInterrupt("shard run interrupted")
    outcome.raise_first_failure()
    return outcome.values()  # type: ignore[return-value]


#: per-worker-process study, keyed by config (workers reuse calibration)
_WORKER_STUDIES: Dict[StudyConfig, object] = {}


def _compute_row_payload(design_name: str, config: StudyConfig) -> Dict[str, object]:
    """Worker entry point: one design's Fig3 row as a plain dict."""
    from repro.bench.fig3 import Fig3Study

    study = _WORKER_STUDIES.get(config)
    if study is None:
        study = Fig3Study(config=config)
        _WORKER_STUDIES[config] = study
    return study.compute(design_name).to_dict()


#: one shard task: a design name plus the study configuration to run it under
StudyTask = Tuple[str, StudyConfig]


@dataclass
class ShardOutcome:
    """Rows plus scheduling metadata from one sharded run."""

    #: (design, config) -> computed row
    task_rows: Dict[StudyTask, Fig3Row]
    n_workers: int
    wall_time_s: float
    #: per-task compute wall time, measured *inside* the worker (pure
    #: compute, independent of queueing or parallel completion order)
    task_times_s: Dict[StudyTask, float] = field(default_factory=dict)

    @property
    def rows(self) -> Dict[str, Fig3Row]:
        """Design-keyed view (single-config runs)."""
        return {design: row for (design, _), row in self.task_rows.items()}


def _study_worker(task: StudyTask) -> Dict[str, object]:
    return _compute_row_payload(*task)


def run_study_tasks(
    tasks: List[StudyTask],
    n_workers: int = 2,
    cache: Optional[ResultCache] = None,
    policy: Optional[RetryPolicy] = None,
) -> ShardOutcome:
    """Compute one study row per ``(design, config)`` task across a pool.

    ``n_workers <= 1`` (or a single task) degrades to in-process serial
    execution — same results, no pool overhead.  Rows are persisted to
    ``cache`` as they arrive, so completed work survives a later task
    failing.
    """
    start = time.perf_counter()
    task_rows: Dict[StudyTask, Fig3Row] = {}
    task_times: Dict[StudyTask, float] = {}

    def collect(outcome) -> None:
        if not outcome.ok:
            return
        task = tasks[outcome.index]
        task_rows[task] = row = Fig3Row.from_dict(outcome.value)
        task_times[task] = outcome.wall_time_s
        # persist immediately so completed work survives a later task failing
        if cache is not None:
            design, config = task
            cache.put(cache.key(design=design, config=config.as_key()), row.to_dict())

    run_outcome = run_resilient_tasks(
        tasks,
        _study_worker,
        n_workers=n_workers,
        policy=policy,
        labels=[design for design, _ in tasks],
        on_outcome=collect,
        stop_on_failure=True,
    )
    if run_outcome.interrupted:
        raise KeyboardInterrupt("study run interrupted")
    run_outcome.raise_first_failure()
    return ShardOutcome(
        task_rows=task_rows,
        n_workers=n_workers,
        wall_time_s=time.perf_counter() - start,
        task_times_s=task_times,
    )


def run_sharded(
    design_names: List[str],
    n_workers: int = 2,
    config: StudyConfig = StudyConfig(),
    cache: Optional[ResultCache] = None,
) -> ShardOutcome:
    """Single-config convenience wrapper over :func:`run_study_tasks`."""
    return run_study_tasks(
        [(name, config) for name in design_names], n_workers=n_workers, cache=cache
    )
