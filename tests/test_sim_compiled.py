"""Cross-backend parity and unit tests for the compiled simulation backend.

The compiled (slot-indexed, code-generated) backend must be observationally
identical to the reference interpreter: same per-cycle outputs, same final
net values, and — on instrumented designs — bit-identical energy accumulator
readings, since the power-emulation results are read out of the simulated
hardware itself.
"""

from __future__ import annotations

from typing import Dict, Mapping

import pytest

from repro.core import InstrumentationConfig
from repro.core.instrument import instrument
from repro.designs.registry import all_designs, build_flat, get_design
from repro.netlist import NetlistBuilder, flatten
from repro.netlist.components import Component
from repro.power import build_seed_library
from repro.sim import (
    SimulationObserver,
    SimulationResult,
    Simulator,
    compile_module,
    schedule_for,
)
from repro.sim.compiled import SlotValues


class _OutputRecorder(SimulationObserver):
    def __init__(self) -> None:
        self.rows = []

    def on_cycle(self, simulator, cycle) -> None:
        self.rows.append((cycle, tuple(sorted(simulator.get_outputs().items()))))


def _run_design(module, testbench, backend):
    simulator = Simulator(module, backend=backend)
    recorder = simulator.add_observer(_OutputRecorder())
    result = simulator.run(testbench)
    final_nets = {net.name: simulator.get_net(net) for net in module.nets.values()}
    return simulator, recorder.rows, result, final_nets


@pytest.mark.parametrize("design_name", sorted(all_designs()))
def test_backend_parity_instrumented(design_name):
    """Both backends produce identical cycle-by-cycle and final behaviour.

    Runs the *instrumented* design so the comparison covers the inserted
    power-estimation hardware: ``power_total`` is a module output, so the
    per-cycle output comparison checks the energy pipeline every cycle, and
    the accumulator readback checks the per-component totals at the end.
    """
    library = build_seed_library()
    design = get_design(design_name)
    runs = {}
    for backend in ("interp", "compiled"):
        instrumented = instrument(design.build(), library, InstrumentationConfig())
        simulator, rows, result, final_nets = _run_design(
            instrumented.module, design.testbench(), backend
        )
        assert simulator.backend == backend
        runs[backend] = (
            rows,
            result.final_outputs,
            result.cycles,
            final_nets,
            instrumented.read_total_energy_fj(simulator),
            instrumented.component_energies_fj(simulator),
        )
    interp, compiled = runs["interp"], runs["compiled"]
    assert compiled[2] == interp[2]  # cycle count
    assert compiled[0] == interp[0]  # per-cycle outputs
    assert compiled[1] == interp[1]  # final outputs
    assert compiled[3] == interp[3]  # every final net value
    assert compiled[4] == interp[4]  # total energy readback
    assert compiled[5] == interp[5]  # per-component accumulators


def test_registry_designs_fully_compile():
    """Every registry design runs on the compiled backend (no interp fallback)."""
    for name in sorted(all_designs()):
        simulator = Simulator(build_flat(name))
        assert simulator.backend == "compiled"
        assert simulator._program.n_fused > 0


class _OpaqueXor(Component):
    """A component type the code generator knows nothing about."""

    type_name = "opaque_xor"

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.add_input("a", width)
        self.add_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"y": (inputs["a"] ^ inputs["b"]) & ((1 << self.width) - 1)}


def _module_with_opaque_component():
    builder = NetlistBuilder("opaque")
    a = builder.input("a", 8)
    b = builder.input("b", 8)
    module = builder.build()
    component = _OpaqueXor("x0", 8)
    module.add_component(component)
    component.connect("a", module.nets["a"])
    component.connect("b", module.nets["b"])
    y = module.add_net("y", 8)
    component.connect("y", y)
    module.add_output("y", y)
    return module


def test_unknown_component_uses_evaluate_fallback():
    module = flatten(_module_with_opaque_component())
    simulator = Simulator(module)
    assert simulator.backend == "compiled"
    assert simulator._program.n_fallback >= 1
    simulator.set_inputs({"a": 0xAC, "b": 0x35})
    simulator.settle()
    assert simulator.get_output("y") == 0xAC ^ 0x35


def test_set_input_unknown_port_lists_valid_ports():
    simulator = Simulator(build_flat("binary_search"))
    with pytest.raises(KeyError, match="valid input ports"):
        simulator.set_input("no_such_port", 1)
    with pytest.raises(KeyError, match="no_such_port"):
        simulator.set_input("no_such_port", 1)


def test_get_output_unknown_port_lists_valid_ports():
    simulator = Simulator(build_flat("binary_search"))
    with pytest.raises(KeyError, match="valid output ports"):
        simulator.get_output("bogus")


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        Simulator(build_flat("binary_search"), backend="jit")


def test_cycles_per_second_zero_cycles_is_zero():
    result = SimulationResult(design="d", cycles=0, wall_time_s=0.0)
    assert result.cycles_per_second == 0.0
    result = SimulationResult(design="d", cycles=0, wall_time_s=1.0)
    assert result.cycles_per_second == 0.0
    result = SimulationResult(design="d", cycles=10, wall_time_s=2.0)
    assert result.cycles_per_second == 5.0


def test_values_mapping_view_reads_and_writes():
    module = build_flat("binary_search")
    simulator = Simulator(module)
    assert isinstance(simulator.values, SlotValues)
    assert len(simulator.values) == len(module.nets)
    net = next(iter(module.nets.values()))
    simulator.values[net] = 1
    assert simulator.values[net] == 1
    assert simulator.get_net(net) == 1
    assert set(simulator.values) == set(module.nets.values())


def test_compile_and_schedule_caches_are_per_module():
    module = build_flat("DCT")
    assert build_flat("DCT") is module  # flatten happens once per process
    schedule = schedule_for(module)
    assert schedule_for(module) is schedule
    program = compile_module(module)
    assert compile_module(module) is program
    # two simulators on the same module share the compiled program
    assert Simulator(module)._program is Simulator(module)._program


def test_interp_backend_still_available():
    simulator = Simulator(build_flat("binary_search"), backend="interp")
    assert simulator.backend == "interp"
    assert simulator._program is None
    assert isinstance(simulator.values, dict)
