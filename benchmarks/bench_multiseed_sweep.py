"""Multi-seed RTL power sweep: batch lanes vs per-seed scalar estimation.

The ROADMAP's named next workload — wire ``BatchSimulator`` into the RTL
estimator for multi-seed power sweeps — lands in ``repro.api.sweep``: all
seeds of one (design, ``rtl``) group advance together as simulator lanes,
with each component's macromodel evaluated once per cycle over ``(n_seeds,)``
port-value arrays instead of once per seed.

Lane results are bit-identical to scalar per-seed runs (see
``tests/test_api.py``), so this harness measures pure execution speed: the
same seeds through ``RTLEstimatorAdapter.estimate_many`` (lanes) against a
per-seed scalar loop.  Writes ``benchmarks/results/multiseed_sweep.txt``.

``REPRO_BENCH_SEEDS`` overrides the seed count (CI smoke runs use a small
value).
"""

from __future__ import annotations

import os
import time

from repro.api import RunSpec
from repro.api.estimators import RTLEstimatorAdapter

from conftest import write_result

N_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "16"))

#: designs with per-seed stimulus variation and moderate cycle counts
_DESIGNS = ["binary_search", "HVPeakF", "Ispq"]


def _specs(design: str):
    return [RunSpec(design=design, engine="rtl", seed=seed) for seed in range(N_SEEDS)]


def test_multiseed_sweep_throughput(benchmark):
    adapter = RTLEstimatorAdapter()
    rows = {}
    total_scalar = 0.0
    total_batch = 0.0
    for design in _DESIGNS:
        # warm both paths: flatten/schedule/codegen caches for this module
        adapter.estimate_many(_specs(design)[:2])
        adapter.estimate(_specs(design)[0])

        start = time.perf_counter()
        batched = adapter.estimate_many(_specs(design))
        t_batch = time.perf_counter() - start

        start = time.perf_counter()
        scalars = [adapter.estimate(spec) for spec in _specs(design)]
        t_scalar = time.perf_counter() - start

        cycles = sum(r.report.cycles for r in scalars)
        rows[design] = {
            "scalar_s": t_scalar,
            "batch_s": t_batch,
            "scalar_cycles_per_s": cycles / t_scalar,
            "batch_cycles_per_s": cycles / t_batch,
            "speedup": t_scalar / t_batch,
        }
        total_scalar += t_scalar
        total_batch += t_batch
        # the comparison is equal work: identical energies either way
        for a, b in zip(batched, scalars):
            assert abs(a.report.total_energy_fj - b.report.total_energy_fj) < 1e-6

    aggregate = total_scalar / total_batch

    def sweep_once():
        for design in _DESIGNS:
            adapter.estimate_many(_specs(design))

    benchmark.pedantic(sweep_once, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "n_seeds": N_SEEDS,
            "aggregate_speedup": round(aggregate, 2),
            **{f"speedup_{k}": round(v["speedup"], 2) for k, v in rows.items()},
        }
    )

    lines = [
        "Multi-seed RTL power sweep — BatchSimulator lanes vs per-seed scalar runs",
        f"({N_SEEDS} stimulus seeds per design; identical per-seed reports)",
        "",
        f"{'design':14s} {'scalar cyc/s':>13s} {'lane cyc/s':>12s} {'speedup':>9s}",
    ]
    for design, row in rows.items():
        lines.append(
            f"{design:14s} {row['scalar_cycles_per_s']:13,.0f} "
            f"{row['batch_cycles_per_s']:12,.0f} {row['speedup']:8.1f}x"
        )
    lines += ["", f"aggregate speedup (sum of scalar / sum of lanes): {aggregate:.1f}x"]
    write_result(
        "multiseed_sweep.txt",
        "\n".join(lines),
        metrics={
            "n_seeds": N_SEEDS,
            "aggregate_speedup": round(aggregate, 2),
            **{f"speedup_{k}": round(v["speedup"], 2) for k, v in rows.items()},
        },
    )

    # the lane path must not regress below the scalar loop (modest floor so
    # CI jitter cannot flake the job; local measurements are well above it)
    assert aggregate > 1.2, f"multi-seed lane sweep slower than scalar: {aggregate:.2f}x"
