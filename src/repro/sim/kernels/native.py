"""Native (C via cffi) code generator for the kernel IR.

Prints a :class:`~repro.sim.kernels.ir.KernelIR` as one C translation unit,
compiles it with the system C compiler (``cc``/``gcc``/``clang``, override
with ``REPRO_KERNEL_CC``) and binds it through :mod:`cffi` in ABI mode.
Compiled shared objects are cached per source hash, so every structurally
identical module compiles exactly once per process.

Loop structure: lanes are processed in strip-mined blocks of
:data:`BLOCK_LANES`; within a block, each IR statement is its own short
fixed-bound loop over the block (auto-vectorized by the compiler), and SSA
temporaries live in a block-sized scratch buffer that stays cache-resident.
This keeps the value-store accesses streaming (contiguous row segments)
instead of striding lane-by-lane across the whole ``(n_slots, n_lanes)``
store — the layout that makes the per-op NumPy path memory-bound — while
eliminating all per-op interpreter dispatch.

Correctness notes:

* signed arithmetic is compiled with ``-fwrapv`` so int64 overflow wraps
  exactly like NumPy's,
* sequential state is read from and written to the *live* holder arrays
  (captured as stable pointers — holder resets are in-place), so kernels
  interoperate with lane views, memory backdoors and ``reset_state``,
* within one lane, all captures execute before all commits (statement order
  is preserved from the lane program), so the two-phase clock-edge semantics
  hold lane by lane — and blocks only ever touch their own lanes.

When no C compiler is available, callers fall back to the NumPy kernel
backend (see :func:`repro.sim.kernels.compile_kernel`).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.kernels.ir import (
    Abs, Bin, Const, KernelIR, Lane, MemRead, MemWrite, Min, Popcount,
    Select, SetSlot, SetState, SetTemp, SlotRef, StateRef, Stmt, Table,
    TempRef, Unary, Where, BOOL,
)


class NativeToolchainError(Exception):
    """No usable C compiler, or the generated kernel failed to compile."""


#: numpy store dtype -> C element type of the value store
_ELEM_TYPES = {"int64": "long long", "int8": "signed char"}

#: lanes per strip-mined block: large enough to vectorize and amortize loop
#: overhead, small enough that a block's touched row segments stay in cache
BLOCK_LANES = 128

#: C sources above this size skip the host-ISA vectorization flags — the
#: compile-time blowup on thousands of loops outweighs the runtime gain
_VECTORIZE_MAX_LINES = 500


def find_compiler() -> Optional[str]:
    """Path of the C compiler to use, or None when the host has none.

    ``REPRO_KERNEL_CC`` overrides discovery; pointing it at a nonexistent
    command disables the native backend (useful for testing the fallback).
    """
    override = os.environ.get("REPRO_KERNEL_CC")
    if override:
        return shutil.which(override)
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


# ---------------------------------------------------------------------------
# C printing.
# ---------------------------------------------------------------------------


def _temp_index(name: str) -> int:
    return int(name[1:]) - 1  # SSA temps are named t1, t2, ...


def _e(x) -> str:
    if isinstance(x, Const):
        return f"({x.value}LL)"
    if isinstance(x, Lane):
        return "(l0 + i)"
    if isinstance(x, SlotRef):
        return f"((i64)v[(i64){x.slot} * L + l0 + i])"
    if isinstance(x, StateRef):
        return f"S[{x.row}][l0 + i]"
    if isinstance(x, TempRef):
        return f"W[{_temp_index(x.name)} * B + i]"
    if isinstance(x, Table):
        return f"T{x.table}[{_e(x.index)}]"
    if isinstance(x, MemRead):
        return f"M[{x.mem}][({_e(x.addr)}) * L + l0 + i]"
    if isinstance(x, Unary):
        if x.op == "neg":
            return f"(-({_e(x.a)}))"
        return f"(!({_e(x.a)}))" if x.ty == BOOL else f"(~({_e(x.a)}))"
    if isinstance(x, Bin):
        return f"(({_e(x.a)}) {x.op} ({_e(x.b)}))"
    if isinstance(x, Where):
        return f"(({_e(x.cond)}) ? ({_e(x.a)}) : ({_e(x.b)}))"
    if isinstance(x, Min):
        a, b = _e(x.a), _e(x.b)
        return f"(({a}) < ({b}) ? ({a}) : ({b}))"
    if isinstance(x, Abs):
        a = _e(x.a)
        return f"(({a}) < 0 ? -({a}) : ({a}))"
    if isinstance(x, Popcount):
        return f"((i64)__builtin_popcountll((unsigned long long)({_e(x.a)})))"
    if isinstance(x, Select):
        out = _e(x.choices[-1])
        index = _e(x.index)
        for i in range(len(x.choices) - 2, -1, -1):
            out = f"(({index}) == {i} ? ({_e(x.choices[i])}) : {out})"
        return out
    raise TypeError(f"unprintable IR node {x!r}")


def _statement(stmt: Stmt) -> str:
    """One IR statement as its own vectorizable loop over the lane block."""
    loop = "for (i64 i = 0; i < nb; ++i) "
    if isinstance(stmt, SetTemp):
        body = f"W[{_temp_index(stmt.name)} * B + i] = {_e(stmt.expr)};"
    elif isinstance(stmt, SetSlot):
        body = f"v[(i64){stmt.slot} * L + l0 + i] = {_e(stmt.expr)};"
    elif isinstance(stmt, SetState):
        body = f"S[{stmt.row}][l0 + i] = {_e(stmt.expr)};"
    elif isinstance(stmt, MemWrite):
        body = (
            f"if ({_e(stmt.enable)}) "
            f"{{ M[{stmt.mem}][({_e(stmt.addr)}) * L + l0 + i] = {_e(stmt.data)}; }}"
        )
    else:
        raise TypeError(f"unprintable IR statement {stmt!r}")
    return loop + "{ " + body + " }"


def scratch_rows(ir: KernelIR) -> int:
    """Rows of block-sized scratch the kernel's SSA temporaries need."""
    rows = 0
    for stmts in ir.phases.values():
        for stmt in stmts:
            if isinstance(stmt, SetTemp):
                rows = max(rows, _temp_index(stmt.name) + 1)
    return rows


def generate_c_source(ir: KernelIR) -> str:
    """The complete C translation unit for one extracted lane program."""
    elem = _ELEM_TYPES[ir.dtype]
    lines: List[str] = [
        "typedef long long i64;",
        f"typedef {elem} elem;",
        f"enum {{ B = {BLOCK_LANES} }};",
        "",
    ]
    for index, table in enumerate(ir.tables):
        values = ", ".join(f"{int(value)}LL" for value in table)
        lines.append(f"static const i64 T{index}[{len(table)}] = {{{values}}};")
    if ir.tables:
        lines.append("")

    bodies: Dict[str, List[str]] = {
        phase: [_statement(stmt) for stmt in stmts]
        for phase, stmts in ir.phases.items()
    }
    if set(bodies) >= {"settle", "clock_edge"}:
        # the fused form: lanes are independent, so running a block's whole
        # cycle (settle then edge) before the next block's is equivalent
        bodies["cycle"] = bodies["settle"] + bodies["clock_edge"]

    for name, body in bodies.items():
        lines.append(
            f"void {name}(elem *restrict v, i64 *const *S, i64 *const *M, "
            f"i64 *restrict W, i64 L)"
        )
        lines.append("{")
        lines.append("    for (i64 l0 = 0; l0 < L; l0 += B) {")
        lines.append("        const i64 nb = (L - l0) < B ? (L - l0) : B;")
        lines.extend(f"        {line}" for line in body)
        lines.append("    }")
        lines.append("    (void)S; (void)M; (void)W;")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Compilation + binding.
# ---------------------------------------------------------------------------

#: sha1(source) -> (ffi, dlopened lib); one compile per structure per process
_LIB_CACHE: Dict[str, Tuple[object, object]] = {}
_BUILD_DIR: Optional[str] = None


def _build_dir() -> str:
    global _BUILD_DIR
    if _BUILD_DIR is None:
        _BUILD_DIR = tempfile.mkdtemp(prefix="repro-lane-kernels-")
        atexit.register(shutil.rmtree, _BUILD_DIR, ignore_errors=True)
    return _BUILD_DIR


def _compile_library(source: str, ir: KernelIR):
    key = hashlib.sha1(source.encode()).hexdigest()
    cached = _LIB_CACHE.get(key)
    if cached is not None:
        return cached

    compiler = find_compiler()
    if compiler is None:
        raise NativeToolchainError(
            "no C compiler found (set REPRO_KERNEL_CC or install cc/gcc/clang)"
        )
    try:
        import cffi
    except ImportError as error:  # pragma: no cover - cffi ships with the env
        raise NativeToolchainError(f"cffi unavailable: {error}") from error

    directory = _build_dir()
    c_path = os.path.join(directory, f"kernel_{key}.c")
    so_path = os.path.join(directory, f"kernel_{key}.so")
    with open(c_path, "w") as handle:
        handle.write(source)
    # Vectorizing for the host ISA (-march=native -ftree-vectorize) buys
    # ~1.5-2x at runtime but compile time grows superlinearly with the number
    # of statement loops, so very large kernels settle for plain -O2 (still
    # several times faster than the per-op path).  -march=native is safe
    # here — this is JIT-style host compilation — and the flag-less retry
    # covers compilers that do not understand it.
    tune = (
        ["-march=native", "-ftree-vectorize"]
        if len(source.splitlines()) <= _VECTORIZE_MAX_LINES
        else []
    )
    base = [compiler, "-O2", "-fwrapv", "-fPIC", "-shared", c_path, "-o", so_path]
    result = subprocess.run(base[:1] + tune + base[1:], capture_output=True, text=True)
    if result.returncode != 0 and tune:
        result = subprocess.run(base, capture_output=True, text=True)
    if result.returncode != 0:
        raise NativeToolchainError(
            f"kernel compilation failed ({' '.join(base)}):\n{result.stderr}"
        )

    ffi = cffi.FFI()
    elem = _ELEM_TYPES[ir.dtype]
    signatures = [
        f"void {name}({elem} *, long long **, long long **, long long *, long long);"
        for name in (*ir.phases, *(
            ["cycle"] if set(ir.phases) >= {"settle", "clock_edge"} else []
        ))
    ]
    ffi.cdef("\n".join(signatures))
    lib = ffi.dlopen(so_path)
    _LIB_CACHE[key] = (ffi, lib)
    return ffi, lib


class NativeKernel:
    """A compiled C kernel bound to one program's live state arrays."""

    backend = "native"

    def __init__(self, ir: KernelIR, n_lanes: int) -> None:
        self.ir = ir
        self.n_lanes = n_lanes
        self.source = generate_c_source(ir)
        self._ffi, self._lib = _compile_library(self.source, ir)
        ffi = self._ffi

        def pointer(array: np.ndarray):
            if not array.flags["C_CONTIGUOUS"] or array.dtype != np.int64:
                raise NativeToolchainError(
                    "state arrays must be C-contiguous int64 lane arrays"
                )
            return ffi.cast("long long *", array.ctypes.data)

        self._pointer = pointer
        self._state_arrays: List[np.ndarray] = []
        self._mem_arrays: List[np.ndarray] = []
        self._S = ffi.NULL
        self._M = ffi.NULL
        self.rebind()
        #: block-sized scratch rows for the kernel's SSA temporaries
        self._scratch = np.zeros(scratch_rows(ir) * BLOCK_LANES, dtype=np.int64)
        self._W = (
            ffi.cast("long long *", self._scratch.ctypes.data)
            if self._scratch.size
            else ffi.NULL
        )
        self._elem_ptr_type = _ELEM_TYPES[ir.dtype] + " *"
        self._vid: Optional[int] = None
        self._vp = None

    def rebind(self) -> None:
        """Re-capture pointers to the holders' *current* state arrays.

        The plain batch path (and sibling simulators sharing this program)
        commit by rebinding holder attributes, which detaches the arrays
        captured at construction.  :meth:`BatchSimulator.reset` calls this
        so a kernel always starts a run bound to the live state.
        """
        def changed(current, bound):
            return len(current) != len(bound) or any(
                a is not b for a, b in zip(current, bound)
            )

        state_arrays = self.ir.state_arrays()
        if changed(state_arrays, self._state_arrays):
            self._S = (
                self._ffi.new("long long *[]",
                              [self._pointer(a) for a in state_arrays])
                if state_arrays
                else self._ffi.NULL
            )
        mem_arrays = self.ir.mem_arrays()
        if changed(mem_arrays, self._mem_arrays):
            self._M = (
                self._ffi.new("long long *[]",
                              [self._pointer(a) for a in mem_arrays])
                if mem_arrays
                else self._ffi.NULL
            )
        # keep the bound arrays alive for as long as their pointers are
        self._state_arrays = state_arrays
        self._mem_arrays = mem_arrays

    def _v_pointer(self, v: np.ndarray):
        if id(v) != self._vid:
            if not v.flags["C_CONTIGUOUS"]:
                raise NativeToolchainError("value store must be C-contiguous")
            self._vp = self._ffi.cast(self._elem_ptr_type, v.ctypes.data)
            self._vid = id(v)
            self._vref = v  # keep the store alive while its pointer is cached
        return self._vp

    def settle(self, v: np.ndarray) -> None:
        self._lib.settle(self._v_pointer(v), self._S, self._M, self._W, v.shape[1])

    def clock_edge(self, v: np.ndarray) -> None:
        self._lib.clock_edge(self._v_pointer(v), self._S, self._M, self._W, v.shape[1])

    def cycle(self, v: np.ndarray) -> None:
        self._lib.cycle(self._v_pointer(v), self._S, self._M, self._W, v.shape[1])
