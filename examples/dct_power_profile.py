"""Power profile of the DCT benchmark: per-component breakdown and activity.

Runs the 2-D DCT engine on a block of pixels, produces

* the per-component / per-type power breakdown from the software RTL estimator,
* the per-cycle power trace (peak vs average),
* a VCD dump of the busiest nets and the switching activity extracted from it
  (the conventional flow that power emulation makes unnecessary),
* the same design's power as read back from the emulated, instrumented design.

Run:  python examples/dct_power_profile.py
"""

from __future__ import annotations

from repro.core import InstrumentationConfig, PowerEmulationFlow, compare_reports
from repro.designs import dct
from repro.netlist import flatten
from repro.power import RTLPowerEstimator, build_seed_library
from repro.sim import Simulator, SignalTrace, WaveformRecorder
from repro.vcd import activity_from_vcd, vcd_string


def main() -> None:
    module = flatten(dct.build())
    library = build_seed_library()

    # -------------------------------------------------- software power profile
    estimator = RTLPowerEstimator(module, library=library)
    report = estimator.estimate(dct.testbench(n_blocks=1, seed=1))
    print("=== software RTL power profile (1 block) ===")
    print(report.table(n=12))
    print()
    print("energy by component type:")
    for type_name, energy in sorted(report.energy_by_type().items(),
                                    key=lambda kv: kv[1], reverse=True):
        print(f"  {type_name:16s} {energy:12.1f} fJ  ({energy / report.total_energy_fj:5.1%})")
    print()
    print(f"peak power {report.peak_power_mw:.4f} mW vs average {report.average_power_mw:.4f} mW")
    print()

    # ------------------------------------------- conventional VCD-based activity
    sim = Simulator(flatten(dct.build()))
    trace = sim.add_observer(SignalTrace())
    recorder = sim.add_observer(WaveformRecorder())
    sim.run(dct.testbench(n_blocks=1, seed=1))
    print("=== switching activity (top nets) ===")
    for stat in trace.densest(8):
        print(f"  {stat.net.name:28s} toggles={stat.toggles:8d} density={stat.toggle_density:.3f}")
    busiest = {s.net.name: recorder.by_name()[s.net.name] for s in trace.densest(8)}
    vcd_text = vcd_string(busiest, module_name="dct")
    summary = activity_from_vcd(vcd_text)
    print(f"  VCD dump of the 8 busiest nets: {len(vcd_text)} bytes, "
          f"{summary.total_toggles()} toggles recorded")
    print()

    # ----------------------------------------------------------- emulated power
    flow = PowerEmulationFlow(library=library,
                              config=InstrumentationConfig(coefficient_bits=12))
    nominal_blocks = 4 * 396                  # four QCIF frames
    flow_report = flow.run(
        dct.build(), dct.testbench(n_blocks=1, seed=1),
        workload_cycles=nominal_blocks * 2400,
    )
    accuracy = compare_reports(flow_report.power_report, report)
    print("=== power emulation of the same design ===")
    print(flow_report.summary())
    print(accuracy.summary())


if __name__ == "__main__":
    main()
