"""Serving throughput: request coalescing vs serial job submission.

N concurrent clients submit compatible RunSpecs to a :class:`PowerServer`;
the coalescer merges every burst into one shared BatchRTLPowerEstimator
lane block — one lane-program compile, one kernel build, one settle per
cycle for the whole burst.  The baseline is the same jobs *without*
coalescing: submitted to the same server one at a time, so every job pays
its own coalescing window, its own lane run and its own per-cycle settle
loop.  The concurrent/serial ratio is therefore exactly the work the
coalescer amortizes.

Measures jobs/s and the per-burst compile counts at 1, 8 and 32 concurrent
clients.  Each level first runs cold (lane programs dropped — the compile
counters show the burst shared exactly one program + kernel build), then
warm (steady-state jobs/s).  A plain serial ``repro.api.estimate`` loop is
reported as a reference line.  Writes
``benchmarks/results/serve_coalescing.txt`` and the repo-root
``BENCH_serve_coalescing.json`` perf-trajectory artifact.

``REPRO_BENCH_SERVE_LEVELS`` overrides the concurrency levels (CI smoke
runs use a smaller set).
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.api import RunSpec, estimate
from repro.serve import Client, PowerServer, build_counts
from repro.sim import batch

from conftest import write_result

DESIGN = "binary_search"
LEVELS = tuple(
    int(level)
    for level in os.environ.get("REPRO_BENCH_SERVE_LEVELS", "1,8,32").split(",")
)
BASELINE_N = 8
WINDOW_S = 0.02


def _spec(seed: int) -> RunSpec:
    # numpy kernel: deterministic compile counts (auto calibration would
    # itself compile kernels while timing the backends against each other)
    return RunSpec(design=DESIGN, seed=seed, kernel_backend="numpy")


async def _concurrent_burst(
    server: PowerServer, n_clients: int, seed0: int = 0
):
    """One burst of n compatible jobs from concurrent clients, timed."""
    specs = [_spec(seed0 + seed) for seed in range(n_clients)]
    before = build_counts()
    start = time.perf_counter()
    results = await Client(server).estimate_all(specs)
    elapsed = time.perf_counter() - start
    after = build_counts()
    assert len(results) == n_clients
    return elapsed, {key: after[key] - before[key] for key in before}


def _measure_level(n_clients: int) -> dict:
    async def go():
        async with PowerServer(coalesce_window_s=WINDOW_S) as server:
            batch._BATCH_CACHE.clear()  # the cold burst pays (and counts)
            _, built = await _concurrent_burst(server, n_clients)
            # fresh seeds: the warm burst simulates (no result-cache hits)
            # on warm programs — steady-state serving
            elapsed, _ = await _concurrent_burst(
                server, n_clients, seed0=1000
            )
            assert server.n_cache_hits == 0
            return elapsed, built

    elapsed, built = asyncio.run(go())
    return {
        "n_clients": n_clients,
        "elapsed_s": elapsed,
        "jobs_per_s": n_clients / elapsed,
        "program_builds": built["program_builds"],
        "kernel_builds": built["kernel_builds"],
    }


def _measure_serial_submission() -> float:
    """The no-coalescing baseline: the same jobs submitted one at a time."""

    async def go():
        async with PowerServer(coalesce_window_s=WINDOW_S) as server:
            client = Client(server)
            # warm the singleton lane program with a seed outside the run
            await client.estimate(_spec(999))
            start = time.perf_counter()
            for seed in range(BASELINE_N):
                await client.estimate(_spec(seed))
            elapsed = time.perf_counter() - start
            assert server.n_cache_hits == 0
            return elapsed

    return asyncio.run(go())


def test_serve_coalescing_throughput(benchmark):
    serial_s = _measure_serial_submission()
    serial_jobs_per_s = BASELINE_N / serial_s

    # reference: the clients skipping the server entirely (warm scalar loop)
    estimate(_spec(0))
    start = time.perf_counter()
    for seed in range(BASELINE_N):
        estimate(_spec(seed))
    standalone_jobs_per_s = BASELINE_N / (time.perf_counter() - start)

    rows = [_measure_level(level) for level in LEVELS]
    benchmark.pedantic(lambda: _measure_level(8), rounds=1, iterations=1)

    speedup_8 = None
    for row in rows:
        if row["n_clients"] == 8:
            speedup_8 = row["jobs_per_s"] / serial_jobs_per_s

    lines = [
        "repro.serve request coalescing — concurrent bursts vs serial submission",
        f"({DESIGN}, numpy kernel, {WINDOW_S * 1000:.0f} ms coalescing window)",
        "",
        f"serial submission baseline: {BASELINE_N} jobs one at a time "
        f"= {serial_jobs_per_s:.2f} jobs/s",
        f"(reference: {standalone_jobs_per_s:.2f} jobs/s for a plain serial "
        f"repro.api.estimate loop)",
        "",
        f"{'clients':>8s} {'jobs/s':>8s} {'vs serial':>10s} "
        f"{'program builds':>15s} {'kernel builds':>14s}",
    ]
    metrics = {
        "serial_jobs_per_s": round(serial_jobs_per_s, 3),
        "standalone_jobs_per_s": round(standalone_jobs_per_s, 3),
        "baseline_n": BASELINE_N,
    }
    for row in rows:
        ratio = row["jobs_per_s"] / serial_jobs_per_s
        lines.append(
            f"{row['n_clients']:8d} {row['jobs_per_s']:8.2f} {ratio:9.1f}x "
            f"{row['program_builds']:15d} {row['kernel_builds']:14d}"
        )
        metrics[f"jobs_per_s_{row['n_clients']}"] = round(row["jobs_per_s"], 3)
        metrics[f"builds_{row['n_clients']}"] = row["program_builds"]
    if speedup_8 is not None:
        metrics["speedup_8_clients"] = round(speedup_8, 2)
        lines += [
            "",
            f"8 coalesced clients vs 8 serial submissions: {speedup_8:.1f}x",
        ]

    benchmark.extra_info.update(metrics)
    write_result("serve_coalescing.txt", "\n".join(lines), metrics=metrics)

    # every coalesced burst shared exactly one lane-program + kernel build
    for row in rows:
        assert row["program_builds"] == 1, row
        assert row["kernel_builds"] == 1, row
    # the acceptance floor: coalescing must at least double served
    # throughput over serial submission (local measurements are well above)
    if speedup_8 is not None:
        assert speedup_8 >= 2.0, (
            f"8 coalesced clients only {speedup_8:.2f}x the serial baseline"
        )
