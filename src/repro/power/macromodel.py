"""Cycle-accurate power macromodels.

The central model is :class:`LinearTransitionModel`, the regression form used
by the paper (after Benini et al.): the energy consumed by an RTL component in
a strobe period is ``sum_i Coeff_i * T(x_i) + base`` where ``T(x_i)`` is the
0/1 transition indicator of monitored input/output bit ``i``.  This form is
what the power-emulation instrumentation turns into hardware: an XOR per bit,
an AND with the coefficient and an adder tree.

A :class:`LUTPowerModel` (table lookup over toggle densities) is provided for
the macromodel-form ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.signals import bits_of, popcount


@dataclass
class CharacterizationMetrics:
    """Goodness-of-fit metrics attached to a characterized macromodel."""

    n_samples: int = 0
    r_squared: float = 0.0
    nrmse: float = 0.0
    max_abs_error_fj: float = 0.0
    mean_energy_fj: float = 0.0

    def summary(self) -> str:
        return (
            f"samples={self.n_samples} R2={self.r_squared:.3f} "
            f"NRMSE={self.nrmse:.3f} max|err|={self.max_abs_error_fj:.1f}fJ "
            f"mean={self.mean_energy_fj:.1f}fJ"
        )


class PowerMacromodel:
    """Base class: maps an observed I/O transition to an energy in fJ."""

    #: human-readable model kind (reports, DESIGN.md cross-references)
    kind: str = "abstract"

    def __init__(self, component_type: str, port_widths: Mapping[str, int]) -> None:
        self.component_type = component_type
        self.port_widths: Dict[str, int] = dict(port_widths)
        self.metrics: Optional[CharacterizationMetrics] = None

    # ---------------------------------------------------------------- shape
    @property
    def monitored_ports(self) -> List[str]:
        """Port names in canonical (sorted) order — the bit order used everywhere."""
        return sorted(self.port_widths)

    @property
    def total_bits(self) -> int:
        return sum(self.port_widths.values())

    # ------------------------------------------------------------- evaluate
    def evaluate(self, previous: Mapping[str, int], current: Mapping[str, int]) -> float:
        """Energy (fJ) consumed given the previous and current port values."""
        raise NotImplementedError

    def evaluate_lanes(self, previous: Mapping[str, object], current: Mapping[str, object]):
        """Per-lane energies (fJ) for ``(n_lanes,)`` arrays of port values.

        ``previous``/``current`` map each port to an array of per-lane values
        (the :class:`~repro.sim.batch.BatchSimulator` store shape).  The base
        implementation loops the scalar :meth:`evaluate` once per lane — exact
        for any model; :class:`LinearTransitionModel` overrides it with a
        vectorized path.  Lane count never changes results, only speed.
        """
        import numpy as np

        ports = list(self.port_widths)
        n_lanes = len(np.asarray(next(iter(current.values())))) if current else 0
        energies = np.zeros(n_lanes, dtype=np.float64)
        for lane in range(n_lanes):
            prev_lane = {p: int(previous[p][lane]) for p in ports if p in previous}
            cur_lane = {p: int(current[p][lane]) for p in ports if p in current}
            energies[lane] = self.evaluate(prev_lane, cur_lane)
        return energies

    def average_power_mw(self, energy_fj: float, cycles: int, clock_mhz: float) -> float:
        if cycles == 0:
            return 0.0
        # 1 fJ/cycle at 1 MHz is 1 nW = 1e-6 mW
        return (energy_fj / cycles) * clock_mhz * 1e-6


class LinearTransitionModel(PowerMacromodel):
    """``E = base + sum_i coeff_i * T(x_i)`` with per-bit coefficients in fJ."""

    kind = "linear-transition"

    def __init__(
        self,
        component_type: str,
        port_widths: Mapping[str, int],
        coefficients: Mapping[str, Sequence[float]],
        base_energy_fj: float = 0.0,
    ) -> None:
        super().__init__(component_type, port_widths)
        self.coefficients: Dict[str, List[float]] = {}
        for port, width in self.port_widths.items():
            values = list(coefficients.get(port, [0.0] * width))
            if len(values) != width:
                raise ValueError(
                    f"model for {component_type!r}: port {port!r} has width {width} "
                    f"but {len(values)} coefficients were given"
                )
            self.coefficients[port] = [float(v) for v in values]
        self.base_energy_fj = float(base_energy_fj)

    # ------------------------------------------------------------- evaluate
    def evaluate(self, previous: Mapping[str, int], current: Mapping[str, int]) -> float:
        energy = self.base_energy_fj
        for port, coeffs in self.coefficients.items():
            toggles = previous.get(port, 0) ^ current.get(port, 0)
            if toggles == 0:
                continue
            width = self.port_widths[port]
            for i in range(width):
                if (toggles >> i) & 1:
                    energy += coeffs[i]
        return energy

    def evaluate_lanes(self, previous: Mapping[str, object], current: Mapping[str, object]):
        """Vectorized per-lane energies: one bit-unpack + matvec per port.

        Exactly :meth:`evaluate` applied lane-wise (same coefficients, same
        toggle indicators), so batch sweeps reproduce scalar estimates
        bit-for-bit.
        """
        import numpy as np

        n_lanes = len(np.asarray(next(iter(current.values())))) if current else 0
        energies = np.full(n_lanes, self.base_energy_fj, dtype=np.float64)
        for port, shifts, coeffs in self._lane_tables():
            # missing ports observe as constant 0, as in the scalar evaluate
            toggles = np.asarray(previous.get(port, 0)) ^ np.asarray(current.get(port, 0))
            if toggles.dtype == object:
                # >60-bit lane stores hold exact Python ints: per-bit loop
                for bit, coeff in zip(shifts, coeffs):
                    energies += coeff * ((toggles >> int(bit)) & 1).astype(np.float64)
                continue
            bits = (toggles[..., None] >> shifts) & 1  # (n_lanes, width)
            energies += bits @ coeffs
        return energies

    def _lane_tables(self):
        """Per-port (shifts, coefficient-vector) tables for the lane path.

        Built once per model; ports whose coefficients are all zero are
        dropped entirely (they cannot contribute energy).  Coefficients are
        treated as immutable after construction, as everywhere else.
        """
        tables = getattr(self, "_lane_tables_cache", None)
        if tables is None:
            import numpy as np

            tables = []
            for port, coeffs in self.coefficients.items():
                if not any(coeffs):
                    continue
                tables.append((
                    port,
                    np.arange(len(coeffs), dtype=np.int64),
                    np.asarray(coeffs, dtype=np.float64),
                ))
            self._lane_tables_cache = tables
        return tables

    # --------------------------------------------------- canonical flat view
    def flat_coefficients(self) -> List[Tuple[str, int, float]]:
        """Coefficients as ``(port, bit, value)`` in canonical port/bit order.

        The hardware power-model generator and the fixed-point quantizer use
        exactly this ordering, so software and emulated evaluation agree
        bit-for-bit.
        """
        flat = []
        for port in self.monitored_ports:
            for bit, value in enumerate(self.coefficients[port]):
                flat.append((port, bit, value))
        return flat

    def with_coefficients(self, flat: Sequence[float],
                          base_energy_fj: Optional[float] = None) -> "LinearTransitionModel":
        """Build a copy with replaced coefficients (flat canonical order)."""
        if len(flat) != self.total_bits:
            raise ValueError(
                f"expected {self.total_bits} coefficients, got {len(flat)}"
            )
        per_port: Dict[str, List[float]] = {}
        index = 0
        for port in self.monitored_ports:
            width = self.port_widths[port]
            per_port[port] = [float(v) for v in flat[index:index + width]]
            index += width
        return LinearTransitionModel(
            self.component_type,
            self.port_widths,
            per_port,
            self.base_energy_fj if base_energy_fj is None else base_energy_fj,
        )

    def scale(self, factor: float) -> "LinearTransitionModel":
        """Uniformly scale all coefficients and the base term."""
        return LinearTransitionModel(
            self.component_type,
            self.port_widths,
            {p: [c * factor for c in cs] for p, cs in self.coefficients.items()},
            self.base_energy_fj * factor,
        )

    def max_energy_fj(self) -> float:
        """Upper bound of one evaluation (all monitored bits toggling)."""
        return self.base_energy_fj + sum(
            max(c, 0.0) for cs in self.coefficients.values() for c in cs
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearTransitionModel({self.component_type!r}, bits={self.total_bits}, "
            f"base={self.base_energy_fj:.2f}fJ)"
        )


class LUTPowerModel(PowerMacromodel):
    """Table-lookup macromodel indexed by quantized input/output toggle densities.

    Used only in the macromodel-form ablation; it is *not* converted into
    power-estimation hardware (the paper requires models expressible as
    synthesizable functions, and the linear model is the one it describes).
    """

    kind = "lut"

    def __init__(
        self,
        component_type: str,
        port_widths: Mapping[str, int],
        input_ports: Sequence[str],
        output_ports: Sequence[str],
        table: Sequence[Sequence[float]],
    ) -> None:
        super().__init__(component_type, port_widths)
        self.input_ports = list(input_ports)
        self.output_ports = list(output_ports)
        self.table = [list(row) for row in table]
        self.n_bins = len(self.table)
        if any(len(row) != self.n_bins for row in self.table):
            raise ValueError("LUT table must be square")

    def _density(self, ports: Sequence[str], previous, current) -> float:
        bits = sum(self.port_widths[p] for p in ports)
        if bits == 0:
            return 0.0
        toggles = sum(
            popcount(previous.get(p, 0) ^ current.get(p, 0)) for p in ports
        )
        return toggles / bits

    def _bin(self, density: float) -> int:
        return min(self.n_bins - 1, int(density * self.n_bins))

    def evaluate(self, previous: Mapping[str, int], current: Mapping[str, int]) -> float:
        row = self._bin(self._density(self.input_ports, previous, current))
        col = self._bin(self._density(self.output_ports, previous, current))
        return self.table[row][col]
