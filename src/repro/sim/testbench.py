"""Testbench abstractions for driving simulations and emulations.

A testbench produces the input stimulus for a design cycle by cycle and can
check outputs along the way.  The same testbench object drives

* functional RTL simulation (:class:`repro.sim.engine.Simulator`),
* software RTL power estimation (the estimator wraps a simulator),
* the emulation platform model (:mod:`repro.core.emulator`), mirroring the
  paper's setup where "the testbench can be executed within a simulator, or it
  can be mapped to the FPGA platform along with the design itself".
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping, Optional, Sequence


class Testbench:
    """Base class: override :meth:`drive` and optionally :meth:`check`/:meth:`finished`."""

    #: default cycle budget when the testbench has no natural termination
    max_cycles: Optional[int] = None

    def __init__(self, name: str = "testbench") -> None:
        self.name = name
        self._captured: Dict[str, object] = {}

    def bind(self, simulator) -> None:
        """Called once before the run starts; override to initialize memories etc."""
        return None

    def drive(self, cycle: int, simulator) -> Mapping[str, int]:
        """Return the input values to apply at this cycle (may be empty)."""
        return {}

    def check(self, cycle: int, simulator) -> None:
        """Inspect settled outputs; raise ``AssertionError`` on mismatch."""
        return None

    def finished(self, cycle: int, simulator) -> bool:
        """Return True when the workload is complete (checked after settle)."""
        return False

    def captured(self) -> Dict[str, object]:
        """Data captured during the run (results read from the DUT, errors, ...)."""
        return dict(self._captured)

    def capture(self, key: str, value) -> None:
        self._captured[key] = value


class VectorTestbench(Testbench):
    """Applies a pre-computed list of input vectors, one per cycle."""

    def __init__(
        self,
        vectors: Sequence[Mapping[str, int]],
        name: str = "vectors",
        hold_last: bool = False,
        extra_cycles: int = 0,
    ) -> None:
        super().__init__(name)
        self.vectors = [dict(v) for v in vectors]
        self.hold_last = hold_last
        self.extra_cycles = extra_cycles
        self.max_cycles = len(self.vectors) + extra_cycles

    def drive(self, cycle: int, simulator) -> Mapping[str, int]:
        if cycle < len(self.vectors):
            return self.vectors[cycle]
        if self.hold_last and self.vectors:
            return self.vectors[-1]
        return {}

    def finished(self, cycle: int, simulator) -> bool:
        return cycle + 1 >= len(self.vectors) + self.extra_cycles


class CallbackTestbench(Testbench):
    """Wraps plain functions for quick ad-hoc testbenches."""

    def __init__(
        self,
        drive_fn: Callable[[int, object], Mapping[str, int]],
        n_cycles: int,
        check_fn: Optional[Callable[[int, object], None]] = None,
        name: str = "callback",
    ) -> None:
        super().__init__(name)
        self._drive_fn = drive_fn
        self._check_fn = check_fn
        self.n_cycles = n_cycles
        self.max_cycles = n_cycles

    def drive(self, cycle: int, simulator) -> Mapping[str, int]:
        return self._drive_fn(cycle, simulator)

    def check(self, cycle: int, simulator) -> None:
        if self._check_fn is not None:
            self._check_fn(cycle, simulator)

    def finished(self, cycle: int, simulator) -> bool:
        return cycle + 1 >= self.n_cycles


class RandomTestbench(Testbench):
    """Drives uniformly random values on the named input ports every cycle.

    Useful for power characterization and for stressing designs whose inputs
    are free-running data streams.
    """

    def __init__(
        self,
        n_cycles: int,
        input_widths: Optional[Mapping[str, int]] = None,
        seed: int = 0,
        hold: int = 1,
        name: str = "random",
    ) -> None:
        super().__init__(name)
        self.n_cycles = n_cycles
        self.max_cycles = n_cycles
        self.input_widths = dict(input_widths) if input_widths else None
        self.seed = seed
        #: apply a fresh random vector every ``hold`` cycles
        self.hold = max(1, hold)
        self._rng = random.Random(seed)
        self._current: Dict[str, int] = {}

    def bind(self, simulator) -> None:
        if self.input_widths is None:
            self.input_widths = {
                name: port.width
                for name, port in simulator.module.ports.items()
                if port.is_input
            }
        self._rng = random.Random(self.seed)
        self._current = {}

    def drive(self, cycle: int, simulator) -> Mapping[str, int]:
        if cycle % self.hold == 0 or not self._current:
            self._current = {
                name: self._rng.getrandbits(width)
                for name, width in (self.input_widths or {}).items()
            }
        return self._current

    def finished(self, cycle: int, simulator) -> bool:
        return cycle + 1 >= self.n_cycles
