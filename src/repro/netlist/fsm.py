"""Finite-state-machine controllers.

The controller in the paper's Fig. 1 example (and in every benchmark design)
is a Moore FSM: control outputs are a function of the current state only, and
the next state is chosen by the first transition whose guard over the status
inputs evaluates true.  Guards are kept as data (not Python callables) so the
FSM remains "synthesizable": the gate-level technology mapper and the FPGA
resource estimator can both reason about its size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.netlist.sequential import SequentialComponent
from repro.netlist.signals import mask_value, to_signed

_GUARD_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Guard:
    """A single comparison ``<input> <op> <value>`` used in a transition guard."""

    signal: str
    op: str
    value: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.op not in _GUARD_OPS:
            raise ValueError(f"unknown guard operator {self.op!r}")

    def check(self, observed: int, width: int) -> bool:
        lhs = to_signed(observed, width) if self.signed else mask_value(observed, width)
        return _GUARD_OPS[self.op](lhs, self.value)


@dataclass
class Transition:
    """A guarded transition; an empty guard list means "always" (else branch)."""

    source: str
    target: str
    guards: List[Guard] = field(default_factory=list)

    def taken(self, inputs: Mapping[str, int], input_widths: Mapping[str, int]) -> bool:
        return all(g.check(inputs.get(g.signal, 0), input_widths[g.signal]) for g in self.guards)


class FSMController(SequentialComponent):
    """Table-driven Moore finite state machine.

    Parameters
    ----------
    states:
        Ordered list of state names; the first is the reset state unless
        ``reset_state`` names another.
    inputs / outputs:
        Mapping of status-signal / control-signal names to bit widths.
    moore_outputs:
        ``{state: {output: value}}``; unspecified outputs default to 0.
    """

    type_name = "fsm"

    def __init__(
        self,
        name: str,
        states: Sequence[str],
        inputs: Mapping[str, int],
        outputs: Mapping[str, int],
        moore_outputs: Optional[Mapping[str, Mapping[str, int]]] = None,
        reset_state: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if not states:
            raise ValueError("FSM needs at least one state")
        self.states = list(states)
        self.state_index = {s: i for i, s in enumerate(self.states)}
        if len(self.state_index) != len(self.states):
            raise ValueError("duplicate state names")
        self.reset_state = reset_state if reset_state is not None else self.states[0]
        if self.reset_state not in self.state_index:
            raise ValueError(f"unknown reset state {self.reset_state!r}")
        self.input_widths = dict(inputs)
        self.output_widths = dict(outputs)
        self.moore_outputs: Dict[str, Dict[str, int]] = {
            s: dict((moore_outputs or {}).get(s, {})) for s in self.states
        }
        for state, assigns in self.moore_outputs.items():
            for out_name in assigns:
                if out_name not in self.output_widths:
                    raise ValueError(
                        f"state {state!r} assigns unknown output {out_name!r}"
                    )
        self.transitions: List[Transition] = []
        self.state_width = max(1, (len(self.states) - 1).bit_length())
        self.params = {
            "n_states": len(self.states),
            "n_inputs_bits": sum(self.input_widths.values()),
            "n_output_bits": sum(self.output_widths.values()),
        }
        for in_name, width in self.input_widths.items():
            self.add_input(in_name, width)
        for out_name, width in self.output_widths.items():
            self.add_output(out_name, width)
        self._state = self.reset_state
        self._pending = self.reset_state

    # -------------------------------------------------------------- building
    def add_transition(
        self,
        source: str,
        target: str,
        guards: Optional[Sequence[Guard]] = None,
    ) -> Transition:
        """Append a transition; earlier transitions from a state have priority."""
        for s in (source, target):
            if s not in self.state_index:
                raise ValueError(f"unknown state {s!r}")
        for g in guards or []:
            if g.signal not in self.input_widths:
                raise ValueError(f"guard references unknown input {g.signal!r}")
        transition = Transition(source, target, list(guards or []))
        self.transitions.append(transition)
        self.params["n_transitions"] = len(self.transitions)
        return transition

    def when(self, source: str, target: str, **equals: int) -> Transition:
        """Shorthand for an equality-guarded transition: ``when('S0', 'S1', go=1)``."""
        guards = [Guard(signal, "==", value) for signal, value in equals.items()]
        return self.add_transition(source, target, guards)

    def otherwise(self, source: str, target: str) -> Transition:
        """Unconditional (else) transition; add it after the guarded ones."""
        return self.add_transition(source, target, [])

    # ------------------------------------------------------------ simulation
    @property
    def state(self) -> str:
        """Current symbolic state name."""
        return self._state

    @property
    def state_code(self) -> int:
        """Current state encoded as its index (what a binary encoding would hold)."""
        return self.state_index[self._state]

    def reset(self) -> None:
        self._state = self.reset_state
        self._pending = self.reset_state

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        assigns = self.moore_outputs.get(self._state, {})
        return {
            out: mask_value(assigns.get(out, 0), width)
            for out, width in self.output_widths.items()
        }

    def capture(self, inputs: Mapping[str, int]) -> None:
        for transition in self.transitions:
            if transition.source != self._state:
                continue
            if transition.taken(inputs, self.input_widths):
                self._pending = transition.target
                return
        self._pending = self._state

    def commit(self) -> None:
        self._state = self._pending

    # --------------------------------------------------------------- queries
    def transitions_from(self, state: str) -> List[Transition]:
        return [t for t in self.transitions if t.source == state]

    def reachable_states(self) -> List[str]:
        """States reachable from the reset state following transitions."""
        seen = {self.reset_state}
        frontier = [self.reset_state]
        while frontier:
            current = frontier.pop()
            for t in self.transitions_from(current):
                if t.target not in seen:
                    seen.add(t.target)
                    frontier.append(t.target)
        return [s for s in self.states if s in seen]
