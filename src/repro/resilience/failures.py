"""Structured task failures: what went wrong, where, and how many tries.

A :class:`TaskFailure` is the serializable record of one task that could not
be completed — the exception type and message (plus the worker-side traceback
when one exists), the number of attempts made, the wall time the final
attempt spent inside the worker, and the failure *kind*:

* ``"exception"``   — the worker raised (after exhausting retries),
* ``"timeout"``     — the task exceeded its per-task deadline and was killed,
* ``"crash"``       — the task's worker process died abruptly (segfault,
  ``os._exit``, OOM kill) enough times to be quarantined,
* ``"interrupted"`` — the run was interrupted (Ctrl-C) before the task ran,
* ``"skipped"``     — an earlier failure stopped the run (``on_error="raise"``).

The sibling :class:`TaskOutcome` is the uniform per-task record a resilient
run produces: either a value or a failure, never an exception crossing the
scheduler boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: the failure kinds a resilient run can record
FAILURE_KINDS = ("exception", "timeout", "crash", "interrupted", "skipped")


@dataclass
class TaskFailure:
    """One task that did not produce a result, structurally."""

    task_index: int
    label: str
    kind: str
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    wall_time_s: float = 0.0
    #: caller-attached context (e.g. the sweep stores the affected run specs)
    context: Dict[str, object] = field(default_factory=dict)
    #: the original exception object when it survived pickling (never
    #: serialized — ``to_dict`` keeps only the structured fields)
    exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    def summary(self) -> str:
        return (
            f"{self.label}: {self.kind} after {self.attempts} attempt(s) — "
            f"{self.error_type}: {self.message}"
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "task_index": self.task_index,
            "label": self.label,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "wall_time_s": self.wall_time_s,
            "context": dict(self.context),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TaskFailure":
        return cls(
            task_index=int(payload["task_index"]),
            label=payload.get("label", ""),
            kind=payload.get("kind", "exception"),
            error_type=payload.get("error_type", ""),
            message=payload.get("message", ""),
            traceback=payload.get("traceback", ""),
            attempts=int(payload.get("attempts", 1)),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            context=dict(payload.get("context") or {}),
        )


class TaskError(RuntimeError):
    """Raised on ``on_error="raise"`` when the original exception is gone.

    The original exception is re-raised whenever it survived pickling across
    the worker boundary; this wrapper carries the structured
    :class:`TaskFailure` for the cases (crash, timeout, unpicklable
    exception) where there is no original object to raise.
    """

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(failure.summary())
        self.failure = failure


@dataclass
class TaskOutcome:
    """The uniform per-task record of a resilient run: value or failure."""

    index: int
    label: str
    ok: bool
    value: object = None
    failure: Optional[TaskFailure] = None
    #: attempts made (1 = first try succeeded)
    attempts: int = 1
    #: wall time of the final attempt, measured *inside* the worker
    wall_time_s: float = 0.0


@dataclass
class RunOutcome:
    """All task outcomes of one resilient run, in payload order."""

    outcomes: List[TaskOutcome]
    interrupted: bool = False
    #: process pools killed and respawned (crashes + timeouts)
    n_pool_respawns: int = 0

    @property
    def failures(self) -> List[TaskFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def ok(self) -> bool:
        return not self.interrupted and not self.failures

    def values(self) -> List[object]:
        """Per-task values in payload order (``None`` for failed tasks)."""
        return [o.value for o in self.outcomes]

    def raise_first_failure(self) -> None:
        """Re-raise the first failure (original exception when available)."""
        for outcome in self.outcomes:
            failure = outcome.failure
            if failure is None or failure.kind == "skipped":
                continue
            if failure.exception is not None:
                raise failure.exception
            raise TaskError(failure)
