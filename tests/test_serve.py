"""Tests for the repro.serve power-estimation service.

Covers the issue's acceptance surface: concurrent compatible jobs coalesce
into exactly one shared build (counter-asserted), served results are
bit-identical to standalone ``repro.api`` estimates, incompatible jobs do
not merge, a poisoned lane-group member fails alone with a structured
error while its siblings succeed, and a stopped server leaves a consistent
persistent job store (the Ctrl-C contract).  Plus the coalescing queue,
the sweep-shared result cache, and the HTTP/stdio front ends.
"""

from __future__ import annotations

import asyncio
import io
import json
import urllib.error
import urllib.request

import pytest

from repro.api import RunSpec, coalesce_key, estimate, is_coalescable
from repro.api.estimators import RTLEstimatorAdapter
from repro.api.sweep import CACHE_NAMESPACE, SweepSpec, sweep
from repro.serve import (
    Client,
    CoalescingQueue,
    HttpFrontend,
    JobFailed,
    JobStore,
    PowerServer,
    build_counts,
    run_stdio,
)
from repro.serve.protocol import JobRecord
from repro.sim import batch

DESIGN = "binary_search"
MAX_CYCLES = 96


def _spec(seed=0, **overrides):
    """A cheap lane-friendly spec; numpy kernel keeps builds deterministic."""
    overrides.setdefault("design", DESIGN)
    overrides.setdefault("max_cycles", MAX_CYCLES)
    overrides.setdefault("kernel_backend", "numpy")
    return RunSpec(seed=seed, **overrides)


def _fresh_programs():
    """Drop cached lane programs so the next group compiles exactly once."""
    batch._BATCH_CACHE.clear()


# ------------------------------------------------------------ coalesce key


def test_coalesce_key_ignores_lane_free_fields():
    base = _spec(seed=0)
    for variant in (
        _spec(seed=7),
        _spec(seed=None),
        _spec(seed=0, keep_cycle_trace=True),
        _spec(seed=0, compare_to_rtl=True),
        _spec(seed=0, timeout_s=30.0, max_retries=2),
    ):
        assert coalesce_key(variant) == coalesce_key(base)


def test_coalesce_key_separates_machine_shaping_fields():
    base = _spec(seed=0)
    assert coalesce_key(_spec(seed=0, max_cycles=97)) != coalesce_key(base)
    assert coalesce_key(_spec(seed=0, design="DCT")) != coalesce_key(base)
    assert coalesce_key(
        _spec(seed=0, kernel_backend="off")
    ) != coalesce_key(base)
    assert coalesce_key(
        _spec(seed=0, kernel_threads=2)
    ) != coalesce_key(base)


def test_coalesce_key_normalizes_auto_and_batch_backends():
    assert coalesce_key(_spec(backend="auto")) == coalesce_key(
        _spec(backend="batch")
    )


def test_is_coalescable_only_for_rtl_lane_backends():
    assert is_coalescable(_spec())
    assert is_coalescable(_spec(backend="batch"))
    assert not is_coalescable(_spec(backend="compiled"))
    assert not is_coalescable(_spec(backend="interp"))
    assert not is_coalescable(RunSpec(design=DESIGN, engine="gate"))


def test_estimate_many_accepts_lane_free_variation():
    adapter = RTLEstimatorAdapter()
    results = adapter.estimate_many(
        [_spec(seed=0), _spec(seed=1, keep_cycle_trace=True)]
    )
    assert len(results) == 2
    assert results[1].report.cycle_energy_fj


# -------------------------------------------------------- coalescing queue


def test_coalescing_queue_groups_by_key_in_arrival_order():
    queue = CoalescingQueue()
    a0 = JobRecord(job_id="a0", spec=_spec(seed=0))
    b0 = JobRecord(job_id="b0", spec=_spec(seed=0, max_cycles=97))
    a1 = JobRecord(job_id="a1", spec=_spec(seed=1))
    solo = JobRecord(job_id="solo", spec=_spec(seed=2, backend="compiled"))
    for record in (a0, b0, a1, solo):
        queue.push(record)
    assert len(queue) == 4
    groups = queue.drain()
    assert len(queue) == 0
    assert [group.job_ids for group in groups] == [
        ["a0", "a1"], ["b0"], ["solo"]
    ]
    assert groups[0].key == coalesce_key(a0.spec)
    assert groups[1].key == coalesce_key(b0.spec)
    assert groups[2].key is None  # non-coalescable: always a singleton


# ------------------------------------------------- coalesced execution


def test_concurrent_compatible_jobs_share_one_build():
    """8 concurrent clients, one program compile, one kernel build."""
    _fresh_programs()
    specs = [_spec(seed=s) for s in range(8)]

    async def go():
        async with PowerServer(coalesce_window_s=0.05) as server:
            before = build_counts()
            results = await Client(server).estimate_all(specs)
            return server, before, results

    server, before, results = asyncio.run(go())
    after = build_counts()
    assert after["program_builds"] - before["program_builds"] == 1
    assert after["kernel_builds"] - before["kernel_builds"] == 1

    assert server.n_groups == 1
    assert server.n_coalesced_jobs == 8
    for job in server.store.jobs():
        assert job.state == "done"
        assert job.group_size == 8
        assert [e.state for e in job.events] == [
            "queued", "coalesced", "compiling", "simulating", "done"
        ]

    # served results are bit-identical to standalone repro.api estimates
    for spec, served in zip(specs, results):
        alone = estimate(spec.replace(backend="batch"))
        assert served.report.cycles == alone.report.cycles
        assert served.report.average_power_mw == alone.report.average_power_mw
        assert served.report.total_energy_fj == alone.report.total_energy_fj

    # per-job metadata names the job and its shared lane block
    job_ids = [job.job_id for job in server.store.jobs()]
    assert [r.metadata["job_id"] for r in results] == job_ids
    assert all(r.metadata["group_size"] == 8 for r in results)
    assert all(r.backend == "batch[8]" for r in results)


def test_incompatible_jobs_do_not_merge():
    specs = [
        _spec(seed=0),
        _spec(seed=1),
        _spec(seed=0, max_cycles=97),
        _spec(seed=1, max_cycles=97),
    ]

    async def go():
        async with PowerServer(coalesce_window_s=0.05) as server:
            await Client(server).estimate_all(specs)
            return server

    server = asyncio.run(go())
    assert server.n_groups == 2
    sizes = [job.group_size for job in server.store.jobs()]
    assert sorted(sizes) == [2, 2, 2, 2]
    by_cycles = {}
    for job in server.store.jobs():
        key = job.events[1].detail["coalesce_key"]
        by_cycles.setdefault(job.spec.max_cycles, set()).add(key)
    # the two max_cycles populations landed in two distinct lane blocks
    assert len(by_cycles) == 2
    keys = set().union(*by_cycles.values())
    assert len(keys) == 2


class _PoisonedAdapter(RTLEstimatorAdapter):
    """Raises while resolving the testbench of one specific seed."""

    POISONED_SEED = 13

    def _resolve_testbench(self, spec):
        if spec.seed == self.POISONED_SEED:
            raise RuntimeError(f"poisoned stimulus for seed {spec.seed}")
        return super()._resolve_testbench(spec)


def test_poisoned_group_member_fails_alone():
    specs = [_spec(seed=0), _spec(seed=_PoisonedAdapter.POISONED_SEED),
             _spec(seed=2)]

    async def go():
        server = PowerServer(coalesce_window_s=0.05)
        server._adapters["rtl"] = _PoisonedAdapter()
        async with server:
            client = Client(server)
            job_ids = [await client.submit(spec) for spec in specs]
            records = [await server.wait(job_id) for job_id in job_ids]
            healthy = [
                await server.result(job_id)
                for job_id, record in zip(job_ids, records)
                if record.state == "done"
            ]
            return server, records, healthy

    server, records, healthy = asyncio.run(go())
    assert [r.state for r in records] == ["done", "failed", "done"]
    # all three coalesced into one group before the poison struck
    assert all(r.group_size == 3 for r in records)

    failed = records[1]
    assert failed.error is not None
    assert failed.error["kind"] == "exception"
    assert failed.error["error_type"] == "RuntimeError"
    assert "poisoned stimulus" in failed.error["message"]
    assert failed.error["attempts"] == 2  # group attempt + solo re-run
    assert "RuntimeError" in failed.error["traceback"]

    # siblings were re-run alone and still produced bit-identical results
    assert len(healthy) == 2
    for spec, served in zip((specs[0], specs[2]), healthy):
        alone = estimate(spec.replace(backend="batch"))
        assert served.report.average_power_mw == alone.report.average_power_mw
    assert all(
        r.events[-1].detail.get("solo_fallback") for r in records
        if r.state == "done"
    )

    async def expect_failure():
        server2 = PowerServer(coalesce_window_s=0.0)
        server2._adapters["rtl"] = _PoisonedAdapter()
        async with server2:
            job_id = await server2.submit(
                _spec(seed=_PoisonedAdapter.POISONED_SEED)
            )
            with pytest.raises(JobFailed, match="RuntimeError"):
                await server2.result(job_id)

    asyncio.run(expect_failure())


# ----------------------------------------------- persistence + shutdown


def test_stop_marks_unfinished_jobs_interrupted(tmp_path):
    """The Ctrl-C contract: stopping leaves a consistent on-disk ledger."""
    cache_dir = str(tmp_path)

    async def first_session():
        async with PowerServer(cache_dir=cache_dir) as server:
            done_id = await Client(server).submit(_spec(seed=0))
            await server.wait(done_id)
            return done_id

    done_id = asyncio.run(first_session())

    async def interrupted_session():
        # a window far longer than the test: submissions stay queued
        async with PowerServer(
            cache_dir=cache_dir, coalesce_window_s=60.0
        ) as server:
            stuck = [await server.submit(_spec(seed=s)) for s in (1, 2)]
            records = {job_id: server.status(job_id) for job_id in stuck}
            assert all(r.state == "queued" for r in records.values())
            return stuck
        # __aexit__ ran server.stop() here

    stuck = asyncio.run(interrupted_session())

    # a fresh store (a restarted server / `repro status`) sees every job
    # terminal: the completed one done with its result, the rest interrupted
    store = JobStore(cache_dir)
    loaded = {record.job_id: record for record in store.load_persisted()}
    assert set(loaded) == {done_id, *stuck}
    assert loaded[done_id].state == "done"
    assert store.get_result(loaded[done_id]) is not None
    for job_id in stuck:
        assert loaded[job_id].state == "interrupted"
        final = loaded[job_id].events[-1].detail
        assert final["reason"] == "server stopped"
        # the obs span layer stamps how long the job sat queued
        assert final["phase_s"] >= 0.0

    async def interrupted_result():
        async with PowerServer(cache_dir=cache_dir) as server:
            with pytest.raises(JobFailed, match="interrupted"):
                await server.result(stuck[0])

    asyncio.run(interrupted_result())


def test_cached_result_short_circuits_without_simulating(tmp_path):
    cache_dir = str(tmp_path)
    spec = _spec(seed=5)

    async def go():
        async with PowerServer(cache_dir=cache_dir) as server:
            client = Client(server)
            cold = await client.estimate(spec)
            before = build_counts()
            job_id = await client.submit(spec)
            warm = await client.result(job_id)
            record = server.status(job_id)
            return server, cold, warm, record, before

    server, cold, warm, record, before = asyncio.run(go())
    assert build_counts() == before  # no compile, no simulation
    assert record.cached
    assert [e.state for e in record.events] == ["queued", "done"]
    assert record.events[-1].detail["cached"] is True
    assert server.n_cache_hits == 1
    assert warm.report.average_power_mw == cold.report.average_power_mw


def test_server_and_sweep_share_one_result_store(tmp_path):
    """A swept spec is served from cache; a served spec warms the sweep."""
    cache_dir = str(tmp_path)
    swept = sweep(
        SweepSpec(
            designs=(DESIGN,),
            seeds=(0,),
            max_cycles=MAX_CYCLES,
            kernel_backend="numpy",
            cache_dir=cache_dir,
        )
    )

    async def go():
        async with PowerServer(cache_dir=cache_dir) as server:
            client = Client(server)
            served = await client.estimate(_spec(seed=0))
            fresh = await client.estimate(_spec(seed=1))
            return server, served, fresh

    server, served, fresh = asyncio.run(go())
    assert server.n_cache_hits == 1
    assert server.status(served.metadata["job_id"]).cached
    assert (
        served.report.average_power_mw
        == swept.results[0].report.average_power_mw
    )

    # ...and the sweep picks the served seed-1 result up from the same store
    again = sweep(
        SweepSpec(
            designs=(DESIGN,),
            seeds=(0, 1),
            max_cycles=MAX_CYCLES,
            kernel_backend="numpy",
            cache_dir=cache_dir,
        )
    )
    assert again.cache_hits == 2
    assert (
        again.results[1].report.average_power_mw
        == fresh.report.average_power_mw
    )


def test_job_store_persists_records_across_instances(tmp_path):
    store = JobStore(str(tmp_path))
    record = store.create(_spec(seed=3))
    record.state = "done"
    record.group_size = 4
    store.save(record)

    other = JobStore(str(tmp_path))
    loaded = other.load_persisted()
    assert [r.job_id for r in loaded] == [record.job_id]
    assert loaded[0].state == "done"
    assert loaded[0].group_size == 4
    assert loaded[0].spec == record.spec
    # records live in the job namespace of the shared cache directory
    assert any(p.name.startswith("job-") for p in tmp_path.iterdir())


def test_unknown_job_id_raises_key_error():
    async def go():
        async with PowerServer() as server:
            with pytest.raises(KeyError, match="unknown job id"):
                server.status("jdeadbeef")

    asyncio.run(go())


# ------------------------------------------------------------- front ends


def _http(url, payload=None):
    request = urllib.request.Request(
        url,
        data=(json.dumps(payload).encode() if payload is not None else None),
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def test_http_frontend_end_to_end():
    async def go():
        async with PowerServer(coalesce_window_s=0.02) as server:
            http = HttpFrontend(server, port=0)
            await http.start()
            try:
                url = http.url
                status, body = await asyncio.to_thread(
                    _http, f"{url}/jobs", _spec(seed=0).to_dict()
                )
                assert status == 202
                job_id = body["job_id"]

                status, result = await asyncio.to_thread(
                    _http, f"{url}/jobs/{job_id}/result"
                )
                assert status == 200
                assert result["report"]["cycles"] > 0
                assert result["metadata"]["job_id"] == job_id

                status, record = await asyncio.to_thread(
                    _http, f"{url}/jobs/{job_id}"
                )
                assert status == 200
                assert record["state"] == "done"
                states = [e["state"] for e in record["events"]]
                assert states[0] == "queued" and states[-1] == "done"

                status, listing = await asyncio.to_thread(
                    _http, f"{url}/jobs"
                )
                assert status == 200
                assert [j["job_id"] for j in listing["jobs"]] == [job_id]

                status, stats = await asyncio.to_thread(
                    _http, f"{url}/stats"
                )
                assert status == 200
                assert stats["jobs_submitted"] == 1
                assert "program_builds" in stats

                status, error = await asyncio.to_thread(
                    _http, f"{url}/jobs/jnope"
                )
                assert status == 404
                status, error = await asyncio.to_thread(
                    _http, f"{url}/nope"
                )
                assert status == 404
                status, error = await asyncio.to_thread(
                    _http, f"{url}/jobs", {"design": "no_such_design"}
                )
                assert status == 400
            finally:
                await http.stop()

    asyncio.run(go())


def test_http_events_stream_is_ndjson():
    async def go():
        async with PowerServer(coalesce_window_s=0.02) as server:
            http = HttpFrontend(server, port=0)
            await http.start()
            try:
                _, body = await asyncio.to_thread(
                    _http, f"{http.url}/jobs", _spec(seed=0).to_dict()
                )
                job_id = body["job_id"]

                def stream():
                    request = urllib.request.Request(
                        f"{http.url}/jobs/{job_id}/events"
                    )
                    with urllib.request.urlopen(request, timeout=120) as resp:
                        assert resp.headers["Content-Type"] == (
                            "application/x-ndjson"
                        )
                        return [
                            json.loads(line)
                            for line in resp.read().decode().splitlines()
                        ]

                events = await asyncio.to_thread(stream)
                assert [e["state"] for e in events] == [
                    "queued", "coalesced", "compiling", "simulating", "done"
                ]
                assert [e["seq"] for e in events] == list(range(5))
            finally:
                await http.stop()

    asyncio.run(go())


def test_stdio_frontend_round_trip():
    spec = _spec(seed=0)
    stdin = io.StringIO(
        "\n".join(
            [
                json.dumps({"op": "submit", "spec": spec.to_dict()}),
                json.dumps({"op": "bogus"}),
                json.dumps({"op": "stats"}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        + "\n"
    )
    stdout = io.StringIO()

    async def go():
        async with PowerServer(coalesce_window_s=0.02) as server:
            await run_stdio(server, input_stream=stdin, output_stream=stdout)
            # drain the submitted job before the server stops
            job_id = server.store.jobs()[0].job_id
            await server.wait(job_id)
            return await server.result(job_id)

    result = asyncio.run(go())
    replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
    assert replies[0]["ok"] and replies[0]["job_id"]
    assert not replies[1]["ok"] and "unknown op" in replies[1]["error"]
    assert replies[2]["ok"] and replies[2]["stats"]["jobs_submitted"] == 1
    assert replies[3] == {"ok": True, "op": "shutdown"}
    assert result.report.cycles > 0
