"""Request coalescing: merge compatible queued jobs into shared lane blocks.

The server's core mechanism.  Queued jobs whose specs agree on
:func:`~repro.api.spec.coalesce_key` — same design, cycle budget, stimulus,
kernel configuration; differing at most in seed and per-result shaping —
drain into one :class:`JobGroup` and execute as *lanes of one
BatchRTLPowerEstimator run*: one lane-program compile, one kernel build, one
settle per cycle for all of them.  Jobs that cannot run on the lane path
(gate/emulation engines, explicitly scalar backends) drain as singleton
groups and execute alone.

Grouping uses exactly the key :meth:`RTLEstimatorAdapter.estimate_many
<repro.api.estimators.RTLEstimatorAdapter.estimate_many>` enforces, so a
drained group is mergeable *by construction* — the queue can never hand the
estimator an incompatible lane block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.spec import RunSpec, coalesce_key, is_coalescable
from repro.serve.protocol import JobRecord


@dataclass
class JobGroup:
    """Jobs that will execute together as one shared lane block.

    ``key`` is the shared coalesce key for lane-mergeable groups and ``None``
    for a singleton group holding one non-coalescable job.
    """

    key: Optional[str]
    jobs: List[JobRecord] = field(default_factory=list)

    @property
    def specs(self) -> List[RunSpec]:
        return [record.spec for record in self.jobs]

    @property
    def job_ids(self) -> List[str]:
        return [record.job_id for record in self.jobs]

    def __len__(self) -> int:
        return len(self.jobs)


class CoalescingQueue:
    """Arrival-ordered pending queue that drains into mergeable groups."""

    def __init__(self) -> None:
        self._pending: List[JobRecord] = []

    def push(self, record: JobRecord) -> None:
        self._pending.append(record)

    def __len__(self) -> int:
        return len(self._pending)

    def drain(self) -> List[JobGroup]:
        """Empty the queue into execution groups, preserving arrival order.

        Coalescable jobs merge by key (a group's position is its first
        member's arrival); every other job becomes its own group.
        """
        groups: List[JobGroup] = []
        by_key: Dict[str, JobGroup] = {}
        for record in self._pending:
            if is_coalescable(record.spec):
                key = coalesce_key(record.spec)
                group = by_key.get(key)
                if group is None:
                    group = by_key[key] = JobGroup(key=key)
                    groups.append(group)
                group.jobs.append(record)
            else:
                groups.append(JobGroup(key=None, jobs=[record]))
        self._pending = []
        return groups
