"""Deterministic fault injection behind ``REPRO_FAULT_PLAN``.

Every recovery path of the resilient runner — retry-on-exception, kill-and-
retry on timeout, pool respawn on a crashed worker, graceful Ctrl-C — is
exercised end-to-end by *injecting* the fault at a named site instead of
hoping one occurs.  A fault plan is a semicolon-separated list of rules::

    REPRO_FAULT_PLAN="worker@3:fail*2;worker@5:exit=139;kernel:hang=10*1"

with the rule grammar::

    rule   = site[@task]:action
    action = fail[*N] | hang=SECONDS[*N] | exit=CODE[*N] | interrupt[*N]

* ``site`` names the injection point.  The built-in sites are ``worker``
  (worker entry, before the payload runs — task index and attempt number are
  known there), ``kernel`` (lane-kernel compilation in
  :func:`repro.sim.kernels.compile_kernel`) and ``cache`` (every
  :class:`~repro.bench.cache.ResultCache` read/write).
* ``@task`` restricts the rule to one task index (the resilient runner's
  payload order); without it the rule applies to every task at that site.
* ``*N`` makes the fault transient: it fires for the first ``N`` attempts
  only.  ``worker@3:fail*2`` means "task 3 fails twice, then succeeds" —
  exactly the retry path.  At sites without an attempt number the first
  ``N`` *calls in the process* fire (a process-local counter).
* actions: ``fail`` raises :class:`InjectedFault`; ``hang=S`` sleeps ``S``
  seconds (driving the timeout path); ``exit=C`` calls ``os._exit(C)``
  (``exit=139`` models a segfaulted worker — only meaningful inside a worker
  process); ``interrupt`` raises :class:`KeyboardInterrupt` (the Ctrl-C
  path).

Determinism across processes: the resilient runner captures the plan text in
the parent and ships it with every task attempt, where the worker installs it
via :func:`install_plan` — so plans reach pool workers even when the
``forkserver`` was started before the plan was set, and the worker-site
decision depends only on ``(site, task, attempt)``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: environment variable holding the fault plan ("" / unset = no faults)
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: actions a rule may take
ACTIONS = ("fail", "hang", "exit", "interrupt")

_SYNTAX = "site[@task]:action with action = fail|hang=S|exit=C|interrupt, optional *N"


class InjectedFault(RuntimeError):
    """The exception raised by a ``fail`` rule."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault-plan rule."""

    site: str
    action: str
    task: Optional[int] = None
    #: seconds for ``hang``, exit code for ``exit``; unused otherwise
    value: float = 0.0
    #: fire for the first ``count`` attempts only (None = always)
    count: Optional[int] = None


def parse_plan(text: str) -> Tuple[FaultRule, ...]:
    """Parse a fault-plan string into rules (raises ValueError on bad syntax)."""
    rules = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            rules.append(_parse_rule(chunk))
        except ValueError as error:
            raise ValueError(
                f"bad fault rule {chunk!r}: {error.args[0]} (syntax: {_SYNTAX})"
            ) from None
    return tuple(rules)


def _parse_rule(chunk: str) -> FaultRule:
    location, separator, action_text = chunk.partition(":")
    if not separator or not action_text:
        raise ValueError("missing ':action'")
    site, _, task_text = location.partition("@")
    site = site.strip()
    if not site:
        raise ValueError("empty site name")
    task: Optional[int] = None
    if task_text:
        try:
            task = int(task_text)
        except ValueError:
            raise ValueError(f"task must be an integer, got {task_text!r}")
    count: Optional[int] = None
    if "*" in action_text:
        action_text, _, count_text = action_text.rpartition("*")
        try:
            count = int(count_text)
        except ValueError:
            raise ValueError(f"count must be an integer, got {count_text!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
    action, _, value_text = action_text.partition("=")
    action = action.strip()
    if action not in ACTIONS:
        raise ValueError(
            f"unknown action {action!r}; expected one of {', '.join(ACTIONS)}"
        )
    value = 0.0
    if action == "hang":
        if not value_text:
            raise ValueError("hang needs =SECONDS")
        value = float(value_text)
        if value < 0:
            raise ValueError("hang seconds must be >= 0")
    elif action == "exit":
        value = float(value_text) if value_text else 1.0
    elif value_text:
        raise ValueError(f"action {action!r} takes no =value")
    return FaultRule(site=site, action=action, task=task, value=value, count=count)


#: plan explicitly installed in this process (wins over the environment)
_INSTALLED: Optional[str] = None
#: (text, parsed rules) parse cache
_PARSED: Optional[Tuple[str, Tuple[FaultRule, ...]]] = None
#: process-local firing counters for sites without an attempt number,
#: keyed by (plan text, rule position)
_FIRED: Dict[Tuple[str, int], int] = {}


def install_plan(text: Optional[str]) -> None:
    """Install ``text`` as this process's fault plan (None = back to env).

    The resilient runner calls this inside every worker attempt with the
    parent's plan text, so plans deterministically reach pool workers.
    """
    global _INSTALLED
    _INSTALLED = text or None


def installed_plan() -> Optional[str]:
    """The explicitly installed plan (None when only the env is in effect)."""
    return _INSTALLED


def plan_text() -> Optional[str]:
    """The active plan text: the installed one, else ``REPRO_FAULT_PLAN``."""
    if _INSTALLED is not None:
        return _INSTALLED
    return os.environ.get(FAULT_PLAN_ENV) or None


def active_rules() -> Tuple[FaultRule, ...]:
    """The parsed rules of the active plan (cached per plan text)."""
    global _PARSED
    text = plan_text()
    if not text:
        return ()
    if _PARSED is None or _PARSED[0] != text:
        _PARSED = (text, parse_plan(text))
    return _PARSED[1]


def reset() -> None:
    """Forget the installed plan, parse cache and firing counters (tests)."""
    global _INSTALLED, _PARSED
    _INSTALLED = None
    _PARSED = None
    _FIRED.clear()


def maybe_inject(
    site: str, task: Optional[int] = None, attempt: Optional[int] = None
) -> None:
    """Fire the first matching rule of the active plan at ``site`` (if any).

    No-op (one tuple comparison) when no plan is active, so injection sites
    are safe on hot-ish paths like cache I/O.
    """
    rules = active_rules()
    if not rules:
        return
    text = plan_text() or ""
    for position, rule in enumerate(rules):
        if rule.site != site:
            continue
        if rule.task is not None and rule.task != task:
            continue
        if rule.count is not None:
            if attempt is not None:
                if attempt >= rule.count:
                    continue
            else:
                key = (text, position)
                if _FIRED.get(key, 0) >= rule.count:
                    continue
                _FIRED[key] = _FIRED.get(key, 0) + 1
        _trigger(rule, site, task, attempt)
        return


def _trigger(
    rule: FaultRule, site: str, task: Optional[int], attempt: Optional[int]
) -> None:
    where = f"site {site!r}" + (f" task {task}" if task is not None else "")
    if attempt is not None:
        where += f" attempt {attempt}"
    if rule.action == "hang":
        time.sleep(rule.value)
        return
    if rule.action == "exit":
        os._exit(int(rule.value))
    if rule.action == "interrupt":
        raise KeyboardInterrupt(f"injected interrupt at {where}")
    raise InjectedFault(f"injected fault at {where}")
