"""Unit and property tests for bit-vector helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.netlist.signals import (
    bits_of,
    from_signed,
    hamming_distance,
    iter_bit_toggles,
    mask_value,
    max_signed,
    max_unsigned,
    min_signed,
    popcount,
    saturate,
    sign_extend,
    to_signed,
    value_from_bits,
)


def test_mask_value_truncates():
    assert mask_value(0x1FF, 8) == 0xFF
    assert mask_value(-1, 4) == 0xF
    assert mask_value(0, 1) == 0


def test_mask_value_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        mask_value(1, 0)


def test_signed_round_trip_examples():
    assert to_signed(0xFF, 8) == -1
    assert to_signed(0x7F, 8) == 127
    assert from_signed(-1, 8) == 0xFF
    assert from_signed(-128, 8) == 0x80


def test_sign_extend():
    assert sign_extend(0b1000, 4, 8) == 0b11111000
    assert sign_extend(0b0111, 4, 8) == 0b00000111
    with pytest.raises(ValueError):
        sign_extend(1, 8, 4)


def test_popcount_and_hamming():
    assert popcount(0b1011) == 3
    assert hamming_distance(0b1010, 0b0101, 4) == 4
    assert hamming_distance(5, 5) == 0
    with pytest.raises(ValueError):
        popcount(-1)


def test_bits_round_trip():
    assert bits_of(0b1101, 4) == [1, 0, 1, 1]
    assert value_from_bits([1, 0, 1, 1]) == 0b1101
    with pytest.raises(ValueError):
        value_from_bits([0, 2])


def test_iter_bit_toggles():
    toggles = list(iter_bit_toggles(0b1100, 0b1010, 4))
    assert toggles == [0, 1, 1, 0]


def test_range_helpers():
    assert max_unsigned(8) == 255
    assert min_signed(8) == -128
    assert max_signed(8) == 127


def test_saturate():
    assert saturate(300, 8, signed=False) == 255
    assert saturate(-5, 8, signed=False) == 0
    assert saturate(200, 8, signed=True) == 0x7F
    assert saturate(-200, 8, signed=True) == 0x80


@given(st.integers(min_value=-(2**31), max_value=2**31), st.integers(min_value=1, max_value=32))
def test_signed_round_trip_property(value, width):
    encoded = from_signed(value, width)
    assert 0 <= encoded < (1 << width)
    decoded = to_signed(encoded, width)
    assert from_signed(decoded, width) == encoded


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=32))
def test_bits_round_trip_property(value, width):
    value = mask_value(value, width)
    assert value_from_bits(bits_of(value, width)) == value


@given(
    st.integers(min_value=0, max_value=2**24 - 1),
    st.integers(min_value=0, max_value=2**24 - 1),
)
def test_hamming_is_popcount_of_xor(a, b):
    assert hamming_distance(a, b) == popcount(a ^ b)
