"""Declarative stimulus specifications.

A :class:`StimulusSpec` describes a workload scenario — which input ports to
drive, with what kind of stream, for how many cycles, under which seed —
without a single line of imperative testbench code.  Specs are frozen,
hashable dataclasses with JSON round-trips, so they ride inside
:class:`~repro.api.spec.RunSpec`, persist in the result cache, and travel
through shard-pool workers unchanged.

Port streams come in six kinds:

* :class:`UniformSpec` — fresh uniform-random bits every ``hold`` cycles,
* :class:`ConstantSpec` — one held value,
* :class:`BurstSpec` — duty-cycled activity: ``active`` random cycles, then
  ``idle`` cycles at ``idle_value``,
* :class:`MarkovSpec` — per-bit two-state Markov chains (correlated toggle
  streams with tunable 0→1 / 1→0 probabilities),
* :class:`MixtureSpec` — a per-cycle weighted choice between sub-streams,
* :class:`ReplaySpec` — replay of a recorded value sequence (from arrays or,
  via :func:`replay_from_vcd`, from a VCD dump).

Lowering a spec into executable ``(n_cycles, n_ports, n_lanes)`` stimulus
tensors is :mod:`repro.stim.compile`'s job; this module is pure description.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "PortSpec",
    "UniformSpec",
    "ConstantSpec",
    "BurstSpec",
    "MarkovSpec",
    "MixtureSpec",
    "ReplaySpec",
    "StimulusSpec",
    "PORT_SPEC_KINDS",
    "port_spec_from_dict",
    "parse_stimulus",
    "replay_from_vcd",
]


def port_entropy(name: str) -> int:
    """Stable per-port entropy word (order-independent seeding)."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass(frozen=True)
class PortSpec:
    """Base class of one port's stream description."""

    kind = "abstract"

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["kind"] = self.kind
        return payload

    def describe(self) -> str:
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in dataclasses.fields(self)
        )
        return f"{self.kind}({parts})"


@dataclass(frozen=True)
class UniformSpec(PortSpec):
    """Fresh uniform-random bits every ``hold`` cycles."""

    kind = "uniform"

    hold: int = 1

    def __post_init__(self) -> None:
        if self.hold < 1:
            raise ValueError(f"uniform stimulus needs hold >= 1, got {self.hold}")


@dataclass(frozen=True)
class ConstantSpec(PortSpec):
    """One value, held for the whole run."""

    kind = "constant"

    value: int = 0


@dataclass(frozen=True)
class BurstSpec(PortSpec):
    """Duty-cycled activity: ``active`` random cycles, ``idle`` quiet cycles.

    Each burst starts with a fresh draw; within the active window a new value
    is drawn every ``hold`` cycles.  ``phase`` shifts the duty pattern so
    multiple ports can burst out of step with each other.
    """

    kind = "burst"

    active: int = 8
    idle: int = 8
    hold: int = 1
    phase: int = 0
    idle_value: int = 0

    def __post_init__(self) -> None:
        if self.active < 1:
            raise ValueError(f"burst needs active >= 1, got {self.active}")
        if self.idle < 0:
            raise ValueError(f"burst needs idle >= 0, got {self.idle}")
        if self.hold < 1:
            raise ValueError(f"burst needs hold >= 1, got {self.hold}")

    @property
    def period(self) -> int:
        return self.active + self.idle


@dataclass(frozen=True)
class MarkovSpec(PortSpec):
    """Per-bit two-state Markov chains: correlated (bursty) toggle activity.

    ``p01`` is the per-cycle probability of a 0-bit turning 1, ``p10`` the
    probability of a 1-bit turning 0; the stationary activity factor is
    ``p01 / (p01 + p10)`` and the expected toggle rate per bit per cycle is
    ``2 * p01 * p10 / (p01 + p10)``.
    """

    kind = "markov"

    p01: float = 0.1
    p10: float = 0.1
    init: int = 0

    def __post_init__(self) -> None:
        for name in ("p01", "p10"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"markov {name} must be in [0, 1], got {p}")


@dataclass(frozen=True)
class MixtureSpec(PortSpec):
    """A weighted per-cycle choice between sub-streams.

    Every component stream advances every cycle (so the mixture's draws stay
    chunk-invariant); the selector re-draws which component's value is visible
    every ``hold`` cycles.
    """

    kind = "mixture"

    components: Tuple[Tuple[float, PortSpec], ...] = ()
    hold: int = 1

    def __post_init__(self) -> None:
        components = tuple(
            (float(weight), spec) for weight, spec in self.components
        )
        object.__setattr__(self, "components", components)
        if not components:
            raise ValueError("mixture needs at least one (weight, spec) component")
        if any(weight < 0 for weight, _ in components):
            raise ValueError("mixture weights must be non-negative")
        if sum(weight for weight, _ in components) <= 0:
            raise ValueError("mixture weights must not all be zero")
        if self.hold < 1:
            raise ValueError(f"mixture needs hold >= 1, got {self.hold}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "hold": self.hold,
            "components": [
                [weight, spec.to_dict()] for weight, spec in self.components
            ],
        }


@dataclass(frozen=True)
class ReplaySpec(PortSpec):
    """Replay a recorded value sequence, one value per cycle.

    After the sequence is exhausted the stream wraps around when ``repeat``
    is set, holds the last value when ``hold_last`` is set, and drives 0
    otherwise.
    """

    kind = "replay"

    values: Tuple[int, ...] = ()
    repeat: bool = False
    hold_last: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(int(v) for v in self.values))
        if not self.values:
            raise ValueError("replay needs at least one value")


PORT_SPEC_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (UniformSpec, ConstantSpec, BurstSpec, MarkovSpec, MixtureSpec, ReplaySpec)
}


def port_spec_from_dict(payload: Mapping[str, object]) -> PortSpec:
    """Reconstruct any :class:`PortSpec` from its ``to_dict`` payload."""
    payload = dict(payload)
    kind = payload.pop("kind", None)
    try:
        cls = PORT_SPEC_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown stimulus kind {kind!r}; expected one of "
            f"{', '.join(sorted(PORT_SPEC_KINDS))}"
        ) from None
    if cls is MixtureSpec:
        payload["components"] = tuple(
            (float(weight), port_spec_from_dict(spec))
            for weight, spec in payload.get("components", ())
        )
    if cls is ReplaySpec:
        payload["values"] = tuple(payload.get("values", ()))
    fields = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in fields})


# ---------------------------------------------------------------------------
# The top-level scenario description.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StimulusSpec:
    """One complete scenario: named port streams + a default for the rest.

    ``ports`` maps input-port names to :class:`PortSpec` streams (a mapping
    is accepted and normalized to a name-sorted tuple of pairs, keeping the
    spec hashable and its JSON canonical); ``default`` applies to every input
    port not named explicitly (``None`` leaves those ports undriven).
    ``seed`` is the base stimulus seed — scalar and lane runs re-seed it per
    testbench, so the same spec fans out into independent Monte-Carlo lanes.
    """

    n_cycles: int
    ports: Tuple[Tuple[str, PortSpec], ...] = ()
    default: Optional[PortSpec] = field(default_factory=lambda: UniformSpec())
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cycles < 1:
            raise ValueError(f"stimulus needs n_cycles >= 1, got {self.n_cycles}")
        ports = self.ports
        if isinstance(ports, Mapping):
            pairs = tuple(sorted(ports.items(), key=lambda pair: pair[0]))
        else:
            pairs = tuple(
                sorted(((str(name), spec) for name, spec in ports),
                       key=lambda pair: pair[0])
            )
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate port names in stimulus spec: {names}")
        object.__setattr__(self, "ports", pairs)

    # ------------------------------------------------------------ resolution
    def port_map(self) -> Dict[str, PortSpec]:
        return dict(self.ports)

    def resolve(self, input_widths: Mapping[str, int]) -> List[Tuple[str, PortSpec, int]]:
        """Bind the spec to a module's input ports.

        Returns ``(name, port_spec, width)`` triples in a canonical (sorted)
        order: explicitly named ports must exist as inputs, and the default
        stream (when set) covers every remaining input.
        """
        explicit = self.port_map()
        unknown = sorted(set(explicit) - set(input_widths))
        if unknown:
            raise KeyError(
                f"stimulus names port(s) {', '.join(unknown)} not among the "
                f"module's inputs: {', '.join(sorted(input_widths)) or '<none>'}"
            )
        resolved = []
        for name in sorted(input_widths):
            spec = explicit.get(name, self.default)
            if spec is not None:
                resolved.append((name, spec, input_widths[name]))
        if not resolved:
            raise ValueError(
                "stimulus drives no ports: no explicit port matched and no "
                "default stream is set"
            )
        return resolved

    # ------------------------------------------------------------- variants
    def replace(self, **changes) -> "StimulusSpec":
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        lines = [f"stimulus: {self.n_cycles} cycles, seed {self.seed}"]
        for name, spec in self.ports:
            lines.append(f"  {name:16s} {spec.describe()}")
        default = self.default.describe() if self.default is not None else "undriven"
        lines.append(f"  {'<other inputs>':16s} {default}")
        return "\n".join(lines)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "n_cycles": self.n_cycles,
            "seed": self.seed,
            "ports": [[name, spec.to_dict()] for name, spec in self.ports],
            "default": self.default.to_dict() if self.default is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StimulusSpec":
        default = payload.get("default")
        return cls(
            n_cycles=int(payload["n_cycles"]),
            seed=int(payload.get("seed", 0)),
            ports=tuple(
                (name, port_spec_from_dict(spec))
                for name, spec in payload.get("ports", ())
            ),
            default=port_spec_from_dict(default) if default is not None else None,
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StimulusSpec":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# CLI shorthand parsing.
# ---------------------------------------------------------------------------

#: StimulusSpec-level keys accepted by the shorthand grammar
_SPEC_KEYS = ("cycles", "seed")


def _coerce(value: str) -> object:
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def parse_stimulus(text: str, default_cycles: int = 256) -> StimulusSpec:
    """Parse the CLI's ``--stimulus`` argument into a :class:`StimulusSpec`.

    Three forms are accepted::

        @scenario.json                   # a StimulusSpec JSON file
        {"n_cycles": 64, ...}            # inline StimulusSpec JSON
        burst:active=4,idle=12,cycles=96 # shorthand kind[:key=value,...]

    Shorthand builds a default-port spec of the named kind; the ``cycles``
    and ``seed`` keys set the spec-level fields, everything else goes to the
    port-spec constructor.
    """
    text = text.strip()
    if text.startswith("@"):
        try:
            with open(text[1:]) as handle:
                return StimulusSpec.from_json(handle.read())
        except OSError as error:
            raise ValueError(
                f"cannot read stimulus file {text[1:]!r}: {error}"
            ) from None
    if text.startswith("{"):
        return StimulusSpec.from_json(text)
    kind, _, arg_text = text.partition(":")
    if kind not in PORT_SPEC_KINDS:
        raise ValueError(
            f"unknown stimulus shorthand {kind!r}; expected @file, inline "
            f"JSON, or one of {', '.join(sorted(PORT_SPEC_KINDS))}"
        )
    port_args: Dict[str, object] = {}
    spec_args: Dict[str, int] = {}
    for item in filter(None, (part.strip() for part in arg_text.split(","))):
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(
                f"malformed stimulus argument {item!r}; expected key=value"
            )
        if key in _SPEC_KEYS:
            spec_args[key] = int(value)
        else:
            port_args[key] = _coerce(value)
    if kind == "replay" and "values" in port_args:
        port_args["values"] = tuple(
            int(v) for v in str(port_args["values"]).split("+")
        )
    try:
        default = PORT_SPEC_KINDS[kind](**port_args)
    except TypeError as error:
        raise ValueError(f"bad {kind} stimulus arguments: {error}") from None
    return StimulusSpec(
        n_cycles=spec_args.get("cycles", default_cycles),
        seed=spec_args.get("seed", 0),
        default=default,
    )


# ---------------------------------------------------------------------------
# Recorded-trace replay from a VCD dump.
# ---------------------------------------------------------------------------


def replay_from_vcd(
    vcd_text: str,
    ports: Optional[Mapping[str, str]] = None,
    period: int = 1,
    offset: int = 0,
    n_cycles: Optional[int] = None,
    default: Optional[PortSpec] = None,
    seed: int = 0,
) -> StimulusSpec:
    """Build a replay :class:`StimulusSpec` from a VCD dump.

    Each selected signal is sampled every ``period`` VCD time units starting
    at ``offset`` and becomes a :class:`ReplaySpec` port stream.  ``ports``
    maps port names to VCD signal names (plain or scope-qualified); when
    omitted, every signal in the dump replays onto the port of the same name.
    """
    from repro.vcd.parser import parse_vcd

    vcd = parse_vcd(vcd_text)
    by_name: Dict[str, "object"] = {}
    for signal in vcd.signals.values():
        by_name.setdefault(signal.name, signal)
        by_name[signal.full_name] = signal
    if ports is None:
        selected = {
            signal.name: signal
            for signal in vcd.signals.values()
        }
    else:
        selected = {}
        for port_name, signal_name in ports.items():
            try:
                selected[port_name] = by_name[signal_name]
            except KeyError:
                raise KeyError(
                    f"VCD dump has no signal {signal_name!r} (wanted for port "
                    f"{port_name!r}); signals: "
                    f"{', '.join(sorted({s.name for s in vcd.signals.values()}))}"
                ) from None
    if period < 1:
        raise ValueError(f"VCD sampling period must be >= 1, got {period}")
    cycles = n_cycles
    if cycles is None:
        cycles = max(1, (vcd.end_time - offset) // period + 1)
    port_specs = {
        name: ReplaySpec(
            values=tuple(
                signal.value_at(offset + cycle * period) for cycle in range(cycles)
            )
        )
        for name, signal in selected.items()
    }
    return StimulusSpec(n_cycles=cycles, ports=port_specs, default=default, seed=seed)
