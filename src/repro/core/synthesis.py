"""FPGA synthesis estimation: resources (LUT/FF/BRAM/multiplier) and timing.

Stands in for the Synplify Pro + Xilinx ISE step of the paper's flow
(Fig. 2, step 2).  The per-component cost functions follow standard 4-input
LUT mapping results (a W-bit ripple adder is ~W LUTs plus carry logic, a
W-bit 2:1 mux is ~W LUTs, an N-state FSM is a few LUTs per transition, ...),
and the achievable clock is derated with combinational depth — enough to
reproduce the capacity and emulation-frequency behaviour the paper discusses,
without pretending to be a real P&R tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.netlist.components import Component
from repro.netlist.module import Module
from repro.sim.scheduler import levelize


@dataclass
class ResourceEstimate:
    """Estimated FPGA resources for a component or module."""

    luts: int = 0
    ffs: int = 0
    bram_kbits: int = 0
    multipliers: int = 0
    #: estimated combinational logic depth (levels of LUTs)
    logic_depth: int = 0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            bram_kbits=self.bram_kbits + other.bram_kbits,
            multipliers=self.multipliers + other.multipliers,
            logic_depth=max(self.logic_depth, other.logic_depth),
        )

    def scaled(self, factor: float) -> "ResourceEstimate":
        return ResourceEstimate(
            luts=int(round(self.luts * factor)),
            ffs=int(round(self.ffs * factor)),
            bram_kbits=int(round(self.bram_kbits * factor)),
            multipliers=int(round(self.multipliers * factor)),
            logic_depth=self.logic_depth,
        )

    def overhead_relative_to(self, base: "ResourceEstimate") -> Dict[str, float]:
        """Fractional increase of each resource class over a baseline."""
        def ratio(new: float, old: float) -> float:
            if old == 0:
                return float("inf") if new > 0 else 0.0
            return (new - old) / old

        return {
            "luts": ratio(self.luts, base.luts),
            "ffs": ratio(self.ffs, base.ffs),
            "bram_kbits": ratio(self.bram_kbits, base.bram_kbits),
            "multipliers": ratio(self.multipliers, base.multipliers),
        }


@dataclass
class SynthesisResult:
    """Resources plus the timing estimate for one module."""

    module_name: str
    resources: ResourceEstimate
    achievable_clock_mhz: float
    per_component: Dict[str, ResourceEstimate] = field(default_factory=dict)

    def summary(self) -> str:
        r = self.resources
        return (
            f"{self.module_name}: {r.luts} LUTs, {r.ffs} FFs, {r.bram_kbits} Kb BRAM, "
            f"{r.multipliers} MULT18, depth {r.logic_depth}, "
            f"f_max {self.achievable_clock_mhz:.1f} MHz"
        )


class SynthesisEstimator:
    """Per-component FPGA resource and clock estimation."""

    #: base LUT delay + local routing (ns) and per-level routing penalty used
    #: by the timing model
    lut_delay_ns: float = 0.65
    routing_delay_ns: float = 0.75
    clock_overhead_ns: float = 1.8

    #: memories larger than this many bits go to block RAM instead of LUT RAM
    bram_threshold_bits: int = 1024

    def __init__(self, use_hard_multipliers: bool = True) -> None:
        self.use_hard_multipliers = use_hard_multipliers

    # ------------------------------------------------------------------ API
    def estimate_component(self, component: Component) -> ResourceEstimate:
        handler = getattr(self, f"_estimate_{component.type_name}", None)
        if handler is not None:
            return handler(component)
        return self._estimate_generic(component)

    def estimate_module(self, module: Module) -> SynthesisResult:
        if module.is_hierarchical:
            raise ValueError(
                f"module {module.name!r} is hierarchical; flatten() before synthesis estimation"
            )
        per_component: Dict[str, ResourceEstimate] = {}
        total = ResourceEstimate()
        for component in module.components.values():
            estimate = self.estimate_component(component)
            per_component[component.name] = estimate
            total = total + estimate
        schedule = levelize(module)
        total.logic_depth = max(total.logic_depth, schedule.depth)
        clock = self.achievable_clock_mhz(total.logic_depth)
        return SynthesisResult(
            module_name=module.name,
            resources=total,
            achievable_clock_mhz=clock,
            per_component=per_component,
        )

    def achievable_clock_mhz(self, logic_depth: int) -> float:
        """Timing model: critical path = clock overhead + depth * (LUT+routing)."""
        period_ns = self.clock_overhead_ns + max(1, logic_depth) * (
            self.lut_delay_ns + self.routing_delay_ns
        )
        return 1e3 / period_ns

    # ------------------------------------------------- per-type cost models
    @staticmethod
    def _width(component: Component, key: str = "width", default: int = 8) -> int:
        return int(component.params.get(key, default))

    def _estimate_generic(self, component: Component) -> ResourceEstimate:
        bits = component.monitored_bits()
        return ResourceEstimate(luts=max(1, bits // 2), logic_depth=2)

    def _estimate_adder(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(luts=width + 1, logic_depth=2)

    _estimate_subtractor = _estimate_adder

    def _estimate_addsub(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(luts=width + 2, logic_depth=2)

    def _estimate_multiplier(self, component: Component) -> ResourceEstimate:
        width_a = self._width(component, "width_a")
        width_b = self._width(component, "width_b")
        if self.use_hard_multipliers and width_a <= 18 and width_b <= 18:
            return ResourceEstimate(multipliers=1, luts=4, logic_depth=3)
        luts = width_a * width_b
        return ResourceEstimate(luts=luts, logic_depth=4 + max(width_a, width_b) // 8)

    def _estimate_comparator(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(luts=width, logic_depth=2)

    def _estimate_absval(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(luts=width + width // 2, logic_depth=2)

    def _estimate_saturator(self, component: Component) -> ResourceEstimate:
        width = self._width(component, "width_out")
        return ResourceEstimate(luts=width + 2, logic_depth=2)

    def _estimate_shifter_const(self, component: Component) -> ResourceEstimate:
        return ResourceEstimate(luts=0, logic_depth=0)

    def _estimate_shifter_var(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        stages = self._width(component, "amount_width", 3)
        return ResourceEstimate(luts=width * stages // 2 + 1, logic_depth=stages)

    def _estimate_mux(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        n_inputs = self._width(component, "n_inputs", 2)
        luts = width * max(1, (n_inputs + 1) // 2)
        return ResourceEstimate(luts=luts, logic_depth=max(1, (n_inputs - 1).bit_length()))

    def _estimate_logic(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(luts=max(1, width // 2), logic_depth=1)

    def _estimate_not(self, component: Component) -> ResourceEstimate:
        return ResourceEstimate(luts=max(1, self._width(component) // 4), logic_depth=1)

    def _estimate_reduce(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(luts=max(1, (width + 3) // 4), logic_depth=max(1, width // 4))

    def _estimate_concat(self, component: Component) -> ResourceEstimate:
        return ResourceEstimate()

    _estimate_slice = _estimate_concat
    _estimate_extend = _estimate_concat
    _estimate_constant = _estimate_concat

    def _estimate_decoder(self, component: Component) -> ResourceEstimate:
        outputs = 1 << self._width(component, "sel_width", 3)
        return ResourceEstimate(luts=max(1, outputs // 2), logic_depth=2)

    # --------------------------------------------------------------- memory
    def _estimate_register(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(ffs=width, luts=width // 4, logic_depth=1)

    def _estimate_counter(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(ffs=width, luts=width, logic_depth=2)

    def _estimate_accumulator(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        return ResourceEstimate(ffs=width, luts=width + 1, logic_depth=2)

    def _estimate_memory(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        depth = self._width(component, "depth", 16)
        bits = width * depth
        if bits > self.bram_threshold_bits:
            brams = (bits + 18_431) // 18_432  # 18 Kbit blocks
            return ResourceEstimate(bram_kbits=brams * 18, luts=8, logic_depth=2)
        return ResourceEstimate(luts=max(1, bits // 16) + 4, ffs=width, logic_depth=2)

    def _estimate_regfile(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        depth = self._width(component, "depth", 8)
        reads = self._width(component, "n_read_ports", 1)
        return ResourceEstimate(
            luts=max(1, width * depth // 16) * reads + 4,
            ffs=width,
            logic_depth=2,
        )

    def _estimate_rom(self, component: Component) -> ResourceEstimate:
        width = self._width(component)
        depth = self._width(component, "depth", 16)
        bits = width * depth
        if bits > self.bram_threshold_bits:
            brams = (bits + 18_431) // 18_432
            return ResourceEstimate(bram_kbits=brams * 18, luts=4, logic_depth=2)
        return ResourceEstimate(luts=max(1, bits // 16), logic_depth=2)

    def _estimate_fsm(self, component: Component) -> ResourceEstimate:
        n_states = self._width(component, "n_states", 2)
        n_transitions = self._width(component, "n_transitions", n_states)
        output_bits = self._width(component, "n_output_bits", 4)
        state_ffs = max(1, (n_states - 1).bit_length())
        return ResourceEstimate(
            ffs=state_ffs,
            luts=n_transitions + output_bits + state_ffs,
            logic_depth=3,
        )

    # --------------------------------------- power-estimation hardware cost
    def _estimate_power_model_hw(self, component: Component) -> ResourceEstimate:
        bits = self._width(component, "monitored_bits", 8)
        coeff_bits = self._width(component, "coefficient_bits", 12)
        energy_width = self._width(component, "energy_width", 32)
        # queues: one FF per monitored bit; XOR + coefficient select: ~1 LUT/bit;
        # adder tree over `bits` coefficient-wide terms; accumulator + output reg
        adder_tree_luts = max(1, bits - 1) * max(1, coeff_bits // 2)
        return ResourceEstimate(
            ffs=bits + 2 * energy_width,
            luts=bits + adder_tree_luts + energy_width,
            logic_depth=3 + max(1, bits.bit_length()),
        )

    def _estimate_power_strobe(self, component: Component) -> ResourceEstimate:
        period = self._width(component, "period", 1)
        counter_bits = max(1, (max(period - 1, 1)).bit_length())
        return ResourceEstimate(ffs=counter_bits + 1, luts=counter_bits + 1, logic_depth=1)

    def _estimate_power_aggregator(self, component: Component) -> ResourceEstimate:
        n_inputs = self._width(component, "n_inputs", 1)
        input_width = self._width(component, "input_width", 32)
        total_width = self._width(component, "total_width", 48)
        adder_luts = max(1, n_inputs - 1) * input_width + total_width
        return ResourceEstimate(
            ffs=total_width,
            luts=adder_luts,
            logic_depth=2 + max(1, n_inputs.bit_length()),
        )
