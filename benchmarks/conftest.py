"""Shared infrastructure for the benchmark harnesses.

The central piece is :class:`Fig3Study`, which reproduces the paper's Figure 3
study design by design: run the software RTL power estimator and the full
power-emulation flow on the scaled workload, evaluate the calibrated
commercial-tool runtime models and the emulation-platform time model at the
*nominal* (paper-scale) workload, and derive the execution-time and speedup
series.  Results are cached per session so the execution-time, speedup and
intro benches share one computation, and every harness writes its reproduced
table under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import pytest

from repro.core import InstrumentationConfig, PowerEmulationFlow, compare_reports
from repro.core.emulator import EmulationPlatform, HostInterface
from repro.designs.registry import FIGURE3_ORDER, get_design
from repro.netlist import flatten, module_stats
from repro.power import (
    NEC_RTPOWER,
    POWERTHEATER,
    RTLPowerEstimator,
    build_seed_library,
    calibrate_tool,
)

#: paper-reported MPEG4 data point used to anchor the commercial-tool models
PAPER_MPEG4_POWERTHEATER_S = 43 * 60.0
PAPER_MPEG4_NEC_S = 55 * 60.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(filename: str, text: str) -> str:
    """Write a reproduced table under benchmarks/results/ (and echo it)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print(text)
    return path


@dataclass
class Fig3Row:
    """One design's worth of Figure 3 data."""

    design: str
    monitored_bits: int
    nominal_cycles: int
    executed_cycles: int
    #: modeled software-tool runtimes at the nominal workload (seconds)
    time_nec_s: float
    time_powertheater_s: float
    #: modeled power-emulation runtime at the nominal workload (seconds)
    time_emulation_s: float
    #: measured wall-clock of our own software RTL estimator on the scaled workload
    measured_software_s: float
    #: measured wall-clock of the emulated (host) functional simulation
    measured_emulation_host_s: float
    average_power_mw: float
    emulated_power_mw: float
    accuracy_error: float
    device: str
    emulation_clock_mhz: float
    lut_overhead: float
    ff_overhead: float

    @property
    def speedup_nec(self) -> float:
        return self.time_nec_s / self.time_emulation_s

    @property
    def speedup_powertheater(self) -> float:
        return self.time_powertheater_s / self.time_emulation_s


class Fig3Study:
    """Computes and caches the per-design Figure 3 data."""

    def __init__(self) -> None:
        self.library = build_seed_library()
        self.config = InstrumentationConfig(coefficient_bits=12)
        # The paper measured testbench simulation + FPGA execution; we model the
        # testbench as streamed from the host at a realistic link rate.
        self.platform = EmulationPlatform(host=HostInterface(stimulus_cycles_per_s=5e6))
        self.flow = PowerEmulationFlow(
            library=self.library, config=self.config, platform=self.platform
        )
        self.rows: Dict[str, Fig3Row] = {}
        self._tools = None

    # ------------------------------------------------------------ calibration
    def calibrated_tools(self):
        """NEC-RTpower / PowerTheater anchored to the paper's MPEG4 data point."""
        if self._tools is None:
            mpeg4 = get_design("MPEG4")
            bits = module_stats(mpeg4.build()).monitored_bits
            self._tools = (
                calibrate_tool(NEC_RTPOWER, mpeg4.nominal_cycles, bits, PAPER_MPEG4_NEC_S),
                calibrate_tool(POWERTHEATER, mpeg4.nominal_cycles, bits,
                               PAPER_MPEG4_POWERTHEATER_S),
            )
        return self._tools

    # ----------------------------------------------------------------- compute
    def compute(self, design_name: str) -> Fig3Row:
        """Run the study for one design (cached)."""
        if design_name in self.rows:
            return self.rows[design_name]
        design = get_design(design_name)
        module = design.build()
        nec, powertheater = self.calibrated_tools()

        reference = RTLPowerEstimator(flatten(module), library=self.library).estimate(
            design.testbench()
        )
        report = self.flow.run(
            module,
            design.testbench(),
            workload_cycles=design.nominal_cycles,
            testbench_on_fpga=False,
        )
        accuracy = compare_reports(report.power_report, reference)
        bits = report.instrumented.monitored_bits
        row = Fig3Row(
            design=design_name,
            monitored_bits=bits,
            nominal_cycles=design.nominal_cycles,
            executed_cycles=report.emulation.executed_cycles,
            time_nec_s=nec.estimate_runtime_s(design.nominal_cycles, bits),
            time_powertheater_s=powertheater.estimate_runtime_s(design.nominal_cycles, bits),
            time_emulation_s=report.emulation_time_s,
            measured_software_s=reference.estimation_time_s,
            measured_emulation_host_s=report.emulation.host_simulation_s,
            average_power_mw=reference.average_power_mw,
            emulated_power_mw=report.power_report.average_power_mw,
            accuracy_error=accuracy.relative_error,
            device=report.emulation.device.name,
            emulation_clock_mhz=report.emulation.emulation_clock_mhz,
            lut_overhead=report.instrumentation_overhead["luts"],
            ff_overhead=report.instrumentation_overhead["ffs"],
        )
        self.rows[design_name] = row
        return row

    def ensure_all(self) -> List[Fig3Row]:
        return [self.compute(name) for name in FIGURE3_ORDER]

    @property
    def complete(self) -> bool:
        return all(name in self.rows for name in FIGURE3_ORDER)


@pytest.fixture(scope="session")
def fig3_study() -> Fig3Study:
    return Fig3Study()


@pytest.fixture(scope="session")
def seed_library():
    return build_seed_library()
