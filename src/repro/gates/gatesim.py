"""Levelized gate-level simulation.

Two-valued (0/1), cycle-less evaluation: each call settles the combinational
gate network for one input vector.  Consecutive vectors yield per-net toggle
information which the power calculator converts into switching energy — this
is the "gate-level implementation" reference used to characterize RTL power
macromodels, and the engine behind the slow gate-level estimation baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence

from repro.gates.gate_netlist import GateInstance, GateNetlist, bit_net


class GateLevelSimulator:
    """Evaluates a :class:`GateNetlist` one input vector at a time."""

    def __init__(self, netlist: GateNetlist) -> None:
        self.netlist = netlist
        self._order = self._levelize(netlist)
        self._alias_cache: Dict[str, str] = {}
        self.values: Dict[str, int] = {}
        self.reset()

    # ---------------------------------------------------------------- setup
    @staticmethod
    def _levelize(netlist: GateNetlist) -> List[GateInstance]:
        producers: Dict[str, GateInstance] = {g.output: g for g in netlist.gates}
        resolved_alias = _build_alias_resolver(netlist)

        indegree: Dict[GateInstance, int] = {}
        successors: Dict[GateInstance, List[GateInstance]] = {g: [] for g in netlist.gates}
        for gate in netlist.gates:
            count = 0
            for net in gate.inputs:
                source = producers.get(resolved_alias(net))
                if source is not None and source is not gate:
                    successors[source].append(gate)
                    count += 1
            indegree[gate] = count

        order: List[GateInstance] = []
        queue = deque(g for g in netlist.gates if indegree[g] == 0)
        while queue:
            gate = queue.popleft()
            order.append(gate)
            for succ in successors[gate]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(netlist.gates):
            raise ValueError(
                f"gate netlist {netlist.name!r} contains a combinational cycle"
            )
        return order

    # ------------------------------------------------------------- controls
    def reset(self) -> None:
        """Zero every net (and re-apply constants)."""
        self.values = {net: 0 for net in self.netlist.all_nets()}
        self.values.update(self.netlist.constants)

    def resolve(self, net: str) -> str:
        """Follow alias chains to the net that actually carries the value."""
        if net not in self._alias_cache:
            seen = set()
            current = net
            while current in self.netlist.aliases:
                if current in seen:
                    raise ValueError(f"alias cycle through net {current!r}")
                seen.add(current)
                current = self.netlist.aliases[current]
            self._alias_cache[net] = current
        return self._alias_cache[net]

    # ------------------------------------------------------------ execution
    def evaluate(self, input_bits: Mapping[str, int]) -> Dict[str, int]:
        """Settle the network for one vector of primary-input bit values."""
        values = self.values
        values.update(self.netlist.constants)
        for net in self.netlist.primary_inputs:
            values[net] = input_bits.get(net, 0) & 1
        for gate in self._order:
            operands = [values[self.resolve(net)] for net in gate.inputs]
            values[gate.output] = gate.cell.evaluate(operands)
        # propagate alias targets so that aliased nets read correctly
        for alias in self.netlist.aliases:
            values[alias] = values[self.resolve(alias)]
        return values

    def evaluate_ports(self, port_values: Mapping[str, int],
                       port_widths: Mapping[str, int]) -> Dict[str, int]:
        """Bit-blast RTL port values, evaluate, and reassemble output ports."""
        input_bits: Dict[str, int] = {}
        for port, value in port_values.items():
            width = port_widths.get(port, 1)
            for i in range(width):
                input_bits[bit_net(port, i)] = (value >> i) & 1
        values = self.evaluate(input_bits)
        outputs: Dict[str, int] = {}
        for net in self.netlist.primary_outputs:
            port, index = _split_bit_net(net)
            outputs.setdefault(port, 0)
            outputs[port] |= (values[net] & 1) << index
        return outputs

    def snapshot(self) -> Dict[str, int]:
        """Copy of the current net values (for toggle counting across vectors)."""
        return dict(self.values)


def _build_alias_resolver(netlist: GateNetlist):
    cache: Dict[str, str] = {}

    def resolve(net: str) -> str:
        if net not in cache:
            current = net
            seen = set()
            while current in netlist.aliases:
                if current in seen:
                    raise ValueError(f"alias cycle through net {current!r}")
                seen.add(current)
                current = netlist.aliases[current]
            cache[net] = current
        return cache[net]

    return resolve


def _split_bit_net(net: str) -> tuple:
    if not net.endswith("]") or "[" not in net:
        return net, 0
    base, _, index = net.rpartition("[")
    return base, int(index[:-1])
