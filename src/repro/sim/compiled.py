"""The compiled (slot-indexed) simulation backend.

This is the Verilator-style move that makes the reproduction's hot path fast:
instead of interpreting the levelized schedule — rebuilding a
``{port_name: value}`` dict and calling a virtual ``evaluate`` for every
component, every cycle — every net is assigned a dense integer slot in a flat
``values`` list and the whole combinational schedule is code-generated (see
:mod:`repro.sim.codegen`) into one straight-line, allocation-free Python
function per module, plus a matching ``clock_edge`` that captures/commits
sequential state without dict churn.

Compilation happens once per module per process: :func:`compile_module` keeps
a weak per-module cache (invalidated when the module's component/net counts
change), so registry designs that are re-simulated dozens of times across the
benchmark suite pay for ``levelize()`` + codegen exactly once.

:class:`SlotValues` keeps the public ``Simulator.values`` mapping (keyed by
:class:`~repro.netlist.nets.Net`) working on top of the slot list, so
observers, traces and waveform recorders run unchanged on either backend.
"""

from __future__ import annotations

import weakref
from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.netlist.module import Module
from repro.netlist.nets import Net
from repro.sim.codegen import generate_source
from repro.sim.scheduler import Schedule, module_mutation_key, schedule_for


class CompilationError(Exception):
    """Raised when a module cannot be lowered to slot-indexed code."""


@dataclass
class CompiledProgram:
    """The executable form of one module's levelized schedule."""

    n_slots: int
    #: Net -> dense slot index into the value list
    slot_of: Dict[Net, int]
    #: settle(values_list) — full combinational propagation
    settle: Callable[[List[int]], None]
    #: clock_edge(values_list) — sequential capture + commit
    clock_edge: Callable[[List[int]], None]
    #: generated Python source (for debugging and tests)
    source: str
    #: components fused into inline expressions
    n_fused: int
    #: components executed through the generic evaluate/capture fallback
    n_fallback: int


class SlotValues(MutableMapping):
    """Net-keyed mapping view over the compiled backend's slot list."""

    __slots__ = ("_slot_of", "_v")

    def __init__(self, slot_of: Dict[Net, int], values: List[int]) -> None:
        self._slot_of = slot_of
        self._v = values

    def __getitem__(self, net: Net) -> int:
        return self._v[self._slot_of[net]]

    def __setitem__(self, net: Net, value: int) -> None:
        # mask like the interpreter's capture paths do, so forced values
        # behave identically on both backends
        self._v[self._slot_of[net]] = value & ((1 << net.width) - 1)

    def __delitem__(self, net: Net) -> None:
        raise TypeError("net values cannot be deleted")

    def __iter__(self):
        return iter(self._slot_of)

    def __len__(self) -> int:
        return len(self._slot_of)


#: module -> ((n_components, n_nets), schedule, program); weak so modules
#: (and the component objects their programs close over) can be collected.
_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Module, tuple]" = weakref.WeakKeyDictionary()


def compile_module(module: Module, schedule: Optional[Schedule] = None) -> CompiledProgram:
    """Compile ``module``'s schedule into a :class:`CompiledProgram` (cached)."""
    if schedule is None:
        schedule = schedule_for(module)
    key = module_mutation_key(module)
    cached = _PROGRAM_CACHE.get(module)
    if cached is not None and cached[0] == key and cached[1] is schedule:
        return cached[2]

    slot_of = {net: slot for slot, net in enumerate(module.nets.values())}
    try:
        source, env, n_fused, n_fallback = generate_source(module, schedule, slot_of)
        code = compile(source, f"<compiled:{module.name}>", "exec")
        namespace = dict(env)
        namespace["__builtins__"] = {}
        exec(code, namespace)
    except Exception as error:  # pragma: no cover - defensive
        raise CompilationError(
            f"failed to compile module {module.name!r}: {error}"
        ) from error

    program = CompiledProgram(
        n_slots=len(module.nets),
        slot_of=slot_of,
        settle=namespace["_settle"],
        clock_edge=namespace["_clock_edge"],
        source=source,
        n_fused=n_fused,
        n_fallback=n_fallback,
    )
    try:
        _PROGRAM_CACHE[module] = (key, schedule, program)
    except TypeError:  # pragma: no cover - unweakrefable module subclass
        pass
    return program


def try_compile(module: Module, schedule: Optional[Schedule] = None) -> Optional[CompiledProgram]:
    """Best-effort compile: None (interpreter fallback) instead of raising."""
    try:
        return compile_module(module, schedule)
    except Exception:
        return None
