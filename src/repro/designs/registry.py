"""Registry of the benchmark designs used by the Figure 3 harness.

Design modules are imported lazily (inside :func:`all_designs`) so that the
package can be imported cheaply and without circular imports.  Each entry
carries the design's paper name, a builder, a testbench factory for the scaled
workload that is actually simulated, and the *nominal* workload (in cycles)
for which the Fig. 3 execution-time models are evaluated — the paper's
workloads (e.g. four frames of video for MPEG4) are far larger than what is
sensible to execute in a pure-Python RTL simulator, so the harness executes a
scaled stimulus for the power numbers and evaluates the calibrated time models
at the nominal workload, as documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.netlist.module import Module
from repro.sim.testbench import Testbench


@dataclass
class BenchmarkDesign:
    """One benchmark design plus its workloads."""

    name: str
    description: str
    build: Callable[[], Module]
    #: returns a fresh testbench for the scaled (actually simulated) workload
    testbench: Callable[[], Testbench]
    #: cycle count of the paper-scale nominal workload (Fig. 3 time models)
    nominal_cycles: int
    #: approximate cycle count of the scaled workload (for reporting)
    scaled_cycles: int
    #: True for the designs that appear in the paper's Figure 3
    in_figure3: bool = True
    notes: Dict[str, object] = field(default_factory=dict)
    #: returns a fresh scaled-workload testbench under an explicit stimulus
    #: seed (multi-seed sweeps); ``None`` when the design has no seeded form
    testbench_seeded: Optional[Callable[[int], Testbench]] = None
    #: returns a declarative :class:`~repro.stim.spec.StimulusSpec` scenario
    #: for the design's free-running input ports; ``None`` when the design's
    #: workload is protocol-driven (memory preloads etc.) and has no
    #: meaningful port-stream form
    stimulus: Optional[Callable[[], "object"]] = None

    def make_testbench(self, seed: Optional[int] = None) -> Testbench:
        """A fresh scaled-workload testbench, optionally re-seeded.

        ``seed=None`` returns the design's default stimulus; an explicit seed
        requires the design to register a seeded factory.
        """
        if seed is None:
            return self.testbench()
        if self.testbench_seeded is None:
            raise ValueError(
                f"design {self.name!r} has no seeded testbench factory; "
                f"run it with seed=None (the default stimulus)"
            )
        return self.testbench_seeded(seed)

    def make_stimulus_spec(self):
        """The design's declared :class:`~repro.stim.spec.StimulusSpec`."""
        if self.stimulus is None:
            raise ValueError(
                f"design {self.name!r} declares no stimulus spec; pass an "
                f"explicit spec (e.g. --stimulus uniform) instead of "
                f"--stimulus design"
            )
        return self.stimulus()

    def make_stimulus_testbench(self, seed: Optional[int] = None):
        """A scalar :class:`~repro.stim.testbench.SpecTestbench` over the
        design's declared stimulus spec (``seed=None`` = the spec's own)."""
        from repro.stim import SpecTestbench

        return SpecTestbench(self.make_stimulus_spec(), seed=seed)


#: canonical alias used by the unified estimation API (:mod:`repro.api`)
DesignEntry = BenchmarkDesign


def _bubble_sort() -> BenchmarkDesign:
    from repro.designs import bubble_sort

    nominal_depth = 512          # sort a 512-entry table
    scaled_depth = 24
    return BenchmarkDesign(
        name="Bubble_Sort",
        description="in-memory bubble sort engine (sorting circuit)",
        build=lambda: bubble_sort.build(depth=scaled_depth),
        testbench=lambda: bubble_sort.testbench(depth=scaled_depth, seed=11),
        testbench_seeded=lambda seed: bubble_sort.testbench(depth=scaled_depth, seed=seed),
        nominal_cycles=bubble_sort.cycles_per_sort(nominal_depth),
        scaled_cycles=bubble_sort.cycles_per_sort(scaled_depth),
        notes={"nominal_workload": f"sort {nominal_depth} words",
               "scaled_workload": f"sort {scaled_depth} words"},
    )


def _hvpeakf_stimulus():
    from repro.stim import ConstantSpec, StimulusSpec, UniformSpec

    # a free-running random pixel stream with the valid strobe held high
    return StimulusSpec(
        n_cycles=256,
        ports={"pixel": UniformSpec(), "valid": ConstantSpec(1)},
        default=None,
    )


def _hvpeakf() -> BenchmarkDesign:
    from repro.designs import hvpeakf

    nominal_pixels = 4 * 352 * 288      # four CIF luminance frames
    scaled_pixels = 600
    return BenchmarkDesign(
        name="HVPeakF",
        description="horizontal/vertical peaking (sharpening) image filter",
        build=hvpeakf.build,
        testbench=lambda: hvpeakf.testbench(n_pixels=scaled_pixels, seed=5),
        testbench_seeded=lambda seed: hvpeakf.testbench(n_pixels=scaled_pixels, seed=seed),
        stimulus=_hvpeakf_stimulus,
        nominal_cycles=nominal_pixels + 16,
        scaled_cycles=scaled_pixels + 16,
        notes={"nominal_workload": f"filter {nominal_pixels} pixels (4 CIF frames)",
               "scaled_workload": f"filter {scaled_pixels} pixels"},
    )


def _dct() -> BenchmarkDesign:
    from repro.designs import dct, transform

    nominal_blocks = 4 * 396            # four QCIF frames of 8x8 luma blocks
    scaled_blocks = 1
    return BenchmarkDesign(
        name="DCT",
        description="2-D 8x8 forward discrete cosine transform engine",
        build=dct.build,
        testbench=lambda: dct.testbench(n_blocks=scaled_blocks, seed=2),
        testbench_seeded=lambda seed: dct.testbench(n_blocks=scaled_blocks, seed=seed),
        nominal_cycles=nominal_blocks * transform.cycles_per_block(),
        scaled_cycles=scaled_blocks * transform.cycles_per_block(),
        notes={"nominal_workload": f"{nominal_blocks} blocks (4 QCIF frames)",
               "scaled_workload": f"{scaled_blocks} block(s)"},
    )


def _idct() -> BenchmarkDesign:
    from repro.designs import idct, transform

    nominal_blocks = 4 * 396 * 6        # four QCIF frames, 6 blocks per macroblock
    scaled_blocks = 1
    return BenchmarkDesign(
        name="IDCT",
        description="2-D 8x8 inverse DCT (MPEG4 decoder sub-block)",
        build=idct.build,
        testbench=lambda: idct.testbench(n_blocks=scaled_blocks, seed=4),
        testbench_seeded=lambda seed: idct.testbench(n_blocks=scaled_blocks, seed=seed),
        nominal_cycles=nominal_blocks * transform.cycles_per_block(),
        scaled_cycles=scaled_blocks * transform.cycles_per_block(),
        notes={"nominal_workload": f"{nominal_blocks} blocks (4 QCIF frames)",
               "scaled_workload": f"{scaled_blocks} block(s)"},
    )


def _ispq() -> BenchmarkDesign:
    from repro.designs import ispq

    nominal_blocks = 4 * 396 * 6
    scaled_blocks = 3
    return BenchmarkDesign(
        name="Ispq",
        description="MPEG-style inverse quantization block (MPEG4 sub-block)",
        build=ispq.build,
        testbench=lambda: ispq.testbench(n_blocks=scaled_blocks, seed=6),
        testbench_seeded=lambda seed: ispq.testbench(n_blocks=scaled_blocks, seed=seed),
        nominal_cycles=nominal_blocks * ispq.CYCLES_PER_BLOCK,
        scaled_cycles=scaled_blocks * ispq.CYCLES_PER_BLOCK,
        notes={"nominal_workload": f"{nominal_blocks} blocks (4 QCIF frames)",
               "scaled_workload": f"{scaled_blocks} block(s)"},
    )


def _vld() -> BenchmarkDesign:
    from repro.designs import vld

    nominal_symbols = 4 * 396 * 6 * 20   # ~20 coded symbols per block, 4 frames
    scaled_symbols = 120
    return BenchmarkDesign(
        name="Vld",
        description="variable-length (prefix code) decoder (MPEG4 sub-block)",
        build=vld.build,
        testbench=lambda: vld.testbench(n_symbols=scaled_symbols, seed=8),
        testbench_seeded=lambda seed: vld.testbench(n_symbols=scaled_symbols, seed=seed),
        nominal_cycles=nominal_symbols * vld.CYCLES_PER_SYMBOL,
        scaled_cycles=scaled_symbols * vld.CYCLES_PER_SYMBOL,
        notes={"nominal_workload": f"decode {nominal_symbols} symbols (4 frames)",
               "scaled_workload": f"decode {scaled_symbols} symbols"},
    )


def _mpeg4() -> BenchmarkDesign:
    from repro.designs import mpeg4

    nominal_blocks = 4 * 396 * 6         # four QCIF frames of 8x8 blocks
    scaled_blocks = 1
    return BenchmarkDesign(
        name="MPEG4",
        description="MPEG4 block decoder composite (VLD + IQ + IDCT + MC/frame store)",
        build=mpeg4.build,
        testbench=lambda: mpeg4.testbench(n_blocks=scaled_blocks, seed=10),
        testbench_seeded=lambda seed: mpeg4.testbench(n_blocks=scaled_blocks, seed=seed),
        nominal_cycles=nominal_blocks * mpeg4.CYCLES_PER_BLOCK,
        scaled_cycles=scaled_blocks * mpeg4.CYCLES_PER_BLOCK,
        notes={"nominal_workload": f"decode {nominal_blocks} blocks (4 QCIF frames)",
               "scaled_workload": f"decode {scaled_blocks} block(s)"},
    )


def _binary_search_stimulus():
    from repro.stim import ReplaySpec, StimulusSpec, UniformSpec

    # pulse `start` once per search slot, hold a fresh random key per search
    cycles_per_search = 24
    pulse = (1,) + (0,) * (cycles_per_search - 1)
    return StimulusSpec(
        n_cycles=8 * cycles_per_search,
        ports={
            "start": ReplaySpec(values=pulse, repeat=True),
            "key": UniformSpec(hold=cycles_per_search),
        },
        default=None,
    )


def _binary_search() -> BenchmarkDesign:
    from repro.designs import binary_search

    return BenchmarkDesign(
        name="binary_search",
        description="the paper's Fig. 1 binary search example circuit",
        build=binary_search.build,
        testbench=lambda: binary_search.testbench(n_searches=8),
        testbench_seeded=lambda seed: binary_search.testbench(n_searches=8, seed=seed),
        stimulus=_binary_search_stimulus,
        nominal_cycles=100_000 * 24,
        scaled_cycles=8 * 24,
        in_figure3=False,
        notes={"nominal_workload": "100k searches", "scaled_workload": "8 searches"},
    )


def _wide_checksum_stimulus():
    from repro.stim import ConstantSpec, StimulusSpec, UniformSpec

    # a free-running random word stream with the valid strobe held high
    return StimulusSpec(
        n_cycles=192,
        ports={"data": UniformSpec(), "valid": ConstantSpec(1)},
        default=None,
    )


def _wide_checksum() -> BenchmarkDesign:
    from repro.designs import wide_checksum

    scaled_words = 192
    nominal_words = 100_000
    return BenchmarkDesign(
        name="Wide_Checksum",
        description="168-bit rolling-checksum datapath (limb-store lane path)",
        build=wide_checksum.build,
        testbench=lambda: wide_checksum.testbench(n_words=scaled_words, seed=9),
        testbench_seeded=lambda seed: wide_checksum.testbench(n_words=scaled_words, seed=seed),
        stimulus=_wide_checksum_stimulus,
        nominal_cycles=nominal_words,
        scaled_cycles=scaled_words,
        in_figure3=False,
        notes={"nominal_workload": f"checksum {nominal_words} words",
               "scaled_workload": f"checksum {scaled_words} words"},
    )


_FACTORIES = {
    "Bubble_Sort": _bubble_sort,
    "HVPeakF": _hvpeakf,
    "DCT": _dct,
    "IDCT": _idct,
    "Ispq": _ispq,
    "Vld": _vld,
    "MPEG4": _mpeg4,
    "binary_search": _binary_search,
    "Wide_Checksum": _wide_checksum,
}

#: the order in which Fig. 3 lists the benchmarks
FIGURE3_ORDER: List[str] = ["Bubble_Sort", "HVPeakF", "DCT", "IDCT", "Ispq", "Vld", "MPEG4"]


def all_designs() -> Dict[str, BenchmarkDesign]:
    """All registered designs (including the Fig. 1 example)."""
    return {name: factory() for name, factory in _FACTORIES.items()}


def get(name: str) -> DesignEntry:
    """The canonical design lookup: builder + testbench factories + metadata.

    Raises a :class:`KeyError` that lists the valid names — the CLI and the
    sweep runner surface it verbatim.
    """
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        ) from None


def get_design(name: str) -> BenchmarkDesign:
    """Backwards-compatible alias of :func:`get`."""
    return get(name)


def figure3_designs() -> List[BenchmarkDesign]:
    """The seven designs of the paper's Figure 3, in plot order."""
    return [get_design(name) for name in FIGURE3_ORDER]


#: design name -> flattened module, shared per process (see build_flat)
_FLAT_CACHE: Dict[str, Module] = {}


def build_flat(name: str) -> Module:
    """Build + flatten a registry design once per process and cache it.

    Registry designs are re-simulated dozens of times across the benchmark
    suite; reusing one flat module lets the simulator's per-module schedule
    and code-generation caches hit instead of re-elaborating every time.

    The returned module is *shared*: sequential state lives on its component
    objects, so do not drive two concurrently-active simulators with it.
    Constructing a :class:`~repro.sim.engine.Simulator` resets all state, so
    strictly sequential runs (e.g. benchmarking one backend after another)
    are safe.  Callers that need isolated state should use
    ``flatten(get_design(name).build())`` instead.
    """
    if name not in _FLAT_CACHE:
        from repro.netlist.flatten import flatten

        _FLAT_CACHE[name] = flatten(get_design(name).build())
    return _FLAT_CACHE[name]
