"""The :class:`PowerEstimator` protocol and its three engine adapters.

Every estimation engine in the repository — the software RTL macromodel
estimator, the gate-level re-simulation baseline, and the power-emulation
flow — is exposed through one uniform surface::

    result = estimate(RunSpec(design="DCT", engine="rtl", seed=7))

Adapters resolve registry designs by name, auto-flatten hierarchical modules,
resolve the simulation backend declaratively (``auto``/``compiled``/
``interp``/``batch``), and return the same :class:`EstimateResult` shape, so
examples, benchmarks, the sweep runner and the CLI share one code path
instead of hand-wiring each engine's constructor signature.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Protocol, runtime_checkable

from repro import obs
from repro.api.spec import ENGINES, EstimateResult, RunSpec
from repro.netlist.flatten import flatten
from repro.netlist.module import Module
from repro.power.library import PowerModelLibrary, build_seed_library
from repro.power.profile import PowerProfile, ProfileConfig
from repro.power.report import PowerReport
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.testbench import Testbench

_ESTIMATES = obs.counter(
    "repro_estimates_total", "Completed estimates by engine")
_LAST_PEAK_MW = obs.gauge(
    "repro_power_last_peak_mw",
    "Peak power of the most recent estimate, by design/engine (mW)")
_LAST_MEAN_MW = obs.gauge(
    "repro_power_last_mean_mw",
    "Average power of the most recent estimate, by design/engine (mW)")
_MEAN_MW_HIST = obs.histogram(
    "repro_power_mean_mw",
    "Distribution of estimated average power across runs (mW)")


def _profile_config(spec: RunSpec) -> Optional[ProfileConfig]:
    """The collector configuration a spec asks for (None = no profiling)."""
    if not spec.power_profile:
        return None
    return ProfileConfig(window_cycles=spec.profile_window)


@runtime_checkable
class PowerEstimator(Protocol):
    """Uniform front door of every estimation engine."""

    #: engine key this estimator implements (``rtl`` / ``gate`` / ``emulation``)
    engine: str

    def estimate(self, spec: RunSpec) -> EstimateResult:
        """Run the spec and return the uniform result."""
        ...


class _EngineAdapter:
    """Shared plumbing: design resolution, auto-flattening, libraries, timing.

    ``module``/``testbench_factory`` override the registry: pass an explicit
    (possibly hierarchical) module and a ``factory(seed) -> Testbench`` to
    estimate designs that are not registered.  Hierarchical modules are
    flattened automatically — the adapters never surface the legacy
    constructors' flatten-first requirement.
    """

    engine = "abstract"

    def __init__(
        self,
        module: Optional[Module] = None,
        testbench_factory: Optional[Callable[[Optional[int]], Testbench]] = None,
        library: Optional[PowerModelLibrary] = None,
        technology: Technology = CB130M_TECHNOLOGY,
    ) -> None:
        if module is not None and testbench_factory is None:
            raise ValueError(
                "an explicit module needs a testbench_factory(seed) -> Testbench"
            )
        self._module = module
        self._testbench_factory = testbench_factory
        self._library = library
        self.technology = technology
        self._flat_cache: Optional[Module] = None

    # ------------------------------------------------------------ resolution
    def library_for(self, spec: RunSpec) -> PowerModelLibrary:
        if self._library is None:
            # spec validation restricts `library` to the deterministic seed set
            self._library = build_seed_library(self.technology)
        return self._library

    def _resolve_flat(self, spec: RunSpec) -> Module:
        """The flat module to simulate (auto-flattened, cached per adapter)."""
        if self._module is not None:
            if self._flat_cache is None:
                module = self._module
                self._flat_cache = flatten(module) if module.is_hierarchical else module
            return self._flat_cache
        from repro.designs.registry import build_flat

        return build_flat(spec.design)

    def _resolve_hierarchical(self, spec: RunSpec) -> Module:
        """A fresh, possibly hierarchical module (the emulation flow
        instruments and flattens on its own)."""
        if self._module is not None:
            return self._module
        from repro.designs.registry import get

        return get(spec.design).build()

    def _resolve_testbench(self, spec: RunSpec) -> Testbench:
        if spec.stimulus is not None:
            # a declarative scenario always wins over registry/explicit
            # testbenches; on the lane path it runs as the array driver
            from repro.stim import SpecTestbench

            return SpecTestbench(spec.stimulus, seed=spec.seed)
        if self._testbench_factory is not None:
            return self._testbench_factory(spec.seed)
        from repro.designs.registry import get

        return get(spec.design).make_testbench(spec.seed)

    def _check_spec(self, spec: RunSpec) -> None:
        if spec.engine != self.engine:
            raise ValueError(
                f"spec requests engine {spec.engine!r} but this adapter "
                f"implements {self.engine!r}; use estimator_for(spec.engine)"
            )

    # -------------------------------------------------------------- accuracy
    def _accuracy_vs_rtl(self, spec: RunSpec, report: PowerReport) -> Dict[str, float]:
        from repro.core.accuracy import compare_reports

        reference_spec = spec.replace(
            engine="rtl", backend="auto", compare_to_rtl=False, keep_cycle_trace=False
        )
        reference = RTLEstimatorAdapter(
            module=self._module,
            testbench_factory=self._testbench_factory,
            library=self._library,
            technology=self.technology,
        ).estimate(reference_spec)
        accuracy = compare_reports(report, reference.report)
        return {
            "relative_error": accuracy.relative_error,
            "reference_power_mw": accuracy.reference_power_mw,
            "test_power_mw": accuracy.test_power_mw,
        }

    def _finish(
        self,
        spec: RunSpec,
        report: PowerReport,
        backend: str,
        start: float,
        setup_s: float,
        metadata: Dict[str, object],
        phase_s: Optional[Dict[str, float]] = None,
        profile: Optional[PowerProfile] = None,
    ) -> EstimateResult:
        if not spec.keep_cycle_trace:
            report.cycle_energy_fj = []
        accuracy = None
        if spec.compare_to_rtl:
            accuracy = self._accuracy_vs_rtl(spec, report)
        total = time.perf_counter() - start
        # per-phase wall-clock breakdown (repro.obs tentpole): setup, then
        # engine-specific phases (lane build / simulate / macromodel eval),
        # closed by the total — always present, independent of tracing
        phases: Dict[str, float] = {"setup_s": setup_s}
        if phase_s:
            phases.update(phase_s)
        phases["total_s"] = total
        metadata = dict(metadata)
        metadata["phase_s"] = {k: round(float(v), 6) for k, v in phases.items()}
        _ESTIMATES.inc(engine=self.engine)
        _LAST_PEAK_MW.set(report.peak_power_mw, design=spec.design,
                          engine=self.engine)
        _LAST_MEAN_MW.set(report.average_power_mw, design=spec.design,
                          engine=self.engine)
        _MEAN_MW_HIST.observe(report.average_power_mw, engine=self.engine)
        if profile is not None and obs.tracing_enabled():
            # merge the simulated power timeline into the software trace: the
            # run's cycle axis maps onto the wall-clock interval the
            # simulate/flow phase just occupied, ending now
            sim_s = float(
                phases.get("simulate_s") or phases.get("flow_s") or total
            )
            t1_us = time.time() * 1e6
            obs.add_events(profile.counter_events(t1_us - sim_s * 1e6, t1_us))
        return EstimateResult(
            spec=spec,
            engine=report.estimator,
            backend=backend,
            report=report,
            timing={
                "setup_s": setup_s,
                "estimate_s": report.estimation_time_s,
                "total_s": total,
            },
            accuracy=accuracy,
            metadata=metadata,
            profile=profile,
        )


class RTLEstimatorAdapter(_EngineAdapter):
    """The software RTL macromodel estimator behind the uniform surface.

    ``backend="batch"`` routes through the lane-vectorized
    :class:`~repro.power.lane_estimator.BatchRTLPowerEstimator` (one lane),
    falling back to the scalar path when the module or testbench cannot run
    on lanes; results are backend-independent either way.
    """

    engine = "rtl"

    def estimate(self, spec: RunSpec) -> EstimateResult:
        self._check_spec(spec)
        est_span = obs.span("estimate", design=spec.design, engine=self.engine)
        start = time.perf_counter()
        with obs.span("estimate.setup", design=spec.design):
            library = self.library_for(spec)
            flat = self._resolve_flat(spec)
            testbench = self._resolve_testbench(spec)
        setup_s = time.perf_counter() - start

        kernel_info = None
        phase_s: Optional[Dict[str, float]] = None
        if spec.backend == "batch":
            report, backend, kernel_info, phase_s, profile = self._estimate_batch(
                spec, flat, library, testbench
            )
        else:
            backend = "compiled" if spec.backend == "auto" else spec.backend
            estimator = _get_rtl_estimator(flat, library, self.technology, backend)
            with obs.span("estimate.simulate", design=spec.design,
                          backend=backend):
                report = estimator.estimate(
                    testbench,
                    max_cycles=spec.max_cycles,
                    keep_cycle_trace=spec.keep_cycle_trace,
                    profile=_profile_config(spec),
                )
            phase_s = {"simulate_s": report.estimation_time_s}
            profile = estimator.last_profile
        metadata = {
            "n_monitored_components": report.notes.get("n_monitored_components"),
            "design": spec.design,
        }
        if kernel_info is not None:
            metadata.update(kernel_info)
        result = self._finish(
            spec, report, backend, start, setup_s, metadata, phase_s,
            profile=profile)
        est_span.set(backend=backend)
        est_span.end()
        return result

    def warm(self, spec: RunSpec, n_lanes: int = 1) -> Dict[str, object]:
        """Build everything a lane run of ``spec`` would compile, cacheably.

        Resolves the library and the flat module, compiles the lane program
        for ``n_lanes`` and the requested kernel — all through the same
        process-lifetime caches :meth:`estimate_many` hits, so a subsequent
        estimate of a compatible spec reuses every artifact.  This is the
        :mod:`repro.serve` server's "compiling" phase: separating it from the
        estimate call lets the server stream an honest compile/simulate
        phase boundary per job group.  Returns the resolved kernel facts
        (empty for non-lane specs, whose compilation happens inline).
        """
        from repro.api.spec import is_coalescable

        with obs.span("estimate.warm", design=spec.design, n_lanes=n_lanes):
            self.library_for(spec)
            flat = self._resolve_flat(spec)
            if not is_coalescable(spec):
                return {}
            from repro.sim.batch import (
                BatchCompilationError, BatchSimulator, LaneStateError,
            )

            try:
                simulator = BatchSimulator(
                    flat, n_lanes, kernel_backend=spec.kernel_backend,
                    kernel_threads=spec.kernel_threads,
                )
            except (BatchCompilationError, LaneStateError):
                # estimate/estimate_many will fall back to the scalar path
                return {}
        return {
            "kernel_backend": simulator.kernel_backend,
            "kernel_decision": simulator.kernel_decision,
            "kernel_threads": simulator.kernel_threads,
        }

    def estimate_many(self, specs) -> list:
        """Multi-seed batch: all specs share design/engine, one lane per seed.

        Returns one :class:`EstimateResult` per spec.  This is the fast path
        the sweep runner uses; it degrades to per-spec scalar estimation when
        the lane path cannot run the module or its testbenches.
        """
        from repro.api.spec import coalesce_key

        specs = list(specs)
        if not specs:
            return []
        first = specs[0]
        first_key = coalesce_key(first)
        for spec in specs:
            self._check_spec(spec)
            if coalesce_key(spec) != first_key:
                raise ValueError(
                    "estimate_many requires lane-compatible specs — sharing "
                    "design, max_cycles, stimulus, backend, kernel_backend "
                    "and kernel_threads (equal repro.api.coalesce_key) — "
                    f"got {coalesce_key(spec)} vs {first_key}"
                )
        from repro.power.lane_estimator import BatchRTLPowerEstimator
        from repro.sim.batch import BatchCompilationError, LaneStateError

        many_span = obs.span(
            "estimate.batch", design=first.design, n_specs=len(specs))
        start = time.perf_counter()
        with obs.span("estimate.setup", design=first.design):
            library = self.library_for(first)
            flat = self._resolve_flat(first)
            testbenches = [self._resolve_testbench(spec) for spec in specs]
        setup_s = time.perf_counter() - start
        # lane-mates may disagree on profiling: collect at the finest
        # requested window and rebin coarser requests per result afterwards;
        # a lane with no preference leaves the window to the engine default
        profile_cfg = None
        wanting = [s for s in specs if s.power_profile]
        if wanting:
            explicit = [
                s.profile_window for s in wanting
                if s.profile_window is not None
            ]
            profile_cfg = ProfileConfig(window_cycles=(
                min(explicit) if len(explicit) == len(wanting) else None
            ))
        try:
            estimator = BatchRTLPowerEstimator(flat, library=library,
                                               technology=self.technology,
                                               kernel_backend=first.kernel_backend,
                                               kernel_threads=first.kernel_threads)
            reports = estimator.estimate_all(
                testbenches,
                max_cycles=first.max_cycles,
                keep_cycle_trace=any(s.keep_cycle_trace for s in specs),
                profile=profile_cfg,
            )
            backend = f"batch[{len(specs)}]"
        except (BatchCompilationError, LaneStateError) as error:
            many_span.set(fallback=type(error).__name__)
            many_span.end()
            fallbacks = []
            for spec in specs:
                result = self.estimate(spec.replace(backend="auto"))
                result.spec = spec  # keep the caller's spec as the result key
                fallbacks.append(result)
            return fallbacks
        results = []
        for lane, (spec, report) in enumerate(zip(specs, reports)):
            metadata = {
                "n_monitored_components": report.notes.get("n_monitored_components"),
                "batch_lanes": report.notes.get("batch_lanes"),
                "kernel_backend": estimator.last_kernel_backend,
                "kernel_decision": estimator.last_kernel_decision,
                "kernel_threads": estimator.last_kernel_threads,
                "design": spec.design,
            }
            profile = None
            if spec.power_profile and estimator.last_profiles:
                profile = estimator.last_profiles[lane]
                wanted = spec.profile_window
                if (wanted is not None and wanted > profile.window_cycles
                        and wanted % profile.window_cycles == 0):
                    profile = profile.rebin(wanted)
            results.append(
                self._finish(spec, report, backend, start, setup_s / len(specs),
                             metadata, dict(estimator.last_phase_s),
                             profile=profile)
            )
        many_span.end()
        return results

    def _estimate_batch(self, spec, flat, library, testbench):
        from repro.power.lane_estimator import BatchRTLPowerEstimator
        from repro.sim.batch import BatchCompilationError, LaneStateError

        try:
            estimator = BatchRTLPowerEstimator(flat, library=library,
                                               technology=self.technology,
                                               kernel_backend=spec.kernel_backend,
                                               kernel_threads=spec.kernel_threads)
            reports = estimator.estimate_all(
                [testbench],
                max_cycles=spec.max_cycles,
                keep_cycle_trace=spec.keep_cycle_trace,
                profile=_profile_config(spec),
            )
            kernel_info = {
                "kernel_backend": estimator.last_kernel_backend,
                "kernel_decision": estimator.last_kernel_decision,
                "kernel_threads": estimator.last_kernel_threads,
            }
            profile = (
                estimator.last_profiles[0] if estimator.last_profiles else None
            )
            return (reports[0], "batch[1]", kernel_info,
                    dict(estimator.last_phase_s), profile)
        except (BatchCompilationError, LaneStateError):
            estimator = _get_rtl_estimator(flat, library, self.technology, "compiled")
            with obs.span("estimate.simulate", design=spec.design,
                          backend="compiled"):
                report = estimator.estimate(
                    testbench,
                    max_cycles=spec.max_cycles,
                    keep_cycle_trace=spec.keep_cycle_trace,
                    profile=_profile_config(spec),
                )
            return (report, "compiled", None,
                    {"simulate_s": report.estimation_time_s},
                    estimator.last_profile)


class GateLevelEstimatorAdapter(_EngineAdapter):
    """The gate-level re-simulation baseline behind the uniform surface."""

    engine = "gate"

    def estimate(self, spec: RunSpec) -> EstimateResult:
        self._check_spec(spec)
        from repro.power.gate_estimator import GateLevelPowerEstimator

        start = time.perf_counter()
        library = self.library_for(spec)
        flat = self._resolve_flat(spec)
        testbench = self._resolve_testbench(spec)
        backend = "compiled" if spec.backend == "auto" else spec.backend
        estimator = GateLevelPowerEstimator(
            flat, library=library, technology=self.technology, backend=backend
        )
        setup_s = time.perf_counter() - start
        with obs.span("estimate.simulate", design=spec.design, engine="gate"):
            report = estimator.estimate(
                testbench,
                max_cycles=spec.max_cycles,
                keep_cycle_trace=spec.keep_cycle_trace,
                profile=_profile_config(spec),
            )
        metadata = {
            "n_gate_mapped": report.notes.get("n_gate_mapped"),
            "n_macromodelled": report.notes.get("n_macromodelled"),
            "design": spec.design,
        }
        return self._finish(spec, report, backend, start, setup_s, metadata,
                            {"simulate_s": report.estimation_time_s},
                            profile=estimator.last_profile)


class EmulationEstimatorAdapter(_EngineAdapter):
    """The paper's instrument → synthesize → emulate flow behind the surface.

    The platform model owns functional simulation, so ``spec.backend`` is
    resolved as ``emulation``; the modeled time breakdown (download, execute,
    stimulus, readback) lands in ``timing`` and the synthesis/device facts in
    ``metadata``.
    """

    engine = "emulation"

    def estimate(self, spec: RunSpec) -> EstimateResult:
        self._check_spec(spec)
        from repro.core.flow import PowerEmulationFlow
        from repro.core.instrument import InstrumentationConfig

        start = time.perf_counter()
        library = self.library_for(spec)
        module = self._resolve_hierarchical(spec)
        testbench = self._resolve_testbench(spec)
        flow = PowerEmulationFlow(
            library=library,
            technology=self.technology,
            config=InstrumentationConfig(coefficient_bits=spec.coefficient_bits),
        )
        setup_s = time.perf_counter() - start
        flow_start = time.perf_counter()
        with obs.span("estimate.simulate", design=spec.design,
                      engine="emulation"):
            flow_report = flow.run(
                module,
                testbench,
                workload_cycles=spec.workload_cycles,
                testbench_on_fpga=spec.testbench_on_fpga,
                max_cycles=spec.max_cycles,
                profile_window=spec.profile_window,
            )
        flow_s = time.perf_counter() - flow_start
        emulation = flow_report.emulation
        report = flow_report.power_report
        # the platform always collects its readback profile (it is how
        # peak_power_mw gets populated); attach it only when asked for
        profile = emulation.power_profile if spec.power_profile else None
        metadata = {
            "design": spec.design,
            "device": emulation.device.name,
            "emulation_clock_mhz": emulation.emulation_clock_mhz,
            "monitored_bits": flow_report.instrumented.monitored_bits,
            "n_power_models": flow_report.instrumented.n_power_models,
            "lut_overhead": flow_report.instrumentation_overhead.get("luts", 0.0),
            "ff_overhead": flow_report.instrumentation_overhead.get("ffs", 0.0),
            "executed_cycles": emulation.executed_cycles,
            "workload_cycles": emulation.workload_cycles,
        }
        result = self._finish(
            spec, report, "emulation", start, setup_s, metadata,
            {"flow_s": flow_s,
             "host_simulation_s": emulation.host_simulation_s},
            profile=profile)
        result.timing.update(
            {f"modeled_{k}": v for k, v in emulation.time_breakdown.as_dict().items()}
        )
        result.timing["host_simulation_s"] = emulation.host_simulation_s
        return result


#: engine key -> adapter class
_ADAPTERS = {
    "rtl": RTLEstimatorAdapter,
    "gate": GateLevelEstimatorAdapter,
    "emulation": EmulationEstimatorAdapter,
}

def _get_rtl_estimator(flat, library, technology, backend):
    from repro.power.rtl_estimator import RTLPowerEstimator

    return RTLPowerEstimator(
        flat, library=library, technology=technology, backend=backend
    )


def estimator_for(engine: str, **kwargs) -> PowerEstimator:
    """An adapter instance for ``engine`` (see :data:`~repro.api.spec.ENGINES`)."""
    try:
        adapter = _ADAPTERS[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        ) from None
    return adapter(**kwargs)


def estimate(spec: RunSpec, **kwargs) -> EstimateResult:
    """One-shot convenience: build the engine's adapter and run the spec."""
    return estimator_for(spec.engine, **kwargs).estimate(spec)
