"""Benchmark designs evaluated in the paper's Figure 3.

Seven designs (plus the paper's Fig. 1 binary-search example) built on the
RTL netlist IR, each with stimulus generators and testbenches:

================  =============================================================
``binary_search``  the Fig. 1 example circuit (FSM + datapath binary search)
``Bubble_Sort``    in-memory bubble sort engine
``HVPeakF``        horizontal/vertical peaking (sharpening) image filter
``DCT``            2-D 8x8 forward discrete cosine transform (MAC engine)
``IDCT``           2-D 8x8 inverse DCT (MPEG4 decoder sub-block)
``Ispq``           MPEG-style inverse quantizer (MPEG4 decoder sub-block)
``Vld``            variable-length (prefix-code) decoder (MPEG4 sub-block)
``MPEG4``          block decoder composite: VLD -> IQ -> IDCT -> MC/frame store
================  =============================================================

All designs register themselves in :mod:`repro.designs.registry`, which the
benchmark harnesses iterate over.
"""

from repro.designs.registry import (
    BenchmarkDesign,
    DesignEntry,
    all_designs,
    get,
    get_design,
    figure3_designs,
)

__all__ = [
    "BenchmarkDesign",
    "DesignEntry",
    "all_designs",
    "get",
    "get_design",
    "figure3_designs",
]
