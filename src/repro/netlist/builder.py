"""Fluent netlist construction API.

:class:`NetlistBuilder` is the ergonomic front end used by the benchmark
designs and by generated datapaths (HLS, power-emulation instrumentation).
Every operation instantiates the corresponding RTL component, wires its
inputs, creates an output net and returns that net, so structural RTL can be
written almost like dataflow expressions::

    b = NetlistBuilder("binary_search")
    first = b.register("reg_first", 10)
    last = b.register("reg_last", 10)
    mid = b.shr(b.add(first, last), 1)          # (first + last) >> 1
    b.output("mid", mid)

Feedback paths (register/counter inputs that depend on their own outputs) are
expressed by declaring the storage element first and driving it later with
:meth:`NetlistBuilder.drive`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.netlist.components import (
    AbsoluteValue,
    Adder,
    AddSub,
    Comparator,
    Concat,
    Constant,
    Component,
    Decoder,
    Extend,
    LogicOp,
    Multiplier,
    Mux,
    NotOp,
    ReduceOp,
    Saturator,
    ShifterConst,
    ShifterVar,
    Slice,
    Subtractor,
)
from repro.netlist.fsm import FSMController
from repro.netlist.module import Module
from repro.netlist.nets import Net
from repro.netlist.sequential import (
    Accumulator,
    Counter,
    Memory,
    RegisterFile,
    Register,
    ROM,
    SequentialComponent,
)

NetOrInt = Union[Net, int]


class NetlistBuilder:
    """Incrementally builds a :class:`~repro.netlist.module.Module`."""

    def __init__(self, name: str) -> None:
        self.module = Module(name)
        self._counters: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------ utilities
    def _auto_name(self, prefix: str) -> str:
        index = self._counters[prefix]
        self._counters[prefix] += 1
        return f"{prefix}_{index}"

    def _new_net(self, width: int, name: Optional[str] = None) -> Net:
        net_name = name if name is not None else self._auto_name("n")
        return self.module.add_net(net_name, width)

    def _as_net(self, value: NetOrInt, width: Optional[int] = None) -> Net:
        """Coerce an integer literal into a constant-driven net."""
        if isinstance(value, Net):
            return value
        if width is None:
            raise ValueError(
                "an integer operand needs an explicit width or a Net on the other side"
            )
        return self.const(value, width)

    def _add(self, component: Component, inputs: Mapping[str, NetOrInt]) -> Component:
        """Register a component and connect its input ports."""
        self.module.add_component(component)
        for port_name, value in inputs.items():
            width = component.ports[port_name].width
            net = self._as_net(value, width)
            component.connect(port_name, net)
        return component

    def _connect_outputs(
        self, component: Component, names: Optional[Mapping[str, str]] = None
    ) -> Dict[str, Net]:
        """Create and connect one net per output port; return them by port name."""
        created: Dict[str, Net] = {}
        for port in component.output_ports:
            net_name = (names or {}).get(port.name, f"{component.name}_{port.name}")
            net = self._new_net(port.width, net_name)
            component.connect(port.name, net)
            created[port.name] = net
        return created

    # ------------------------------------------------------------ I/O, nets
    def input(self, name: str, width: int) -> Net:
        """Declare a module input port and return its net."""
        return self.module.add_input(name, width)

    def output(self, name: str, net: Net) -> Net:
        """Expose ``net`` as a module output port."""
        self.module.add_output(name, net)
        return net

    def const(self, value: int, width: int, name: Optional[str] = None) -> Net:
        """Drive a constant value onto a new net."""
        comp_name = name if name is not None else self._auto_name("const")
        comp = Constant(comp_name, width, value)
        self.module.add_component(comp)
        return self._connect_outputs(comp)["y"]

    # ------------------------------------------------------------ arithmetic
    def add(self, a: NetOrInt, b: NetOrInt, width: Optional[int] = None,
            name: Optional[str] = None) -> Net:
        """Adder ``y = a + b`` (width defaults to the wider operand)."""
        width = width or self._infer_width(a, b)
        comp = Adder(name or self._auto_name("add"), width)
        self._add(comp, {"a": self._resize(a, width), "b": self._resize(b, width)})
        return self._connect_outputs(comp)["y"]

    def sub(self, a: NetOrInt, b: NetOrInt, width: Optional[int] = None,
            name: Optional[str] = None) -> Net:
        """Subtractor ``y = a - b``."""
        width = width or self._infer_width(a, b)
        comp = Subtractor(name or self._auto_name("sub"), width)
        self._add(comp, {"a": self._resize(a, width), "b": self._resize(b, width)})
        return self._connect_outputs(comp)["y"]

    def addsub(self, a: NetOrInt, b: NetOrInt, sub: Net, width: Optional[int] = None,
               name: Optional[str] = None) -> Net:
        """Shared adder/subtractor controlled by the 1-bit ``sub`` input."""
        width = width or self._infer_width(a, b)
        comp = AddSub(name or self._auto_name("addsub"), width)
        self._add(comp, {"a": self._resize(a, width), "b": self._resize(b, width), "sub": sub})
        return self._connect_outputs(comp)["y"]

    def mul(self, a: Net, b: NetOrInt, width_y: Optional[int] = None,
            signed: bool = False, name: Optional[str] = None) -> Net:
        """Multiplier; result width defaults to ``a.width + b.width``."""
        b_net = self._as_net(b, a.width)
        comp = Multiplier(
            name or self._auto_name("mul"),
            width_a=a.width,
            width_b=b_net.width,
            width_y=width_y,
            signed=signed,
        )
        self._add(comp, {"a": a, "b": b_net})
        return self._connect_outputs(comp)["y"]

    def absval(self, a: Net, name: Optional[str] = None) -> Net:
        comp = AbsoluteValue(name or self._auto_name("abs"), a.width)
        self._add(comp, {"a": a})
        return self._connect_outputs(comp)["y"]

    def saturate(self, a: Net, width_out: int, signed: bool = True,
                 name: Optional[str] = None) -> Net:
        comp = Saturator(name or self._auto_name("sat"), a.width, width_out, signed)
        self._add(comp, {"a": a})
        return self._connect_outputs(comp)["y"]

    def compare(self, a: NetOrInt, b: NetOrInt, signed: bool = False,
                name: Optional[str] = None) -> Tuple[Net, Net, Net]:
        """Comparator; returns the ``(lt, eq, gt)`` flag nets."""
        width = self._infer_width(a, b)
        comp = Comparator(name or self._auto_name("cmp"), width, signed)
        self._add(comp, {"a": self._resize(a, width), "b": self._resize(b, width)})
        outs = self._connect_outputs(comp)
        return outs["lt"], outs["eq"], outs["gt"]

    def eq(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        """Equality flag only (still instantiates a comparator)."""
        return self.compare(a, b, name=name)[1]

    # --------------------------------------------------------------- shifts
    def shl(self, a: Net, amount: NetOrInt, name: Optional[str] = None) -> Net:
        if isinstance(amount, int):
            comp = ShifterConst(name or self._auto_name("shl"), a.width, amount, "left")
            self._add(comp, {"a": a})
        else:
            comp = ShifterVar(name or self._auto_name("shl"), a.width, amount.width, "left")
            self._add(comp, {"a": a, "amount": amount})
        return self._connect_outputs(comp)["y"]

    def shr(self, a: Net, amount: NetOrInt, arithmetic: bool = False,
            name: Optional[str] = None) -> Net:
        if isinstance(amount, int):
            comp = ShifterConst(
                name or self._auto_name("shr"), a.width, amount, "right", arithmetic
            )
            self._add(comp, {"a": a})
        else:
            comp = ShifterVar(
                name or self._auto_name("shr"), a.width, amount.width, "right", arithmetic
            )
            self._add(comp, {"a": a, "amount": amount})
        return self._connect_outputs(comp)["y"]

    # ------------------------------------------------------------- steering
    def mux(self, sel: Net, *inputs: NetOrInt, name: Optional[str] = None) -> Net:
        """N-way mux: ``inputs[sel]``."""
        if len(inputs) < 2:
            raise ValueError("mux needs at least two data inputs")
        width = self._infer_width(*inputs)
        comp = Mux(name or self._auto_name("mux"), width, len(inputs))
        port_map: Dict[str, NetOrInt] = {
            f"d{i}": self._resize(value, width) for i, value in enumerate(inputs)
        }
        sel_net = sel
        if sel.width != comp.sel_width:
            sel_net = self.resize(sel, comp.sel_width)
        port_map["sel"] = sel_net
        self._add(comp, port_map)
        return self._connect_outputs(comp)["y"]

    # ---------------------------------------------------------------- logic
    def logic(self, op: str, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        width = self._infer_width(a, b)
        comp = LogicOp(name or self._auto_name(op), op, width)
        self._add(comp, {"a": self._resize(a, width), "b": self._resize(b, width)})
        return self._connect_outputs(comp)["y"]

    def and_(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self.logic("and", a, b, name)

    def or_(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self.logic("or", a, b, name)

    def xor_(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self.logic("xor", a, b, name)

    def not_(self, a: Net, name: Optional[str] = None) -> Net:
        comp = NotOp(name or self._auto_name("not"), a.width)
        self._add(comp, {"a": a})
        return self._connect_outputs(comp)["y"]

    def reduce(self, op: str, a: Net, name: Optional[str] = None) -> Net:
        comp = ReduceOp(name or self._auto_name(f"red{op}"), op, a.width)
        self._add(comp, {"a": a})
        return self._connect_outputs(comp)["y"]

    # --------------------------------------------------------- bit plumbing
    def concat(self, *parts: Net, name: Optional[str] = None) -> Net:
        """Concatenate nets; the first argument lands in the least-significant bits."""
        comp = Concat(name or self._auto_name("cat"), [p.width for p in parts])
        self._add(comp, {f"i{i}": p for i, p in enumerate(parts)})
        return self._connect_outputs(comp)["y"]

    def slice(self, a: Net, high: int, low: int, name: Optional[str] = None) -> Net:
        comp = Slice(name or self._auto_name("slice"), a.width, high, low)
        self._add(comp, {"a": a})
        return self._connect_outputs(comp)["y"]

    def bit(self, a: Net, index: int, name: Optional[str] = None) -> Net:
        """Extract a single bit."""
        return self.slice(a, index, index, name)

    def zext(self, a: Net, width_out: int, name: Optional[str] = None) -> Net:
        comp = Extend(name or self._auto_name("zext"), a.width, width_out, signed=False)
        self._add(comp, {"a": a})
        return self._connect_outputs(comp)["y"]

    def sext(self, a: Net, width_out: int, name: Optional[str] = None) -> Net:
        comp = Extend(name or self._auto_name("sext"), a.width, width_out, signed=True)
        self._add(comp, {"a": a})
        return self._connect_outputs(comp)["y"]

    def resize(self, a: Net, width_out: int, signed: bool = False,
               name: Optional[str] = None) -> Net:
        """Zero/sign-extend or truncate ``a`` to ``width_out`` bits."""
        if a.width == width_out:
            return a
        if a.width < width_out:
            return self.sext(a, width_out, name) if signed else self.zext(a, width_out, name)
        return self.slice(a, width_out - 1, 0, name)

    def decoder(self, a: Net, name: Optional[str] = None) -> Net:
        comp = Decoder(name or self._auto_name("dec"), a.width)
        self._add(comp, {"a": a})
        return self._connect_outputs(comp)["y"]

    # ---------------------------------------------------------------- state
    def register(
        self,
        name: str,
        width: int,
        reset_value: int = 0,
        has_enable: bool = False,
        has_clear: bool = False,
    ) -> Net:
        """Declare a register and return its ``q`` net; drive ``d`` later with :meth:`drive`."""
        comp = Register(name, width, reset_value, has_enable, has_clear)
        self.module.add_component(comp)
        return self._connect_outputs(comp, {"q": f"{name}_q"})["q"]

    def pipe(self, d: Net, name: Optional[str] = None, reset_value: int = 0) -> Net:
        """Simple pipeline register: declare and drive in one step."""
        reg_name = name or self._auto_name("reg")
        q = self.register(reg_name, d.width, reset_value)
        self.drive(reg_name, d=d)
        return q

    def counter(
        self,
        name: str,
        width: int,
        has_load: bool = False,
        wrap_at: Optional[int] = None,
    ) -> Net:
        comp = Counter(name, width, has_load, wrap_at)
        self.module.add_component(comp)
        return self._connect_outputs(comp, {"q": f"{name}_q"})["q"]

    def accumulator(self, name: str, width: int) -> Net:
        comp = Accumulator(name, width)
        self.module.add_component(comp)
        return self._connect_outputs(comp, {"q": f"{name}_q"})["q"]

    def drive(self, component_name: str, **connections: NetOrInt) -> None:
        """Connect input ports of an already-declared component by name."""
        comp = self.module.get_component(component_name)
        for port_name, value in connections.items():
            width = comp.ports[port_name].width
            comp.connect(port_name, self._as_net(value, width))

    def memory(
        self,
        name: str,
        width: int,
        depth: int,
        we: Net,
        addr: Net,
        wdata: Net,
        sync_read: bool = True,
        initial: Optional[Sequence[int]] = None,
    ) -> Net:
        """Single-port memory; returns the read-data net."""
        comp = Memory(name, width, depth, sync_read, initial)
        self._add(comp, {"we": we, "addr": self.resize(addr, comp.addr_width),
                         "wdata": wdata})
        return self._connect_outputs(comp, {"rdata": f"{name}_rdata"})["rdata"]

    def regfile(
        self,
        name: str,
        width: int,
        depth: int,
        we: Net,
        waddr: Net,
        wdata: Net,
        raddrs: Sequence[Net],
        initial: Optional[Sequence[int]] = None,
    ) -> Tuple[Net, ...]:
        """Register file; returns one read-data net per read address."""
        comp = RegisterFile(name, width, depth, n_read_ports=len(raddrs), initial=initial)
        inputs: Dict[str, NetOrInt] = {
            "we": we,
            "waddr": self.resize(waddr, comp.addr_width),
            "wdata": wdata,
        }
        for i, raddr in enumerate(raddrs):
            inputs[f"raddr{i}"] = self.resize(raddr, comp.addr_width)
        self._add(comp, inputs)
        outs = self._connect_outputs(comp)
        return tuple(outs[f"rdata{i}"] for i in range(len(raddrs)))

    def rom(self, name: str, width: int, contents: Sequence[int], addr: Net) -> Net:
        comp = ROM(name, width, contents)
        self._add(comp, {"addr": self.resize(addr, comp.addr_width)})
        return self._connect_outputs(comp, {"rdata": f"{name}_rdata"})["rdata"]

    def fsm(
        self,
        name: str,
        states: Sequence[str],
        inputs: Mapping[str, Net],
        outputs: Mapping[str, int],
        moore_outputs: Optional[Mapping[str, Mapping[str, int]]] = None,
        reset_state: Optional[str] = None,
    ) -> Tuple[FSMController, Dict[str, Net]]:
        """Instantiate a Moore FSM controller.

        ``inputs`` maps status-signal names to the nets carrying them;
        ``outputs`` maps control-signal names to widths.  Returns the FSM
        component (so transitions can be added) and its output nets.
        """
        comp = FSMController(
            name,
            states=states,
            inputs={n: net.width for n, net in inputs.items()},
            outputs=outputs,
            moore_outputs=moore_outputs,
            reset_state=reset_state,
        )
        self._add(comp, dict(inputs))
        out_nets = self._connect_outputs(comp)
        return comp, out_nets

    # -------------------------------------------------------------- helpers
    def _infer_width(self, *operands: NetOrInt) -> int:
        widths = [v.width for v in operands if isinstance(v, Net)]
        if not widths:
            raise ValueError("cannot infer width from integer-only operands")
        return max(widths)

    def _resize(self, value: NetOrInt, width: int) -> NetOrInt:
        if isinstance(value, Net) and value.width != width:
            return self.resize(value, width)
        return value

    def build(self) -> Module:
        """Return the constructed module."""
        return self.module
