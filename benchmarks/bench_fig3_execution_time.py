"""Figure 3 (execution-time series): power estimation time per design.

The paper's Figure 3 plots, for each of the seven benchmark designs, the
execution time of NEC-RTpower, PowerTheater and power emulation (log scale).
Each benchmark below runs the complete study for one design — software RTL
power estimation on the scaled stimulus, power-emulation flow (instrument,
map, emulate), and the calibrated tool / platform time models evaluated at the
paper-scale nominal workload.  After the last design the reproduced
execution-time table is written to ``benchmarks/results/fig3_execution_time.txt``.

Expected shape (paper): all three bars grow with design size; power emulation
is one to three orders of magnitude below the software tools.
"""

from __future__ import annotations

import pytest

from repro.designs.registry import FIGURE3_ORDER

from conftest import write_result


@pytest.mark.parametrize("design_name", FIGURE3_ORDER)
def test_fig3_execution_time(benchmark, fig3_study, design_name):
    """Run the per-design Figure 3 study (benchmarked: full host-side study)."""
    row = benchmark.pedantic(
        fig3_study.compute, args=(design_name,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "nec_rtpower_s": round(row.time_nec_s, 2),
            "powertheater_s": round(row.time_powertheater_s, 2),
            "emulation_s": round(row.time_emulation_s, 3),
            "speedup_over_nec": round(row.speedup_nec, 1),
            "speedup_over_powertheater": round(row.speedup_powertheater, 1),
            "monitored_bits": row.monitored_bits,
            "nominal_cycles": row.nominal_cycles,
        }
    )
    # sanity: software tools are always slower than emulation for these workloads
    assert row.time_nec_s > row.time_emulation_s
    assert row.time_powertheater_s > row.time_emulation_s

    if fig3_study.complete:
        _write_table(fig3_study)


def _write_table(study) -> None:
    rows = [study.rows[name] for name in FIGURE3_ORDER]
    lines = [
        "Figure 3 reproduction — execution time of RTL power estimation vs power emulation",
        "(software tool times from models calibrated to the paper's MPEG4 data point;",
        " emulation time = bitstream download + testbench streaming + execution + readback)",
        "",
        f"{'design':12s} {'bits':>6s} {'nominal cycles':>15s} "
        f"{'NEC-RTpower (s)':>16s} {'PowerTheater (s)':>17s} {'Emulation (s)':>14s} "
        f"{'device':>9s} {'f_emu MHz':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row.design:12s} {row.monitored_bits:6d} {row.nominal_cycles:15d} "
            f"{row.time_nec_s:16.1f} {row.time_powertheater_s:17.1f} "
            f"{row.time_emulation_s:14.2f} {row.device:>9s} {row.emulation_clock_mhz:10.1f}"
        )
    lines += [
        "",
        "measured host-side wall-clock on the scaled stimulus (this reproduction's own runtimes):",
        f"{'design':12s} {'sw estimator (s)':>17s} {'emulated sim (s)':>17s} "
        f"{'executed cycles':>16s}",
    ]
    for row in rows:
        lines.append(
            f"{row.design:12s} {row.measured_software_s:17.2f} "
            f"{row.measured_emulation_host_s:17.2f} {row.executed_cycles:16d}"
        )
    write_result("fig3_execution_time.txt", "\n".join(lines))
