"""The scalar adapter: run any stimulus spec as an ordinary testbench.

:class:`SpecTestbench` makes a :class:`~repro.stim.spec.StimulusSpec` drive
the scalar :class:`~repro.sim.engine.Simulator` (and with it the RTL/gate
estimators, the emulation flow and characterization training runs) through
the standard :class:`~repro.sim.testbench.Testbench` protocol.  The stream it
produces for seed ``s`` is bit-identical to lane ``i`` of a
:class:`~repro.stim.driver.BatchStimulusDriver` whose ``seeds[i] == s`` —
both pull the same per-(seed, port) chunk-invariant streams — so spec-driven
scalar and lane runs agree exactly, and the lane power estimator can swap
a pile of these testbenches for one vectorized array driver.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.sim.testbench import Testbench
from repro.stim.compile import CompiledStimulus
from repro.stim.spec import StimulusSpec


class SpecTestbench(Testbench):
    """Drives one simulator (or one batch lane view) from a stimulus spec."""

    def __init__(
        self,
        spec: StimulusSpec,
        seed: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name if name is not None else f"stim[{spec.n_cycles}c]")
        self.spec = spec
        self.seed = spec.seed if seed is None else int(seed)
        self.max_cycles = spec.n_cycles
        self._compiled: Optional[CompiledStimulus] = None

    # --------------------------------------------------------------- binding
    def input_widths(self, simulator) -> Dict[str, int]:
        return {
            name: port.width
            for name, port in simulator.module.ports.items()
            if port.is_input
        }

    def bind(self, simulator) -> None:
        """Restart the run; compilation is lazy (first ``drive`` call).

        Laziness matters on the lane path: the batch estimator binds every
        testbench but then drives all lanes from one shared
        :class:`~repro.stim.driver.BatchStimulusDriver`, so the per-lane
        single-seed compile would be pure waste.
        """
        self._compiled = None

    # --------------------------------------------------------------- driving
    def drive(self, cycle: int, simulator) -> Mapping[str, int]:
        if self._compiled is None:
            self._compiled = CompiledStimulus(
                self.spec, self.input_widths(simulator), [self.seed]
            )
        if cycle >= self.spec.n_cycles:
            return {}
        values = self._compiled.values_at(cycle)
        return {
            name: int(values[index, 0])
            for index, name in enumerate(self._compiled.port_names)
        }

    def finished(self, cycle: int, simulator) -> bool:
        return cycle + 1 >= self.spec.n_cycles
