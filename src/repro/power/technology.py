"""Technology operating point and unit conversions.

Energies inside the package are carried in femtojoules (fJ) per clock cycle
(or per strobe period); powers are reported in milliwatts.  The conversion is
``P[mW] = E[fJ/cycle] * f[MHz] * 1e-6`` since 1 fJ * 1 MHz = 1 nW = 1e-6 mW.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gates.cells import CB013_LIBRARY, StandardCellLibrary


@dataclass(frozen=True)
class Technology:
    """An implementation technology / operating point."""

    name: str
    vdd_v: float
    clock_mhz: float
    cell_library: StandardCellLibrary = field(repr=False, default=CB013_LIBRARY)
    #: per-bit energies (fJ) of storage elements, used by analytic models
    register_clock_energy_fj: float = 1.2
    register_data_energy_fj: float = 2.8
    memory_read_energy_fj_per_bit: float = 6.0
    memory_write_energy_fj_per_bit: float = 8.5
    memory_leakage_fj_per_bit_cycle: float = 0.002

    @property
    def clock_period_ns(self) -> float:
        return 1e3 / self.clock_mhz

    def energy_to_power_mw(self, energy_fj_per_cycle: float) -> float:
        """Convert an average per-cycle energy into average power (mW).

        1 fJ/cycle at 1 MHz is 1 nW, i.e. 1e-6 mW.
        """
        return energy_fj_per_cycle * self.clock_mhz * 1e-6

    def power_to_energy_fj(self, power_mw: float) -> float:
        """Average per-cycle energy (fJ) corresponding to a power in mW."""
        return power_mw / (self.clock_mhz * 1e-6)

    def scaled(self, clock_mhz: float) -> "Technology":
        """Same technology at a different clock frequency."""
        return Technology(
            name=self.name,
            vdd_v=self.vdd_v,
            clock_mhz=clock_mhz,
            cell_library=self.cell_library,
            register_clock_energy_fj=self.register_clock_energy_fj,
            register_data_energy_fj=self.register_data_energy_fj,
            memory_read_energy_fj_per_bit=self.memory_read_energy_fj_per_bit,
            memory_write_energy_fj_per_bit=self.memory_write_energy_fj_per_bit,
            memory_leakage_fj_per_bit_cycle=self.memory_leakage_fj_per_bit_cycle,
        )


#: default operating point mirroring the paper's CB130M 0.13 µm flow at 200 MHz
CB130M_TECHNOLOGY = Technology(name="CB130M-synthetic", vdd_v=1.2, clock_mhz=200.0)
