"""Retry/timeout policy: how hard to try before recording a failure.

A :class:`RetryPolicy` bundles the execution-robustness knobs — per-task
timeout, retry budget, and the exponential-backoff schedule between attempts.
Backoff jitter is *deterministic*: it is drawn from a PRNG seeded by
``(jitter_seed, task_index, attempt)``, so a rerun of the same failing sweep
sleeps exactly as long as the last one did and tests can assert schedules.

Environment defaults (consulted by :meth:`RetryPolicy.from_env` when the
caller passes ``None``):

* ``REPRO_TASK_TIMEOUT_S`` — per-task wall-clock deadline in seconds,
* ``REPRO_TASK_RETRIES``   — retries after the first attempt.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional

#: environment variable providing the default per-task timeout (seconds)
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT_S"

#: environment variable providing the default retry budget
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout, retry and backoff configuration for a resilient run."""

    #: retries after the first attempt (0 = one attempt total)
    max_retries: int = 0
    #: per-task wall-clock deadline in seconds (None = no deadline)
    timeout_s: Optional[float] = None
    #: first backoff delay; attempt ``k`` waits ``base * factor**k`` (capped)
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    #: +/- fraction of the delay drawn as deterministic jitter
    jitter_fraction: float = 0.25
    #: seed of the jitter PRNG (combined with task index and attempt)
    jitter_seed: int = 0
    #: pool crashes a task may be involved in before it is quarantined
    max_pool_crashes: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1), got {self.jitter_fraction}"
            )
        if self.max_pool_crashes < 1:
            raise ValueError(
                f"max_pool_crashes must be >= 1, got {self.max_pool_crashes}"
            )

    def backoff_s(self, task_index: int, attempt: int) -> float:
        """Delay before re-running ``task_index`` after failed ``attempt``.

        Exponential in the attempt number, capped at ``backoff_max_s``, with
        deterministic seeded jitter — the same (seed, task, attempt) triple
        always sleeps the same amount.
        """
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** attempt,
        )
        if not self.jitter_fraction:
            return base
        rng = random.Random(f"{self.jitter_seed}:{task_index}:{attempt}")
        return base * (1.0 + self.jitter_fraction * rng.uniform(-1.0, 1.0))

    @classmethod
    def from_env(
        cls,
        timeout_s: Optional[float] = None,
        max_retries: Optional[int] = None,
        **overrides,
    ) -> "RetryPolicy":
        """A policy with ``None`` fields defaulted from the environment."""
        if timeout_s is None:
            text = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
            if text:
                try:
                    timeout_s = float(text)
                except ValueError:
                    raise ValueError(
                        f"{TASK_TIMEOUT_ENV} must be a number of seconds, "
                        f"got {text!r}"
                    ) from None
        if max_retries is None:
            text = os.environ.get(TASK_RETRIES_ENV, "").strip()
            if text:
                try:
                    max_retries = int(text)
                except ValueError:
                    raise ValueError(
                        f"{TASK_RETRIES_ENV} must be an integer, got {text!r}"
                    ) from None
            else:
                max_retries = 0
        return cls(max_retries=max_retries, timeout_s=timeout_s, **overrides)
