"""Macromodel fidelity: regression macromodels vs gate-level reference power.

Section 2.1 builds on characterization-based macromodels; this harness
quantifies how well the cycle-accurate linear-regression form (the one that is
synthesized into power-estimation hardware) fits gate-level reference energies
across the component library, and compares it against the LUT-table
macromodel form used as an ablation.
Writes ``benchmarks/results/characterization.txt``.
"""

from __future__ import annotations

import pytest

from repro.netlist.components import Adder, Comparator, LogicOp, Multiplier, Mux, ShifterVar
from repro.power import CharacterizationEngine, holdout_error

_COMPONENTS = [
    ("adder16", lambda: Adder("adder16", 16)),
    ("multiplier8", lambda: Multiplier("multiplier8", 8)),
    ("comparator16", lambda: Comparator("comparator16", 16)),
    ("mux4x12", lambda: Mux("mux4x12", 12, 4)),
    ("xor16", lambda: LogicOp("xor16", "xor", 16)),
    ("barrel16", lambda: ShifterVar("barrel16", 16, 4, "left")),
]

_ROWS = {}


@pytest.mark.parametrize("label,factory", _COMPONENTS)
def test_characterization_fidelity(benchmark, label, factory):
    component = factory()
    engine = CharacterizationEngine(n_pairs=120, seed=7)

    result = benchmark.pedantic(engine.characterize, args=(component,), rounds=1, iterations=1)
    lut_model = engine.characterize_lut(factory(), n_bins=6)
    holdout_linear = holdout_error(factory(), result.model)
    holdout_lut = holdout_error(factory(), lut_model)

    _ROWS[label] = {
        "r_squared": result.metrics.r_squared,
        "nrmse": result.metrics.nrmse,
        "mean_energy_fj": result.metrics.mean_energy_fj,
        "holdout_linear": holdout_linear,
        "holdout_lut": holdout_lut,
    }
    benchmark.extra_info.update({k: round(v, 4) for k, v in _ROWS[label].items()})

    assert result.metrics.r_squared > 0.6
    assert holdout_linear < 0.25

    if len(_ROWS) == len(_COMPONENTS):
        lines = [
            "Macromodel characterization fidelity vs gate-level reference power",
            "",
            f"{'component':14s} {'R^2':>7s} {'NRMSE':>7s} {'mean E (fJ)':>12s} "
            f"{'holdout err (linear)':>21s} {'holdout err (LUT)':>18s}",
        ]
        for name, row in _ROWS.items():
            lines.append(
                f"{name:14s} {row['r_squared']:7.3f} {row['nrmse']:7.3f} "
                f"{row['mean_energy_fj']:12.1f} {row['holdout_linear']:20.1%} "
                f"{row['holdout_lut']:17.1%}"
            )
        from conftest import write_result

        write_result("characterization.txt", "\n".join(lines))
